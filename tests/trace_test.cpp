// Unit tests for the trace substrate: model invariants, generators,
// the IBM-like synthesizer, the paper's constructed instances, CSV I/O,
// and trace statistics.
#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "trace/generators.hpp"
#include "trace/ibm_synth.hpp"
#include "trace/paper_instances.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_stats.hpp"
#include "util/rng.hpp"

namespace repl {
namespace {

TEST(Trace, ValidatesMonotoneTimes) {
  EXPECT_NO_THROW(Trace(2, {{1.0, 0}, {2.0, 1}}));
  EXPECT_THROW(Trace(2, {{2.0, 0}, {1.0, 1}}), std::invalid_argument);
  EXPECT_THROW(Trace(2, {{1.0, 0}, {1.0, 1}}), std::invalid_argument);
}

TEST(Trace, RejectsNonPositiveTimes) {
  EXPECT_THROW(Trace(1, {{0.0, 0}}), std::invalid_argument);
  EXPECT_THROW(Trace(1, {{-1.0, 0}}), std::invalid_argument);
}

TEST(Trace, RejectsBadServerIds) {
  EXPECT_THROW(Trace(2, {{1.0, 2}}), std::invalid_argument);
  EXPECT_THROW(Trace(2, {{1.0, -1}}), std::invalid_argument);
  EXPECT_THROW(Trace(0, {}), std::invalid_argument);
}

TEST(Trace, FromUnsortedSortsAndNudgesTies) {
  const Trace trace = Trace::from_unsorted(
      3, {{5.0, 0}, {1.0, 1}, {5.0, 2}, {1.0, 2}}, 0.5);
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[0].time, 1.0);
  EXPECT_EQ(trace[1].time, 1.5);  // tie nudged by min_gap
  EXPECT_EQ(trace[2].time, 5.0);
  EXPECT_EQ(trace[3].time, 5.5);
  // Stable: the first of the 1.0 ties was server 1.
  EXPECT_EQ(trace[0].server, 1);
  EXPECT_EQ(trace[1].server, 2);
}

TEST(Trace, PrevNextSameServerLinks) {
  const Trace trace(3, {{1.0, 0}, {2.0, 1}, {3.0, 0}, {4.0, 2}, {5.0, 0}});
  EXPECT_EQ(trace.prev_same_server(0), -1);
  EXPECT_EQ(trace.prev_same_server(2), 0);
  EXPECT_EQ(trace.prev_same_server(4), 2);
  EXPECT_EQ(trace.next_same_server(0), 2);
  EXPECT_EQ(trace.next_same_server(2), 4);
  EXPECT_EQ(trace.next_same_server(4), -1);
  EXPECT_EQ(trace.next_same_server(3), -1);
}

TEST(Trace, FirstAtServerAndCounts) {
  const Trace trace(3, {{1.0, 1}, {2.0, 1}, {3.0, 0}});
  EXPECT_EQ(trace.first_at_server(1), 0);
  EXPECT_EQ(trace.first_at_server(0), 2);
  EXPECT_EQ(trace.first_at_server(2), -1);
  EXPECT_EQ(trace.count_at_server(1), 2u);
  EXPECT_EQ(trace.count_at_server(2), 0u);
  EXPECT_EQ(trace.active_servers(), (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(trace.duration(), 3.0);
}

TEST(Trace, InterarrivalUsesDummyForInitialServer) {
  const Trace trace(2, {{3.0, 0}, {4.0, 1}, {9.0, 1}});
  // First request at the initial server: predecessor is r0 at time 0.
  EXPECT_DOUBLE_EQ(interarrival_to_prev(trace, 0, /*initial=*/0), 3.0);
  // First request at another server: no predecessor.
  EXPECT_TRUE(std::isinf(interarrival_to_prev(trace, 1, 0)));
  EXPECT_DOUBLE_EQ(interarrival_to_prev(trace, 2, 0), 5.0);
}

TEST(Trace, NextGapGroundTruth) {
  const Trace trace(2, {{1.0, 0}, {2.0, 0}, {10.0, 0}});
  EXPECT_TRUE(next_gap_within_lambda(trace, 0, 1.0));   // gap 1 <= 1
  EXPECT_FALSE(next_gap_within_lambda(trace, 1, 7.0));  // gap 8 > 7
  EXPECT_FALSE(next_gap_within_lambda(trace, 2, 100.0));  // no next
  EXPECT_TRUE(first_gap_within_lambda(trace, 0, 1.0));
  EXPECT_FALSE(first_gap_within_lambda(trace, 0, 0.5));
  EXPECT_FALSE(first_gap_within_lambda(trace, 1, 100.0));  // never requests
}

TEST(Generators, PoissonCountNearExpectation) {
  const Trace trace = generate_poisson_trace(
      4, /*rate=*/0.1, /*horizon=*/10000.0, ServerAssignment{}, 42);
  EXPECT_NEAR(static_cast<double>(trace.size()), 1000.0, 150.0);
  EXPECT_LE(trace.duration(), 10000.0);
}

TEST(Generators, PoissonDeterministicInSeed) {
  const Trace a = generate_poisson_trace(4, 0.05, 5000.0,
                                         ServerAssignment{}, 7);
  const Trace b = generate_poisson_trace(4, 0.05, 5000.0,
                                         ServerAssignment{}, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Generators, ZipfAssignmentSkewsToServerZero) {
  const Trace trace = generate_poisson_trace(10, 0.5, 20000.0,
                                             ServerAssignment{}, 11);
  // Under Zipf(1), server 0 gets ~1/H_10 ≈ 34% of requests; server 9 ~3.4%.
  const double n = static_cast<double>(trace.size());
  EXPECT_GT(static_cast<double>(trace.count_at_server(0)) / n, 0.28);
  EXPECT_LT(static_cast<double>(trace.count_at_server(9)) / n, 0.08);
}

TEST(Generators, UniformAssignmentIsFlat) {
  ServerAssignment assignment;
  assignment.kind = ServerAssignment::Kind::kUniform;
  const Trace trace =
      generate_poisson_trace(5, 0.5, 20000.0, assignment, 13);
  const double n = static_cast<double>(trace.size());
  for (int s = 0; s < 5; ++s) {
    EXPECT_NEAR(static_cast<double>(trace.count_at_server(s)) / n, 0.2, 0.03);
  }
}

TEST(Generators, PeriodicEmitsExpectedTimes) {
  const Trace trace = generate_periodic_trace(
      2, /*periods=*/{10.0, 0.0}, /*offsets=*/{5.0, 1.0}, /*horizon=*/36.0);
  // Server 0 at 5, 15, 25, 35; server 1 inactive (period 0).
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_DOUBLE_EQ(trace[0].time, 5.0);
  EXPECT_DOUBLE_EQ(trace[3].time, 35.0);
  EXPECT_EQ(trace.count_at_server(1), 0u);
}

TEST(Generators, MmppProducesBurstsAndQuietPeriods) {
  MmppConfig config;
  config.rate_low = 0.001;
  config.rate_high = 1.0;
  config.mean_low_duration = 2000.0;
  config.mean_high_duration = 500.0;
  config.horizon = 200000.0;
  const Trace trace =
      generate_mmpp_trace(3, config, ServerAssignment{}, 17);
  ASSERT_GT(trace.size(), 100u);
  // Gap distribution should be strongly bimodal: some gaps far above the
  // mean (quiet) and many far below (burst).
  double max_gap = 0.0;
  std::size_t small_gaps = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const double gap = trace[i].time - trace[i - 1].time;
    max_gap = std::max(max_gap, gap);
    small_gaps += gap < 10.0;
  }
  EXPECT_GT(max_gap, 500.0);
  EXPECT_GT(static_cast<double>(small_gaps) /
                static_cast<double>(trace.size()),
            0.5);
}

TEST(Generators, DiurnalRateVaries) {
  DiurnalConfig config;
  config.base_rate = 0.05;
  config.amplitude = 0.9;
  config.period = 86400.0;
  config.horizon = 7 * 86400.0;
  const Trace trace =
      generate_diurnal_trace(4, config, ServerAssignment{}, 19);
  ASSERT_GT(trace.size(), 1000u);
  // Count requests in the peak vs trough quarter of each day; the peak
  // (around day fraction 0.25 for phase 0) should dominate.
  std::size_t peak = 0, trough = 0;
  for (const Request& r : trace.requests()) {
    const double frac = std::fmod(r.time, 86400.0) / 86400.0;
    if (frac >= 0.125 && frac < 0.375) ++peak;
    if (frac >= 0.625 && frac < 0.875) ++trough;
  }
  EXPECT_GT(peak, trough * 3);
}

TEST(IbmSynth, MatchesPaperScale) {
  const Trace trace = default_ibm_like_trace(1);
  // The paper's object: 11688 reads over 7 days on 10 servers.
  EXPECT_EQ(trace.num_servers(), 10);
  EXPECT_NEAR(static_cast<double>(trace.size()), 11688.0, 2500.0);
  EXPECT_LE(trace.duration(), 7.0 * 86400.0);
  const TraceStats stats = compute_trace_stats(trace);
  // Mean same-server gap should be within a factor ~2 of the quoted
  // 500 s * H-weighted skew (the paper quotes ~500 s per *server* on
  // average; Zipf skew spreads this between ~1.5ks at server 0 and much
  // longer tails elsewhere). Only a coarse sanity band is asserted.
  EXPECT_GT(stats.mean_per_server_gap, 300.0);
  EXPECT_LT(stats.mean_per_server_gap, 20000.0);
}

TEST(IbmSynth, ZipfServerSkew) {
  const Trace trace = default_ibm_like_trace(2);
  const double n = static_cast<double>(trace.size());
  EXPECT_GT(static_cast<double>(trace.count_at_server(0)) / n, 0.2);
  EXPECT_GT(trace.count_at_server(0), trace.count_at_server(9) * 3);
}

TEST(IbmSynth, DeterministicInSeed) {
  const Trace a = default_ibm_like_trace(3);
  const Trace b = default_ibm_like_trace(3);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0], b[0]);
  EXPECT_EQ(a[a.size() - 1], b[b.size() - 1]);
}

TEST(IbmSynth, GapsSpanOrdersOfMagnitude) {
  const Trace trace = default_ibm_like_trace(4);
  std::size_t under_10s = 0, over_1000s = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const int p = trace.prev_same_server(i);
    if (p < 0) continue;
    const double gap = trace[i].time - trace[static_cast<std::size_t>(p)].time;
    under_10s += gap <= 10.0;
    over_1000s += gap > 1000.0;
  }
  EXPECT_GT(under_10s, 100u);   // bursty short gaps exist
  EXPECT_GT(over_1000s, 100u);  // long quiet gaps exist
}

TEST(PaperInstances, Figure5Structure) {
  const double alpha = 0.5, lambda = 10.0, eps = 0.1;
  const Trace trace = make_figure5_trace(alpha, lambda, 6, eps);
  ASSERT_EQ(trace.size(), 6u);
  // Alternating s2 (odd i) / s1 (even i); same-server gaps = αλ + ε.
  EXPECT_EQ(trace[0].server, 1);
  EXPECT_EQ(trace[1].server, 0);
  EXPECT_DOUBLE_EQ(trace[0].time, eps);
  EXPECT_DOUBLE_EQ(trace[1].time, alpha * lambda + eps);
  for (std::size_t i = 2; i < trace.size(); ++i) {
    EXPECT_NEAR(trace[i].time - trace[i - 2].time, alpha * lambda + eps,
                1e-12);
    EXPECT_EQ(trace[i].server, trace[i - 2].server);
  }
}

TEST(PaperInstances, Figure6StructureAndGaps) {
  const double lambda = 8.0, eps = 0.25;
  const Trace trace = make_figure6_trace(lambda, eps, 3);
  ASSERT_EQ(trace.size(), 9u);
  // All same-server gaps exceed λ (so "beyond" predictions are correct).
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const double gap = interarrival_to_prev(trace, i, 0);
    EXPECT_GT(gap, lambda) << "request " << i;
  }
  // First cycle: r1 at s2 at λ, r2 at s1 at λ+ε, r3 at s2 at 2λ+ε.
  EXPECT_EQ(trace[0].server, 1);
  EXPECT_DOUBLE_EQ(trace[0].time, lambda);
  EXPECT_EQ(trace[1].server, 0);
  EXPECT_DOUBLE_EQ(trace[1].time, lambda + eps);
  EXPECT_EQ(trace[2].server, 1);
  EXPECT_DOUBLE_EQ(trace[2].time, 2 * lambda + eps);
  // Second cycle swaps roles: r4 at s1.
  EXPECT_EQ(trace[3].server, 0);
}

TEST(PaperInstances, Figure9Structure) {
  const double lambda = 5.0, eps = 0.01;
  const Trace trace = make_figure9_trace(lambda, eps, 6);
  ASSERT_EQ(trace.size(), 5u);  // r2..r6, all at s2
  for (const Request& r : trace.requests()) EXPECT_EQ(r.server, 1);
  EXPECT_DOUBLE_EQ(trace[0].time, eps);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_NEAR(trace[i].time - trace[i - 1].time, 2 * lambda + eps, 1e-12);
  }
}

TEST(PaperInstances, BuildersRejectBadParameters) {
  EXPECT_THROW(make_figure5_trace(0.5, 10.0, 5, /*eps=*/6.0),
               std::invalid_argument);  // eps >= alpha*lambda
  EXPECT_THROW(make_figure5_trace(1.5, 10.0, 5, 0.1),
               std::invalid_argument);
  EXPECT_THROW(make_figure6_trace(10.0, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(make_figure9_trace(10.0, 0.1, 1), std::invalid_argument);
}

TEST(TraceIo, CsvRoundTrip) {
  const Trace trace = testing::random_trace(5, 0.01, 5000.0, 23);
  const std::string csv = trace_to_csv(trace);
  const Trace parsed = trace_from_csv(csv, 5);
  ASSERT_EQ(parsed.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(parsed[i], trace[i]);
  }
}

TEST(TraceIo, InfersServerCount) {
  const Trace parsed = trace_from_csv("time,server\n1.5,0\n2.5,3\n");
  EXPECT_EQ(parsed.num_servers(), 4);
  EXPECT_EQ(parsed.size(), 2u);
}

TEST(TraceIo, RejectsMalformedRows) {
  EXPECT_THROW(trace_from_csv("time,server\n1.5\n"), std::invalid_argument);
  EXPECT_THROW(trace_from_csv("time,server\nabc,0\n"),
               std::invalid_argument);
  EXPECT_THROW(trace_from_csv(""), std::invalid_argument);
}

TEST(TraceIo, FileRoundTrip) {
  const Trace trace = testing::random_trace(3, 0.01, 2000.0, 29);
  const std::string path = ::testing::TempDir() + "/repl_trace_test.csv";
  save_trace(trace, path);
  const Trace loaded = load_trace(path, 3);
  ASSERT_EQ(loaded.size(), trace.size());
  EXPECT_EQ(loaded[0], trace[0]);
}

TEST(TraceStats, ComputesGapsAndFractions) {
  const Trace trace(2, {{1.0, 0}, {2.0, 1}, {3.0, 0}, {10.0, 1}});
  const TraceStats stats = compute_trace_stats(trace);
  EXPECT_EQ(stats.num_requests, 4u);
  EXPECT_EQ(stats.active_servers, 2);
  EXPECT_DOUBLE_EQ(stats.duration, 10.0);
  EXPECT_NEAR(stats.mean_global_gap, 3.0, 1e-12);  // gaps 1,1,7
  // Same-server gaps: 2 (server 0), 8 (server 1).
  EXPECT_NEAR(stats.mean_per_server_gap, 5.0, 1e-12);
  EXPECT_NEAR(stats.fraction_gaps_within(2.0), 0.5, 1e-12);
  EXPECT_NEAR(stats.fraction_gaps_within(10.0), 1.0, 1e-12);
  EXPECT_FALSE(stats.summary().empty());
}

}  // namespace
}  // namespace repl
