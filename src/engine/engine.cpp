#include "engine/engine.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <filesystem>
#include <limits>
#include <optional>
#include <unordered_map>
#include <utility>

#include <cstdio>
#include <iostream>

#include "checkpoint/snapshot.hpp"
#include "checkpoint/state_io.hpp"
#include "engine/event_source.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/stage_timer.hpp"
#include "obs/trace.hpp"
#include "replay/fixture.hpp"
#include "offline/opt_lower_bound.hpp"
#include "run/parallel_runner.hpp"
#include "run/thread_pool.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace repl {

namespace {

/// Shard assignment: a SplitMix64 mix of the id, so dense and strided id
/// spaces both spread evenly. Pure function of the id — shard layout
/// never affects results, only load balance.
std::size_t shard_index(std::uint64_t object_id, std::size_t num_shards) {
  return static_cast<std::size_t>(SplitMix64(object_id).next() %
                                  static_cast<std::uint64_t>(num_shards));
}

}  // namespace

EngineMetrics reduce_object_finals(const std::vector<EngineObjectFinal>& finals) {
  EngineMetrics metrics;
  std::uint64_t prev_id = 0;
  for (std::size_t i = 0; i < finals.size(); ++i) {
    const EngineObjectFinal& final = finals[i];
    REPL_REQUIRE_MSG(i == 0 || final.id > prev_id,
                     "object finals must arrive in strictly increasing id "
                     "order: id "
                         << final.id << " after " << prev_id);
    prev_id = final.id;
    ++metrics.objects;
    metrics.events += final.events;
    metrics.num_local += final.num_local;
    metrics.num_transfers += final.num_transfers;
    metrics.online_cost += final.online_cost;
    metrics.lower_bound += final.lower_bound;
  }
  return metrics;
}

/// The engine's registry-backed instruments. Counters/histograms are
/// sharded-atomic (obs/metrics.hpp), so updating them from the serving
/// thread while a scraper reads is race-free; all pointers live as long
/// as the registry, which EngineOptions::metrics requires to outlive the
/// engine.
struct StreamingEngine::Telemetry {
  explicit Telemetry(obs::MetricsRegistry& registry)
      : events_ingested(registry.counter(
            "repl_events_ingested_total",
            "Events ingested into the engine across all batches")),
        batches(registry.counter("repl_batches_total",
                                 "Ingest batches executed")),
        checkpoint_writes(registry.counter(
            "repl_checkpoint_writes_total",
            "Snapshots sealed by checkpoint(), periodic or manual")),
        checkpoint_bytes(registry.counter(
            "repl_checkpoint_bytes_total",
            "Bytes written into sealed snapshots (encode side)")),
        source_bytes(registry.gauge(
            "repl_source_bytes_read",
            "Encoded bytes consumed from the event source (decode side); "
            "0 when the source has no byte-level view")),
        objects_active(registry.gauge(
            "repl_objects_active",
            "Objects instantiated in the engine's sharded table")),
        batch_seconds(registry.histogram(
            "repl_batch_seconds", "Wall seconds per ingest batch",
            obs::Histogram::default_latency_bounds())),
        source_wait(stage(registry, "source_wait")),
        route(stage(registry, "route")),
        execute(stage(registry, "execute")),
        reduce(stage(registry, "reduce")),
        checkpoint_write(stage(registry, "checkpoint_write")),
        checkpoint_restore(stage(registry, "checkpoint_restore")) {}

  static obs::Histogram& stage(obs::MetricsRegistry& registry,
                               const std::string& name) {
    return registry.histogram(
        "repl_stage_seconds",
        "Wall seconds per serve-pipeline stage, labeled by stage: "
        "source_wait (prefetch decode / admission wait), route "
        "(validate + shard routing), execute (parallel shard tasks), "
        "reduce (finish), checkpoint_write / checkpoint_restore",
        obs::Histogram::default_latency_bounds(), {{"stage", name}});
  }

  obs::Counter& events_ingested;
  obs::Counter& batches;
  obs::Counter& checkpoint_writes;
  obs::Counter& checkpoint_bytes;
  obs::Gauge& source_bytes;
  obs::Gauge& objects_active;
  obs::Histogram& batch_seconds;
  obs::Histogram& source_wait;
  obs::Histogram& route;
  obs::Histogram& execute;
  obs::Histogram& reduce;
  obs::Histogram& checkpoint_write;
  obs::Histogram& checkpoint_restore;
};

struct StreamingEngine::ObjectState {
  ObjectState(const SystemConfig& config, const SimulationOptions& sim,
              PolicyPtr pol, PredictorPtr pred, bool with_lower_bound)
      : policy(std::move(pol)),
        predictor(std::move(pred)),
        simulation(config, sim, *policy, *predictor) {
    if (with_lower_bound) lower_bound.emplace(config);
  }

  void save_state(StateWriter& out) const {
    out.u64(static_cast<std::uint64_t>(events));
    out.boolean(lower_bound.has_value());
    if (lower_bound) lower_bound->save_state(out);
    simulation.save_state(out);
  }

  void load_state(StateReader& in) {
    events = static_cast<std::size_t>(in.u64());
    if (in.boolean() != lower_bound.has_value()) {
      in.fail("lower-bound presence mismatch");
    }
    if (lower_bound) lower_bound->load_state(in);
    simulation.load_state(in);
    in.expect_end();
  }

  PolicyPtr policy;
  PredictorPtr predictor;
  OnlineSimulation simulation;
  std::optional<StreamingLowerBound> lower_bound;
  std::size_t events = 0;
};

struct StreamingEngine::Shard {
  std::unordered_map<std::uint64_t, std::unique_ptr<ObjectState>> objects;
  /// Events routed to this shard for the batch in flight, in stream order.
  std::vector<LogEvent> inbox;
  /// Object records routed to this shard by restore(), decoded by the
  /// shard task in parallel.
  std::vector<std::pair<std::uint64_t, std::vector<unsigned char>>>
      restore_inbox;
  /// (id, payload) snapshots produced by checkpoint()'s shard tasks,
  /// merged into canonical id order on the calling thread.
  std::vector<std::pair<std::uint64_t, std::vector<unsigned char>>>
      snapshots;
  /// Set by the shard task on failure; the lowest shard index wins.
  std::exception_ptr error;
  /// Filled by finish(), sorted by object id.
  std::vector<EngineObjectFinal> finals;
  EngineShardMetrics metrics;
};

StreamingEngine::StreamingEngine(SystemConfig config, EngineOptions options,
                                 EnginePolicyFactory make_policy,
                                 EnginePredictorFactory make_predictor)
    : config_(std::move(config)),
      options_(options),
      make_policy_(std::move(make_policy)),
      make_predictor_(std::move(make_predictor)) {
  config_.validate();
  REPL_REQUIRE(options_.num_shards >= 1);
  REPL_REQUIRE(options_.num_threads >= 0);
  REPL_REQUIRE(make_policy_ != nullptr);
  REPL_REQUIRE(make_predictor_ != nullptr);
  if (options_.compute_lower_bound) {
    // Fail here, not inside the first shard task (which would poison
    // the engine for a statically-checkable precondition).
    for (double r : config_.storage_rates) {
      REPL_REQUIRE_MSG(r == 1.0,
                       "compute_lower_bound requires uniform unit storage "
                       "rates (OPTL is derived for them)");
    }
  }
  shards_.reserve(options_.num_shards);
  for (std::size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (options_.metrics != nullptr) {
    telemetry_ = std::make_unique<Telemetry>(*options_.metrics);
  }
}

StreamingEngine::~StreamingEngine() = default;

StreamingEngine::Shard& StreamingEngine::shard_for(std::uint64_t object_id) {
  return *shards_[shard_index(object_id, options_.num_shards)];
}

std::unique_ptr<StreamingEngine::ObjectState>
StreamingEngine::make_object_state(std::uint64_t object_id) {
  SimulationOptions sim_options;
  sim_options.horizon = options_.horizon;
  sim_options.record_events = false;
  EngineObjectContext context;
  context.object_id = object_id;
  context.seed = ParallelRunner::object_seed(
      options_.base_seed, static_cast<std::size_t>(object_id));
  return std::make_unique<ObjectState>(
      config_, sim_options, make_policy_(context), make_predictor_(context),
      options_.compute_lower_bound);
}

void StreamingEngine::run_shard_tasks(
    const std::vector<std::size_t>& shard_ids,
    const std::function<void(Shard&)>& work) {
  const auto guarded = [&](Shard& shard) {
    try {
      work(shard);
    } catch (...) {
      shard.error = std::current_exception();
    }
  };

  if (options_.num_threads == 1 || shard_ids.size() <= 1) {
    for (std::size_t id : shard_ids) guarded(*shards_[id]);
  } else {
    if (!pool_) {
      pool_ = std::make_unique<ThreadPool>(
          options_.num_threads == 0
              ? 0
              : static_cast<std::size_t>(options_.num_threads));
      stats_.threads_used = static_cast<int>(pool_->num_threads());
    }
    const std::uint64_t steals_before = pool_->steal_count();
    for (std::size_t id : shard_ids) {
      Shard* shard = shards_[id].get();
      pool_->submit([&guarded, shard] { guarded(*shard); });
    }
    pool_->wait_idle();
    stats_.steals += pool_->steal_count() - steals_before;
  }

  // Deterministic error propagation: the lowest shard index wins. A
  // shard that failed mid-inbox has partially advanced object state, so
  // the engine as a whole is poisoned — later calls fail fast instead of
  // silently dropping the stuck inbox.
  for (const auto& shard : shards_) {
    if (shard->error) {
      failed_ = true;
      std::rethrow_exception(shard->error);
    }
  }
}

void StreamingEngine::ingest(const LogEvent* events, std::size_t count) {
  REPL_CHECK_MSG(!finished_, "ingest after finish()");
  REPL_CHECK_MSG(!failed_, "engine unusable after a prior failure");
  if (count == 0) return;
  const auto started = std::chrono::steady_clock::now();

  // Validate the whole batch before touching any engine state, so a
  // rejected batch leaves the engine clean and the caller may retry
  // with corrected input. Everything checkable without per-object state
  // is checked here; only per-object time strictness remains for
  // OnlineSimulation::step (a violation there poisons the engine).
  double prev = any_event_ ? last_batch_time_
                           : -std::numeric_limits<double>::infinity();
  std::uint64_t hash = log_hash_;
  for (std::size_t i = 0; i < count; ++i) {
    REPL_REQUIRE_MSG(events[i].time > 0.0,
                     "event times must be strictly positive: "
                         << events[i].time);
    REPL_REQUIRE_MSG(events[i].time >= prev,
                     "event stream out of order: " << events[i].time
                                                   << " after " << prev);
    REPL_REQUIRE_MSG(
        events[i].server < static_cast<std::uint32_t>(config_.num_servers),
        "event server " << events[i].server << " out of range [0, "
                        << config_.num_servers << ")");
    prev = events[i].time;
    hash = event_stream_hash(hash, events[i]);
  }

  // Route to shard inboxes in stream order.
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < count; ++i) {
    const LogEvent& event = events[i];
    Shard& shard = shard_for(event.object);
    if (shard.inbox.empty()) {
      active.push_back(shard_index(event.object, options_.num_shards));
    }
    shard.inbox.push_back(event);
  }
  last_batch_time_ = prev;
  any_event_ = true;
  log_hash_ = hash;  // committed only once the whole batch validated
  const auto routed = std::chrono::steady_clock::now();

  run_shard_tasks(active, [&](Shard& shard) {
    for (const LogEvent& event : shard.inbox) {
      std::unique_ptr<ObjectState>& slot = shard.objects[event.object];
      if (!slot) slot = make_object_state(event.object);
      slot->simulation.step(static_cast<int>(event.server), event.time);
      if (slot->lower_bound) {
        slot->lower_bound->step(static_cast<int>(event.server), event.time);
      }
      ++slot->events;
    }
    shard.inbox.clear();
  });

  ++stats_.batches;
  stats_.events_ingested += count;
  const auto ended = std::chrono::steady_clock::now();
  const double route_s = std::chrono::duration<double>(routed - started).count();
  const double execute_s = std::chrono::duration<double>(ended - routed).count();
  stats_.route_seconds += route_s;
  stats_.execute_seconds += execute_s;
  stats_.ingest_seconds += route_s + execute_s;
  if (telemetry_) {
    telemetry_->events_ingested.inc(count);
    telemetry_->batches.inc();
    telemetry_->batch_seconds.observe(route_s + execute_s);
    telemetry_->route.observe(route_s);
    telemetry_->execute.observe(execute_s);
  }
}

EngineMetrics StreamingEngine::finish(std::vector<EngineObjectFinal>* finals) {
  REPL_CHECK_MSG(!finished_, "finish() called twice");
  REPL_CHECK_MSG(!failed_, "engine unusable after a prior failure");
  finished_ = true;
  const auto started = std::chrono::steady_clock::now();

  std::vector<std::size_t> all_shards(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) all_shards[i] = i;

  run_shard_tasks(all_shards, [](Shard& shard) {
    shard.finals.reserve(shard.objects.size());
    for (auto& [id, state] : shard.objects) {
      const SimulationResult result = state->simulation.finish();
      EngineObjectFinal final;
      final.id = id;
      final.events = state->events;
      final.num_local = result.num_local;
      final.num_transfers = result.num_transfers;
      final.online_cost = result.total_cost();
      final.lower_bound =
          state->lower_bound ? state->lower_bound->value() : 0.0;
      shard.finals.push_back(final);
      state.reset();  // release simulation state as we go
    }
    shard.objects.clear();
    std::sort(shard.finals.begin(), shard.finals.end(),
              [](const EngineObjectFinal& a, const EngineObjectFinal& b) {
                return a.id < b.id;
              });
    // Shard-local reduction in ascending object id.
    for (const EngineObjectFinal& final : shard.finals) {
      ++shard.metrics.objects;
      shard.metrics.events += final.events;
      shard.metrics.num_local += final.num_local;
      shard.metrics.num_transfers += final.num_transfers;
      shard.metrics.online_cost += final.online_cost;
      shard.metrics.lower_bound += final.lower_bound;
    }
  });

  // Global reduction: id-sorted across every shard, on the calling
  // thread — the exact order of a serial per-object sweep, which is what
  // makes the totals bit-identical for any shard/thread configuration.
  std::vector<EngineObjectFinal> all;
  std::size_t total_objects = 0;
  for (const auto& shard : shards_) total_objects += shard->finals.size();
  all.reserve(total_objects);
  for (auto& shard : shards_) {
    all.insert(all.end(), shard->finals.begin(), shard->finals.end());
    shard->finals.clear();
    shard->finals.shrink_to_fit();
  }
  std::sort(all.begin(), all.end(),
            [](const EngineObjectFinal& a, const EngineObjectFinal& b) {
              return a.id < b.id;
            });

  EngineMetrics metrics = reduce_object_finals(all);
  metrics.shards.reserve(shards_.size());
  for (const auto& shard : shards_) metrics.shards.push_back(shard->metrics);

  stats_.finish_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  if (telemetry_) {
    telemetry_->reduce.observe(stats_.finish_seconds);
    telemetry_->objects_active.set(0.0);  // table released above
  }
  if (finals != nullptr) *finals = std::move(all);
  return metrics;
}

EngineMetrics StreamingEngine::serve(EventSource& source,
                                     const ServeOptions& options) {
  // Invariant geometry, validated and hoisted once — nothing in the
  // drain loop below re-validates it.
  const std::uint64_t checkpoint_every = options.checkpoint_every;
  REPL_REQUIRE(options.batch_events >= 1);
  REPL_REQUIRE_MSG(checkpoint_every == 0 || !options.checkpoint_path.empty(),
                   "checkpoint_every requires a checkpoint_path");

  // Bind to (and cross-check) the stream's identity, and position the
  // source past a restored engine's consumed prefix (for file replay,
  // a hash-verified seek over the snapshot's rolling event hash).
  source.attach(*this);

  // Session capture: every ingested batch is re-encoded into the fixture
  // in ingest order, so the capture works identically for file replay
  // and live socket traffic.
  std::unique_ptr<SessionCapture> capture;
  std::uint64_t capture_begin_byte = 0;
  if (options.capture) {
    capture = std::make_unique<SessionCapture>(*options.capture, config_,
                                               options_, resume_events_);
    capture_begin_byte = source.bytes_consumed();
  }

  std::uint64_t next_checkpoint =
      checkpoint_every == 0
          ? 0
          : (stats_.events_ingested / checkpoint_every + 1) * checkpoint_every;

  // Periodic stats reporting. The batch-latency percentiles come from
  // the registry histogram when telemetry is on; otherwise a serve-local
  // histogram (same buckets, never registered) fills in, so
  // --stats-every works standalone.
  const bool report = options.stats_every > 0.0;
  std::optional<obs::Histogram> local_batch_hist;
  if (report && !telemetry_) {
    local_batch_hist.emplace(obs::Histogram::default_latency_bounds());
  }
  const auto serve_start = std::chrono::steady_clock::now();
  auto last_report = serve_start;
  std::uint64_t last_events = stats_.events_ingested;
  const auto emit_stats = [&](std::chrono::steady_clock::time_point now) {
    const double t =
        std::chrono::duration<double>(now - serve_start).count();
    const double interval =
        std::chrono::duration<double>(now - last_report).count();
    const double rate =
        interval > 0.0
            ? static_cast<double>(stats_.events_ingested - last_events) /
                  interval
            : 0.0;
    obs::Histogram& hist =
        telemetry_ ? telemetry_->batch_seconds : *local_batch_hist;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "[serve] t=%.1fs events=%llu rate=%.0f/s batches=%zu "
                  "p50_batch=%.1fms p99_batch=%.1fms ckpt=%zu",
                  t,
                  static_cast<unsigned long long>(stats_.events_ingested),
                  rate, stats_.batches, hist.quantile(0.5) * 1e3,
                  hist.quantile(0.99) * 1e3, stats_.checkpoints_written);
    std::string text(line);
    if (options.stats_extra) {
      text.push_back(' ');
      text += options.stats_extra();
    }
    if (options.stats_sink) {
      options.stats_sink(text);
    } else {
      REPL_LOG_INFO("engine", text);
    }
    last_report = now;
    last_events = stats_.events_ingested;
  };

  // Per-batch tracing: the wait span covers blocking on the source (its
  // parent — the context the batch rode in with — is only known after
  // next_batch returns, hence set_parent), the ingest span covers
  // route + execute. With the process Tracer disabled every span call
  // is a no-op and trace_parent is never invoked.
  std::vector<LogEvent> batch;
  for (;;) {
    const bool tracing = obs::Tracer::global().enabled();
    bool more;
    obs::TraceContext batch_parent;
    {
      obs::Span wait_span("serve.wait");
      obs::StageTimer wait(&stats_.source_wait_seconds,
                           telemetry_ ? &telemetry_->source_wait : nullptr);
      more = source.next_batch(batch);
      if (tracing && options.trace_parent) {
        batch_parent = options.trace_parent();
        wait_span.set_parent(batch_parent);
      }
      wait_span.set_arg("events", batch.size());
    }
    if (!more) break;
    const auto batch_start = std::chrono::steady_clock::now();
    {
      obs::Span ingest_span("engine.ingest", batch_parent);
      ingest_span.set_arg("events", batch.size());
      ingest(batch);
    }
    if (capture) capture->record(batch);
    if (options.on_batch) options.on_batch(stats_);
    if (local_batch_hist) {
      local_batch_hist->observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        batch_start)
              .count());
    }
    if (telemetry_) {
      telemetry_->objects_active.set(static_cast<double>(object_count()));
      telemetry_->source_bytes.set(
          static_cast<double>(source.bytes_consumed()));
    }
    if (checkpoint_every > 0 && stats_.events_ingested >= next_checkpoint) {
      // Atomic replace: seal the snapshot under a temporary name first,
      // so a crash mid-write never clobbers the previous good one.
      const auto started = std::chrono::steady_clock::now();
      obs::Span ckpt_span("engine.checkpoint", batch_parent);
      ckpt_span.set_arg("events", stats_.events_ingested);
      const std::string tmp = options.checkpoint_path + ".tmp";
      checkpoint(tmp);
      std::filesystem::rename(tmp, options.checkpoint_path);
      // Make the replacement itself durable (the snapshot's bytes were
      // synced before the rename, inside SnapshotWriter::close()).
      sync_path_best_effort(
          std::filesystem::path(options.checkpoint_path)
              .parent_path()
              .string());
      ++stats_.checkpoints_written;
      const double checkpoint_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count();
      stats_.checkpoint_seconds += checkpoint_s;
      if (telemetry_) telemetry_->checkpoint_write.observe(checkpoint_s);
      if (capture) capture->record_cut(stats_.events_ingested);
      if (options.on_checkpoint) options.on_checkpoint();
      // Flush spans at every checkpoint, so a SIGKILLed process leaves a
      // trace prefix at least as fresh as its last durable snapshot.
      ckpt_span.end();
      if (obs::Tracer::global().enabled()) obs::Tracer::global().flush();
      while (next_checkpoint <= stats_.events_ingested) {
        next_checkpoint += checkpoint_every;
      }
    }
    if (report) {
      const auto now = std::chrono::steady_clock::now();
      if (std::chrono::duration<double>(now - last_report).count() >=
          options.stats_every) {
        emit_stats(now);
      }
    }
  }
  if (report && stats_.events_ingested != last_events) {
    emit_stats(std::chrono::steady_clock::now());
  }
  EngineMetrics metrics = finish(options.collect_finals);
  if (capture) {
    capture->set_byte_range(capture_begin_byte, source.bytes_consumed());
    capture->finish(metrics);
  }
  return metrics;
}

EngineMetrics StreamingEngine::serve(EventLogReader& reader,
                                     const ServeOptions& options) {
  // Double-buffered ingestion (async_ingest): the prefetcher's reader
  // thread decodes the next batch while the shards execute this one. It
  // delivers the exact batches the synchronous loop would, so aggregates
  // are unchanged bit for bit.
  LogReplaySource source(reader, options.batch_events, options.async_ingest);
  return serve(source, options);
}

void StreamingEngine::bind_log(const EventLogHeader& header) {
  REPL_REQUIRE_MSG(static_cast<int>(header.num_servers) ==
                       config_.num_servers,
                   "log has " << header.num_servers
                              << " servers, config expects "
                              << config_.num_servers);
  if (log_bound_) {
    // Cross-check against the previously bound (possibly
    // snapshot-recorded) identity; "unknown" on either side matches
    // anything and is refined below.
    REPL_REQUIRE_MSG(
        log_num_objects_ == 0 || header.num_objects == 0 ||
            log_num_objects_ == header.num_objects,
        "engine is bound to a log with " << log_num_objects_
                                         << " objects, this log has "
                                         << header.num_objects
                                         << " (wrong log?)");
    REPL_REQUIRE_MSG(
        log_num_events_ == EventLogHeader::kUnknownCount ||
            header.num_events == EventLogHeader::kUnknownCount ||
            log_num_events_ == header.num_events,
        "engine is bound to a log with " << log_num_events_
                                         << " events, this log has "
                                         << header.num_events
                                         << " (wrong log?)");
    if (log_num_objects_ == 0) log_num_objects_ = header.num_objects;
    if (log_num_events_ == EventLogHeader::kUnknownCount) {
      log_num_events_ = header.num_events;
    }
    return;
  }
  log_bound_ = true;
  log_num_objects_ = header.num_objects;
  log_num_events_ = header.num_events;
}

void StreamingEngine::seek_to_resume(EventLogReader& reader) {
  REPL_REQUIRE_MSG(reader.events_read() <= resume_events_,
                   "reader is already past the checkpoint's position ("
                       << reader.events_read() << " > " << resume_events_
                       << " events)");
  const std::uint64_t remaining = resume_events_ - reader.events_read();
  if (remaining == 0) return;
  if (resume_hash_valid_ && reader.events_read() == 0) {
    // Verified seek: hash the whole skipped prefix and require it to
    // match the snapshot's. Sequential decode at memory bandwidth —
    // cheap relative to serving, and it turns "resumed against the
    // wrong log" from silent garbage into a diagnostic.
    const std::uint64_t hash =
        reader.hash_events(remaining, kEventStreamHashSeed);
    REPL_REQUIRE_MSG(hash == resume_hash_,
                     "this log does not match the snapshot: the first "
                         << remaining
                         << " events hash differently from the prefix the "
                            "checkpointed engine ingested (wrong log?)");
  } else {
    reader.skip_events(remaining);
  }
}

void StreamingEngine::checkpoint(const std::string& path) {
  REPL_CHECK_MSG(!finished_, "checkpoint after finish()");
  REPL_CHECK_MSG(!failed_, "engine unusable after a prior failure");

  // Serialize shard-parallel: each task snapshots its own objects into
  // id-sorted (id, payload) pairs.
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i]->objects.empty()) active.push_back(i);
  }
  run_shard_tasks(active, [](Shard& shard) {
    shard.snapshots.clear();
    shard.snapshots.reserve(shard.objects.size());
    for (const auto& [id, state] : shard.objects) {
      StateWriter writer;
      state->save_state(writer);
      shard.snapshots.emplace_back(id, writer.release());
    }
    std::sort(shard.snapshots.begin(), shard.snapshots.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  });

  // Merge to canonical order: shards partition the id space, so a global
  // id sort over the shard-sorted runs yields the snapshot's record
  // order regardless of shard layout.
  std::vector<const std::pair<std::uint64_t, std::vector<unsigned char>>*>
      records;
  records.reserve(object_count());
  for (const std::size_t i : active) {
    for (const auto& entry : shards_[i]->snapshots) records.push_back(&entry);
  }
  std::sort(records.begin(), records.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  SnapshotHeader header;
  header.num_servers = static_cast<std::uint32_t>(config_.num_servers);
  header.num_objects = records.size();
  header.events_ingested = stats_.events_ingested;
  header.batches = stats_.batches;
  header.base_seed = options_.base_seed;
  header.last_batch_time = last_batch_time_;
  header.flags = (any_event_ ? SnapshotHeader::kFlagAnyEvent : 0u) |
                 (options_.compute_lower_bound ? SnapshotHeader::kFlagLowerBound
                                               : 0u) |
                 (log_bound_ ? SnapshotHeader::kFlagLogBound : 0u) |
                 (log_hash_valid_ ? SnapshotHeader::kFlagLogHash : 0u);
  header.log_hash = log_hash_;
  header.log_num_objects = log_bound_ ? log_num_objects_ : 0;
  header.log_num_events = log_bound_ ? log_num_events_
                                     : SnapshotHeader::kUnknownLogEvents;
  header.policy_spec = options_.policy_spec;
  header.predictor_spec = options_.predictor_spec;
  header.codec = options_.compress_checkpoints ? SnapshotHeader::kCodecWord
                                               : SnapshotHeader::kCodecRaw;
  SnapshotWriter writer(path, header);
  for (const auto* record : records) {
    writer.add_object(record->first, record->second);
  }
  writer.close();
  stats_.checkpoint_bytes += writer.bytes_written();
  if (telemetry_) {
    telemetry_->checkpoint_writes.inc();
    telemetry_->checkpoint_bytes.inc(writer.bytes_written());
  }
  for (const std::size_t i : active) {
    shards_[i]->snapshots.clear();
    shards_[i]->snapshots.shrink_to_fit();
  }
}

std::unique_ptr<StreamingEngine> StreamingEngine::restore(
    const std::string& path, SystemConfig config, EngineOptions options,
    EnginePolicyFactory make_policy, EnginePredictorFactory make_predictor) {
  SnapshotReader reader(path);
  const SnapshotHeader& header = reader.header();
  REPL_REQUIRE_MSG(header.num_servers ==
                       static_cast<std::uint32_t>(config.num_servers),
                   "snapshot has " << header.num_servers
                                   << " servers, config expects "
                                   << config.num_servers);
  const bool snapshot_lower_bound =
      (header.flags & SnapshotHeader::kFlagLowerBound) != 0;
  REPL_REQUIRE_MSG(snapshot_lower_bound == options.compute_lower_bound,
                   "snapshot and options disagree on compute_lower_bound");
  REPL_REQUIRE_MSG(header.base_seed == options.base_seed,
                   "snapshot base_seed " << header.base_seed
                                         << " != options.base_seed "
                                         << options.base_seed
                                         << " (object seed streams would "
                                            "fork)");
  // Spec-level self-validation: when both the snapshot and the caller
  // name their components, they must agree — a mismatched restore would
  // decode one policy's state into another's fields (or fail later with
  // a byte-level diagnostic that names no component). A side with no
  // spec (raw factory lambdas) is trusted unchecked, as before v2.
  REPL_REQUIRE_MSG(options.policy_spec.empty() ||
                       header.policy_spec.empty() ||
                       options.policy_spec == header.policy_spec,
                   "snapshot was written with policy '"
                       << header.policy_spec << "' but restore requested '"
                       << options.policy_spec << "'");
  REPL_REQUIRE_MSG(options.predictor_spec.empty() ||
                       header.predictor_spec.empty() ||
                       options.predictor_spec == header.predictor_spec,
                   "snapshot was written with predictor '"
                       << header.predictor_spec
                       << "' but restore requested '"
                       << options.predictor_spec << "'");
  // Preserve the snapshot's specs across spec-less restores, so a later
  // checkpoint of this engine still names its components.
  if (options.policy_spec.empty()) options.policy_spec = header.policy_spec;
  if (options.predictor_spec.empty()) {
    options.predictor_spec = header.predictor_spec;
  }

  const auto restore_start = std::chrono::steady_clock::now();
  auto engine = std::make_unique<StreamingEngine>(
      std::move(config), options, std::move(make_policy),
      std::move(make_predictor));
  engine->any_event_ = (header.flags & SnapshotHeader::kFlagAnyEvent) != 0;
  engine->last_batch_time_ = header.last_batch_time;
  engine->stats_.events_ingested = header.events_ingested;
  engine->stats_.batches = header.batches;
  engine->resume_events_ = header.events_ingested;
  engine->log_hash_ = header.log_hash;
  engine->log_hash_valid_ =
      (header.flags & SnapshotHeader::kFlagLogHash) != 0;
  engine->resume_hash_ = header.log_hash;
  engine->resume_hash_valid_ = engine->log_hash_valid_;
  if ((header.flags & SnapshotHeader::kFlagLogBound) != 0) {
    engine->log_bound_ = true;
    engine->log_num_objects_ = header.log_num_objects;
    engine->log_num_events_ = header.log_num_events;
  }

  // Rebuild the object table in bounded-memory chunks: route records to
  // shard inboxes, then decode shard-parallel (object construction runs
  // the factories + a fresh simulation reset before load_state overwrites
  // the evolved fields — the expensive part, worth the fan-out).
  constexpr std::size_t kChunkObjects = std::size_t{1} << 16;
  bool more = true;
  while (more) {
    std::vector<std::size_t> active;
    std::size_t routed = 0;
    std::uint64_t id = 0;
    std::vector<unsigned char> payload;
    while (routed < kChunkObjects && (more = reader.next_object(id, payload))) {
      Shard& shard = engine->shard_for(id);
      if (shard.restore_inbox.empty()) {
        active.push_back(shard_index(id, engine->options_.num_shards));
      }
      shard.restore_inbox.emplace_back(id, std::move(payload));
      ++routed;
    }
    if (routed == 0) break;
    engine->run_shard_tasks(active, [&engine](Shard& shard) {
      for (auto& [object_id, bytes] : shard.restore_inbox) {
        auto state = engine->make_object_state(object_id);
        StateReader in(bytes.data(), bytes.size(),
                       "object " + std::to_string(object_id));
        state->load_state(in);
        shard.objects.emplace(object_id, std::move(state));
      }
      shard.restore_inbox.clear();
    });
  }
  REPL_CHECK(engine->object_count() ==
             static_cast<std::size_t>(header.num_objects));
  if (engine->telemetry_) {
    engine->telemetry_->checkpoint_restore.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      restore_start)
            .count());
    engine->telemetry_->objects_active.set(
        static_cast<double>(engine->object_count()));
    // Like the net admitted counter, the ingested counter speaks
    // logical-stream positions: a restore at N seeds it to N, so sums
    // federated across a respawn match an uninterrupted process.
    engine->telemetry_->events_ingested.inc(header.events_ingested);
    engine->telemetry_->batches.inc(header.batches);
  }
  return engine;
}

std::size_t StreamingEngine::object_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->objects.size();
  return total;
}

EngineMetrics serve_event_log(const std::string& log_path,
                              const SystemConfig& config,
                              const EngineOptions& options,
                              const EnginePolicyFactory& make_policy,
                              const EnginePredictorFactory& make_predictor,
                              EngineStats* stats) {
  EventLogReader reader(log_path);
  StreamingEngine engine(config, options, make_policy, make_predictor);
  EngineMetrics metrics = engine.serve(reader);
  if (stats != nullptr) *stats = engine.stats();
  return metrics;
}

}  // namespace repl
