// EngineBuilder / ExperimentSpec facade tests: spec-built engines match
// direct-factory engines bit for bit, snapshots record canonical specs
// and the event-log binding, restores cross-check or self-construct
// from them, and the spec-driven multi-object runner matches the
// factory-driven one.
#include <cstdint>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "checkpoint/snapshot.hpp"
#include "core/drwp.hpp"
#include "engine/engine.hpp"
#include "extensions/multi_object.hpp"
#include "predictor/last_gap.hpp"
#include "trace/event_log.hpp"
#include "util/rng.hpp"

namespace repl {
namespace {

constexpr int kServers = 6;
constexpr double kLambda = 12.0;

SystemConfig test_config() {
  SystemConfig config;
  config.num_servers = kServers;
  config.transfer_cost = kLambda;
  return config;
}

std::vector<LogEvent> interleaved_events(std::size_t count,
                                         std::size_t num_objects,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<LogEvent> events;
  double t = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    t += rng.uniform(0.01, 2.0);
    events.push_back(LogEvent{t, rng.uniform_index(num_objects),
                              static_cast<std::uint32_t>(
                                  rng.uniform_index(kServers))});
  }
  return events;
}

/// Writes `events` to a fresh event log at `path`.
void write_log(const std::string& path, const std::vector<LogEvent>& events) {
  EventLogWriter writer(path, kServers);
  for (const LogEvent& e : events) writer.write(e);
  writer.close();
}

class ApiEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("repl_api_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string temp_path(const std::string& name) {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

EngineBuilder default_builder() {
  EngineOptions options;
  options.num_shards = 8;
  options.num_threads = 1;
  EngineBuilder builder;
  builder.config(test_config()).options(options);
  return builder;
}

TEST_F(ApiEngineTest, SpecBuiltEngineMatchesDirectFactoriesBitForBit) {
  const std::vector<LogEvent> events = interleaved_events(3000, 40, 11);

  EngineOptions options;
  options.num_shards = 8;
  options.num_threads = 1;
  StreamingEngine direct(
      test_config(), options,
      [](const EngineObjectContext&) -> PolicyPtr {
        return std::make_unique<DrwpPolicy>(0.3);
      },
      [](const EngineObjectContext&) -> PredictorPtr {
        return std::make_unique<LastGapPredictor>(kServers);
      });
  direct.ingest(events);
  const EngineMetrics reference = direct.finish();

  EngineBuilder builder = default_builder();
  builder.policy("drwp(alpha=0.3)").predictor("last_gap");
  auto engine = builder.build();
  engine->ingest(events);
  const EngineMetrics metrics = engine->finish();

  EXPECT_EQ(metrics.online_cost, reference.online_cost);
  EXPECT_EQ(metrics.lower_bound, reference.lower_bound);
  EXPECT_EQ(metrics.num_transfers, reference.num_transfers);
  EXPECT_EQ(metrics.objects, reference.objects);
}

TEST_F(ApiEngineTest, BuilderRejectsClairvoyantSpecsUpFront) {
  EngineBuilder builder = default_builder();
  EXPECT_THROW(builder.predictor("oracle"), SpecError);
  EXPECT_THROW(builder.predictor("ensemble(last_gap,oracle)"), SpecError);
  EXPECT_THROW(builder.policy("offline_plan"), SpecError);
  EXPECT_THROW(builder.policy("drpw"), SpecError);  // typo diagnostics too
}

TEST_F(ApiEngineTest, CheckpointRecordsCanonicalSpecsAndLogBinding) {
  const std::string log = temp_path("bind.evlog");
  write_log(log, interleaved_events(2000, 30, 23));
  const std::string ckpt = temp_path("bind.ckpt");

  EngineBuilder builder = default_builder();
  builder.policy("adaptive(alpha=1.5)")
      .predictor("ensemble(last_gap,history(ewma=0.3))");
  auto engine = builder.build();
  EventLogReader reader(log);
  engine->bind_log(reader.header());
  std::vector<LogEvent> batch;
  while (engine->stats().events_ingested < 1000 &&
         reader.read_batch(batch, 256) > 0) {
    engine->ingest(batch);
  }
  engine->checkpoint(ckpt);

  const SnapshotHeader header = read_snapshot_header(ckpt);
  EXPECT_EQ(header.version, SnapshotHeader::kVersion);
  EXPECT_EQ(header.policy_spec, "adaptive(alpha=1.5,beta=0.1,warmup=100)");
  EXPECT_EQ(header.predictor_spec,
            "ensemble(last_gap(within=false),"
            "history(ewma=0.3,margin=1,within=false),penalty=0.5)");
  EXPECT_NE(header.flags & SnapshotHeader::kFlagLogBound, 0u);
  EXPECT_NE(header.flags & SnapshotHeader::kFlagLogHash, 0u);
  EXPECT_EQ(header.log_num_objects, EventLogReader(log).header().num_objects);
  EXPECT_EQ(header.log_num_events, 2000u);
}

TEST_F(ApiEngineTest, MismatchedSpecsFailRestoreWithANamingDiagnostic) {
  const std::string log = temp_path("mismatch.evlog");
  write_log(log, interleaved_events(1500, 20, 31));
  const std::string ckpt = temp_path("mismatch.ckpt");

  {
    EngineBuilder builder = default_builder();
    builder.policy("adaptive(alpha=1.5)").predictor("last_gap");
    auto engine = builder.build();
    EventLogReader reader(log);
    std::vector<LogEvent> batch;
    reader.read_batch(batch, 700);
    engine->ingest(batch);
    engine->checkpoint(ckpt);
  }

  // Builder-level: the diagnostic names both canonical specs.
  EngineBuilder wrong = default_builder();
  wrong.policy("drwp(alpha=0.3)");
  try {
    wrong.restore(ckpt);
    FAIL() << "mismatched policy spec restored";
  } catch (const SpecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("adaptive(alpha=1.5,beta=0.1,warmup=100)"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("drwp(alpha=0.3)"), std::string::npos) << what;
  }
  // Mismatched predictor too.
  EngineBuilder wrong_pred = default_builder();
  wrong_pred.predictor("history(ewma=0.5)");
  EXPECT_THROW(wrong_pred.restore(ckpt), SpecError);

  // Engine-level (raw restore with spec-carrying options) cross-checks
  // as well.
  EngineOptions options;
  options.num_shards = 8;
  options.num_threads = 1;
  options.policy_spec = "drwp(alpha=0.3)";
  EXPECT_THROW(StreamingEngine::restore(
                   ckpt, test_config(), options,
                   [](const EngineObjectContext&) -> PolicyPtr {
                     return std::make_unique<DrwpPolicy>(0.3);
                   },
                   [](const EngineObjectContext&) -> PredictorPtr {
                     return std::make_unique<LastGapPredictor>(kServers);
                   }),
               std::invalid_argument);
}

TEST_F(ApiEngineTest, SpeclessRestoreSelfConstructsAndMatchesBitForBit) {
  const std::string log = temp_path("selfc.evlog");
  const std::vector<LogEvent> events = interleaved_events(4000, 50, 43);
  write_log(log, events);
  const std::string ckpt = temp_path("selfc.ckpt");

  // Uninterrupted reference under the same specs.
  EngineBuilder builder = default_builder();
  builder.policy("adaptive(alpha=0.4,beta=0.2,warmup=10)")
      .predictor("ensemble(last_gap,history(ewma=0.25))");
  EngineMetrics reference;
  {
    EventLogReader reader(log);
    auto engine = builder.build();
    reference = engine->serve(reader);
  }

  // Crash mid-serve: checkpoint at ~half.
  {
    EventLogReader reader(log);
    auto engine = builder.build();
    engine->bind_log(reader.header());
    std::vector<LogEvent> batch;
    while (engine->stats().events_ingested < events.size() / 2 &&
           reader.read_batch(batch, 512) > 0) {
      engine->ingest(batch);
    }
    engine->checkpoint(ckpt);
  }

  // Spec-less builder: factories reconstructed from the snapshot alone,
  // different shard/thread geometry, aggregates bit-identical.
  EngineOptions geometry;
  geometry.num_shards = 3;
  geometry.num_threads = 2;
  EngineBuilder specless;
  specless.config(test_config()).options(geometry);
  auto resumed = specless.restore(ckpt);
  EXPECT_EQ(resumed->options().policy_spec,
            "adaptive(alpha=0.4,beta=0.2,warmup=10)");
  EventLogReader reader(log);
  const EngineMetrics metrics = resumed->serve(reader);
  EXPECT_EQ(metrics.online_cost, reference.online_cost);
  EXPECT_EQ(metrics.lower_bound, reference.lower_bound);
  EXPECT_EQ(metrics.num_transfers, reference.num_transfers);
  EXPECT_EQ(metrics.events, reference.events);
  EXPECT_EQ(metrics.objects, reference.objects);

  // A spec-less restore of a spec-less snapshot is refused: there is
  // nothing to self-construct from.
  const std::string bare_ckpt = temp_path("bare.ckpt");
  {
    EngineOptions options;
    options.num_shards = 4;
    options.num_threads = 1;
    StreamingEngine bare(
        test_config(), options,
        [](const EngineObjectContext&) -> PolicyPtr {
          return std::make_unique<DrwpPolicy>(0.3);
        },
        [](const EngineObjectContext&) -> PredictorPtr {
          return std::make_unique<LastGapPredictor>(kServers);
        });
    bare.ingest(events.data(), 100);
    bare.checkpoint(bare_ckpt);
  }
  EngineBuilder no_specs;
  no_specs.config(test_config());
  EXPECT_THROW(no_specs.restore(bare_ckpt), SpecError);
}

TEST_F(ApiEngineTest, ResumingAgainstTheWrongLogFailsTheBindingChecks) {
  const std::string log = temp_path("right.evlog");
  const std::vector<LogEvent> events = interleaved_events(2000, 25, 5);
  write_log(log, events);
  const std::string ckpt = temp_path("right.ckpt");

  EngineBuilder builder = default_builder();
  builder.policy("drwp(alpha=0.3)").predictor("last_gap");
  {
    EventLogReader reader(log);
    auto engine = builder.build();
    engine->bind_log(reader.header());
    std::vector<LogEvent> batch;
    while (engine->stats().events_ingested < 1000 &&
           reader.read_batch(batch, 256) > 0) {
      engine->ingest(batch);
    }
    engine->checkpoint(ckpt);
  }

  // Same shape, different content: caught by the rolling-hash check.
  {
    std::vector<LogEvent> other = events;
    other[100].server = (other[100].server + 1) % kServers;
    const std::string wrong = temp_path("wrong.evlog");
    write_log(wrong, other);
    auto resumed = builder.restore(ckpt);
    EventLogReader reader(wrong);
    try {
      resumed->serve(reader);
      FAIL() << "resume against a content-mismatched log succeeded";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("hash"), std::string::npos)
          << e.what();
    }
  }
  // Different shape: caught by the header binding before any read.
  {
    const std::string shorter = temp_path("short.evlog");
    write_log(shorter, interleaved_events(1200, 25, 5));
    auto resumed = builder.restore(ckpt);
    EventLogReader reader(shorter);
    EXPECT_THROW(resumed->serve(reader), std::invalid_argument);
  }
  // The right log still resumes fine (and bit-identically).
  {
    auto resumed = builder.restore(ckpt);
    EventLogReader reader(log);
    const EngineMetrics metrics = resumed->serve(reader);
    EngineBuilder fresh = default_builder();
    fresh.policy("drwp(alpha=0.3)").predictor("last_gap");
    auto reference_engine = fresh.build();
    EventLogReader again(log);
    const EngineMetrics reference = reference_engine->serve(again);
    EXPECT_EQ(metrics.online_cost, reference.online_cost);
  }
}

TEST(ApiExperimentTest, RunExperimentMatchesManualSimulation) {
  std::vector<Request> requests;
  Rng rng(0x11);
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    t += rng.uniform(0.1, 3.0 * kLambda);
    requests.push_back(Request{t, static_cast<int>(rng.uniform_index(
                                      kServers))});
  }
  const Trace trace(kServers, std::move(requests));
  const SystemConfig config = test_config();

  ExperimentSpec experiment;
  experiment.policy = "drwp(alpha=0.3)";
  experiment.predictor = "last_gap";
  const SimulationResult via_spec = run_experiment(experiment, config, trace);

  DrwpPolicy policy(0.3);
  LastGapPredictor predictor(kServers);
  const Simulator simulator(config, SimulationOptions{});
  const SimulationResult manual = simulator.run(policy, trace, predictor);

  EXPECT_EQ(via_spec.total_cost(), manual.total_cost());
  EXPECT_EQ(via_spec.num_transfers, manual.num_transfers);

  // Clairvoyant components are fine here — the trace is supplied.
  experiment.predictor = "oracle";
  experiment.policy = "offline_plan";
  const SimulationResult plan = run_experiment(experiment, config, trace);
  EXPECT_GT(plan.total_cost(), 0.0);
}

TEST(ApiMultiObjectTest, SpecRunnerMatchesFactoryRunnerAndIsDeterministic) {
  MultiObjectConfig workload_config;
  workload_config.num_objects = 30;
  workload_config.num_servers = kServers;
  workload_config.request_rate = 0.05;
  workload_config.horizon = 20000.0;
  const MultiObjectWorkload workload =
      generate_multi_object_workload(workload_config, 0x99);
  const SystemConfig config = test_config();

  const MultiObjectResult via_factories = run_multi_object(
      workload, config,
      [] { return std::make_unique<DrwpPolicy>(0.3); },
      [](const Trace&) {
        return std::make_unique<LastGapPredictor>(kServers);
      });
  const MultiObjectResult via_spec = run_multi_object_spec(
      workload, config, "drwp(alpha=0.3)", "last_gap", /*num_threads=*/2);
  EXPECT_EQ(via_spec.online_cost, via_factories.online_cost);
  EXPECT_EQ(via_spec.opt_cost, via_factories.opt_cost);

  // Randomized policies draw from per-object seed streams: the spec
  // runner is deterministic across runs and thread counts.
  const MultiObjectResult random_a = run_multi_object_spec(
      workload, config, "randomized(alpha=0.5)", "history", 1);
  const MultiObjectResult random_b = run_multi_object_spec(
      workload, config, "randomized(alpha=0.5)", "history", 4);
  EXPECT_EQ(random_a.online_cost, random_b.online_cost);

  // Clairvoyant predictors work offline (per-object traces exist).
  const MultiObjectResult oracle = run_multi_object_spec(
      workload, config, "drwp(alpha=0.3)", "oracle", 2);
  EXPECT_LE(oracle.online_cost, random_a.online_cost * 2.0);

  // Bad specs fail before any simulation.
  EXPECT_THROW(run_multi_object_spec(workload, config, "nope", "last_gap"),
               SpecError);
}

}  // namespace
}  // namespace repl
