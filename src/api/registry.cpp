#include "api/registry.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <memory>
#include <sstream>
#include <utility>

#include "baselines/naive.hpp"
#include "baselines/wang2021.hpp"
#include "core/adaptive_drwp.hpp"
#include "core/drwp.hpp"
#include "extensions/randomized_drwp.hpp"
#include "extensions/weighted_drwp.hpp"
#include "offline/opt_dp.hpp"
#include "offline/planned_policy.hpp"
#include "predictor/ensemble.hpp"
#include "predictor/fixed.hpp"
#include "predictor/history.hpp"
#include "predictor/last_gap.hpp"
#include "predictor/noisy.hpp"
#include "predictor/oracle.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace repl {

namespace {

[[noreturn]] void spec_fail(const std::string& what) { throw SpecError(what); }

std::string param_context(const std::string& component,
                          const std::string& key) {
  return "parameter '" + key + "' of '" + component + "'";
}

const ParamInfo* find_param(const ComponentInfo& info,
                            const std::string& key) {
  for (const ParamInfo& param : info.params) {
    if (param.key == key) return &param;
  }
  return nullptr;
}

const std::string* given_value(const ComponentSpec& spec,
                               const std::string& key) {
  for (const auto& [k, v] : spec.params) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace

const char* component_kind_name(ComponentKind kind) {
  return kind == ComponentKind::kPolicy ? "policy" : "predictor";
}

namespace {

/// Rejects values outside the parameter's declared range. Written so a
/// NaN never passes (every comparison with it is false).
void check_range(const std::string& component, const ParamInfo& param,
                 double parsed, const std::string& value) {
  const bool above_min = param.min_exclusive ? parsed > param.min_value
                                             : parsed >= param.min_value;
  if (above_min && parsed <= param.max_value) return;
  std::ostringstream os;
  os << param_context(component, param.key) << ": " << value
     << " is out of range (must be " << (param.min_exclusive ? "> " : ">= ")
     << param.min_value;
  if (param.max_value != std::numeric_limits<double>::infinity()) {
    os << " and <= " << param.max_value;
  }
  os << ")";
  spec_fail(os.str());
}

}  // namespace

std::string normalize_param_value(const std::string& component,
                                  const ParamInfo& param,
                                  const std::string& value) {
  switch (param.type) {
    case ParamType::kDouble: {
      double parsed = 0.0;
      const auto [end, ec] =
          std::from_chars(value.data(), value.data() + value.size(), parsed);
      if (ec != std::errc{} || end != value.data() + value.size() ||
          !std::isfinite(parsed)) {
        spec_fail(param_context(component, param.key) + ": \"" + value +
                  "\" is not a finite number");
      }
      check_range(component, param, parsed, value);
      char buffer[64];
      const auto [out, oec] =
          std::to_chars(buffer, buffer + sizeof(buffer), parsed);
      REPL_CHECK(oec == std::errc{});
      return std::string(buffer, out);
    }
    case ParamType::kUint: {
      std::uint64_t parsed = 0;
      const auto [end, ec] =
          std::from_chars(value.data(), value.data() + value.size(), parsed);
      if (ec != std::errc{} || end != value.data() + value.size()) {
        spec_fail(param_context(component, param.key) + ": \"" + value +
                  "\" is not a non-negative integer");
      }
      check_range(component, param, static_cast<double>(parsed), value);
      return std::to_string(parsed);
    }
    case ParamType::kBool: {
      if (value == "true" || value == "1") return "true";
      if (value == "false" || value == "0") return "false";
      spec_fail(param_context(component, param.key) + ": \"" + value +
                "\" is not a boolean (true/false)");
    }
  }
  REPL_CHECK(false);  // unreachable: the switch covers every ParamType
  return value;
}

// ---------------------------------------------------------------------
// SpecParams
// ---------------------------------------------------------------------

const std::string& SpecParams::raw(const std::string& key) const {
  const ParamInfo* param = find_param(*info_, key);
  REPL_CHECK_MSG(param != nullptr, "component '" << info_->name
                                                << "' declares no parameter '"
                                                << key << "'");
  if (const std::string* given = given_value(*spec_, key)) return *given;
  return param->default_value;
}

double SpecParams::get_double(const std::string& key) const {
  const std::string& value = raw(key);
  double parsed = 0.0;
  const auto [end, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  REPL_CHECK(ec == std::errc{} && end == value.data() + value.size());
  return parsed;
}

std::uint64_t SpecParams::get_uint(const std::string& key) const {
  const std::string& value = raw(key);
  std::uint64_t parsed = 0;
  const auto [end, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  REPL_CHECK(ec == std::errc{} && end == value.data() + value.size());
  return parsed;
}

bool SpecParams::get_bool(const std::string& key) const {
  const std::string& value = raw(key);
  return value == "true" || value == "1";
}

// ---------------------------------------------------------------------
// Registry core
// ---------------------------------------------------------------------

const std::map<std::string, ComponentRegistry::Entry>&
ComponentRegistry::table(ComponentKind kind) const {
  return kind == ComponentKind::kPolicy ? policies_ : predictors_;
}

std::map<std::string, ComponentRegistry::Entry>& ComponentRegistry::table(
    ComponentKind kind) {
  return kind == ComponentKind::kPolicy ? policies_ : predictors_;
}

void ComponentRegistry::register_policy(ComponentInfo info,
                                        PolicyBuilder build) {
  info.kind = ComponentKind::kPolicy;
  REPL_REQUIRE_MSG(build != nullptr, "null builder for '" << info.name << "'");
  for (const ParamInfo& param : info.params) {
    // Every parameter needs a default: canonical specs spell out the
    // full effective configuration.
    REPL_REQUIRE_MSG(!param.default_value.empty(),
                     "parameter '" << param.key << "' of '" << info.name
                                   << "' has no default");
  }
  if (info.example.empty()) info.example = info.name;
  const std::string name = info.name;  // keyed before the move below
  auto [it, inserted] = policies_.emplace(
      name, Entry{std::move(info), std::move(build), nullptr});
  REPL_REQUIRE_MSG(inserted,
                   "policy '" << it->first << "' registered twice");
}

void ComponentRegistry::register_predictor(ComponentInfo info,
                                           PredictorBuilder build) {
  info.kind = ComponentKind::kPredictor;
  REPL_REQUIRE_MSG(build != nullptr, "null builder for '" << info.name << "'");
  for (const ParamInfo& param : info.params) {
    REPL_REQUIRE_MSG(!param.default_value.empty(),
                     "parameter '" << param.key << "' of '" << info.name
                                   << "' has no default");
  }
  if (info.example.empty()) info.example = info.name;
  const std::string name = info.name;  // keyed before the move below
  auto [it, inserted] = predictors_.emplace(
      name, Entry{std::move(info), nullptr, std::move(build)});
  REPL_REQUIRE_MSG(inserted,
                   "predictor '" << it->first << "' registered twice");
}

const ComponentInfo* ComponentRegistry::find(ComponentKind kind,
                                             const std::string& name) const {
  const auto& entries = table(kind);
  const auto it = entries.find(name);
  return it == entries.end() ? nullptr : &it->second.info;
}

const ComponentRegistry::Entry& ComponentRegistry::entry(
    ComponentKind kind, const std::string& name) const {
  const auto& entries = table(kind);
  const auto it = entries.find(name);
  if (it == entries.end()) {
    std::ostringstream os;
    os << "unknown " << component_kind_name(kind) << " '" << name
       << "'; registered "
       << (kind == ComponentKind::kPolicy ? "policies" : "predictors")
       << ":";
    bool first = true;
    for (const auto& [key, value] : entries) {
      os << (first ? " " : ", ") << key;
      first = false;
    }
    spec_fail(os.str());
  }
  return it->second;
}

const ComponentInfo& ComponentRegistry::info(ComponentKind kind,
                                             const std::string& name) const {
  return entry(kind, name).info;
}

std::vector<const ComponentInfo*> ComponentRegistry::components(
    ComponentKind kind) const {
  std::vector<const ComponentInfo*> result;
  result.reserve(table(kind).size());
  for (const auto& [name, e] : table(kind)) result.push_back(&e.info);
  return result;  // std::map iteration is already name-sorted
}

void ComponentRegistry::validate(ComponentKind kind,
                                 const ComponentSpec& spec) const {
  const ComponentInfo& info = entry(kind, spec.name).info;
  for (const auto& [key, value] : spec.params) {
    const ParamInfo* param = find_param(info, key);
    if (param == nullptr) {
      std::ostringstream os;
      os << component_kind_name(kind) << " '" << spec.name
         << "' has no parameter '" << key << "'";
      if (info.params.empty()) {
        os << " (it takes none)";
      } else {
        os << "; parameters:";
        bool first = true;
        for (const ParamInfo& p : info.params) {
          os << (first ? " " : ", ") << p.key;
          first = false;
        }
      }
      spec_fail(os.str());
    }
    normalize_param_value(spec.name, *param, value);  // type check
  }
  const std::size_t children = spec.children.size();
  if (children < info.min_children || children > info.max_children) {
    std::ostringstream os;
    os << component_kind_name(kind) << " '" << spec.name << "' ";
    if (info.max_children == 0) {
      os << "takes no nested components";
    } else {
      os << "takes " << info.min_children << ".." << info.max_children
         << " nested components";
    }
    os << ", got " << children;
    spec_fail(os.str());
  }
  for (const ComponentSpec& child : spec.children) validate(kind, child);
}

bool ComponentRegistry::requires_trace(ComponentKind kind,
                                       const ComponentSpec& spec) const {
  const ComponentInfo& info = entry(kind, spec.name).info;
  if (info.requires_trace) return true;
  for (const ComponentSpec& child : spec.children) {
    if (requires_trace(kind, child)) return true;
  }
  return false;
}

ComponentSpec ComponentRegistry::canonicalize(
    ComponentKind kind, const ComponentSpec& spec) const {
  validate(kind, spec);
  const ComponentInfo& info = entry(kind, spec.name).info;
  ComponentSpec canonical;
  canonical.name = spec.name;
  canonical.children.reserve(spec.children.size());
  for (const ComponentSpec& child : spec.children) {
    canonical.children.push_back(canonicalize(kind, child));
  }
  // Every declared parameter, sorted by key, at its effective value.
  std::vector<const ParamInfo*> params;
  params.reserve(info.params.size());
  for (const ParamInfo& param : info.params) params.push_back(&param);
  std::sort(params.begin(), params.end(),
            [](const ParamInfo* a, const ParamInfo* b) {
              return a->key < b->key;
            });
  for (const ParamInfo* param : params) {
    const std::string* given = given_value(spec, param->key);
    canonical.params.emplace_back(
        param->key, normalize_param_value(spec.name, *param,
                                          given ? *given
                                                : param->default_value));
  }
  return canonical;
}

std::string ComponentRegistry::canonical_string(
    ComponentKind kind, const std::string& spec_text) const {
  return print_component_spec(
      canonicalize(kind, parse_component_spec(spec_text)));
}

PolicyPtr ComponentRegistry::build_policy(const ComponentSpec& spec,
                                          const BuildContext& ctx) const {
  validate(ComponentKind::kPolicy, spec);
  if (ctx.trace == nullptr && requires_trace(ComponentKind::kPolicy, spec)) {
    spec_fail("policy '" + print_component_spec(spec) +
              "' is clairvoyant (requires the full trace) and cannot be "
              "constructed without one");
  }
  return entry(ComponentKind::kPolicy, spec.name).build_policy(spec, ctx);
}

PolicyPtr ComponentRegistry::build_policy(const std::string& spec_text,
                                          const BuildContext& ctx) const {
  return build_policy(parse_component_spec(spec_text), ctx);
}

PredictorPtr ComponentRegistry::build_predictor(const ComponentSpec& spec,
                                                const BuildContext& ctx) const {
  validate(ComponentKind::kPredictor, spec);
  if (ctx.trace == nullptr &&
      requires_trace(ComponentKind::kPredictor, spec)) {
    spec_fail("predictor '" + print_component_spec(spec) +
              "' is clairvoyant (requires the full trace) and cannot be "
              "constructed without one");
  }
  return entry(ComponentKind::kPredictor, spec.name)
      .build_predictor(spec, ctx);
}

PredictorPtr ComponentRegistry::build_predictor(const std::string& spec_text,
                                                const BuildContext& ctx) const {
  return build_predictor(parse_component_spec(spec_text), ctx);
}

// ---------------------------------------------------------------------
// Built-in components
// ---------------------------------------------------------------------

namespace {

ComponentInfo make_info(std::string name, std::string summary) {
  ComponentInfo info;
  info.name = std::move(name);
  info.summary = std::move(summary);
  return info;
}

ParamInfo make_param(std::string key, ParamType type,
                     std::string default_value, std::string help) {
  ParamInfo param;
  param.key = std::move(key);
  param.type = type;
  param.default_value = std::move(default_value);
  param.help = std::move(help);
  return param;
}

/// As make_param, with the accepted range (mirroring the component
/// constructor's REQUIREs so bad values fail at the spec boundary).
ParamInfo make_ranged_param(std::string key, ParamType type,
                            std::string default_value, std::string help,
                            double min_value, bool min_exclusive,
                            double max_value) {
  ParamInfo param = make_param(std::move(key), type,
                               std::move(default_value), std::move(help));
  param.min_value = min_value;
  param.min_exclusive = min_exclusive;
  param.max_value = max_value;
  return param;
}

constexpr double kInf = std::numeric_limits<double>::infinity();

ParamInfo alpha_param() {
  return make_ranged_param(
      "alpha", ParamType::kDouble, "0.3",
      "distrust hyper-parameter (guarantees hold for (0, 1])",
      /*min_value=*/0.0, /*min_exclusive=*/true, /*max_value=*/kInf);
}

/// The validated-spec view for a builder: the registry guarantees the
/// spec passed validation against `name`'s schema before the builder
/// runs.
SpecParams params_of(ComponentKind kind, const std::string& name,
                     const ComponentSpec& spec) {
  return SpecParams(spec, ComponentRegistry::instance().info(kind, name));
}

void register_builtin_policies(ComponentRegistry& registry) {
  {
    ComponentInfo info =
        make_info("drwp", "Algorithm 1: DRWP with predictions");
    info.params = {alpha_param()};
    info.example = "drwp(alpha=0.3)";
    registry.register_policy(
        std::move(info),
        [](const ComponentSpec& spec, const BuildContext&) -> PolicyPtr {
          const SpecParams params =
              params_of(ComponentKind::kPolicy, "drwp", spec);
          return std::make_unique<DrwpPolicy>(params.get_double("alpha"));
        });
  }
  registry.register_policy(
      make_info("conventional",
                "prediction-free 2-competitive baseline (alpha = 1)"),
      [](const ComponentSpec&, const BuildContext&) -> PolicyPtr {
        return std::make_unique<ConventionalPolicy>();
      });
  {
    ComponentInfo info = make_info(
        "adaptive", "Section-8 adapted Algorithm 1, robustness 2 + beta");
    info.params = {alpha_param(),
                   make_ranged_param("beta", ParamType::kDouble, "0.1",
                                     "robustness target is 2 + beta",
                                     0.0, false, kInf),
                   make_param("warmup", ParamType::kUint, "100",
                              "requests served before the monitor engages")};
    info.example = "adaptive(alpha=0.3,beta=0.1)";
    registry.register_policy(
        std::move(info),
        [](const ComponentSpec& spec, const BuildContext&) -> PolicyPtr {
          const SpecParams params =
              params_of(ComponentKind::kPolicy, "adaptive", spec);
          AdaptiveDrwpPolicy::Options options;
          options.beta = params.get_double("beta");
          options.warmup_requests =
              static_cast<std::size_t>(params.get_uint("warmup"));
          return std::make_unique<AdaptiveDrwpPolicy>(
              params.get_double("alpha"), options);
        });
  }
  {
    ComponentInfo info = make_info(
        "randomized", "ski-rental-style randomized DRWP durations");
    info.params = {alpha_param()};
    info.example = "randomized(alpha=0.3)";
    registry.register_policy(
        std::move(info),
        [](const ComponentSpec& spec, const BuildContext& ctx) -> PolicyPtr {
          const SpecParams params =
              params_of(ComponentKind::kPolicy, "randomized", spec);
          return std::make_unique<RandomizedDrwpPolicy>(
              params.get_double("alpha"), ctx.seed);
        });
  }
  {
    ComponentInfo info = make_info(
        "weighted", "distinct-storage-rate DRWP (durations scale 1/mu)");
    info.params = {alpha_param()};
    info.example = "weighted(alpha=0.3)";
    registry.register_policy(
        std::move(info),
        [](const ComponentSpec& spec, const BuildContext&) -> PolicyPtr {
          const SpecParams params =
              params_of(ComponentKind::kPolicy, "weighted", spec);
          return std::make_unique<WeightedDrwpPolicy>(
              params.get_double("alpha"));
        });
  }
  registry.register_policy(
      make_info("wang2021", "Wang et al. INFOCOM 2021 baseline"),
      [](const ComponentSpec&, const BuildContext&) -> PolicyPtr {
        return std::make_unique<Wang2021Policy>();
      });
  registry.register_policy(
      make_info("full_replication", "replicate on first touch, never drop"),
      [](const ComponentSpec&, const BuildContext&) -> PolicyPtr {
        return std::make_unique<FullReplicationPolicy>();
      });
  registry.register_policy(
      make_info("static_single", "keep only the initial copy, serve remote"),
      [](const ComponentSpec&, const BuildContext&) -> PolicyPtr {
        return std::make_unique<StaticPolicy>();
      });
  registry.register_policy(
      make_info("single_copy_chase", "one copy migrating to every requester"),
      [](const ComponentSpec&, const BuildContext&) -> PolicyPtr {
        return std::make_unique<SingleCopyChasePolicy>();
      });
  {
    ComponentInfo info = make_info(
        "offline_plan", "hindsight-optimal DP plan replayed (ratio 1)");
    info.requires_trace = true;
    registry.register_policy(
        std::move(info),
        [](const ComponentSpec&, const BuildContext& ctx) -> PolicyPtr {
          REPL_CHECK(ctx.trace != nullptr);  // enforced by build_policy
          return std::make_unique<PlannedPolicy>(
              *ctx.trace,
              OptimalDpSolver(ctx.config).solve_with_plan(*ctx.trace));
        });
  }
}

void register_builtin_predictors(ComponentRegistry& registry) {
  {
    ComponentInfo info = make_info(
        "last_gap", "next gap class equals the previous one (causal)");
    info.params = {make_param("within", ParamType::kBool, "false",
                              "forecast before the first observed gap")};
    registry.register_predictor(
        std::move(info),
        [](const ComponentSpec& spec,
           const BuildContext& ctx) -> PredictorPtr {
          const SpecParams params =
              params_of(ComponentKind::kPredictor, "last_gap", spec);
          return std::make_unique<LastGapPredictor>(
              ctx.config.num_servers, params.get_bool("within"));
        });
  }
  {
    ComponentInfo info =
        make_info("history", "EWMA of past inter-request times (causal)");
    info.params = {make_ranged_param("ewma", ParamType::kDouble, "0.3",
                                     "weight of the newest observation",
                                     0.0, true, 1.0),
                   make_ranged_param(
                       "margin", ParamType::kDouble, "1",
                       "forecast within iff EWMA <= margin*lambda", 0.0,
                       true, kInf),
                   make_param("within", ParamType::kBool, "false",
                              "forecast before the first observed gap")};
    info.example = "history(ewma=0.3)";
    registry.register_predictor(
        std::move(info),
        [](const ComponentSpec& spec,
           const BuildContext& ctx) -> PredictorPtr {
          const SpecParams params =
              params_of(ComponentKind::kPredictor, "history", spec);
          HistoryPredictor::Config config;
          config.ewma_decay = params.get_double("ewma");
          config.margin = params.get_double("margin");
          config.default_within = params.get_bool("within");
          return std::make_unique<HistoryPredictor>(ctx.config.num_servers,
                                                    config);
        });
  }
  {
    ComponentInfo info =
        make_info("ensemble", "weighted-majority vote over nested experts");
    info.params = {make_ranged_param(
        "penalty", ParamType::kDouble, "0.5",
        "multiplicative down-weight of wrong experts", 0.0, true, 1.0)};
    info.min_children = 1;
    info.max_children = 16;
    info.example = "ensemble(last_gap,history(ewma=0.3))";
    registry.register_predictor(
        std::move(info),
        [](const ComponentSpec& spec,
           const BuildContext& ctx) -> PredictorPtr {
          const SpecParams params =
              params_of(ComponentKind::kPredictor, "ensemble", spec);
          std::vector<std::shared_ptr<Predictor>> experts;
          experts.reserve(spec.children.size());
          // Decorrelate expert seeds deterministically: expert i of an
          // instance seeded s draws from s mixed with i.
          std::uint64_t index = 0;
          for (const ComponentSpec& child : spec.children) {
            BuildContext child_ctx = ctx;
            child_ctx.seed = SplitMix64(ctx.seed + index).next();
            ++index;
            experts.push_back(
                ComponentRegistry::instance().build_predictor(child,
                                                              child_ctx));
          }
          EnsemblePredictor::Config config;
          config.penalty = params.get_double("penalty");
          return std::make_unique<EnsemblePredictor>(std::move(experts),
                                                     config);
        });
  }
  {
    ComponentInfo info = make_info(
        "fixed", "constant forecast (always within / always beyond)");
    info.params = {make_param("within", ParamType::kBool, "true",
                              "the constant forecast value")};
    info.example = "fixed(within=true)";
    registry.register_predictor(
        std::move(info),
        [](const ComponentSpec& spec, const BuildContext&) -> PredictorPtr {
          const SpecParams params =
              params_of(ComponentKind::kPredictor, "fixed", spec);
          return std::make_unique<FixedPredictor>(params.get_bool("within"));
        });
  }
  {
    ComponentInfo info = make_info("oracle", "ground truth (clairvoyant)");
    info.requires_trace = true;
    registry.register_predictor(
        std::move(info),
        [](const ComponentSpec&, const BuildContext& ctx) -> PredictorPtr {
          REPL_CHECK(ctx.trace != nullptr);
          return std::make_unique<OraclePredictor>(*ctx.trace);
        });
  }
  {
    ComponentInfo info =
        make_info("adversarial", "always-wrong oracle (clairvoyant)");
    info.requires_trace = true;
    registry.register_predictor(
        std::move(info),
        [](const ComponentSpec&, const BuildContext& ctx) -> PredictorPtr {
          REPL_CHECK(ctx.trace != nullptr);
          return std::make_unique<AdversarialPredictor>(*ctx.trace);
        });
  }
  {
    ComponentInfo info = make_info(
        "noisy", "ground truth flipped with prob. 1-accuracy "
                 "(clairvoyant, Appendix J)");
    info.params = {make_ranged_param(
        "accuracy", ParamType::kDouble, "0.9",
        "probability a prediction equals the truth", 0.0, false, 1.0)};
    info.requires_trace = true;
    info.example = "noisy(accuracy=0.9)";
    registry.register_predictor(
        std::move(info),
        [](const ComponentSpec& spec,
           const BuildContext& ctx) -> PredictorPtr {
          REPL_CHECK(ctx.trace != nullptr);
          const SpecParams params =
              params_of(ComponentKind::kPredictor, "noisy", spec);
          return std::make_unique<AccuracyPredictor>(
              *ctx.trace, params.get_double("accuracy"), ctx.seed);
        });
  }
}

}  // namespace

ComponentRegistry& ComponentRegistry::instance() {
  static ComponentRegistry* registry = [] {
    auto* r = new ComponentRegistry();
    register_builtin_policies(*r);
    register_builtin_predictors(*r);
    return r;
  }();
  return *registry;
}

}  // namespace repl
