#include "core/online_estimator.hpp"

#include "util/check.hpp"

namespace repl {

OnlineCostEstimator::OnlineCostEstimator(const SystemConfig& config)
    : lambda_(config.transfer_cost),
      server_seen_(static_cast<std::size_t>(config.num_servers), false) {
  // The dummy request r0 makes the initial server "seen" from the start:
  // its copy carries a pending prediction whose worst-case future cost the
  // 2λ-per-server term covers.
  server_seen_[static_cast<std::size_t>(config.initial_server)] = true;
  servers_seen_count_ = 1;
}

void OnlineCostEstimator::record(int server, double time, bool local,
                                 bool source_special, double special_since,
                                 double prev_intended,
                                 double prev_request_time) {
  REPL_REQUIRE(server >= 0 &&
               server < static_cast<int>(server_seen_.size()));
  REPL_CHECK_MSG(time >= last_global_time_,
                 "estimator fed out-of-order requests");
  ++requests_seen_;

  // --- OPTL update ---------------------------------------------------
  const double gap_same = std::isnan(prev_request_time)
                              ? std::numeric_limits<double>::infinity()
                              : time - prev_request_time;
  opt_l_ += (gap_same > lambda_) ? lambda_ : gap_same;
  const double gap_global = time - last_global_time_;
  if (gap_global > lambda_) opt_l_ += gap_global - lambda_;
  last_global_time_ = time;

  // --- OnlineU: Proposition-2 allocation of this request --------------
  if (local) {
    // Type-3/4: storage between consecutive local requests. A local serve
    // implies a copy held since the previous request at this server, so
    // prev_request_time must exist.
    REPL_CHECK(!std::isnan(prev_request_time));
    allocated_ += time - prev_request_time;
  } else {
    // Type-1/2: transfer + the regular copy after p(i) (conservatively λ
    // for a server's first request) + the serving special period, if any.
    const double l_i = std::isnan(prev_intended) ? lambda_ : prev_intended;
    allocated_ += lambda_ + l_i;
    if (source_special) {
      REPL_CHECK(!std::isnan(special_since) && special_since <= time);
      allocated_ += time - special_since;
    }
  }

  // --- n' update -------------------------------------------------------
  auto seen = server_seen_[static_cast<std::size_t>(server)];
  if (!seen) {
    server_seen_[static_cast<std::size_t>(server)] = true;
    ++servers_seen_count_;
  }
}

void OnlineCostEstimator::save_state(StateWriter& out) const {
  out.f64(lambda_);
  out.f64(opt_l_);
  out.f64(allocated_);
  out.f64(last_global_time_);
  out.u64(static_cast<std::uint64_t>(servers_seen_count_));
  out.u64(static_cast<std::uint64_t>(requests_seen_));
  out.u64(static_cast<std::uint64_t>(server_seen_.size()));
  for (const bool seen : server_seen_) out.boolean(seen);
}

void OnlineCostEstimator::load_state(StateReader& in) {
  if (in.f64() != lambda_) in.fail("estimator lambda mismatch");
  opt_l_ = in.f64();
  allocated_ = in.f64();
  last_global_time_ = in.f64();
  servers_seen_count_ = static_cast<std::size_t>(in.u64());
  requests_seen_ = static_cast<std::size_t>(in.u64());
  if (in.u64() != server_seen_.size()) {
    in.fail("estimator server count mismatch");
  }
  for (std::size_t s = 0; s < server_seen_.size(); ++s) {
    server_seen_[s] = in.boolean();
  }
}

double OnlineCostEstimator::ratio_bound() const {
  if (opt_l_ <= 0.0) return std::numeric_limits<double>::infinity();
  return online_upper_bound() / opt_l_;
}

}  // namespace repl
