#include "offline/opt_lower_bound.hpp"

#include <cmath>

#include "util/check.hpp"

namespace repl {

double opt_lower_bound(const SystemConfig& config, const Trace& trace) {
  config.validate();
  REPL_REQUIRE(trace.num_servers() == config.num_servers);
  for (double r : config.storage_rates) {
    REPL_REQUIRE_MSG(r == 1.0,
                     "OPTL is derived for uniform unit storage rates");
  }
  const double lambda = config.transfer_cost;
  double bound = 0.0;
  double prev_global = 0.0;  // dummy r0 at time 0
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const double gap_same =
        interarrival_to_prev(trace, i, config.initial_server);
    bound += (gap_same > lambda) ? lambda : gap_same;
    const double gap_global = trace[i].time - prev_global;
    if (gap_global > lambda) bound += gap_global - lambda;
    prev_global = trace[i].time;
  }
  return bound;
}

}  // namespace repl
