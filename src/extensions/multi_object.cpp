#include "extensions/multi_object.hpp"

#include "api/experiment.hpp"
#include "run/parallel_runner.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace repl {

MultiObjectWorkload generate_multi_object_workload(
    const MultiObjectConfig& config, std::uint64_t seed) {
  REPL_REQUIRE(config.num_objects >= 1);
  REPL_REQUIRE(config.request_rate > 0.0);
  REPL_REQUIRE(config.horizon > 0.0);
  Rng rng(seed);
  const ZipfDistribution object_zipf(config.num_objects,
                                     config.object_zipf_s);
  const ZipfDistribution server_zipf(config.num_servers,
                                     config.server_zipf_s);

  std::vector<std::vector<Request>> per_object(
      static_cast<std::size_t>(config.num_objects));
  double t = 0.0;
  for (;;) {
    t += rng.exponential(config.request_rate);
    if (t > config.horizon) break;
    const int object = object_zipf.sample(rng) - 1;
    const int server = server_zipf.sample(rng) - 1;
    per_object[static_cast<std::size_t>(object)].push_back(
        Request{t, server});
  }

  MultiObjectWorkload workload;
  workload.num_servers = config.num_servers;
  workload.objects.reserve(per_object.size());
  for (auto& requests : per_object) {
    workload.objects.push_back(
        Trace::from_unsorted(config.num_servers, std::move(requests)));
  }
  return workload;
}

namespace {

MultiObjectResult run_with_threads(const MultiObjectWorkload& workload,
                                   const SystemConfig& base_config,
                                   const PolicyFactory& make_policy,
                                   const PredictorFactory& make_predictor,
                                   int num_threads) {
  RunnerOptions options;
  options.num_threads = num_threads;
  options.simulation.record_events = false;
  const ParallelRunner runner(options);
  return runner.run(workload, base_config,
                    adapt_policy_factory(make_policy),
                    adapt_predictor_factory(make_predictor));
}

}  // namespace

MultiObjectResult run_multi_object(const MultiObjectWorkload& workload,
                                   const SystemConfig& base_config,
                                   const PolicyFactory& make_policy,
                                   const PredictorFactory& make_predictor) {
  return run_with_threads(workload, base_config, make_policy,
                          make_predictor, /*num_threads=*/1);
}

MultiObjectResult run_multi_object_parallel(
    const MultiObjectWorkload& workload, const SystemConfig& base_config,
    const PolicyFactory& make_policy,
    const PredictorFactory& make_predictor, int num_threads) {
  return run_with_threads(workload, base_config, make_policy,
                          make_predictor, num_threads);
}

MultiObjectResult run_multi_object_spec(
    const MultiObjectWorkload& workload, const SystemConfig& base_config,
    const std::string& policy_spec, const std::string& predictor_spec,
    int num_threads, std::uint64_t base_seed, RunnerStats* stats) {
  RunnerOptions options;
  options.num_threads = num_threads;
  options.base_seed = base_seed;
  options.simulation.record_events = false;
  const ParallelRunner runner(options);
  // The adapters validate (and canonicalize) the specs before any
  // object runs, then build per object with its seed and trace.
  const MultiObjectResult result = runner.run(
      workload, base_config,
      spec_object_policy_factory(base_config, policy_spec),
      spec_object_predictor_factory(base_config, predictor_spec));
  if (stats != nullptr) *stats = runner.last_stats();
  return result;
}

}  // namespace repl
