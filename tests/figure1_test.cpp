// Reconstruction of the paper's Figure 1 — the worked example
// illustrating Algorithm 1 and the request typing of Section 4.1.
//
// Four servers (s1..s4 = 0..3), nine requests, scripted predictions.
// The paper states: r1, r2, r3, r5, r8 are Type-1; r4 and r6 are Type-2;
// r7 is Type-3; r9 is Type-4; and p(6) = 1 (r1 and r6 arise in
// succession at the same server). The timings below realize exactly that
// typing with λ = 10, α = 0.5; every intermediate state is hand-computed
// in the comments and asserted.
#include <gtest/gtest.h>

#include "analysis/allocation.hpp"
#include "analysis/request_types.hpp"
#include "core/drwp.hpp"
#include "core/simulator.hpp"
#include "predictor/predictor.hpp"
#include "test_util.hpp"

namespace repl {
namespace {

using testing::make_config;

/// Returns a fixed sequence of forecasts in call order (first call = the
/// dummy r0's prediction).
class ScriptedPredictor final : public Predictor {
 public:
  explicit ScriptedPredictor(std::vector<bool> within)
      : within_(std::move(within)) {}

  void reset() override { next_ = 0; }
  Prediction predict(const PredictionQuery&) override {
    REPL_REQUIRE_MSG(next_ < within_.size(),
                     "scripted predictor exhausted");
    return Prediction{within_[next_++]};
  }
  std::string name() const override { return "scripted"; }

 private:
  std::vector<bool> within_;
  std::size_t next_ = 0;
};

TEST(Figure1, FullWalkthrough) {
  const double lambda = 10.0, alpha = 0.5;  // αλ = 5
  const SystemConfig config = make_config(4, lambda);

  // Requests (time, server). Servers: 0 = s1 (initial holder), etc.
  const Trace trace(4, {
                           {1.0, 1},   // r1
                           {2.0, 2},   // r2
                           {3.0, 3},   // r3
                           {13.0, 0},  // r4
                           {14.0, 3},  // r5
                           {21.0, 1},  // r6  (p(6) = r1)
                           {25.0, 1},  // r7
                           {28.0, 2},  // r8
                           {35.0, 2},  // r9
                       });
  // Predictions in issue order: r0 beyond (initial copy αλ), r1 within
  // (copy λ), r2 within, r3 beyond, r4..r5 beyond, r6 within, r7..r9
  // beyond.
  ScriptedPredictor predictor({false, true, true, false, false, false,
                               true, false, false, false});
  DrwpPolicy policy(alpha);
  const SimulationResult result =
      Simulator(config).run(policy, trace, predictor);

  // Hand-computed trajectory:
  //  t=0: copy at s0, E=5.         t=5:  s0 expires (4 copies) -> drop.
  //  r1@1 (s1): transfer from the regular copy at s0 -> Type-1; E1=11.
  //  r2@2 (s2): transfer from s0 (regular) -> Type-1; E2=12.
  //  r3@3 (s3): transfer from s0 (regular) -> Type-1; E3=8.
  //  t=8: s3 drops; t=11: s1 drops; t=12: s2 is the only copy -> special.
  //  r4@13 (s0): transfer from s2's SPECIAL (since 12) -> Type-2;
  //              s2 dropped after the transfer; E0=18.
  //  r5@14 (s3): transfer from s0 (regular) -> Type-1; E3=19.
  //  t=18: s0 drops; t=19: s3 only copy -> special.
  //  r6@21 (s1): transfer from s3's SPECIAL (since 19) -> Type-2; E1=31.
  //  r7@25 (s1): local regular -> Type-3; E1=30.
  //  r8@28 (s2): transfer from s1 (regular) -> Type-1; E2=33.
  //  t=30: s1 drops; t=33: s2 only copy -> special.
  //  r9@35 (s2): local SPECIAL (since 33) -> Type-4.
  const auto types = classify_requests(result);
  const std::vector<RequestType> expected = {
      RequestType::kType1, RequestType::kType1, RequestType::kType1,
      RequestType::kType2, RequestType::kType1, RequestType::kType2,
      RequestType::kType3, RequestType::kType1, RequestType::kType4};
  ASSERT_EQ(types.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(types[i], expected[i]) << "r" << (i + 1);
  }

  // The paper's p(6) = 1: r6's predecessor at its server is r1.
  EXPECT_EQ(trace.prev_same_server(5), 0);

  // Special-copy switch instants feeding the Type-2/4 allocations.
  EXPECT_DOUBLE_EQ(result.serves[3].special_since, 12.0);  // r4
  EXPECT_DOUBLE_EQ(result.serves[5].special_since, 19.0);  // r6
  EXPECT_DOUBLE_EQ(result.serves[8].special_since, 33.0);  // r9

  // Totals: 7 transfers; storage s0 [0,5]+[13,18]=10, s1 [1,11]+[21,30]
  // =19, s2 [2,13]+[28,35]=18, s3 [3,8]+[14,21]=12 => 59.
  EXPECT_EQ(result.num_transfers, 7u);
  EXPECT_DOUBLE_EQ(result.storage_cost, 59.0);
  EXPECT_DOUBLE_EQ(result.total_cost(), 129.0);

  // The Section-4.1 allocation identity closes on the example too.
  const AllocationReport report = allocate_costs(result, trace);
  EXPECT_NEAR(report.discrepancy(), 0.0, 1e-9);
}

TEST(Figure1, ScriptedPredictorMisuseTraps) {
  ScriptedPredictor predictor({true});
  PredictionQuery query;
  predictor.predict(query);
  EXPECT_THROW(predictor.predict(query), std::invalid_argument);
}

}  // namespace
}  // namespace repl
