#include "run/parallel_runner.hpp"

#include <chrono>
#include <exception>
#include <utility>
#include <vector>

#include "offline/opt_dp.hpp"
#include "run/thread_pool.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace repl {

namespace {

/// Output slot for one object; tasks touch only their own slot.
struct ObjectSlot {
  double online_cost = 0.0;
  double opt_cost = 0.0;
  std::size_t requests = 0;
  std::exception_ptr error;
};

}  // namespace

ParallelRunner::ParallelRunner(RunnerOptions options)
    : options_(std::move(options)) {
  REPL_REQUIRE(options_.num_threads >= 0);
}

ParallelRunner::~ParallelRunner() = default;
ParallelRunner::ParallelRunner(ParallelRunner&&) noexcept = default;
ParallelRunner& ParallelRunner::operator=(ParallelRunner&&) noexcept =
    default;

std::uint64_t ParallelRunner::object_seed(std::uint64_t base_seed,
                                          std::size_t index) {
  // One SplitMix64 step per object keyed by index: addressable in any
  // order (no sequential stream to advance) and well mixed even for
  // consecutive indices.
  SplitMix64 mixer(base_seed +
                   0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1));
  return mixer.next();
}

MultiObjectResult ParallelRunner::run(
    const MultiObjectWorkload& workload, const SystemConfig& base_config,
    const ObjectPolicyFactory& make_policy,
    const ObjectPredictorFactory& make_predictor) const {
  REPL_REQUIRE(base_config.num_servers == workload.num_servers);
  REPL_REQUIRE(make_policy != nullptr);
  REPL_REQUIRE(make_predictor != nullptr);

  const std::size_t num_objects = workload.objects.size();
  std::vector<ObjectSlot> slots(num_objects);

  const auto started = std::chrono::steady_clock::now();

  // The per-object job. Everything it reads is const-shared; everything
  // it writes lives in its own slot.
  const auto simulate_object = [&](std::size_t i) {
    ObjectSlot& slot = slots[i];
    try {
      const Trace& trace = workload.objects[i];
      slot.requests = trace.size();
      if (trace.empty()) return;
      ObjectContext context;
      context.index = i;
      context.seed = object_seed(options_.base_seed, i);
      context.trace = &trace;
      PolicyPtr policy = make_policy(context);
      PredictorPtr predictor = make_predictor(context);
      const Simulator simulator(base_config, options_.simulation);
      slot.online_cost =
          simulator.run(*policy, trace, *predictor).total_cost();
      if (options_.compute_opt) {
        slot.opt_cost = OptimalDpSolver(base_config).solve(trace);
      }
    } catch (...) {
      slot.error = std::current_exception();
    }
  };

  int threads_used = 1;
  if (options_.num_threads == 1 || num_objects <= 1) {
    for (std::size_t i = 0; i < num_objects; ++i) simulate_object(i);
    stats_.steals = 0;
  } else {
    if (!pool_) {
      pool_ = std::make_unique<ThreadPool>(
          options_.num_threads == 0
              ? 0
              : static_cast<std::size_t>(options_.num_threads));
    }
    threads_used = static_cast<int>(pool_->num_threads());
    const std::uint64_t steals_before = pool_->steal_count();
    for (std::size_t i = 0; i < num_objects; ++i) {
      pool_->submit([&simulate_object, i] { simulate_object(i); });
    }
    pool_->wait_idle();
    stats_.steals = pool_->steal_count() - steals_before;
  }

  const auto finished = std::chrono::steady_clock::now();
  stats_.threads_used = threads_used;
  stats_.objects_simulated = num_objects;
  stats_.wall_seconds =
      std::chrono::duration<double>(finished - started).count();
  stats_.requests_simulated = 0;
  for (const ObjectSlot& slot : slots) {
    stats_.requests_simulated += slot.requests;
  }

  // Deterministic error propagation: the lowest failing index wins.
  for (const ObjectSlot& slot : slots) {
    if (slot.error) std::rethrow_exception(slot.error);
  }

  // Serial reduction in object order — this is what makes the aggregate
  // bit-identical across thread counts (FP addition is not associative).
  MultiObjectResult result;
  result.per_object_online.reserve(num_objects);
  result.per_object_opt.reserve(num_objects);
  for (const ObjectSlot& slot : slots) {
    result.per_object_online.push_back(slot.online_cost);
    result.per_object_opt.push_back(slot.opt_cost);
    result.online_cost += slot.online_cost;
    result.opt_cost += slot.opt_cost;
  }
  return result;
}

ObjectPolicyFactory adapt_policy_factory(PolicyFactory factory) {
  REPL_REQUIRE(factory != nullptr);
  return [factory = std::move(factory)](const ObjectContext&) {
    return factory();
  };
}

ObjectPredictorFactory adapt_predictor_factory(PredictorFactory factory) {
  REPL_REQUIRE(factory != nullptr);
  return [factory = std::move(factory)](const ObjectContext& context) {
    return factory(*context.trace);
  };
}

}  // namespace repl
