// EventSource: where the engine's events come from.
//
// StreamingEngine::serve historically drove one hard-wired producer — an
// EventLogReader over a finished file. Live network ingest needs the same
// drain loop (validation, sharded execution, periodic checkpoints) over a
// source that is not a file, so the producer side is abstracted here:
// serve() drains any EventSource, and file replay and socket ingest are
// two implementations of the same two-call contract.
//
// Contract: attach() is called exactly once, before the first
// next_batch(), with the engine that will consume the stream — the source
// binds/cross-checks the stream identity (StreamingEngine::bind_log) and
// positions itself past a restored engine's consumed prefix
// (resume_position()). next_batch() then blocks for the next batch;
// batches must be internally and mutually time-ordered, exactly what
// StreamingEngine::ingest demands. A source that fails mid-stream first
// delivers every event it produced before the failure, then throws from
// next_batch() — and keeps throwing on retry (sticky), so a caller can
// never mistake a failed stream for a drained one.
#pragma once

#include <cstddef>
#include <exception>
#include <optional>
#include <vector>

#include "engine/prefetch.hpp"
#include "trace/event_log.hpp"

namespace repl {

class StreamingEngine;

class EventSource {
 public:
  virtual ~EventSource() = default;

  /// Binds the stream's identity to `engine` and seeks past a restored
  /// engine's consumed prefix. serve() calls this once before the drain.
  virtual void attach(StreamingEngine& engine) = 0;

  /// Blocks for the next time-ordered batch, replaced into `out`.
  /// Returns false at the end of the stream. Events decoded before a
  /// failure are delivered before the failure is thrown; the error is
  /// sticky across calls.
  virtual bool next_batch(std::vector<LogEvent>& out) = 0;

  /// Encoded bytes consumed by the source so far, as of the last
  /// delivered batch (0 when the source has no byte-level view — a
  /// network source counts its bytes on its connection threads). Feeds
  /// the engine's decode-bytes telemetry; only called between
  /// next_batch() calls, on the serving thread.
  virtual std::uint64_t bytes_consumed() const { return 0; }
};

/// File replay: serves a finished event log, optionally double-buffered
/// through BatchPrefetcher (decode batch N+1 while the shards execute
/// batch N). attach() performs the log binding and the hash-verified
/// resume seek, then starts the reader thread — the prefetcher must not
/// exist while the resume seek still owns the reader's position.
class LogReplaySource final : public EventSource {
 public:
  /// `reader` must outlive the source and must not be touched by the
  /// caller until the source is destroyed.
  LogReplaySource(EventLogReader& reader, std::size_t batch_events,
                  bool async_ingest);

  void attach(StreamingEngine& engine) override;
  bool next_batch(std::vector<LogEvent>& out) override;
  std::uint64_t bytes_consumed() const override;

 private:
  EventLogReader& reader_;
  const std::size_t batch_events_;
  const bool async_;
  std::optional<BatchPrefetcher> prefetch_;
  /// Sync path twin of the prefetcher's partial-batch handling: a
  /// read_batch that throws mid-batch already decoded a prefix into the
  /// caller's buffer; deliver it, park the error here, rethrow on every
  /// later call.
  std::exception_ptr error_;
};

}  // namespace repl
