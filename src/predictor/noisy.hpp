// The prediction model of the paper's Appendix J: each prediction is the
// ground truth flipped independently with probability 1 - accuracy.
//
// The flip decision is a pure function of (seed, request_index), so the
// prediction stream for a given trace and seed is identical regardless of
// which policy consumes it — required for apples-to-apples comparisons
// (e.g. plain vs adapted Algorithm 1 on the same predictions).
#pragma once

#include <cstdint>

#include "predictor/predictor.hpp"
#include "trace/trace.hpp"

namespace repl {

class AccuracyPredictor final : public Predictor {
 public:
  /// `accuracy` in [0, 1]: probability that a prediction equals the truth.
  AccuracyPredictor(const Trace& trace, double accuracy, std::uint64_t seed);

  Prediction predict(const PredictionQuery& query) override;
  std::string name() const override;

  double accuracy() const { return accuracy_; }

 private:
  const Trace* trace_;
  double accuracy_;
  std::uint64_t seed_;
};

}  // namespace repl
