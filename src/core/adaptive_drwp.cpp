#include "core/adaptive_drwp.hpp"

#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace repl {

AdaptiveDrwpPolicy::AdaptiveDrwpPolicy(double alpha, Options options)
    : DrwpPolicy(alpha), options_(options) {
  REPL_REQUIRE_MSG(options.beta >= 0.0, "beta must be non-negative");
}

void AdaptiveDrwpPolicy::reset(const SystemConfig& config,
                               const Prediction& pred0, EventSink& sink) {
  // Prepare the monitor before the base reset: reset() invokes
  // choose_duration for the dummy request r0.
  estimator_.emplace(config);
  served_ = 0;
  fallback_count_ = 0;
  DrwpPolicy::reset(config, pred0, sink);
}

double AdaptiveDrwpPolicy::choose_duration(const Prediction& pred,
                                           const ServeContext& ctx) {
  // The dummy request r0 (time 0) sets the initial copy's duration and
  // carries no cost; the monitor only tracks real requests.
  if (ctx.time == 0.0 && std::isnan(ctx.prev_request_time)) {
    return DrwpPolicy::choose_duration(pred, ctx);
  }

  REPL_CHECK(estimator_.has_value());
  estimator_->record(ctx.server, ctx.time, ctx.local, ctx.source_special,
                     ctx.special_since, ctx.prev_intended,
                     ctx.prev_request_time);
  ++served_;

  if (served_ <= options_.warmup_requests) {
    return DrwpPolicy::choose_duration(pred, ctx);
  }
  if (estimator_->ratio_bound() > 2.0 + options_.beta) {
    ++fallback_count_;
    return lambda();  // conventional rule: ignore the prediction
  }
  return DrwpPolicy::choose_duration(pred, ctx);
}

void AdaptiveDrwpPolicy::save_state(StateWriter& out) const {
  DrwpPolicy::save_state(out);
  out.f64(options_.beta);
  out.u64(static_cast<std::uint64_t>(served_));
  out.u64(static_cast<std::uint64_t>(fallback_count_));
  REPL_CHECK(estimator_.has_value());
  estimator_->save_state(out);
}

void AdaptiveDrwpPolicy::load_state(StateReader& in) {
  DrwpPolicy::load_state(in);
  if (in.f64() != options_.beta) in.fail("adaptive beta mismatch");
  served_ = static_cast<std::size_t>(in.u64());
  fallback_count_ = static_cast<std::size_t>(in.u64());
  if (!estimator_.has_value()) {
    in.fail("adaptive monitor missing (load_state before reset?)");
  }
  estimator_->load_state(in);
}

double AdaptiveDrwpPolicy::monitored_ratio() const {
  return estimator_ ? estimator_->ratio_bound()
                    : std::numeric_limits<double>::infinity();
}

std::string AdaptiveDrwpPolicy::name() const {
  std::ostringstream os;
  os << "adaptive-drwp(alpha=" << alpha() << ",beta=" << options_.beta
     << ")";
  return os.str();
}

std::unique_ptr<ReplicationPolicy> AdaptiveDrwpPolicy::clone() const {
  return std::make_unique<AdaptiveDrwpPolicy>(*this);
}

}  // namespace repl
