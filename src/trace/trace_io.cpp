#include "trace/trace_io.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace repl {

std::string trace_to_csv(const Trace& trace) {
  std::ostringstream os;
  write_csv_row(os, {"time", "server"});
  for (const Request& r : trace.requests()) {
    write_csv_row(os, {format_double(r.time), std::to_string(r.server)});
  }
  return os.str();
}

Trace trace_from_csv(const std::string& text, int num_servers) {
  const auto rows = parse_csv(text);
  REPL_REQUIRE_MSG(!rows.empty(), "empty trace CSV");
  std::size_t start = 0;
  if (!rows[0].empty() && rows[0][0] == "time") start = 1;  // header
  std::vector<Request> requests;
  requests.reserve(rows.size() - start);
  int max_server = -1;
  for (std::size_t i = start; i < rows.size(); ++i) {
    const CsvRow& row = rows[i];
    if (row.size() < 2) {
      throw std::invalid_argument("trace CSV row " + std::to_string(i) +
                                  ": expected time,server");
    }
    Request r;
    try {
      r.time = std::stod(row[0]);
      r.server = std::stoi(row[1]);
    } catch (const std::exception&) {
      throw std::invalid_argument("trace CSV row " + std::to_string(i) +
                                  ": malformed number");
    }
    max_server = std::max(max_server, r.server);
    requests.push_back(r);
  }
  if (num_servers == 0) num_servers = max_server + 1;
  return Trace::from_unsorted(num_servers, std::move(requests));
}

void save_trace(const Trace& trace, const std::string& path) {
  write_file(path, trace_to_csv(trace));
}

Trace load_trace(const std::string& path, int num_servers) {
  return trace_from_csv(read_file(path), num_servers);
}

}  // namespace repl
