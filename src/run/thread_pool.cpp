#include "run/thread_pool.hpp"

#include <chrono>
#include <utility>

namespace repl {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  queues_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  stopping_.store(true, std::memory_order_release);
  {
    // Take the lock so no worker is between its predicate check and its
    // wait when the stop notification fires.
    std::lock_guard<std::mutex> lock(idle_mutex_);
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(Task task) {
  const std::size_t slot =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  WorkerQueue& queue = *queues_[slot];
  pending_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> queue_lock(queue.mutex);
    queue.tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    queued_.fetch_add(1, std::memory_order_release);
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  all_done_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

bool ThreadPool::try_pop_local(std::size_t id, Task& task) {
  WorkerQueue& queue = *queues_[id];
  std::lock_guard<std::mutex> lock(queue.mutex);
  if (queue.tasks.empty()) return false;
  task = std::move(queue.tasks.front());
  queue.tasks.pop_front();
  queued_.fetch_sub(1, std::memory_order_release);
  return true;
}

bool ThreadPool::try_steal(std::size_t thief, Task& task) {
  const std::size_t n = queues_.size();
  // Scan victims starting just after the thief so steal pressure spreads
  // instead of piling onto worker 0.
  for (std::size_t offset = 1; offset < n; ++offset) {
    WorkerQueue& victim = *queues_[(thief + offset) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (victim.tasks.empty()) continue;
    task = std::move(victim.tasks.back());
    victim.tasks.pop_back();
    queued_.fetch_sub(1, std::memory_order_release);
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t id) {
  for (;;) {
    Task task;
    if (try_pop_local(id, task) || try_steal(id, task)) {
      task();
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(idle_mutex_);
        all_done_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mutex_);
    if (stopping_.load(std::memory_order_acquire)) return;
    // submit() bumps queued_ under idle_mutex_ before notifying, so a
    // worker here either sees queued_ > 0 or receives the notify; the
    // timeout is belt-and-braces against lost wakeups.
    work_available_.wait_for(lock, std::chrono::milliseconds(50), [this] {
      return stopping_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
  }
}

}  // namespace repl
