// Telemetry subsystem tests: metrics primitives (sharded counters,
// gauges, fixed-bucket histograms), the registry's get-or-create and
// type-conflict contracts, Prometheus/JSON exposition (including a
// grammar validator for the text format), the HTTP exporter's request
// parsing and content negotiation, a multi-threaded scrape-while-writing
// hammer (run under TSan in CI), and the engine-level invariant that
// telemetry-on serving produces bit-identical aggregates.
#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/drwp.hpp"
#include "engine/engine.hpp"
#include "engine/event_source.hpp"
#include "net/socket.hpp"
#include "obs/exposition.hpp"
#include "obs/federation.hpp"
#include "obs/http_exporter.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/stage_timer.hpp"
#include "obs/trace.hpp"
#include "predictor/last_gap.hpp"
#include "util/histogram.hpp"

namespace repl {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::HttpRequest;
using obs::MetricsRegistry;
using obs::Sample;

// ---------------------------------------------------------------------
// Primitives

TEST(ObsMetricsTest, CounterSumsAcrossCellsAndIsMonotone) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsMetricsTest, GaugeSetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_EQ(g.value(), 1.5);
  g.set(-1.0);
  EXPECT_EQ(g.value(), -1.0);
}

TEST(ObsMetricsTest, HistogramBucketsAreCumulativeAndCountDerived) {
  Histogram h({0.1, 1.0, 10.0});
  h.observe(0.05);   // bucket le=0.1
  h.observe(0.5);    // le=1
  h.observe(0.5);    // le=1
  h.observe(100.0);  // +Inf
  const Histogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.cumulative.size(), 4u);
  EXPECT_EQ(snap.cumulative[0], 1u);
  EXPECT_EQ(snap.cumulative[1], 3u);
  EXPECT_EQ(snap.cumulative[2], 3u);
  EXPECT_EQ(snap.cumulative[3], 4u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.05 + 0.5 + 0.5 + 100.0);
}

TEST(ObsMetricsTest, HistogramBoundInclusivityMatchesPrometheus) {
  // `le` is an inclusive upper edge: an observation exactly on a bound
  // lands in that bound's bucket.
  Histogram h({1.0, 2.0});
  h.observe(1.0);
  h.observe(2.0);
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.cumulative[0], 1u);
  EXPECT_EQ(snap.cumulative[1], 2u);
  EXPECT_EQ(snap.cumulative[2], 2u);
}

TEST(ObsMetricsTest, HistogramQuantileInterpolates) {
  Histogram h({1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) h.observe(1.5);  // all in (1, 2]
  // Every observation sits in the (1,2] bucket: quantiles interpolate
  // inside it.
  EXPECT_GT(h.quantile(0.5), 1.0);
  EXPECT_LE(h.quantile(0.5), 2.0);
  EXPECT_LE(h.quantile(0.5), h.quantile(0.99));
  EXPECT_EQ(Histogram({1.0}).quantile(0.5), 0.0);  // empty
}

TEST(ObsMetricsTest, HistogramRejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(ObsMetricsTest, HistogramQuantileFreeFunction) {
  const std::vector<double> bounds{1.0, 2.0, 4.0};
  // 10 below 1, 10 in (1,2], none above.
  const std::vector<std::uint64_t> cumulative{10, 20, 20, 20};
  EXPECT_LE(histogram_quantile(bounds, cumulative, 0.25), 1.0);
  const double p75 = histogram_quantile(bounds, cumulative, 0.75);
  EXPECT_GT(p75, 1.0);
  EXPECT_LE(p75, 2.0);
  EXPECT_THROW(histogram_quantile(bounds, {1, 2}, 0.5),
               std::invalid_argument);
  EXPECT_THROW(histogram_quantile(bounds, cumulative, 1.5),
               std::invalid_argument);
}

TEST(ObsStageTimerTest, RecordsIntoAccumulatorAndHistogram) {
  double acc = 0.0;
  Histogram h(Histogram::default_latency_bounds());
  {
    obs::StageTimer t(&acc, &h);
  }
  EXPECT_GT(acc, 0.0);
  EXPECT_EQ(h.snapshot().count, 1u);

  // stop() records once; the destructor must not double-record.
  double acc2 = 0.0;
  obs::StageTimer t2(&acc2);
  const double s = t2.stop();
  EXPECT_EQ(acc2, s);
  EXPECT_EQ(t2.stop(), 0.0);
  EXPECT_EQ(acc2, s);

  // Fully disarmed: never touches the clock, records nothing.
  obs::StageTimer disarmed(nullptr, nullptr);
  EXPECT_EQ(disarmed.stop(), 0.0);
}

// ---------------------------------------------------------------------
// Registry

TEST(ObsRegistryTest, GetOrCreateReturnsSameInstrument) {
  MetricsRegistry r;
  Counter& a = r.counter("x_total", "help");
  Counter& b = r.counter("x_total", "help");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);

  // Distinct label sets are distinct series; label order is normalized.
  Counter& l1 = r.counter("y_total", "", {{"a", "1"}, {"b", "2"}});
  Counter& l2 = r.counter("y_total", "", {{"b", "2"}, {"a", "1"}});
  Counter& l3 = r.counter("y_total", "", {{"a", "1"}, {"b", "3"}});
  EXPECT_EQ(&l1, &l2);
  EXPECT_NE(&l1, &l3);
}

TEST(ObsRegistryTest, TypeConflictAndBadNamesThrow) {
  MetricsRegistry r;
  r.counter("x_total", "");
  EXPECT_THROW(r.gauge("x_total", ""), std::invalid_argument);
  EXPECT_THROW(r.histogram("x_total", "", {1.0}), std::invalid_argument);
  EXPECT_THROW(r.counter("0bad", ""), std::invalid_argument);
  EXPECT_THROW(r.counter("has space", ""), std::invalid_argument);
  EXPECT_THROW(r.counter("x2_total", "", {{"0bad", "v"}}),
               std::invalid_argument);
  r.histogram("h", "", {1.0, 2.0});
  EXPECT_THROW(r.histogram("h", "", {1.0, 3.0}), std::invalid_argument);
}

TEST(ObsRegistryTest, CollectIsSortedAndHooksRun) {
  MetricsRegistry r;
  r.counter("b_total", "").inc();
  r.counter("a_total", "").inc(2);
  int hook_runs = 0;
  const std::size_t id = r.add_collect_hook([&] {
    ++hook_runs;
    r.gauge("hooked", "registered lazily by a hook").set(1.0);
  });
  const std::vector<Sample> samples = r.collect();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a_total");
  EXPECT_EQ(samples[1].name, "b_total");
  EXPECT_EQ(samples[2].name, "hooked");
  EXPECT_EQ(hook_runs, 1);
  r.remove_collect_hook(id);
  r.collect();
  EXPECT_EQ(hook_runs, 1);
}

// ---------------------------------------------------------------------
// Prometheus text grammar

/// Validates exposition text against the 0.0.4 grammar the way a
/// Prometheus scraper would: well-formed comment and sample lines, legal
/// metric/label names, parseable values, TYPE-before-samples per family,
/// and cumulative histogram buckets with `_count` equal to the +Inf
/// bucket. Returns "" when valid, else a diagnostic.
std::string validate_prometheus(const std::string& text) {
  const auto valid_name = [](const std::string& name, bool label) {
    if (name.empty()) return false;
    for (std::size_t i = 0; i < name.size(); ++i) {
      const char c = name[i];
      const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0 ||
                         c == '_' || (!label && c == ':');
      if (!(alpha || (i > 0 && std::isdigit(static_cast<unsigned char>(c)))))
        return false;
    }
    return true;
  };
  if (text.empty() || text.back() != '\n') return "must end with newline";

  std::map<std::string, std::string> typed;  // family -> type
  // Histogram bookkeeping: family -> (last cumulative count, inf count,
  // declared _count value).
  struct HistState {
    std::uint64_t last_bucket = 0;
    bool saw_inf = false;
    std::uint64_t inf_count = 0;
  };
  std::map<std::string, HistState> hists;

  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) return "blank line";
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kind, family;
      ls >> hash >> kind >> family;
      if (kind != "HELP" && kind != "TYPE") return "bad comment: " + line;
      if (!valid_name(family, false)) return "bad family name: " + line;
      if (kind == "TYPE") {
        std::string type;
        ls >> type;
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return "bad type: " + line;
        }
        if (typed.count(family) != 0) return "duplicate TYPE: " + line;
        typed[family] = type;
      }
      continue;
    }
    // Sample line: name[{labels}] value
    std::size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) return "no value: " + line;
    const std::string name = line.substr(0, name_end);
    if (!valid_name(name, false)) return "bad metric name: " + line;
    std::string le;          // the le label, when present
    std::string series_key;  // non-le labels: one series per key
    std::size_t pos = name_end;
    if (line[pos] == '{') {
      const std::size_t close = line.find('}', pos);
      if (close == std::string::npos) return "unterminated labels: " + line;
      std::string labels = line.substr(pos + 1, close - pos - 1);
      while (!labels.empty()) {
        const std::size_t eq = labels.find('=');
        if (eq == std::string::npos) return "bad label pair: " + line;
        const std::string lname = labels.substr(0, eq);
        if (!valid_name(lname, true)) return "bad label name: " + line;
        if (eq + 1 >= labels.size() || labels[eq + 1] != '"')
          return "unquoted label value: " + line;
        std::size_t end = eq + 2;
        std::string lvalue;
        while (end < labels.size() && labels[end] != '"') {
          if (labels[end] == '\\') ++end;  // escaped char
          if (end < labels.size()) lvalue.push_back(labels[end]);
          ++end;
        }
        if (end >= labels.size()) return "unterminated value: " + line;
        if (lname == "le") {
          le = lvalue;
        } else {
          series_key += lname + "=" + lvalue + ",";
        }
        labels.erase(0, end + 1);
        if (!labels.empty()) {
          if (labels[0] != ',') return "bad label separator: " + line;
          labels.erase(0, 1);
        }
      }
      pos = close + 1;
    }
    if (pos >= line.size() || line[pos] != ' ') return "no value: " + line;
    const std::string value = line.substr(pos + 1);
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') return "bad value: " + line;

    // The family of a histogram series drops the _bucket/_sum/_count
    // suffix; its TYPE must have been declared before any sample.
    std::string family = name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s(suffix);
      if (family.size() > s.size() &&
          family.compare(family.size() - s.size(), s.size(), s) == 0 &&
          typed.count(family.substr(0, family.size() - s.size())) != 0) {
        family = family.substr(0, family.size() - s.size());
        break;
      }
    }
    if (typed.count(family) == 0) return "sample before TYPE: " + line;
    if (typed[family] == "histogram") {
      // One bucket ladder per series: the family may carry many label
      // sets (repl_stage_seconds{stage=...}), each cumulative on its own.
      HistState& h = hists[family + "{" + series_key + "}"];
      if (name == family + "_bucket") {
        if (le.empty()) return "bucket without le: " + line;
        const auto count = static_cast<std::uint64_t>(v);
        if (count < h.last_bucket) return "non-cumulative bucket: " + line;
        h.last_bucket = count;
        if (le == "+Inf") {
          h.saw_inf = true;
          h.inf_count = count;
        }
      } else if (name == family + "_count") {
        if (!h.saw_inf || static_cast<std::uint64_t>(v) != h.inf_count) {
          return "_count != +Inf bucket: " + line;
        }
      }
    }
  }
  return "";
}

TEST(ObsPrometheusTest, ExpositionPassesGrammarValidator) {
  MetricsRegistry r;
  r.counter("repl_events_total", "Events ingested").inc(12345);
  r.gauge("repl_queue_depth", "Queued events").set(7.5);
  Histogram& h = r.histogram("repl_batch_seconds", "Batch latency",
                             Histogram::default_latency_bounds());
  h.observe(0.001);
  h.observe(0.5);
  r.counter("repl_stage_total", "Labelled \"counter\"\nwith escapes",
            {{"stage", "route\\x"}})
      .inc();
  const std::string text = obs::prometheus_text(r);
  EXPECT_EQ(validate_prometheus(text), "") << text;
  EXPECT_NE(text.find("# TYPE repl_batch_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("repl_batch_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("repl_events_total 12345"), std::string::npos);
  EXPECT_NE(text.find("{stage=\"route\\\\x\"}"), std::string::npos);
}

TEST(ObsPrometheusTest, ValidatorCatchesMalformedText) {
  EXPECT_NE(validate_prometheus("x_total 1\n"), "");  // sample before TYPE
  EXPECT_NE(validate_prometheus("# TYPE x_total counter\nx_total one\n"),
            "");
  EXPECT_NE(validate_prometheus("# TYPE 0bad counter\n"), "");
  EXPECT_NE(validate_prometheus("# TYPE x_total counter\nx_total 1"),
            "");  // no trailing newline
  EXPECT_EQ(validate_prometheus("# TYPE x_total counter\nx_total 1\n"), "");
}

TEST(ObsJsonTest, JsonExpositionCarriesSeriesAndExtra) {
  MetricsRegistry r;
  r.counter("c_total", "").inc(5);
  r.histogram("h_seconds", "", {1.0}).observe(0.5);
  const std::string text = obs::metrics_json_text(r, [](JsonWriter& w) {
    w.key("extra").value("yes");
  });
  EXPECT_NE(text.find("\"c_total\":{\"type\":\"counter\",\"value\":5"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"h_seconds\":{\"type\":\"histogram\",\"count\":1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"extra\":\"yes\""), std::string::npos) << text;
}

// ---------------------------------------------------------------------
// HTTP request parsing + content negotiation

TEST(ObsHttpParseTest, ParsesVariants) {
  HttpRequest r = obs::parse_http_request(
      "GET /metrics?x=1&y=2 HTTP/1.0\r\nAccept: application/json\r\n"
      "X-Custom:  padded  \r\n\r\n");
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.path, "/metrics");
  EXPECT_EQ(r.query, "x=1&y=2");
  EXPECT_EQ(r.version, "HTTP/1.0");
  EXPECT_EQ(r.header("accept"), "application/json");
  EXPECT_EQ(r.header("x-custom"), "padded");
  EXPECT_EQ(r.header("missing"), "");

  // Version-less request line (HTTP/0.9 style) still routes.
  EXPECT_TRUE(obs::parse_http_request("GET /metrics\r\n\r\n").valid);
  // Bare LF instead of CRLF.
  EXPECT_TRUE(obs::parse_http_request("GET /metrics HTTP/1.1\n\n").valid);

  EXPECT_FALSE(obs::parse_http_request("").valid);
  EXPECT_FALSE(obs::parse_http_request("\r\n").valid);
  EXPECT_FALSE(obs::parse_http_request("GET\r\n").valid);
  EXPECT_FALSE(obs::parse_http_request("GET metrics HTTP/1.1\r\n").valid);
  EXPECT_FALSE(obs::parse_http_request("GET /x FTP/9\r\n").valid);
}

TEST(ObsHttpParseTest, KeepAliveNegotiationFollowsHttpVersionRules) {
  const auto wants = [](const std::string& raw) {
    return obs::http_keepalive_requested(obs::parse_http_request(raw));
  };
  // HTTP/1.1: persistent unless the client opts out.
  EXPECT_TRUE(wants("GET /metrics HTTP/1.1\r\n\r\n"));
  EXPECT_FALSE(wants("GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n"));
  EXPECT_FALSE(wants("GET /metrics HTTP/1.1\r\nConnection: CLOSE\r\n\r\n"));
  // HTTP/1.0: persistent only on an explicit opt-in.
  EXPECT_FALSE(wants("GET /metrics HTTP/1.0\r\n\r\n"));
  EXPECT_TRUE(wants("GET /metrics HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"));
  // Version-less and invalid request lines never keep the socket.
  EXPECT_FALSE(wants("GET /metrics\r\n\r\n"));
  EXPECT_FALSE(wants("garbage\r\n\r\n"));
}

TEST(ObsHttpTest, ContentNegotiationAndStatusBranches) {
  MetricsRegistry r;
  r.counter("neg_total", "").inc(9);
  obs::MetricsHttpServer server(r, {});

  const auto request = [](const std::string& raw) {
    return obs::parse_http_request(raw);
  };
  // Default: Prometheus text.
  std::string resp = server.respond(request("GET /metrics HTTP/1.1\r\n\r\n"));
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find(obs::prometheus_content_type()), std::string::npos);
  EXPECT_NE(resp.find("neg_total 9"), std::string::npos);

  // Accept: application/json and /metrics.json negotiate JSON.
  for (const char* raw :
       {"GET /metrics HTTP/1.1\r\nAccept: application/json\r\n\r\n",
        "GET /metrics.json HTTP/1.1\r\n\r\n",
        "GET /metrics.json?pretty=1 HTTP/1.0\r\n\r\n"}) {
    resp = server.respond(request(raw));
    EXPECT_NE(resp.find("application/json"), std::string::npos) << raw;
    EXPECT_NE(resp.find("\"neg_total\""), std::string::npos) << raw;
  }

  // A query string on /metrics must not break the default route.
  resp = server.respond(request("GET /metrics?x=1 HTTP/1.0\r\n\r\n"));
  EXPECT_NE(resp.find("neg_total 9"), std::string::npos);

  resp = server.respond(request("GET /healthz HTTP/1.1\r\n\r\n"));
  EXPECT_NE(resp.find("\"status\":\"ok\""), std::string::npos);

  // Every branch closes the connection and sizes the body.
  for (const char* raw :
       {"GET /metrics HTTP/1.1\r\n\r\n", "GET /nope HTTP/1.1\r\n\r\n",
        "POST /metrics HTTP/1.1\r\n\r\n", "garbage\r\n\r\n"}) {
    resp = server.respond(request(raw));
    EXPECT_NE(resp.find("Connection: close"), std::string::npos) << raw;
    const std::size_t cl = resp.find("Content-Length: ");
    ASSERT_NE(cl, std::string::npos) << raw;
    const std::size_t body = resp.find("\r\n\r\n");
    ASSERT_NE(body, std::string::npos) << raw;
    EXPECT_EQ(static_cast<std::size_t>(
                  std::stoul(resp.substr(cl + 16))),
              resp.size() - body - 4)
        << raw;
  }
  EXPECT_NE(server.respond(request("POST /metrics HTTP/1.1\r\n\r\n"))
                .find("405"),
            std::string::npos);
  EXPECT_NE(server.respond(request("GET /nope HTTP/1.1\r\n\r\n")).find("404"),
            std::string::npos);
  EXPECT_NE(server.respond(request("garbage\r\n\r\n")).find("400"),
            std::string::npos);
}

TEST(ObsHttpTest, ServesOverRealSockets) {
  MetricsRegistry r;
  r.counter("sock_total", "").inc(3);
  obs::MetricsHttpServer server(r, {});
  server.start();
  ASSERT_GT(server.port(), 0);

  Socket sock = connect_tcp("127.0.0.1", server.port());
  // Opt out of keep-alive so the server closes and EOF ends the read.
  const std::string request =
      "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
  sock.write_all(reinterpret_cast<const unsigned char*>(request.data()),
                 request.size());
  std::string response;
  unsigned char buf[512];
  for (;;) {
    const std::size_t n = sock.read_some(buf, sizeof(buf));
    if (n == 0) break;
    response.append(reinterpret_cast<const char*>(buf), n);
  }
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("sock_total 3"), std::string::npos);
  server.stop();
}

/// Reads one full HTTP response (head + Content-Length body) off `sock`,
/// carrying any read-ahead between calls in `buffer`. "" on EOF.
std::string read_http_response(Socket& sock, std::string& buffer) {
  unsigned char buf[1024];
  for (;;) {
    const std::size_t head = buffer.find("\r\n\r\n");
    if (head != std::string::npos) {
      const std::size_t cl = buffer.find("Content-Length: ");
      EXPECT_NE(cl, std::string::npos) << buffer;
      if (cl == std::string::npos) return "";
      const std::size_t total =
          head + 4 + static_cast<std::size_t>(std::stoul(buffer.substr(cl + 16)));
      if (buffer.size() >= total) {
        const std::string response = buffer.substr(0, total);
        buffer.erase(0, total);
        return response;
      }
    }
    const std::size_t n = sock.read_some(buf, sizeof(buf));
    if (n == 0) return "";
    buffer.append(reinterpret_cast<const char*>(buf), n);
  }
}

TEST(ObsHttpTest, KeepAliveReusesOneSocketUpToTheRequestBound) {
  MetricsRegistry r;
  r.counter("ka_total", "").inc(5);
  obs::MetricsHttpOptions options;
  options.max_requests_per_connection = 3;
  obs::MetricsHttpServer server(r, options);
  server.start();
  ASSERT_GT(server.port(), 0);

  Socket sock = connect_tcp("127.0.0.1", server.port());
  std::string buffer;
  const std::string request = "GET /metrics HTTP/1.1\r\n\r\n";
  const auto roundtrip = [&] {
    sock.write_all(reinterpret_cast<const unsigned char*>(request.data()),
                   request.size());
    return read_http_response(sock, buffer);
  };

  // Requests 1 and 2 keep the socket; request 3 hits the bound.
  for (int i = 0; i < 2; ++i) {
    const std::string resp = roundtrip();
    EXPECT_NE(resp.find("200 OK"), std::string::npos) << i;
    EXPECT_NE(resp.find("Connection: keep-alive"), std::string::npos) << i;
    EXPECT_NE(resp.find("ka_total 5"), std::string::npos) << i;
  }
  const std::string last = roundtrip();
  EXPECT_NE(last.find("200 OK"), std::string::npos);
  EXPECT_NE(last.find("Connection: close"), std::string::npos);
  unsigned char byte = 0;
  EXPECT_EQ(sock.read_some(&byte, 1), 0u);  // server closed at the bound

  // An explicit Connection: close is honored on the first request.
  Socket once = connect_tcp("127.0.0.1", server.port());
  const std::string closing =
      "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
  once.write_all(reinterpret_cast<const unsigned char*>(closing.data()),
                 closing.size());
  std::string once_buffer;
  const std::string only = read_http_response(once, once_buffer);
  EXPECT_NE(only.find("Connection: close"), std::string::npos);
  EXPECT_EQ(once.read_some(&byte, 1), 0u);
  server.stop();
}

TEST(ObsHttpTest, ExtraSamplesFederateIntoEveryExposition) {
  MetricsRegistry r;
  r.counter("zz_local_total", "coordinator-side series").inc(2);
  obs::MetricsHttpServer server(r, {});
  server.set_extra_samples([] {
    Sample s;
    s.name = "aa_remote_total";
    s.help = "worker-side series";
    s.type = obs::MetricType::kCounter;
    s.labels = {{"partition", "3"}};
    s.counter_value = 7;
    s.value = 7.0;
    return std::vector<Sample>{s};
  });

  const std::string text =
      server.respond(obs::parse_http_request("GET /metrics HTTP/1.1\r\n\r\n"));
  EXPECT_NE(text.find("aa_remote_total{partition=\"3\"} 7"), std::string::npos)
      << text;
  EXPECT_NE(text.find("zz_local_total 2"), std::string::npos);
  // The merge is re-sorted: the injected series lands before the local one.
  EXPECT_LT(text.find("aa_remote_total"), text.find("zz_local_total"));
  const std::size_t body = text.find("\r\n\r\n");
  ASSERT_NE(body, std::string::npos);
  EXPECT_EQ(validate_prometheus(text.substr(body + 4)), "") << text;

  const std::string json = server.respond(obs::parse_http_request(
      "GET /metrics.json HTTP/1.1\r\n\r\n"));
  EXPECT_NE(json.find("aa_remote_total"), std::string::npos);
  EXPECT_NE(json.find("zz_local_total"), std::string::npos);
}

// ---------------------------------------------------------------------
// Federation: the metrics-message sample codec and the coordinator merge

TEST(ObsFederationTest, SampleCodecRoundTripsEveryTypeAndStaysStrict) {
  std::vector<Sample> in;
  Sample c;
  c.name = "repl_events_ingested_total";
  c.help = "Events ingested";
  c.type = obs::MetricType::kCounter;
  c.counter_value = 123456789;
  c.value = 123456789.0;
  in.push_back(c);
  Sample g;
  g.name = "repl_net_events_queued";
  g.type = obs::MetricType::kGauge;
  g.labels = {{"listener", "unix"}};
  g.value = -3.25;
  in.push_back(g);
  Sample h;
  h.name = "repl_batch_seconds";
  h.help = "Batch latency";
  h.type = obs::MetricType::kHistogram;
  h.bounds = {0.5, 1.5, 4.5};
  h.cumulative = {2, 5, 7, 9};
  h.count = 9;
  h.sum = 13.75;
  in.push_back(h);

  std::vector<unsigned char> bytes;
  obs::encode_samples(in, bytes);
  const std::vector<Sample> out =
      obs::decode_samples(bytes.data(), bytes.size(), in.size(), "test");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].name, c.name);
  EXPECT_EQ(out[0].help, c.help);
  EXPECT_EQ(out[0].type, obs::MetricType::kCounter);
  EXPECT_EQ(out[0].counter_value, 123456789u);
  EXPECT_EQ(out[1].type, obs::MetricType::kGauge);
  ASSERT_EQ(out[1].labels.size(), 1u);
  EXPECT_EQ(out[1].labels[0].first, "listener");
  EXPECT_EQ(out[1].labels[0].second, "unix");
  EXPECT_EQ(out[1].value, -3.25);
  EXPECT_EQ(out[2].type, obs::MetricType::kHistogram);
  EXPECT_EQ(out[2].bounds, h.bounds);
  EXPECT_EQ(out[2].cumulative, h.cumulative);
  EXPECT_EQ(out[2].count, 9u);  // derived from the +Inf bucket
  EXPECT_EQ(out[2].sum, 13.75);

  // The decoder is exact-byte and exact-count: anything else throws.
  std::vector<unsigned char> tampered = bytes;
  tampered.push_back(0);  // trailing byte
  EXPECT_THROW(
      obs::decode_samples(tampered.data(), tampered.size(), 3, "test"),
      std::runtime_error);
  EXPECT_THROW(obs::decode_samples(bytes.data(), bytes.size(), 2, "test"),
               std::runtime_error);  // bytes left over after last sample
  EXPECT_THROW(obs::decode_samples(bytes.data(), bytes.size() - 1, 3, "test"),
               std::runtime_error);  // truncated
  tampered = bytes;
  tampered[0] = 9;  // unknown sample type tag
  EXPECT_THROW(
      obs::decode_samples(tampered.data(), tampered.size(), 3, "test"),
      std::runtime_error);
}

TEST(ObsFederationTest, FederationLabelsPartitionsAndStaysMonotone) {
  obs::FederatedMetrics fed;
  Sample c;
  c.name = "repl_events_ingested_total";
  c.type = obs::MetricType::kCounter;
  c.counter_value = 100;
  c.value = 100.0;
  fed.update(0, {c});
  Sample c1 = c;
  c1.counter_value = 150;
  fed.update(1, {c1});

  // The same series from two partitions federates into two labeled
  // samples, not one clobbered slot.
  std::size_t labeled = 0;
  for (const Sample& s : fed.collect()) {
    if (s.name != "repl_events_ingested_total") continue;
    ++labeled;
    ASSERT_EQ(s.labels.size(), 1u);
    EXPECT_EQ(s.labels[0].first, "partition");
    const std::uint64_t want = s.labels[0].second == "0" ? 100u : 150u;
    EXPECT_EQ(s.counter_value, want);
  }
  EXPECT_EQ(labeled, 2u);
  EXPECT_EQ(fed.counter_value(0, "repl_events_ingested_total"), 100u);
  EXPECT_EQ(fed.counter_value(1, "repl_events_ingested_total"), 150u);
  EXPECT_EQ(fed.counter_value(2, "repl_events_ingested_total"), 0u);
  ASSERT_EQ(fed.partitions().size(), 2u);

  // A respawned worker re-seeds its counters below the pre-kill value;
  // the federated view must not go backwards, then tracks the catch-up.
  Sample low = c;
  low.counter_value = 40;
  fed.update(0, {low});
  EXPECT_EQ(fed.counter_value(0, "repl_events_ingested_total"), 100u);
  Sample high = c;
  high.counter_value = 170;
  fed.update(0, {high});
  EXPECT_EQ(fed.counter_value(0, "repl_events_ingested_total"), 170u);

  // A snapshot that omits a series retains the last value (respawned
  // workers re-register series lazily).
  Sample other;
  other.name = "repl_checkpoints_total";
  other.type = obs::MetricType::kCounter;
  other.counter_value = 4;
  other.value = 4.0;
  fed.update(0, {other});
  EXPECT_EQ(fed.counter_value(0, "repl_events_ingested_total"), 170u);
  EXPECT_EQ(fed.counter_value(0, "repl_checkpoints_total"), 4u);
}

TEST(ObsFederationTest, FederatedExpositionEscapesLabelsAndValidates) {
  obs::FederatedMetrics fed;
  Sample s;
  s.name = "repl_label_escape";
  s.type = obs::MetricType::kGauge;
  s.labels = {{"path", "a\"b\\c\nd"}};
  s.value = 1.0;
  fed.update(7, {s});

  const std::string text = obs::prometheus_text(fed.collect());
  EXPECT_EQ(validate_prometheus(text), "") << text;
  EXPECT_NE(text.find("partition=\"7\""), std::string::npos) << text;
  EXPECT_NE(text.find("a\\\"b\\\\c\\nd"), std::string::npos) << text;
}

// ---------------------------------------------------------------------
// Structured logging

TEST(ObsLogTest, SpecGatesComponentsAndMacrosSkipDisabledWork) {
  obs::Logger& log = obs::Logger::global();
  log.reset();
  std::vector<std::string> lines;
  log.set_sink([&lines](const std::string& line) { lines.push_back(line); });
  log.configure("warn,net=debug");
  EXPECT_FALSE(log.enabled(obs::LogLevel::kInfo, "engine"));
  EXPECT_TRUE(log.enabled(obs::LogLevel::kWarn, "engine"));
  EXPECT_TRUE(log.enabled(obs::LogLevel::kDebug, "net"));
  EXPECT_FALSE(log.enabled(obs::LogLevel::kTrace, "net"));

  // A disabled line must not evaluate its stream expression.
  int evaluated = 0;
  const auto observe = [&evaluated] {
    ++evaluated;
    return "seen";
  };
  REPL_LOG_INFO("engine", "skipped " << observe());
  REPL_LOG_WARN("engine", "kept " << observe());
  EXPECT_EQ(evaluated, 1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("WARN"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("engine kept seen"), std::string::npos) << lines[0];

  // Malformed specs throw without half-applying.
  EXPECT_THROW(log.configure("info,info"), std::invalid_argument);
  EXPECT_THROW(log.configure("=debug"), std::invalid_argument);
  EXPECT_THROW(log.configure("net=loud"), std::invalid_argument);
  EXPECT_THROW(obs::parse_log_level("loud"), std::invalid_argument);
  EXPECT_EQ(obs::parse_log_level("WARNING"), obs::LogLevel::kWarn);
  EXPECT_EQ(std::string(obs::log_level_name(obs::LogLevel::kWarn)), "warn");
  log.reset();
}

TEST(ObsLogTest, JsonModeEmitsOneEscapedObjectPerLine) {
  obs::Logger& log = obs::Logger::global();
  log.reset();
  std::vector<std::string> lines;
  log.set_sink([&lines](const std::string& line) { lines.push_back(line); });
  log.set_json(true);
  EXPECT_TRUE(log.json());

  log.log(obs::LogLevel::kError, "net",
          std::string("quote \" slash \\ nl \n tab \t ctl \x01"),
          {{"peer", "10.0.0.1:99"}});
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"level\":\"error\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"component\":\"net\""), std::string::npos) << line;
  EXPECT_NE(line.find("\\\""), std::string::npos) << line;
  EXPECT_NE(line.find("\\\\"), std::string::npos) << line;
  EXPECT_NE(line.find("\\n"), std::string::npos) << line;
  EXPECT_NE(line.find("\\t"), std::string::npos) << line;
  EXPECT_NE(line.find("\\u0001"), std::string::npos) << line;
  EXPECT_NE(line.find("\"peer\":\"10.0.0.1:99\""), std::string::npos) << line;
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one line, escaped newline
  log.reset();
}

// ---------------------------------------------------------------------
// Tracing: spans, part files, and the Chrome-trace merge

TEST(ObsTraceTest, SpansFlushToPartsAndMergeSkipsMissingOnes) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "repl_obs_trace_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string part_a = (dir / "a.jsonl").string();
  const std::string part_b = (dir / "b.jsonl").string();

  obs::Tracer& tracer = obs::Tracer::global();
  ASSERT_FALSE(tracer.enabled());
  {
    // Disabled tracer: spans are no-ops with no context.
    obs::Span noop("disabled.span");
    noop.set_arg("events", 1);
    EXPECT_FALSE(noop.context().valid());
  }

  tracer.start(part_a, "proc-a");
  EXPECT_TRUE(tracer.enabled());
  obs::TraceContext root_ctx;
  {
    obs::Span root("test.root");
    root.set_arg("events", 42);
    root_ctx = root.context();
    EXPECT_TRUE(root_ctx.valid());
    obs::Span child("test.child", root_ctx);
    EXPECT_EQ(child.context().trace_id, root_ctx.trace_id);
    EXPECT_NE(child.context().span_id, root_ctx.span_id);
  }
  EXPECT_NE(tracer.next_id(), 0u);
  tracer.stop();
  EXPECT_FALSE(tracer.enabled());
  tracer.stop();  // idempotent

  // The part file is one complete JSON object per line: the process
  // metadata plus both spans.
  std::ifstream part(part_a);
  ASSERT_TRUE(part.good());
  std::size_t json_lines = 0;
  bool saw_root = false;
  bool saw_meta = false;
  std::string line;
  while (std::getline(part, line)) {
    if (line.empty()) continue;
    ++json_lines;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    if (line.find("test.root") != std::string::npos) saw_root = true;
    if (line.find("proc-a") != std::string::npos) saw_meta = true;
  }
  EXPECT_GE(json_lines, 3u);
  EXPECT_TRUE(saw_root);
  EXPECT_TRUE(saw_meta);

  // A second incarnation writes its own part.
  tracer.start(part_b, "proc-b");
  { obs::Span other("test.other"); }
  tracer.stop();

  // Merge stitches both parts and skips the part that never flushed.
  const std::string merged = (dir / "trace.json").string();
  const std::size_t events = obs::merge_trace_parts(
      {part_a, part_b, (dir / "missing.jsonl").string()}, merged);
  EXPECT_GE(events, 4u);
  std::ifstream mf(merged);
  const std::string doc((std::istreambuf_iterator<char>(mf)),
                        std::istreambuf_iterator<char>());
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("test.root"), std::string::npos);
  EXPECT_NE(doc.find("test.child"), std::string::npos);
  EXPECT_NE(doc.find("test.other"), std::string::npos);
  EXPECT_NE(doc.find("proc-a"), std::string::npos);
  EXPECT_NE(doc.find("proc-b"), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Concurrency: writers hammer while a scraper reads (TSan coverage)

TEST(ObsConcurrencyTest, ScrapesStayMonotoneUnderConcurrentWriters) {
  MetricsRegistry r;
  Counter& counter = r.counter("hammer_total", "");
  Histogram& hist = r.histogram("hammer_seconds", "", {0.25, 0.5, 0.75});
  Gauge& gauge = r.gauge("hammer_gauge", "");

  constexpr int kWriters = 8;
  constexpr std::uint64_t kPerWriter = 20000;
  std::atomic<int> done{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        counter.inc();
        hist.observe(static_cast<double>((i + static_cast<std::uint64_t>(w)) %
                                         10) /
                     10.0);
        gauge.set(static_cast<double>(i));
      }
      done.fetch_add(1);
    });
  }

  // Scrape continuously until every writer finished: counters must be
  // monotone scrape-over-scrape, and a histogram's count must equal its
  // +Inf bucket in every snapshot — no torn totals, ever.
  std::uint64_t last_count = 0;
  std::uint64_t last_hist = 0;
  while (done.load() < kWriters) {
    const std::uint64_t now = counter.value();
    EXPECT_GE(now, last_count);
    last_count = now;
    const Histogram::Snapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count, snap.cumulative.back());
    for (std::size_t i = 1; i < snap.cumulative.size(); ++i) {
      EXPECT_GE(snap.cumulative[i], snap.cumulative[i - 1]);
    }
    EXPECT_GE(snap.count, last_hist);
    last_hist = snap.count;
    obs::prometheus_text(r);  // full exposition under fire
  }
  for (std::thread& t : writers) t.join();

  EXPECT_EQ(counter.value(), kWriters * kPerWriter);
  const Histogram::Snapshot final_snap = hist.snapshot();
  EXPECT_EQ(final_snap.count, kWriters * kPerWriter);
}

// ---------------------------------------------------------------------
// Engine parity: telemetry on == telemetry off, bit for bit

EnginePolicyFactory obs_policy_factory() {
  return [](const EngineObjectContext&) -> PolicyPtr {
    return std::make_unique<DrwpPolicy>(0.3);
  };
}

EnginePredictorFactory obs_predictor_factory(int servers) {
  return [servers](const EngineObjectContext&) -> PredictorPtr {
    return std::make_unique<LastGapPredictor>(servers);
  };
}

constexpr int kObsServers = 5;

std::vector<LogEvent> obs_events(std::size_t count) {
  std::vector<LogEvent> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    events.push_back(
        LogEvent{0.5 * static_cast<double>(i + 1), (i * 131) % 97,
                 static_cast<std::uint32_t>((i * 17) % kObsServers)});
  }
  return events;
}

/// In-memory EventSource: serves pre-chunked batches of a fixed stream
/// (binds the same synthetic identity the net source uses).
class VectorSource final : public EventSource {
 public:
  VectorSource(std::vector<LogEvent> events, std::size_t batch)
      : events_(std::move(events)), batch_(batch) {}

  void attach(StreamingEngine& engine) override {
    EventLogHeader header;
    header.version = EventLogHeader::kVersionCompressed;
    header.num_servers = kObsServers;
    header.num_events = EventLogHeader::kUnknownCount;
    engine.bind_log(header);
  }

  bool next_batch(std::vector<LogEvent>& out) override {
    out.clear();
    if (at_ >= events_.size()) return false;
    const std::size_t n = std::min(batch_, events_.size() - at_);
    out.assign(events_.begin() + static_cast<std::ptrdiff_t>(at_),
               events_.begin() + static_cast<std::ptrdiff_t>(at_ + n));
    at_ += n;
    return true;
  }

 private:
  std::vector<LogEvent> events_;
  std::size_t batch_;
  std::size_t at_ = 0;
};

EngineMetrics obs_serve(MetricsRegistry* registry, ServeOptions serve_options,
                        std::size_t count) {
  SystemConfig config;
  config.num_servers = kObsServers;
  config.transfer_cost = 10.0;
  EngineOptions options;
  options.metrics = registry;
  StreamingEngine engine(config, options, obs_policy_factory(),
                         obs_predictor_factory(kObsServers));
  VectorSource source(obs_events(count), 256);
  return engine.serve(source, serve_options);
}

TEST(ObsEngineParityTest, TelemetryOnAggregatesAreBitIdentical) {
  const EngineMetrics off = obs_serve(nullptr, ServeOptions{}, 5000);
  MetricsRegistry registry;
  const EngineMetrics on = obs_serve(&registry, ServeOptions{}, 5000);

  EXPECT_EQ(off.objects, on.objects);
  EXPECT_EQ(off.events, on.events);
  EXPECT_EQ(off.num_local, on.num_local);
  EXPECT_EQ(off.num_transfers, on.num_transfers);
  EXPECT_EQ(off.online_cost, on.online_cost);
  EXPECT_EQ(off.lower_bound, on.lower_bound);

  // The registry actually observed the serve.
  bool saw_ingested = false;
  bool saw_stage = false;
  for (const Sample& s : registry.collect()) {
    if (s.name == "repl_events_ingested_total") {
      saw_ingested = true;
      EXPECT_EQ(s.counter_value, 5000u);
    }
    // Stages that ran (route/execute/reduce) have observations; the
    // checkpoint stages legitimately stay empty in this serve.
    if (s.name == "repl_stage_seconds" && s.count > 0) saw_stage = true;
  }
  EXPECT_TRUE(saw_ingested);
  EXPECT_TRUE(saw_stage);
  EXPECT_EQ(validate_prometheus(obs::prometheus_text(registry)), "");
}

TEST(ObsEngineParityTest, StatsReporterEmitsLines) {
  std::vector<std::string> lines;
  ServeOptions serve_options;
  serve_options.stats_every = 1e-9;  // every batch
  serve_options.stats_sink = [&lines](const std::string& line) {
    lines.push_back(line);
  };
  serve_options.stats_extra = [] { return std::string("extra=1"); };
  const EngineMetrics metrics = obs_serve(nullptr, serve_options, 5000);
  EXPECT_EQ(metrics.events, 5000u);
  ASSERT_FALSE(lines.empty());
  for (const std::string& line : lines) {
    EXPECT_EQ(line.rfind("[serve]", 0), 0u) << line;
    EXPECT_NE(line.find("events="), std::string::npos) << line;
    EXPECT_NE(line.find("p50_batch="), std::string::npos) << line;
    EXPECT_NE(line.find("p99_batch="), std::string::npos) << line;
    EXPECT_NE(line.find("extra=1"), std::string::npos) << line;
  }
  // The final line reports the full drain.
  EXPECT_NE(lines.back().find("events=5000"), std::string::npos)
      << lines.back();
}

}  // namespace
}  // namespace repl
