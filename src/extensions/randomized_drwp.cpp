#include "extensions/randomized_drwp.hpp"

#include <cmath>
#include <sstream>

namespace repl {

RandomizedDrwpPolicy::RandomizedDrwpPolicy(double alpha, std::uint64_t seed)
    : DrwpPolicy(alpha), seed_(seed), rng_(seed) {}

void RandomizedDrwpPolicy::reset(const SystemConfig& config,
                                 const Prediction& pred0, EventSink& sink) {
  rng_ = Rng(seed_);  // reproducible runs
  DrwpPolicy::reset(config, pred0, sink);
}

double RandomizedDrwpPolicy::choose_duration(const Prediction& pred,
                                             const ServeContext&) {
  if (pred.within_lambda) return lambda();
  // z in [0, α] with density proportional to e^(z/α); inverse-CDF sample.
  const double u = rng_.next_double();
  const double z = alpha() * std::log1p(u * (std::exp(1.0) - 1.0));
  // Guard against a zero duration (u = 0).
  return std::max(z, 1e-9 * alpha()) * lambda();
}

void RandomizedDrwpPolicy::save_state(StateWriter& out) const {
  DrwpPolicy::save_state(out);
  out.u64(seed_);
  const Rng::State state = rng_.state();
  for (const std::uint64_t word : state.s) out.u64(word);
  out.boolean(state.have_cached_normal);
  out.f64(state.cached_normal);
}

void RandomizedDrwpPolicy::load_state(StateReader& in) {
  DrwpPolicy::load_state(in);
  if (in.u64() != seed_) in.fail("randomized-drwp seed mismatch");
  Rng::State state;
  for (std::uint64_t& word : state.s) word = in.u64();
  state.have_cached_normal = in.boolean();
  state.cached_normal = in.f64();
  rng_.set_state(state);
}

std::string RandomizedDrwpPolicy::name() const {
  std::ostringstream os;
  os << "randomized-drwp(alpha=" << alpha() << ")";
  return os.str();
}

std::unique_ptr<ReplicationPolicy> RandomizedDrwpPolicy::clone() const {
  return std::make_unique<RandomizedDrwpPolicy>(*this);
}

}  // namespace repl
