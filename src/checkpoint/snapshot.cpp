#include "checkpoint/snapshot.hpp"

#include <bit>
#include <limits>
#include <stdexcept>

#include "codec/crc32.hpp"
#include "codec/endian.hpp"
#include "codec/word_codec.hpp"
#include "util/check.hpp"

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

namespace repl {

namespace {

/// Sanity cap on the spec strings: a corrupt length field must not turn
/// into a multi-GB allocation.
constexpr std::size_t kMaxSpecBytes = std::size_t{1} << 16;

}  // namespace

void sync_path_best_effort(const std::string& path) {
#ifdef __unix__
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);  // best effort: durability, not correctness
    ::close(fd);
  }
#else
  (void)path;
#endif
}

SnapshotWriter::SnapshotWriter(const std::string& path,
                               const SnapshotHeader& header)
    : out_(path, std::ios::binary | std::ios::trunc),
      path_(path),
      header_(header) {
  if (!out_) {
    throw std::runtime_error("checkpoint " + path_ +
                             ": cannot open for writing");
  }
  header_.version = SnapshotHeader::kVersion;  // writers always emit v3
  REPL_REQUIRE_MSG(header_.codec == SnapshotHeader::kCodecRaw ||
                       header_.codec == SnapshotHeader::kCodecWord,
                   "unknown snapshot codec " << header_.codec);
  unsigned char raw[SnapshotHeader::kSize] = {};
  store_le64(raw, SnapshotHeader::kMagic);
  store_le32(raw + 8, SnapshotHeader::kVersion);
  store_le32(raw + 12, header_.num_servers);
  store_le64(raw + 16, header_.num_objects);
  store_le64(raw + 24, header_.events_ingested);
  store_le64(raw + 32, header_.batches);
  store_le64(raw + 40, header_.base_seed);
  store_le64(raw + 48, std::bit_cast<std::uint64_t>(header_.last_batch_time));
  store_le32(raw + 56, header_.flags);
  out_.write(reinterpret_cast<const char*>(raw), SnapshotHeader::kSize);

  // Version-2 extension: log binding + component specs.
  unsigned char ext[SnapshotHeader::kExtensionSize];
  store_le64(ext, header_.log_hash);
  store_le64(ext + 8, header_.log_num_objects);
  store_le64(ext + 16, header_.log_num_events);
  out_.write(reinterpret_cast<const char*>(ext), sizeof(ext));
  const auto write_string = [this](const std::string& s) {
    REPL_REQUIRE(s.size() <= kMaxSpecBytes);
    unsigned char len[4];
    store_le32(len, static_cast<std::uint32_t>(s.size()));
    out_.write(reinterpret_cast<const char*>(len), sizeof(len));
    out_.write(s.data(), static_cast<std::streamsize>(s.size()));
  };
  write_string(header_.policy_spec);
  write_string(header_.predictor_spec);

  // Version-3 extension: the object-record payload codec.
  unsigned char codec_raw[4];
  store_le32(codec_raw, header_.codec);
  out_.write(reinterpret_cast<const char*>(codec_raw), sizeof(codec_raw));

  if (!out_) throw std::runtime_error("checkpoint " + path_ + ": header write failed");
  bytes_written_ = header_.encoded_size();
  open_ = true;
}

SnapshotWriter::~SnapshotWriter() = default;

void SnapshotWriter::add_object(std::uint64_t object_id,
                                const std::vector<unsigned char>& payload) {
  REPL_CHECK_MSG(open_, "add_object after close()");
  REPL_CHECK_MSG(objects_written_ < header_.num_objects,
                 "more object records than the header promises");
  REPL_CHECK_MSG(objects_written_ == 0 || object_id > last_id_,
                 "object records must have strictly increasing ids");
  REPL_REQUIRE_MSG(payload.size() <= SnapshotHeader::kMaxRecordBytes,
                   "object record of " << payload.size()
                                       << " bytes exceeds the record cap");
  last_id_ = object_id;
  ++objects_written_;

  const std::vector<unsigned char>* encoded = &payload;
  std::vector<unsigned char> packed;
  if (header_.codec == SnapshotHeader::kCodecWord) {
    packed = word_pack(payload);
    encoded = &packed;
  }
  // Guaranteed by the codec's expansion bound given the raw cap above;
  // anything this writer emits must pass the reader's length checks.
  REPL_CHECK(encoded->size() <= SnapshotHeader::kMaxEncodedRecordBytes);
  unsigned char prefix[20];
  store_le64(prefix, object_id);
  store_le32(prefix + 8, static_cast<std::uint32_t>(encoded->size()));
  store_le32(prefix + 12, static_cast<std::uint32_t>(payload.size()));
  std::uint32_t crc = crc32c_update(crc32c_init(), prefix, 16);
  crc = crc32c_final(crc32c_update(crc, encoded->data(), encoded->size()));
  store_le32(prefix + 16, crc);
  out_.write(reinterpret_cast<const char*>(prefix), sizeof(prefix));
  out_.write(reinterpret_cast<const char*>(encoded->data()),
             static_cast<std::streamsize>(encoded->size()));
  if (!out_) {
    throw std::runtime_error("checkpoint " + path_ + ": record write failed");
  }
  bytes_written_ += sizeof(prefix) + encoded->size();
}

void SnapshotWriter::close() {
  REPL_CHECK_MSG(open_, "close() called twice");
  open_ = false;
  REPL_CHECK_MSG(objects_written_ == header_.num_objects,
                 "snapshot holds " << objects_written_
                                   << " object records, header promises "
                                   << header_.num_objects);
  unsigned char footer[8];
  store_le64(footer, SnapshotHeader::kFooterMagic);
  out_.write(reinterpret_cast<const char*>(footer), sizeof(footer));
  out_.flush();
  if (!out_) throw std::runtime_error("checkpoint " + path_ + ": footer write failed");
  bytes_written_ += sizeof(footer);
  out_.close();
  if (out_.fail()) throw std::runtime_error("checkpoint " + path_ + ": close failed");
  // Push the bytes to stable storage before the caller renames this file
  // over the previous snapshot — otherwise a power loss can persist the
  // rename but not the data, destroying the last good checkpoint.
  sync_path_best_effort(path_);
}

SnapshotReader::SnapshotReader(const std::string& path)
    : in_(path, std::ios::binary), path_(path) {
  if (!in_) fail("cannot open for reading");
  unsigned char raw[SnapshotHeader::kSize];
  in_.read(reinterpret_cast<char*>(raw), SnapshotHeader::kSize);
  if (in_.gcount() != static_cast<std::streamsize>(SnapshotHeader::kSize)) {
    fail("truncated header");
  }
  if (load_le64(raw) != SnapshotHeader::kMagic) {
    fail("bad magic (not a checkpoint)");
  }
  header_.version = load_le32(raw + 8);
  if (header_.version == 0 || header_.version > SnapshotHeader::kVersion) {
    fail("unsupported version " + std::to_string(header_.version));
  }
  header_.num_servers = load_le32(raw + 12);
  if (header_.num_servers == 0) fail("zero num_servers");
  header_.num_objects = load_le64(raw + 16);
  header_.events_ingested = load_le64(raw + 24);
  header_.batches = load_le64(raw + 32);
  header_.base_seed = load_le64(raw + 40);
  header_.last_batch_time = std::bit_cast<double>(load_le64(raw + 48));
  header_.flags = load_le32(raw + 56);
  if (header_.version >= 2) {
    unsigned char ext[SnapshotHeader::kExtensionSize];
    in_.read(reinterpret_cast<char*>(ext), sizeof(ext));
    if (in_.gcount() != static_cast<std::streamsize>(sizeof(ext))) {
      fail("truncated header extension");
    }
    header_.log_hash = load_le64(ext);
    header_.log_num_objects = load_le64(ext + 8);
    header_.log_num_events = load_le64(ext + 16);
    const auto read_string = [this](std::string& s, const char* what) {
      unsigned char len_raw[4];
      in_.read(reinterpret_cast<char*>(len_raw), sizeof(len_raw));
      if (in_.gcount() != static_cast<std::streamsize>(sizeof(len_raw))) {
        fail(std::string("truncated ") + what + " length");
      }
      const std::uint32_t len = load_le32(len_raw);
      if (len > kMaxSpecBytes) {
        fail(std::string("implausible ") + what + " length " +
             std::to_string(len));
      }
      s.resize(len);
      if (len > 0) {
        in_.read(s.data(), static_cast<std::streamsize>(len));
        if (in_.gcount() != static_cast<std::streamsize>(len)) {
          fail(std::string("truncated ") + what);
        }
      }
    };
    read_string(header_.policy_spec, "policy spec");
    read_string(header_.predictor_spec, "predictor spec");
  }
  if (header_.version >= 3) {
    unsigned char codec_raw[4];
    in_.read(reinterpret_cast<char*>(codec_raw), sizeof(codec_raw));
    if (in_.gcount() != static_cast<std::streamsize>(sizeof(codec_raw))) {
      fail("truncated codec field");
    }
    header_.codec = load_le32(codec_raw);
    if (header_.codec != SnapshotHeader::kCodecRaw &&
        header_.codec != SnapshotHeader::kCodecWord) {
      fail("unknown object-record codec " + std::to_string(header_.codec));
    }
  } else {
    header_.codec = SnapshotHeader::kCodecRaw;
  }
}

SnapshotHeader read_snapshot_header(const std::string& path) {
  return SnapshotReader(path).header();
}

void SnapshotReader::fail(const std::string& what) const {
  throw std::runtime_error("checkpoint " + path_ + ": " + what);
}

void SnapshotReader::read_exact(void* dst, std::size_t n, const char* what) {
  in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (in_.gcount() != static_cast<std::streamsize>(n)) {
    fail(std::string("truncated ") + what + " after " +
         std::to_string(objects_read_) + " of " +
         std::to_string(header_.num_objects) + " object records");
  }
}

bool SnapshotReader::next_object(std::uint64_t& object_id,
                                 std::vector<unsigned char>& payload) {
  if (objects_read_ == header_.num_objects) {
    if (!footer_checked_) {
      unsigned char footer[8];
      read_exact(footer, sizeof(footer), "footer");
      if (load_le64(footer) != SnapshotHeader::kFooterMagic) {
        fail("bad footer magic (snapshot not sealed)");
      }
      // Bytes after the footer mean the file is not what the header
      // claims — reject rather than silently ignore.
      if (in_.peek() != std::ifstream::traits_type::eof()) {
        fail("trailing bytes after footer");
      }
      footer_checked_ = true;
    }
    return false;
  }
  if (header_.version < 3) {
    unsigned char prefix[12];
    read_exact(prefix, sizeof(prefix), "record prefix");
    object_id = load_le64(prefix);
    if (objects_read_ > 0 && object_id <= prev_id_) {
      fail("object ids out of order at record " +
           std::to_string(objects_read_));
    }
    prev_id_ = object_id;
    const std::uint32_t len = load_le32(prefix + 8);
    if (len > SnapshotHeader::kMaxRecordBytes) {
      fail("implausible record length in record " +
           std::to_string(objects_read_) + " (object " +
           std::to_string(object_id) + ")");
    }
    payload.resize(len);
    if (len > 0) read_exact(payload.data(), len, "record payload");
    ++objects_read_;
    return true;
  }

  unsigned char prefix[20];
  read_exact(prefix, sizeof(prefix), "record prefix");
  object_id = load_le64(prefix);
  if (objects_read_ > 0 && object_id <= prev_id_) {
    fail("object ids out of order at record " +
         std::to_string(objects_read_));
  }
  prev_id_ = object_id;
  const std::uint32_t encoded_len = load_le32(prefix + 8);
  const std::uint32_t raw_len = load_le32(prefix + 12);
  const std::uint32_t expected_crc = load_le32(prefix + 16);
  // Reject implausible lengths before any allocation: a corrupt length
  // field must surface as this diagnostic, not a multi-GB resize (the
  // CRC check that would catch it runs after the payload is read).
  if (encoded_len > SnapshotHeader::kMaxEncodedRecordBytes ||
      raw_len > SnapshotHeader::kMaxRecordBytes) {
    fail("implausible record length in record " +
         std::to_string(objects_read_) + " (object " +
         std::to_string(object_id) + ")");
  }
  // Raw records decode straight into the caller's buffer; only the word
  // codec needs the encoded scratch (restore is a hot path — no copy).
  const bool packed = header_.codec == SnapshotHeader::kCodecWord;
  std::vector<unsigned char>& target = packed ? encoded_ : payload;
  target.resize(encoded_len);
  if (encoded_len > 0) {
    read_exact(target.data(), encoded_len, "record payload");
  }
  std::uint32_t crc = crc32c_update(crc32c_init(), prefix, 16);
  crc = crc32c_final(crc32c_update(crc, target.data(), target.size()));
  if (crc != expected_crc) {
    fail("CRC mismatch in record " + std::to_string(objects_read_) +
         " (object " + std::to_string(object_id) + ")");
  }
  if (packed) {
    payload = word_unpack(encoded_.data(), encoded_.size(), raw_len,
                          "checkpoint " + path_ + ": record " +
                              std::to_string(objects_read_) + " (object " +
                              std::to_string(object_id) + ")");
  } else if (raw_len != encoded_len) {
    fail("raw record " + std::to_string(objects_read_) +
         " declares mismatched lengths");
  }
  ++objects_read_;
  return true;
}

}  // namespace repl
