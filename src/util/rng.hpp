// Deterministic, portable random number generation.
//
// The standard library's engines are portable but its distributions are
// not (their algorithms are implementation-defined), so experiments seeded
// the same way could produce different traces on different standard
// libraries. Every distribution used by the workload generators is
// therefore implemented here, on top of xoshiro256** seeded via SplitMix64.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace repl {

/// SplitMix64: used to expand a 64-bit seed into xoshiro's 256-bit state.
/// Passes BigCrush when used directly; here it is only a seed expander.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, 256-bit state, passes
/// BigCrush. All library randomness flows through this engine.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  std::uint64_t next_u64();
  result_type operator()() { return next_u64(); }

  /// Uniform in [0, 1) with 53 bits of precision.
  double next_double();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Unbiased (rejection sampling).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential with given rate (mean 1/rate).
  double exponential(double rate);

  /// Pareto (Type I) with scale x_m > 0 and shape a > 0.
  double pareto(double x_min, double shape);

  /// Standard normal via Box–Muller (polar form), then scaled.
  double normal(double mean, double stddev);

  /// Jump function: advances the state by 2^128 steps; used to derive
  /// independent streams for parallel workers.
  void jump();

  /// Splits off an independent generator (jump-based substream).
  Rng split();

  /// Raw engine state, exposed so checkpoints can round-trip a generator
  /// mid-stream (xoshiro words plus the Box–Muller cache).
  struct State {
    std::array<std::uint64_t, 4> s{};
    bool have_cached_normal = false;
    double cached_normal = 0.0;
  };
  State state() const { return {s_, have_cached_normal_, cached_normal_}; }
  void set_state(const State& state) {
    s_ = state.s;
    have_cached_normal_ = state.have_cached_normal;
    cached_normal_ = state.cached_normal;
  }

 private:
  std::array<std::uint64_t, 4> s_;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Samples from {1, ..., n} with P(i) proportional to i^(-s).
/// For s = 1 and n = 10 this is exactly the server-assignment rule of the
/// paper's Appendix J. Uses precomputed cumulative weights + binary search.
class ZipfDistribution {
 public:
  ZipfDistribution(int n, double s);

  /// Returns a value in [1, n].
  int sample(Rng& rng) const;

  /// Probability mass of value i (1-based).
  double pmf(int i) const;

  int n() const { return n_; }
  double s() const { return s_; }

 private:
  int n_;
  double s_;
  std::vector<double> cdf_;  // cdf_[i] = P(value <= i+1)
};

}  // namespace repl
