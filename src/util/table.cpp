#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace repl {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i >= s.size()) return false;
  bool digit_seen = false;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != 'e' && c != 'E' && c != '-' && c != '+' &&
               c != '%') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  REPL_REQUIRE(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  REPL_REQUIRE_MSG(row.size() == header_.size(),
                   "row arity " << row.size() << " != header arity "
                                << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::cell(long long v) { return std::to_string(v); }

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      const bool right = looks_numeric(row[c]);
      os << (right ? std::right : std::left) << std::setw(
                static_cast<int>(width[c]))
         << row[c];
    }
    os << "\n";
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::markdown() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    os << "|";
    for (const auto& cell : row) os << " " << cell << " |";
    os << "\n";
  };
  emit(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) os << "---|";
  os << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace repl
