// Cross-process distributed tracing with Chrome trace_event output.
//
// A TraceContext (trace_id + span_id) is minted at the coordinator per
// routed event batch and propagated to workers in-band: a tagged aux
// frame on the v2 event wire (net/wire.hpp) and a field of the control
// `metrics` message (cluster/control.hpp). Worker-side spans adopt the
// most recent wire context as their parent, so one batch's journey —
// coordinator route, wire, worker ingest wait, engine execute — shares
// one trace_id end to end.
//
// Recording is lock-free on the hot path: each thread owns a
// single-producer ring (the flusher is the single consumer) and a span
// records by copying a POD SpanRecord into its ring — no allocation, no
// lock, drop-on-full with a counter. flush() drains every ring into the
// process's part file as JSON lines (one complete Chrome trace event
// per line), so a SIGKILLed worker leaves a valid prefix: every flushed
// span survives. Each worker incarnation writes a distinct part file;
// obs::merge_trace_parts stitches all parts (coordinator + every
// incarnation of every worker) into one {"traceEvents":[...]} document
// that chrome://tracing and Perfetto open as a single timeline.
//
// Timestamps are CLOCK_MONOTONIC, shared by every process on the
// machine, so cross-process span nesting lines up without clock-sync
// machinery (the cluster is single-host today; wire NTP-style offsets
// through TraceContext if that changes).
//
// Tracing is observability, not control flow: spans never touch
// aggregate state, and a serve with tracing on is bit-identical to one
// without (gated in ctest and bench_cluster).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace repl::obs {

/// The propagated slice of a trace: which trace this work belongs to
/// and which span caused it. trace_id 0 = "no context" everywhere.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
};

/// One completed span, as recorded into a thread ring. POD: name and
/// arg_key must point at string literals (or other process-lifetime
/// storage) — the flusher reads them after the span is gone.
struct SpanRecord {
  const char* name = nullptr;
  const char* arg_key = nullptr;
  std::uint64_t start_ns = 0;  ///< CLOCK_MONOTONIC
  std::uint64_t dur_ns = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::uint64_t arg_value = 0;
  std::uint32_t tid = 0;  ///< stable per-thread id within this process
};

/// Process-wide trace collector. start() opens (appends to) a JSONL
/// part file and enables recording; spans no-op while disabled.
class Tracer {
 public:
  static Tracer& global();

  /// Begins recording into `path` (JSON lines, append). `process_name`
  /// labels this process's row in the merged timeline. Throws
  /// std::runtime_error if the file cannot be opened.
  void start(const std::string& path, const std::string& process_name);

  /// Drains every thread ring into the part file and fsync-free
  /// flushes stdio buffers. Cheap enough to call at every checkpoint.
  void flush();

  /// flush() + close. Idempotent; recording disables first.
  void stop();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Process-unique nonzero id (pid-salted, so ids from different
  /// cluster processes never collide in one merged trace).
  std::uint64_t next_id();

  /// Spans lost to full rings since start() (visible in the part file's
  /// final metadata line too).
  std::uint64_t dropped() const;

  const std::string& path() const { return path_; }

  /// Called by Span; public for tests that synthesize records.
  void record(const SpanRecord& record);

  /// Monotonic now, in nanoseconds.
  static std::uint64_t now_ns();

 private:
  Tracer() = default;

  struct ThreadRing;
  ThreadRing& ring_for_this_thread();
  void flush_locked();

  std::atomic<bool> enabled_{false};
  std::string path_;
  void* file_ = nullptr;  // FILE*, opaque to keep <cstdio> out of the header
  std::vector<ThreadRing*> rings_;
  std::atomic<std::uint64_t> id_counter_{0};
  std::uint64_t id_salt_ = 0;
  std::uint32_t next_tid_ = 1;
  mutable std::atomic<std::uint64_t> dropped_{0};
  // Guards rings_ registration and file writes (flush/stop).
  mutable std::mutex mu_;
};

/// RAII span: records [construction, destruction) as one complete
/// ("ph":"X") trace event. With a valid parent the span joins that
/// trace; otherwise it starts a new root trace. Disabled tracer ⇒ every
/// method is a cheap no-op (one relaxed load, no clock reads).
class Span {
 public:
  explicit Span(const char* name) : Span(name, TraceContext{}) {}
  Span(const char* name, TraceContext parent);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  /// Re-parents before end(); used when the parent context arrives
  /// mid-span (e.g. it rode in with the batch the span is waiting for).
  void set_parent(TraceContext parent);

  /// Attaches one integer argument (key must be a string literal).
  void set_arg(const char* key, std::uint64_t value);

  /// This span's own context, for propagation to children.
  TraceContext context() const { return ctx_; }

  /// Records now instead of at destruction. Idempotent.
  void end();

 private:
  const char* name_ = nullptr;
  const char* arg_key_ = nullptr;
  std::uint64_t arg_value_ = 0;
  std::uint64_t start_ns_ = 0;
  std::uint64_t parent_id_ = 0;
  TraceContext ctx_;
  bool armed_ = false;
};

/// Stitches JSONL part files into one Chrome JSON trace document
/// ({"traceEvents":[...]}). Missing or empty parts are skipped (a
/// killed worker may never have flushed); a malformed line fails the
/// merge with a diagnostic naming the part. Returns the number of
/// events written.
std::size_t merge_trace_parts(const std::vector<std::string>& parts,
                              const std::string& out_path);

}  // namespace repl::obs
