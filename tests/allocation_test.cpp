// Proposition-2 allocation tests: the allocation identity (sum of
// per-request allocations equals the independently integrated adjusted
// online cost) across workloads, alphas and prediction regimes, plus
// hand-checked allocations on crafted scenarios.
#include <gtest/gtest.h>

#include "analysis/allocation.hpp"
#include "analysis/request_types.hpp"
#include "core/drwp.hpp"
#include "core/simulator.hpp"
#include "predictor/fixed.hpp"
#include "predictor/noisy.hpp"
#include "predictor/oracle.hpp"
#include "test_util.hpp"
#include "trace/paper_instances.hpp"

namespace repl {
namespace {

using testing::make_config;

TEST(Allocation, HandCheckedTwoServerScenario) {
  // Scenario B of drwp_test: lambda=4, alpha=0.5, always-beyond.
  // Allocations: r0 (Type-1 first request): λ + leftover(2) = 6;
  // r1 (Type-3): t1 - t_dummy = 2; r2 (Type-2): λ + (9-4) + l=2 = 11.
  const SystemConfig config = make_config(2, 4.0);
  const Trace trace(2, {{1.0, 1}, {2.0, 0}, {9.0, 1}});
  FixedPredictor beyond = always_beyond_predictor();
  const SimulationResult result =
      testing::run_drwp(config, trace, 0.5, beyond);
  const AllocationReport report = allocate_costs(result, trace);
  ASSERT_EQ(report.allocated.size(), 3u);
  EXPECT_DOUBLE_EQ(report.allocated[0], 6.0);
  EXPECT_DOUBLE_EQ(report.allocated[1], 2.0);
  EXPECT_DOUBLE_EQ(report.allocated[2], 11.0);
  EXPECT_DOUBLE_EQ(report.total_allocated, 19.0);
  EXPECT_NEAR(report.discrepancy(), 0.0, 1e-9);
}

TEST(Allocation, Figure6AllocationsMatchPaper) {
  const double lambda = 10.0, eps = 1.0;
  const SystemConfig config = make_config(2, lambda);
  const Trace trace = make_figure6_trace(lambda, eps, 1);
  FixedPredictor beyond = always_beyond_predictor();
  const SimulationResult result =
      testing::run_drwp(config, trace, 0.5, beyond);
  const AllocationReport report = allocate_costs(result, trace);
  ASSERT_EQ(report.allocated.size(), 3u);
  // r1 (Type-2, first request at the non-initial s2): λ + (t1 - t') with
  // t' = αλ = 5, plus the single leftover regular copy (after r2 at s1,
  // duration αλ = 5): 10 + 5 + 5 = 20.
  EXPECT_DOUBLE_EQ(report.allocated[0], 20.0);
  // r2 (Type-1): λ + l where l is the initial copy's intended duration
  // after the dummy r0 (αλ = 5): 10 + 5 = 15.
  EXPECT_DOUBLE_EQ(report.allocated[1], 15.0);
  // r3 (Type-2): λ + (t3 - t') + l, t' = t2 + αλ = 16, l = αλ:
  // 10 + 5 + 5 = 20.
  EXPECT_DOUBLE_EQ(report.allocated[2], 20.0);
  EXPECT_NEAR(report.discrepancy(), 0.0, 1e-9);
  // Matches the walkthrough's total online cost 5λ + αλ = 55.
  EXPECT_DOUBLE_EQ(report.total_allocated, 55.0);
}

struct AllocationCase {
  double alpha;
  double lambda;
  int predictor;  // 0 oracle, 1 beyond, 2 within, 3 noisy
  std::uint64_t seed;
};

class AllocationIdentity
    : public ::testing::TestWithParam<AllocationCase> {};

TEST_P(AllocationIdentity, SumMatchesAdjustedCost) {
  const AllocationCase param = GetParam();
  const Trace trace = testing::random_trace(5, 0.05, 4000.0, param.seed);
  ASSERT_FALSE(trace.empty());
  const SystemConfig config = make_config(5, param.lambda);
  std::unique_ptr<Predictor> predictor;
  switch (param.predictor) {
    case 0: predictor = std::make_unique<OraclePredictor>(trace); break;
    case 1: predictor = std::make_unique<FixedPredictor>(false); break;
    case 2: predictor = std::make_unique<FixedPredictor>(true); break;
    default:
      predictor =
          std::make_unique<AccuracyPredictor>(trace, 0.6, param.seed);
  }
  const SimulationResult result =
      testing::run_drwp(config, trace, param.alpha, *predictor);
  const AllocationReport report = allocate_costs(result, trace);
  const double scale = std::max(1.0, report.total_allocated);
  EXPECT_NEAR(report.discrepancy() / scale, 0.0, 1e-9)
      << "alpha=" << param.alpha << " lambda=" << param.lambda
      << " predictor=" << param.predictor << " seed=" << param.seed;
  // The allocation never under-counts the measured (horizon-clipped)
  // cost: allocated >= measured.
  EXPECT_GE(report.total_allocated, result.total_cost() - 1e-6);
}

std::vector<AllocationCase> allocation_cases() {
  std::vector<AllocationCase> cases;
  std::uint64_t seed = 1000;
  for (double alpha : {0.1, 0.5, 1.0}) {
    for (double lambda : {2.0, 20.0, 120.0}) {
      for (int predictor : {0, 1, 2, 3}) {
        cases.push_back({alpha, lambda, predictor, seed++});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllocationIdentity,
                         ::testing::ValuesIn(allocation_cases()));

TEST(Allocation, TypeCountsConsistent) {
  const Trace trace = testing::random_trace(5, 0.05, 4000.0, 77);
  const SystemConfig config = make_config(5, 20.0);
  FixedPredictor beyond = always_beyond_predictor();
  const SimulationResult result =
      testing::run_drwp(config, trace, 0.5, beyond);
  const TypeCounts counts = count_request_types(result);
  EXPECT_EQ(counts.total(), trace.size());
  // Transfers == Type-1 + Type-2, locals == Type-3 + Type-4.
  EXPECT_EQ(counts.counts[1] + counts.counts[2], result.num_transfers);
  EXPECT_EQ(counts.counts[3] + counts.counts[4], result.num_local);
}

TEST(Allocation, RequiresEventLog) {
  const Trace trace(2, {{1.0, 1}});
  const SystemConfig config = make_config(2, 4.0);
  FixedPredictor beyond = always_beyond_predictor();
  DrwpPolicy policy(0.5);
  SimulationOptions lean;
  lean.record_events = false;
  const SimulationResult result =
      Simulator(config, lean).run(policy, trace, beyond);
  EXPECT_THROW(allocate_costs(result, trace), std::invalid_argument);
}

TEST(Allocation, SingleServerTraceAllocatesGaps) {
  const SystemConfig config = make_config(1, 5.0);
  const Trace trace(1, {{1.0, 0}, {3.0, 0}, {10.0, 0}});
  FixedPredictor within = always_within_predictor();
  const SimulationResult result =
      testing::run_drwp(config, trace, 0.5, within);
  const AllocationReport report = allocate_costs(result, trace);
  // All requests local (gaps 1, 2, 7; the 7-gap is bridged by the special
  // copy). Allocations are the gaps themselves.
  EXPECT_DOUBLE_EQ(report.allocated[0], 1.0);
  EXPECT_DOUBLE_EQ(report.allocated[1], 2.0);
  EXPECT_DOUBLE_EQ(report.allocated[2], 7.0);
  EXPECT_NEAR(report.discrepancy(), 0.0, 1e-9);
}

}  // namespace
}  // namespace repl
