// Unit tests for src/util: RNG, distributions, statistics, histograms,
// CSV, table rendering, CLI parsing.
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace repl {
namespace {

TEST(Check, CheckThrowsCheckFailure) {
  EXPECT_THROW([] { REPL_CHECK(1 == 2); }(), CheckFailure);
  EXPECT_NO_THROW([] { REPL_CHECK(1 == 1); }());
}

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW([] { REPL_REQUIRE(false); }(), std::invalid_argument);
}

TEST(Check, MessagesIncludeExpressionAndText) {
  try {
    REPL_CHECK_MSG(false, "extra " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("extra 42"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformMeanCloseToCenter) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform(2.0, 4.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.01);
  EXPECT_GE(stats.min(), 2.0);
  EXPECT_LT(stats.max(), 4.0);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) EXPECT_NEAR(c, draws / 10, draws / 10 * 0.15);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.exponential(0.25));
  EXPECT_NEAR(stats.mean(), 4.0, 0.08);
}

TEST(Rng, ParetoRespectsScaleAndMean) {
  Rng rng(19);
  RunningStats stats;
  const double x_min = 2.0, shape = 3.0;
  for (int i = 0; i < 200000; ++i) stats.add(rng.pareto(x_min, shape));
  EXPECT_GE(stats.min(), x_min);
  // mean = shape*x_min/(shape-1) = 3.0
  EXPECT_NEAR(stats.mean(), 3.0, 0.08);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal(-1.0, 2.0));
  EXPECT_NEAR(stats.mean(), -1.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(29);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits, 30000, 1500);
}

TEST(Rng, SplitProducesDecorrelatedStreams) {
  Rng a(31);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
  EXPECT_THROW(rng.pareto(-1.0, 2.0), std::invalid_argument);
}

TEST(Zipf, PmfMatchesDefinition) {
  const ZipfDistribution zipf(10, 1.0);
  double h10 = 0.0;
  for (int i = 1; i <= 10; ++i) h10 += 1.0 / i;
  for (int i = 1; i <= 10; ++i) {
    EXPECT_NEAR(zipf.pmf(i), (1.0 / i) / h10, 1e-12);
  }
}

TEST(Zipf, PmfSumsToOne) {
  const ZipfDistribution zipf(25, 0.8);
  double total = 0.0;
  for (int i = 1; i <= 25; ++i) total += zipf.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Zipf, SamplingMatchesPmf) {
  const ZipfDistribution zipf(10, 1.0);
  Rng rng(37);
  std::vector<int> counts(11, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    ++counts[static_cast<std::size_t>(zipf.sample(rng))];
  }
  for (int i = 1; i <= 10; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[static_cast<std::size_t>(i)]) /
                    draws,
                zipf.pmf(i),
                5e-3)
        << "value " << i;
  }
}

TEST(Zipf, DegenerateSingleValue) {
  const ZipfDistribution zipf(1, 1.0);
  Rng rng(41);
  EXPECT_EQ(zipf.sample(rng), 1);
  EXPECT_NEAR(zipf.pmf(1), 1.0, 1e-12);
}

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats stats;
  const std::vector<double> xs = {1.5, -2.0, 3.25, 0.0, 10.0, -7.5};
  double sum = 0.0;
  for (double x : xs) {
    stats.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(stats.mean(), mean, 1e-12);
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_EQ(stats.count(), xs.size());
  EXPECT_EQ(stats.min(), -7.5);
  EXPECT_EQ(stats.max(), 10.0);
  EXPECT_NEAR(stats.sum(), sum, 1e-12);
}

TEST(RunningStats, MergeEqualsPooled) {
  Rng rng(43);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(0, 1);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 1.0);
}

TEST(Quantile, InterpolatesLikeNumpy) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_NEAR(quantile(xs, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(quantile(xs, 1.0), 4.0, 1e-12);
  EXPECT_NEAR(quantile(xs, 0.5), 2.5, 1e-12);
  EXPECT_NEAR(quantile(xs, 0.25), 1.75, 1e-12);
}

TEST(Quantile, MultipleWithOneSort) {
  const std::vector<double> xs = {5, 1, 4, 2, 3};
  const auto qs = quantiles(xs, {0.0, 0.5, 1.0});
  EXPECT_EQ(qs.size(), 3u);
  EXPECT_NEAR(qs[0], 1.0, 1e-12);
  EXPECT_NEAR(qs[1], 3.0, 1e-12);
  EXPECT_NEAR(qs[2], 5.0, 1e-12);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.5), std::invalid_argument);
}

TEST(Correlation, PerfectAndAnti) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  std::vector<double> neg;
  for (double y : ys) neg.push_back(-y);
  EXPECT_NEAR(pearson_correlation(xs, ys), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(xs, neg), -1.0, 1e-12);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);  // underflow
  h.add(0.0);   // bin 0
  h.add(1.9);   // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  h.add(10.0);  // overflow
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_NEAR(h.bin_lo(1), 2.0, 1e-12);
  EXPECT_NEAR(h.bin_hi(1), 4.0, 1e-12);
  EXPECT_FALSE(h.ascii().empty());
}

TEST(LogHistogram, DecadeBins) {
  LogHistogram h(1.0, 1000.0, 1);  // one bin per decade: [1,10),[10,100),[100,1000)
  EXPECT_EQ(h.bin_count(), 3u);
  h.add(5.0);
  h.add(50.0);
  h.add(500.0);
  h.add(0.5);     // underflow
  h.add(5000.0);  // overflow
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_NEAR(h.bin_lo(1), 10.0, 1e-9);
  EXPECT_NEAR(h.bin_hi(1), 100.0, 1e-9);
}

TEST(Csv, RowRoundTrip) {
  std::ostringstream os;
  write_csv_row(os, {"plain", "with,comma", "with\"quote", "multi\nline"});
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 4u);
  EXPECT_EQ(rows[0][0], "plain");
  EXPECT_EQ(rows[0][1], "with,comma");
  EXPECT_EQ(rows[0][2], "with\"quote");
  EXPECT_EQ(rows[0][3], "multi\nline");
}

TEST(Csv, ParsesMultipleRowsAndEmptyFields) {
  const auto rows = parse_csv("a,b,c\n1,,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "");
  EXPECT_EQ(rows[1][2], "3");
}

TEST(Csv, RejectsUnterminatedQuote) {
  EXPECT_THROW(parse_csv("\"oops"), std::invalid_argument);
}

TEST(Csv, FormatDoubleRoundTrips) {
  const double value = 0.1 + 0.2;
  EXPECT_EQ(std::stod(format_double(value)), value);
}

TEST(Table, RendersAlignedRows) {
  Table table({"name", "value"});
  table.add_row({"alpha", Table::cell(0.5, 2)});
  table.add_row({"longer-name", Table::cell(12.0, 2)});
  const std::string out = table.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("0.50"), std::string::npos);
  EXPECT_NE(out.find("12.00"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, MarkdownShape) {
  Table table({"a", "b"});
  table.add_row({"1", "2"});
  const std::string md = table.markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Cli, ParsesTypedFlags) {
  CliParser cli("prog", "test");
  cli.add_flag("alpha", "0.5", "distrust");
  cli.add_flag("n", "10", "count");
  cli.add_bool_flag("verbose", "chatty");
  cli.add_flag("lambdas", "1,2", "list");
  const char* argv[] = {"prog", "--alpha=0.25", "--n", "42", "--verbose",
                        "--lambdas=10,100,1000"};
  ASSERT_TRUE(cli.parse(6, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("alpha"), 0.25);
  EXPECT_EQ(cli.get_int("n"), 42);
  EXPECT_TRUE(cli.get_bool("verbose"));
  const auto lambdas = cli.get_double_list("lambdas");
  ASSERT_EQ(lambdas.size(), 3u);
  EXPECT_DOUBLE_EQ(lambdas[2], 1000.0);
}

TEST(Cli, DefaultsApply) {
  CliParser cli("prog", "test");
  cli.add_flag("alpha", "0.5", "distrust");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("alpha"), 0.5);
}

TEST(Cli, RejectsUnknownFlagAndBadValues) {
  CliParser cli("prog", "test");
  cli.add_flag("alpha", "0.5", "distrust");
  const char* bad[] = {"prog", "--nope=1"};
  EXPECT_THROW(cli.parse(2, bad), std::invalid_argument);
  CliParser cli2("prog", "test");
  cli2.add_flag("alpha", "0.5", "distrust");
  const char* badval[] = {"prog", "--alpha=xyz"};
  ASSERT_TRUE(cli2.parse(2, badval));
  EXPECT_THROW(cli2.get_double("alpha"), std::invalid_argument);
}

TEST(Cli, BoolFlagEqualsFormValidatesItsValue) {
  // `--verbose=yes` used to parse as true silently; only the two literal
  // spellings are legal.
  CliParser cli("prog", "test");
  cli.add_bool_flag("verbose", "chatty");
  const char* yes[] = {"prog", "--verbose=yes"};
  try {
    cli.parse(2, yes);
    FAIL() << "--verbose=yes must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'true' or 'false'"),
              std::string::npos)
        << e.what();
  }

  CliParser explicit_true("prog", "test");
  explicit_true.add_bool_flag("verbose", "chatty");
  const char* on[] = {"prog", "--verbose=true"};
  ASSERT_TRUE(explicit_true.parse(2, on));
  EXPECT_TRUE(explicit_true.get_bool("verbose"));

  CliParser explicit_false("prog", "test");
  explicit_false.add_bool_flag("verbose", "chatty");
  const char* off[] = {"prog", "--verbose=false"};
  ASSERT_TRUE(explicit_false.parse(2, off));
  EXPECT_FALSE(explicit_false.get_bool("verbose"));
}

TEST(Cli, RejectsDuplicateFlags) {
  // A repeated flag is a typo'd command line, not a last-one-wins merge.
  CliParser cli("prog", "test");
  cli.add_flag("alpha", "0.5", "distrust");
  const char* twice[] = {"prog", "--alpha=0.1", "--alpha=0.2"};
  try {
    cli.parse(3, twice);
    FAIL() << "duplicate value flag must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate flag: --alpha"),
              std::string::npos)
        << e.what();
  }

  CliParser mixed("prog", "test");
  mixed.add_flag("alpha", "0.5", "distrust");
  const char* spaced[] = {"prog", "--alpha", "0.1", "--alpha=0.2"};
  EXPECT_THROW(mixed.parse(4, spaced), std::invalid_argument);

  CliParser flags("prog", "test");
  flags.add_bool_flag("verbose", "chatty");
  const char* twice_bool[] = {"prog", "--verbose", "--verbose"};
  EXPECT_THROW(flags.parse(3, twice_bool), std::invalid_argument);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

}  // namespace
}  // namespace repl
