#include "trace/paper_instances.hpp"

#include <vector>

#include "util/check.hpp"

namespace repl {

namespace {
constexpr int kS1 = 0;
constexpr int kS2 = 1;
}  // namespace

Trace make_figure5_trace(double alpha, double lambda, int m, double eps) {
  REPL_REQUIRE(alpha > 0.0 && alpha <= 1.0);
  REPL_REQUIRE(lambda > 0.0);
  REPL_REQUIRE(m >= 1);
  REPL_REQUIRE(eps > 0.0 && eps < alpha * lambda);
  const double step = alpha * lambda + eps;
  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(m));
  // r_i for odd i at s2, even i at s1; consecutive requests at the same
  // server are `step` apart; r0 (dummy) at s1 at time 0, r1 at s2 at eps.
  for (int i = 1; i <= m; ++i) {
    if (i % 2 == 1) {
      const double t = eps + step * ((i - 1) / 2);
      requests.push_back(Request{t, kS2});
    } else {
      const double t = step * (i / 2);
      requests.push_back(Request{t, kS1});
    }
  }
  return Trace(2, std::move(requests));
}

double figure5_optimal_cost(double alpha, double lambda, int m, double eps) {
  // r1 is served by a transfer (lambda); every later request is served by
  // a local copy held since the preceding request at the same server
  // (each such interval is alpha*lambda + eps <= lambda). For m >= 2 the
  // union of those intervals covers [0, t_m]; for m = 1 the mandatory
  // coverage of [0, t_1 = eps] costs an extra eps.
  if (m == 1) return lambda + eps;
  return lambda + (m - 1) * (alpha * lambda + eps);
}

Trace make_figure6_trace(double lambda, double eps, int cycles) {
  REPL_REQUIRE(lambda > 0.0);
  REPL_REQUIRE(eps > 0.0 && eps < lambda);
  REPL_REQUIRE(cycles >= 1);
  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(cycles) * 3);
  double base = 0.0;
  int home = kS1;  // holds the (special) copy at the cycle start
  for (int c = 0; c < cycles; ++c) {
    const int other = (home == kS1) ? kS2 : kS1;
    requests.push_back(Request{base + lambda, other});
    requests.push_back(Request{base + lambda + eps, home});
    requests.push_back(Request{base + 2.0 * lambda + eps, other});
    base += 2.0 * lambda + eps;
    home = other;  // r3 of this cycle plays r0 of the next, roles swapped
  }
  return Trace(2, std::move(requests));
}

double figure6_single_cycle_optimal_cost(double lambda, double eps) {
  // s1 holds its copy over [0, lambda+eps] and serves r2 locally; r1 is a
  // transfer; s2 holds over [lambda, 2*lambda+eps] and serves r3 locally.
  return 3.0 * lambda + 2.0 * eps;
}

Trace make_figure9_trace(double lambda, double eps, int m) {
  REPL_REQUIRE(lambda > 0.0);
  REPL_REQUIRE(eps > 0.0);
  REPL_REQUIRE(m >= 2);
  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(m - 1));
  // Paper numbering: r1 = dummy at s1 at time 0; r_k at s2 at
  // t_k = 2*(k-2)*lambda + (k-1)*eps for k = 2..m.
  for (int k = 2; k <= m; ++k) {
    const double t = 2.0 * (k - 2) * lambda + (k - 1) * eps;
    requests.push_back(Request{t, kS2});
  }
  return Trace(2, std::move(requests));
}

double figure9_optimal_cost(double lambda, double eps, int m) {
  // s2 keeps a copy from r2 (time eps) through the final request; r2 is
  // served by a transfer; s1 holds the mandatory initial copy over [0,eps].
  return (m - 2) * (2.0 * lambda + eps) + lambda + eps;
}

}  // namespace repl
