#include "api/experiment.hpp"

#include <utility>

#include "checkpoint/snapshot.hpp"
#include "util/check.hpp"

namespace repl {

namespace {

/// Shared shape of every spec-driven factory: capture the canonical AST
/// and the config by value (the registry itself is immutable after
/// startup), build per call. Safe to invoke concurrently from pool
/// workers.
ComponentSpec checked_spec(ComponentKind kind, const std::string& text) {
  ComponentRegistry& registry = ComponentRegistry::instance();
  return registry.canonicalize(kind, parse_component_spec(text));
}

}  // namespace

ObjectPolicyFactory spec_object_policy_factory(const SystemConfig& config,
                                               const std::string& spec_text) {
  const ComponentSpec spec = checked_spec(ComponentKind::kPolicy, spec_text);
  return [config, spec](const ObjectContext& ctx) -> PolicyPtr {
    BuildContext build;
    build.config = config;
    build.seed = ctx.seed;
    build.trace = ctx.trace;
    return ComponentRegistry::instance().build_policy(spec, build);
  };
}

ObjectPredictorFactory spec_object_predictor_factory(
    const SystemConfig& config, const std::string& spec_text) {
  const ComponentSpec spec =
      checked_spec(ComponentKind::kPredictor, spec_text);
  return [config, spec](const ObjectContext& ctx) -> PredictorPtr {
    BuildContext build;
    build.config = config;
    build.seed = ctx.seed;
    build.trace = ctx.trace;
    return ComponentRegistry::instance().build_predictor(spec, build);
  };
}

SimulationResult run_experiment(const ExperimentSpec& experiment,
                                const SystemConfig& config,
                                const Trace& trace,
                                const SimulationOptions& options,
                                std::uint64_t seed) {
  BuildContext build;
  build.config = config;
  build.seed = seed;
  build.trace = &trace;
  ComponentRegistry& registry = ComponentRegistry::instance();
  const PolicyPtr policy = registry.build_policy(experiment.policy, build);
  const PredictorPtr predictor =
      registry.build_predictor(experiment.predictor, build);
  const Simulator simulator(config, options);
  return simulator.run(*policy, trace, *predictor);
}

// ---------------------------------------------------------------------
// EngineBuilder
// ---------------------------------------------------------------------

ComponentSpec EngineBuilder::check_engine_spec(
    ComponentKind kind, const std::string& spec_text) const {
  ComponentRegistry& registry = ComponentRegistry::instance();
  const ComponentSpec spec =
      registry.canonicalize(kind, parse_component_spec(spec_text));
  if (registry.requires_trace(kind, spec)) {
    throw SpecError(std::string(component_kind_name(kind)) + " '" +
                    print_component_spec(spec) +
                    "' is clairvoyant (it peeks at the full trace) and "
                    "cannot serve an online event stream; pick a causal "
                    "component for engine use");
  }
  return spec;
}

EngineBuilder& EngineBuilder::config(SystemConfig config) {
  config_ = std::move(config);
  config_.validate();
  return *this;
}

EngineBuilder& EngineBuilder::options(EngineOptions options) {
  options_ = std::move(options);
  return *this;
}

EngineBuilder& EngineBuilder::policy(const std::string& spec_text) {
  policy_ = check_engine_spec(ComponentKind::kPolicy, spec_text);
  policy_text_ = print_component_spec(*policy_);
  return *this;
}

EngineBuilder& EngineBuilder::predictor(const std::string& spec_text) {
  predictor_ = check_engine_spec(ComponentKind::kPredictor, spec_text);
  predictor_text_ = print_component_spec(*predictor_);
  return *this;
}

EngineBuilder& EngineBuilder::experiment(const ExperimentSpec& experiment) {
  return policy(experiment.policy).predictor(experiment.predictor);
}

EnginePolicyFactory EngineBuilder::policy_factory() const {
  const ComponentSpec spec =
      policy_ ? *policy_
              : check_engine_spec(ComponentKind::kPolicy,
                                  ExperimentSpec{}.policy);
  const SystemConfig config = config_;
  return [config, spec](const EngineObjectContext& ctx) -> PolicyPtr {
    BuildContext build;
    build.config = config;
    build.seed = ctx.seed;
    return ComponentRegistry::instance().build_policy(spec, build);
  };
}

EnginePredictorFactory EngineBuilder::predictor_factory() const {
  const ComponentSpec spec =
      predictor_ ? *predictor_
                 : check_engine_spec(ComponentKind::kPredictor,
                                     ExperimentSpec{}.predictor);
  const SystemConfig config = config_;
  return [config, spec](const EngineObjectContext& ctx) -> PredictorPtr {
    BuildContext build;
    build.config = config;
    build.seed = ctx.seed;
    return ComponentRegistry::instance().build_predictor(spec, build);
  };
}

std::unique_ptr<StreamingEngine> EngineBuilder::build() const {
  EngineBuilder filled = *this;
  if (!policy_) filled.policy(ExperimentSpec{}.policy);
  if (!predictor_) filled.predictor(ExperimentSpec{}.predictor);
  EngineOptions options = filled.options_;
  options.policy_spec = filled.policy_text_;
  options.predictor_spec = filled.predictor_text_;
  return std::make_unique<StreamingEngine>(filled.config_, options,
                                           filled.policy_factory(),
                                           filled.predictor_factory());
}

std::unique_ptr<StreamingEngine> EngineBuilder::restore(
    const std::string& snapshot_path) const {
  const SnapshotHeader header = read_snapshot_header(snapshot_path);
  EngineBuilder filled = *this;
  if (!policy_) {
    if (header.policy_spec.empty()) {
      throw SpecError("snapshot " + snapshot_path +
                      " records no policy spec (it was written from raw "
                      "factories); pass an explicit policy spec to "
                      "restore it");
    }
    filled.policy(header.policy_spec);
  } else if (!header.policy_spec.empty() &&
             header.policy_spec != policy_text_) {
    throw SpecError("snapshot " + snapshot_path +
                    " was written with policy '" + header.policy_spec +
                    "' but restore requested '" + policy_text_ + "'");
  }
  if (!predictor_) {
    if (header.predictor_spec.empty()) {
      throw SpecError("snapshot " + snapshot_path +
                      " records no predictor spec (it was written from "
                      "raw factories); pass an explicit predictor spec "
                      "to restore it");
    }
    filled.predictor(header.predictor_spec);
  } else if (!header.predictor_spec.empty() &&
             header.predictor_spec != predictor_text_) {
    throw SpecError("snapshot " + snapshot_path +
                    " was written with predictor '" +
                    header.predictor_spec + "' but restore requested '" +
                    predictor_text_ + "'");
  }
  EngineOptions options = filled.options_;
  options.policy_spec = filled.policy_text_;
  options.predictor_spec = filled.predictor_text_;
  return StreamingEngine::restore(snapshot_path, filled.config_, options,
                                  filled.policy_factory(),
                                  filled.predictor_factory());
}

}  // namespace repl
