// Declarative component specs: the string syntax every driver in the
// repo uses to name a policy or predictor plus its parameters.
//
//   drwp(alpha=0.3)
//   adaptive(alpha=0.3,beta=0.1,warmup=100)
//   ensemble(last_gap,history(ewma=0.3),penalty=0.5)
//
// Grammar (whitespace is insignificant everywhere):
//
//   spec   := name [ '(' args ')' ]
//   args   := arg ( ',' arg )*
//   arg    := key '=' value        -- a named scalar parameter
//           | spec                 -- a nested component (e.g. an
//                                     ensemble expert), position matters
//   name   := [a-z_][a-z0-9_]*     -- also the syntax of `key`
//   value  := [A-Za-z0-9_.+-]+     -- scalar token; typing is the
//                                     registry's concern, not the parser's
//
// The parser produces a ComponentSpec AST and is exact about failure:
// every SpecError names the offending position in the input. Printing is
// the inverse of parsing — parse(print(spec)) == spec for every spec the
// parser accepts — with nested components first (in their original
// order, which is semantic for ensembles) and named parameters after, in
// the order written. Canonicalization (defaults filled in, parameters
// sorted, values normalized) happens in the registry, which knows each
// component's parameter schema.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace repl {

/// Raised on any syntax error; the message embeds the spec text and the
/// byte position of the failure.
class SpecError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// One parsed component: its name, named scalar parameters (written
/// order, duplicates rejected by the parser), and nested component
/// arguments (written order — semantic for ensemble experts).
struct ComponentSpec {
  std::string name;
  std::vector<std::pair<std::string, std::string>> params;
  std::vector<ComponentSpec> children;

  bool operator==(const ComponentSpec&) const = default;
};

/// Parses `text` into an AST. Throws SpecError with a positioned
/// diagnostic on malformed input (including trailing garbage).
ComponentSpec parse_component_spec(std::string_view text);

/// Prints the spec back to its string form: `name` when there are no
/// arguments, else `name(child1,...,key1=v1,...)`. The exact inverse of
/// parse_component_spec on every parser-accepted input modulo
/// whitespace and argument interleaving (children always print first).
std::string print_component_spec(const ComponentSpec& spec);

}  // namespace repl
