#include "util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace repl {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_flag(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  REPL_REQUIRE(!name.empty());
  flags_[name] = Flag{default_value, help, /*boolean=*/false};
}

void CliParser::add_bool_flag(const std::string& name,
                              const std::string& help) {
  REPL_REQUIRE(!name.empty());
  flags_[name] = Flag{"false", help, /*boolean=*/true};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << help();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string name, value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      const auto it = flags_.find(name);
      if (it == flags_.end()) {
        throw std::invalid_argument("unknown flag: --" + name);
      }
      // Boolean flags take only the canonical literals through `=`, the
      // same constraint the space-separated path enforces by never
      // consuming a value at all; "--verify=yes" silently parsing as a
      // string would make get_bool throw far from the command line.
      if (it->second.boolean && value != "true" && value != "false") {
        throw std::invalid_argument("flag --" + name +
                                    ": boolean flags accept only "
                                    "'true' or 'false', got '" +
                                    value + "'");
      }
    } else {
      name = arg;
      const auto it = flags_.find(name);
      if (it == flags_.end()) {
        throw std::invalid_argument("unknown flag: --" + name);
      }
      if (it->second.boolean) {
        value = "true";
      } else {
        if (i + 1 >= argc) {
          throw std::invalid_argument("flag --" + name + " expects a value");
        }
        value = argv[++i];
      }
    }
    // Last-wins on a repeated flag hides typos in long command lines
    // (a forgotten flag earlier in a script silently loses); demand one
    // occurrence per flag.
    if (values_.find(name) != values_.end()) {
      throw std::invalid_argument("duplicate flag: --" + name);
    }
    values_[name] = value;
  }
  return true;
}

const CliParser::Flag& CliParser::find(const std::string& name) const {
  const auto it = flags_.find(name);
  REPL_REQUIRE_MSG(it != flags_.end(), "flag not registered: " << name);
  return it->second;
}

std::string CliParser::get_string(const std::string& name) const {
  const Flag& flag = find(name);
  const auto it = values_.find(name);
  return it == values_.end() ? flag.default_value : it->second;
}

double CliParser::get_double(const std::string& name) const {
  const std::string v = get_string(name);
  std::size_t pos = 0;
  const double out = std::stod(v, &pos);
  if (pos != v.size()) {
    throw std::invalid_argument("flag --" + name + ": not a number: " + v);
  }
  return out;
}

long long CliParser::get_int(const std::string& name) const {
  const std::string v = get_string(name);
  std::size_t pos = 0;
  const long long out = std::stoll(v, &pos);
  if (pos != v.size()) {
    throw std::invalid_argument("flag --" + name + ": not an integer: " + v);
  }
  return out;
}

std::uint64_t CliParser::get_uint64(const std::string& name) const {
  const std::string v = get_string(name);
  // std::stoull silently wraps negative input (and skips leading
  // whitespace before the sign), so reject any minus sign up front.
  if (v.find('-') != std::string::npos) {
    throw std::invalid_argument("flag --" + name +
                                ": must be non-negative: " + v);
  }
  std::size_t pos = 0;
  const unsigned long long out = std::stoull(v, &pos);
  if (pos != v.size()) {
    throw std::invalid_argument("flag --" + name + ": not an integer: " + v);
  }
  return static_cast<std::uint64_t>(out);
}

std::size_t CliParser::get_size_t(const std::string& name,
                                  std::size_t min_value,
                                  std::size_t max_value) const {
  const std::uint64_t raw = get_uint64(name);
  if (raw > std::uint64_t{max_value} || raw < std::uint64_t{min_value}) {
    throw std::invalid_argument(
        "flag --" + name + ": " + std::to_string(raw) + " outside [" +
        std::to_string(min_value) + ", " + std::to_string(max_value) + "]");
  }
  return static_cast<std::size_t>(raw);
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get_string(name);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("flag --" + name + ": not a boolean: " + v);
}

std::vector<double> CliParser::get_double_list(const std::string& name) const {
  const std::string v = get_string(name);
  std::vector<double> out;
  std::istringstream is(v);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (item.empty()) continue;
    out.push_back(std::stod(item));
  }
  return out;
}

std::string CliParser::help() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name;
    if (!flag.boolean) os << "=<" << flag.default_value << ">";
    os << "\n      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace repl
