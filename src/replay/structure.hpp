// Lenient structural walkers over the binary formats' byte images.
//
// The structured fuzzer and the fixture minimizer both need to see a
// byte image the way the real decoders do — header, then frames /
// records, then footer — but *without* bailing at the first defect:
// the fuzzer mutates at the boundaries the walk discovers, and the
// minimizer deletes whole segments while keeping the surrounding
// structure consistent. So these walkers parse as far as the bytes
// cooperate, mark each segment well-formed or not, and report where
// decodable structure ends, never throwing on malformed input.
//
// The walkers are deliberately *not* the product decoders: they live on
// the testing side of the fence and re-derive the layouts from the
// format docs (trace/event_log.hpp, checkpoint/snapshot.hpp,
// codec/block.hpp). If the product decoders and these walkers disagree
// about where a boundary lies, that disagreement surfaces as a fuzz
// failure — which is the point.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "codec/endian.hpp"

namespace repl {

/// One structural segment (a v1 record, a v2/wire block, a snapshot
/// object record) of a byte image.
struct SegmentSpan {
  /// Absolute byte offset of the segment's first byte.
  std::size_t offset = 0;
  /// Total bytes, frame/prefix included.
  std::size_t size = 0;
  /// Absolute offset of the payload (== offset for prefix-less v1
  /// records).
  std::size_t payload_offset = 0;
  /// Logical items the segment carries (events for log blocks, 1 for
  /// records).
  std::uint64_t items = 0;
  /// Complete and CRC-consistent (vacuously true for formats without a
  /// covering CRC, e.g. v1 records).
  bool well_formed = false;

  std::size_t end() const { return offset + size; }
};

/// Walk of an event-log file image or a wire byte stream (the formats
/// are byte-identical; wire headers just carry unknown counts).
struct LogImage {
  /// Header parsed (magic/version recognized, 32 bytes present).
  bool header_ok = false;
  std::uint32_t version = 0;
  std::uint32_t num_servers = 0;
  std::uint64_t num_objects = 0;
  /// Raw num_events field (kUnknownCount sentinel preserved).
  std::uint64_t num_events = 0;
  /// Bytes before the first segment (EventLogHeader::kSize when
  /// header_ok).
  std::size_t header_bytes = 0;
  /// v1: one span per 20-byte record; v2: one span per block frame.
  std::vector<SegmentSpan> segments;
  /// First byte not covered by the header or a segment (== image size
  /// when the whole image is structured).
  std::size_t tail_offset = 0;

  /// Sum of items over segments [0, count).
  std::uint64_t items_before(std::size_t count) const;
};

LogImage walk_log_image(const std::vector<unsigned char>& bytes);

/// Walk of a snapshot file image (REPLCKPT v1-v3).
struct SnapshotImage {
  bool header_ok = false;
  std::uint32_t version = 0;
  std::uint64_t num_objects = 0;
  /// Full header size including the v2/v3 extension and spec strings.
  std::size_t header_bytes = 0;
  std::vector<SegmentSpan> records;
  /// Footer magic found immediately after the walked records.
  bool footer_present = false;
  std::size_t footer_offset = 0;
  std::size_t tail_offset = 0;
};

SnapshotImage walk_snapshot_image(const std::vector<unsigned char>& bytes);

/// Walk of a cluster control stream image (REPLCCTL v1: 16-byte header
/// then block frames — the same frame envelope as the v2 event wire,
/// with aux = (message type << 24) | finals-record count).
struct ControlImage {
  /// Header parsed (magic/version recognized, 16 bytes present).
  bool header_ok = false;
  std::size_t header_bytes = 0;
  /// One span per complete frame; items = the frame's declared
  /// finals-record count (0 for every non-finals message type).
  std::vector<SegmentSpan> segments;
  std::size_t tail_offset = 0;
};

ControlImage walk_control_image(const std::vector<unsigned char>& bytes);

/// Rewrites the num_events field of a log/wire image header in place
/// (no-op on images too short to hold a header).
void patch_log_event_count(std::vector<unsigned char>& bytes,
                           std::uint64_t num_events);

/// Rewrites the num_objects field of a snapshot image header in place.
void patch_snapshot_object_count(std::vector<unsigned char>& bytes,
                                 std::uint64_t num_objects);

/// Builds a complete framed block — 16-byte frame with both CRCs valid,
/// then the payload — ready to splice into a v2 log or wire stream.
std::vector<unsigned char> frame_block(std::uint32_t aux,
                                       const std::vector<unsigned char>& body);

/// Recomputes the frame CRC of the block frame at `offset` so mutated
/// steering fields (body_len/aux/body_crc) parse as a valid frame again.
/// The body CRC is left alone. No-op when 16 bytes do not fit.
void refresh_frame_crc(std::vector<unsigned char>& bytes, std::size_t offset);

/// Recomputes the per-record CRC of the v3 snapshot record at `offset`
/// (prefix 16 bytes + encoded payload of `encoded_len`). No-op when the
/// record does not fit.
void refresh_record_crc(std::vector<unsigned char>& bytes, std::size_t offset);

/// RAII scratch directory with *stable basenames*: decoder diagnostics
/// embed file paths and failure_signature() keeps the basename, so every
/// run must stage its artifact under the same leaf name. Creates (and,
/// when it picked the location itself, removes) the directory.
class ScratchDir {
 public:
  /// Uses `requested` when non-empty (created, not removed); otherwise a
  /// fresh directory under the system temp dir, removed on destruction.
  explicit ScratchDir(const std::string& requested = "");
  ~ScratchDir();

  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  /// Absolute path of `basename` inside the directory.
  std::string file(const std::string& basename) const;

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  bool owned_ = true;
};

/// Writes `bytes` to `path`, truncating. Throws std::runtime_error on
/// I/O failure.
void write_bytes(const std::string& path,
                 const std::vector<unsigned char>& bytes);

/// Reads all of `path`. Throws std::runtime_error on I/O failure.
std::vector<unsigned char> read_bytes(const std::string& path);

}  // namespace repl
