#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace repl {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  REPL_REQUIRE(lo <= hi);
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  REPL_REQUIRE(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double rate) {
  REPL_REQUIRE(rate > 0.0);
  // -log(1 - U) with U in [0,1); 1-U in (0,1] so log is finite.
  return -std::log1p(-next_double()) / rate;
}

double Rng::pareto(double x_min, double shape) {
  REPL_REQUIRE(x_min > 0.0);
  REPL_REQUIRE(shape > 0.0);
  const double u = 1.0 - next_double();  // (0, 1]
  return x_min / std::pow(u, 1.0 / shape);
}

double Rng::normal(double mean, double stddev) {
  REPL_REQUIRE(stddev >= 0.0);
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  have_cached_normal_ = true;
  return mean + stddev * (u * factor);
}

void Rng::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> t{0, 0, 0, 0};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        for (std::size_t i = 0; i < 4; ++i) t[i] ^= s_[i];
      }
      next_u64();
    }
  }
  s_ = t;
}

Rng Rng::split() {
  Rng child = *this;
  child.have_cached_normal_ = false;
  child.jump();  // child starts 2^128 steps ahead of the parent
  // Perturb the parent by one draw so consecutive splits without
  // intervening use still produce distinct children.
  next_u64();
  return child;
}

ZipfDistribution::ZipfDistribution(int n, double s) : n_(n), s_(s) {
  REPL_REQUIRE(n >= 1);
  cdf_.resize(static_cast<std::size_t>(n));
  double total = 0.0;
  for (int i = 1; i <= n; ++i) {
    total += std::pow(static_cast<double>(i), -s);
    cdf_[static_cast<std::size_t>(i - 1)] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

int ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::pmf(int i) const {
  REPL_REQUIRE(i >= 1 && i <= n_);
  const double lo = (i == 1) ? 0.0 : cdf_[static_cast<std::size_t>(i - 2)];
  return cdf_[static_cast<std::size_t>(i - 1)] - lo;
}

}  // namespace repl
