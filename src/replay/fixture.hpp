// Self-contained replay fixtures: one file that reproduces one run.
//
// A fixture freezes everything needed to re-execute a decode-and-serve
// session and check the outcome: the component specs, the system config,
// the engine knobs that affect aggregates, the *exact event slice that
// was served* (re-encoded into an embedded event log, so captures work
// for live socket sessions as well as file replay), the checkpoint cut
// points taken during the session, and the final aggregates down to the
// bit pattern of every double. genthat-style capture-to-test: record a
// real session once, then replay it forever as a regression test.
//
// File layout ("REPLFIXT", version 1):
//
//   offset  size  field
//   0       8     magic       "REPLFIXT"
//   8       4     version     1
//   12      4     target      0 serve, 1 snapshot, 2 wire, 3 cluster
//   16      4     expect      0 parity (replay must succeed and match
//                             the recorded aggregates bit-exactly),
//                             1 failure (replay must fail with the
//                             recorded diagnostic signature)
//   20      4     reserved, 0
//   24      8     meta_len
//   32      --    meta        (StateWriter stream; see fixture.cpp)
//   --      8     blob_len
//   --      --    blob        the embedded artifact: a complete event
//                             log file (serve), snapshot file (snapshot)
//                             or wire byte stream (wire)
//   --      4     CRC-32C over every byte above
//   end     8     footer      "REPLFXND"
//
// The four targets cover the four untrusted-input formats: `serve`
// replays the embedded log through a spec-built StreamingEngine (the
// full decode→shard→reduce pipeline), `snapshot` drains the embedded
// bytes through SnapshotReader, `wire` feeds them through a
// FrameAssembler in varying chunk sizes, and `cluster` feeds them
// through a ClusterControlAssembler (the coordinator's worker
// control-stream decoder) the same way. Failure fixtures — what the
// structured fuzzer emits and the minimizer shrinks — assert that a
// malformed input keeps producing the same *positioned diagnostic*
// (compared shape-wise: digits are stripped, so block indices and byte
// offsets may drift as the input shrinks while the failure mode may
// not), never a crash or a silent wrong answer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.hpp"

namespace repl {

/// Which decoder the fixture's embedded bytes drive.
enum class FixtureTarget : std::uint32_t {
  kServe = 0,
  kSnapshot = 1,
  kWire = 2,
  kCluster = 3,
};

/// What replaying the fixture must produce.
enum class FixtureExpect : std::uint32_t {
  kParity = 0,
  kFailure = 1,
};

const char* fixture_target_name(FixtureTarget target);
FixtureTarget parse_fixture_target(const std::string& name);

/// The recorded outcome of a parity fixture, bit-comparable. For the
/// snapshot and wire targets only `objects`/`events` are meaningful
/// (records read / events decoded).
struct FixtureAggregates {
  std::uint64_t objects = 0;
  std::uint64_t events = 0;
  std::uint64_t num_local = 0;
  std::uint64_t num_transfers = 0;
  double online_cost = 0.0;
  double lower_bound = 0.0;
};

struct Fixture {
  FixtureTarget target = FixtureTarget::kServe;
  FixtureExpect expect = FixtureExpect::kParity;

  /// Canonical component specs of the captured engine (serve target).
  std::string policy_spec;
  std::string predictor_spec;
  /// Human label of where the slice came from (log path, peer name).
  std::string source_name;

  /// System + engine knobs that affect aggregates.
  std::uint32_t num_servers = 1;
  double transfer_cost = 1.0;
  std::int32_t initial_server = 0;
  std::vector<double> storage_rates;
  std::uint64_t base_seed = 0;
  double horizon = -1.0;
  bool compute_lower_bound = true;
  bool compress_checkpoints = false;

  /// The captured slice: [slice_first_event, slice_first_event +
  /// slice_events) of the logical stream, and its byte range within the
  /// original source when known (0,0 otherwise). Diagnostics only — the
  /// events themselves are embedded in `blob`.
  std::uint64_t slice_first_event = 0;
  std::uint64_t slice_events = 0;
  std::uint64_t slice_begin_byte = 0;
  std::uint64_t slice_end_byte = 0;

  /// Absolute event offsets at which periodic checkpoints were sealed.
  std::vector<std::uint64_t> cuts;

  FixtureAggregates aggregates;

  /// Digit-stripped diagnostic the replay must reproduce (failure
  /// fixtures; empty otherwise). See failure_signature().
  std::string signature;

  /// The embedded artifact bytes (a complete file image).
  std::vector<unsigned char> blob;

  SystemConfig system_config() const;
};

/// Writes `fixture` to `path` (atomically: tmp + rename). Throws
/// std::runtime_error on I/O failure.
void write_fixture(const std::string& path, const Fixture& fixture);

/// Reads and validates a fixture. Every corruption mode (bad magic,
/// version, truncation, CRC mismatch, missing footer) throws
/// std::runtime_error with a diagnostic naming the file.
Fixture read_fixture(const std::string& path);

/// Normalizes a diagnostic into a comparison signature: digits collapse
/// to '#' (positions and counts drift as inputs shrink; the failure
/// *mode* must not) and the scratch path prefix up to the last '/' is
/// dropped from path-bearing messages.
std::string failure_signature(const std::string& message);

/// Records one serve() session into a fixture. Driven by
/// StreamingEngine::serve when ServeOptions::capture is set; usable
/// directly by manual ingest() loops: record() every batch in ingest
/// order, record_cut() after each checkpoint, then finish() with the
/// final aggregates to seal the file.
class SessionCapture {
 public:
  /// `first_event` is the engine's resume_position() — must be 0 (see
  /// ServeOptions::capture). Creates a scratch event log next to the
  /// fixture path; finish() or the destructor removes it.
  SessionCapture(const CaptureOptions& options, const SystemConfig& config,
                 const EngineOptions& engine_options,
                 std::uint64_t first_event);
  ~SessionCapture();

  SessionCapture(const SessionCapture&) = delete;
  SessionCapture& operator=(const SessionCapture&) = delete;

  void record(const LogEvent* events, std::size_t count);
  void record(const std::vector<LogEvent>& events) {
    record(events.data(), events.size());
  }

  /// Marks a checkpoint cut at absolute event offset `events_ingested`.
  void record_cut(std::uint64_t events_ingested);

  /// Byte range of the slice within the original source, when the
  /// source has a byte-level view.
  void set_byte_range(std::uint64_t begin, std::uint64_t end);

  /// Seals the fixture with the session's final aggregates.
  void finish(const EngineMetrics& metrics);

 private:
  CaptureOptions options_;
  Fixture fixture_;
  std::string scratch_log_;
  std::unique_ptr<EventLogWriter> writer_;
  std::uint64_t events_ = 0;
};

}  // namespace repl
