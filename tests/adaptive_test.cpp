// Tests for the Section-8 machinery: the OnlineCostEstimator and the
// adapted Algorithm 1 with bounded robustness 2 + beta.
#include <cmath>

#include <gtest/gtest.h>

#include "analysis/ratio.hpp"
#include "core/adaptive_drwp.hpp"
#include "core/online_estimator.hpp"
#include "core/simulator.hpp"
#include "offline/opt_dp.hpp"
#include "offline/opt_lower_bound.hpp"
#include "predictor/fixed.hpp"
#include "predictor/noisy.hpp"
#include "predictor/oracle.hpp"
#include "test_util.hpp"
#include "trace/paper_instances.hpp"

namespace repl {
namespace {

using testing::make_config;

/// Feeds a DRWP run into a standalone estimator and returns it.
OnlineCostEstimator replay_into_estimator(const SystemConfig& config,
                                          const Trace& trace,
                                          const SimulationResult& result) {
  OnlineCostEstimator estimator(config);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const ServeRecord& serve = result.serves[i];
    const int p = trace.prev_same_server(i);
    double prev_intended = std::numeric_limits<double>::quiet_NaN();
    double prev_time = std::numeric_limits<double>::quiet_NaN();
    if (p >= 0) {
      prev_intended =
          result.serves[static_cast<std::size_t>(p)].intended_duration;
      prev_time = trace[static_cast<std::size_t>(p)].time;
    } else if (serve.server == config.initial_server) {
      prev_intended = result.initial_intended_duration;
      prev_time = 0.0;
    }
    estimator.record(serve.server, serve.time, serve.local,
                     serve.source_special, serve.special_since,
                     prev_intended, prev_time);
  }
  return estimator;
}

TEST(OnlineEstimator, OptLMatchesClosedForm) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Trace trace = testing::random_trace(5, 0.05, 3000.0, seed + 20);
    if (trace.empty()) continue;
    const SystemConfig config = make_config(5, 18.0);
    FixedPredictor beyond = always_beyond_predictor();
    const SimulationResult result =
        testing::run_drwp(config, trace, 0.5, beyond);
    const OnlineCostEstimator estimator =
        replay_into_estimator(config, trace, result);
    EXPECT_NEAR(estimator.opt_lower_bound(),
                opt_lower_bound(config, trace),
                1e-9 * std::max(1.0, estimator.opt_lower_bound()))
        << "seed=" << seed;
  }
}

TEST(OnlineEstimator, OnlineUpperBoundsMeasuredCost) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Trace trace = testing::random_trace(5, 0.05, 3000.0, seed + 40);
    if (trace.empty()) continue;
    const SystemConfig config = make_config(5, 18.0);
    AccuracyPredictor noisy(trace, 0.4, seed);
    const SimulationResult result =
        testing::run_drwp(config, trace, 0.3, noisy);
    const OnlineCostEstimator estimator =
        replay_into_estimator(config, trace, result);
    // OnlineU = allocated + 2λn' is a genuine upper bound on the measured
    // (horizon-clipped) cost.
    EXPECT_GE(estimator.online_upper_bound(), result.total_cost() - 1e-6)
        << "seed=" << seed;
  }
}

TEST(OnlineEstimator, RatioInfiniteBeforeRequests) {
  const SystemConfig config = make_config(2, 10.0);
  OnlineCostEstimator estimator(config);
  EXPECT_TRUE(std::isinf(estimator.ratio_bound()));
  EXPECT_EQ(estimator.requests_seen(), 0u);
}

TEST(AdaptiveDrwp, RejectsNegativeBeta) {
  AdaptiveDrwpPolicy::Options options;
  options.beta = -0.1;
  EXPECT_THROW(AdaptiveDrwpPolicy(0.2, options), std::invalid_argument);
}

TEST(AdaptiveDrwp, MatchesPlainDrwpDuringWarmup) {
  const Trace trace = testing::random_trace(4, 0.05, 3000.0, 61);
  const SystemConfig config = make_config(4, 20.0);
  AdaptiveDrwpPolicy::Options options;
  options.beta = 0.0;
  options.warmup_requests = trace.size();  // warm-up covers everything
  AdaptiveDrwpPolicy adaptive(0.3, options);
  DrwpPolicy plain(0.3);
  AccuracyPredictor noisy_a(trace, 0.5, 5);
  AccuracyPredictor noisy_b(trace, 0.5, 5);
  const double a =
      Simulator(config).run(adaptive, trace, noisy_a).total_cost();
  const double b =
      Simulator(config).run(plain, trace, noisy_b).total_cost();
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_EQ(adaptive.fallback_count(), 0u);
}

TEST(AdaptiveDrwp, FallsBackUnderAdversarialPredictions) {
  // On the Figure-5 instance with always-"beyond" (wrong) predictions,
  // plain DRWP's ratio approaches 1 + 1/alpha; the adapted variant must
  // detect the degradation and clamp near 2 + beta.
  const double lambda = 50.0, alpha = 0.2;
  const double eps = alpha * lambda * 1e-2;
  const int m = 600;
  const SystemConfig config = make_config(2, lambda);
  const Trace trace = make_figure5_trace(alpha, lambda, m, eps);
  FixedPredictor beyond = always_beyond_predictor();
  const double opt = optimal_offline_cost(config, trace);

  DrwpPolicy plain(alpha);
  const double plain_ratio =
      evaluate_policy(config, plain, trace, beyond, opt).ratio;
  EXPECT_GT(plain_ratio, 4.0);  // 1 + 1/0.2 = 6, approached from below

  AdaptiveDrwpPolicy::Options options;
  options.beta = 0.1;
  options.warmup_requests = 50;
  AdaptiveDrwpPolicy adaptive(alpha, options);
  const double adaptive_ratio =
      evaluate_policy(config, adaptive, trace, beyond, opt).ratio;
  EXPECT_GT(adaptive.fallback_count(), 0u);
  // The fallback cannot beat the conventional policy's own behaviour on
  // this instance, but must stay well below the unbounded-alpha blowup
  // and within the paper's 2+beta target up to the warm-up transient.
  EXPECT_LT(adaptive_ratio, plain_ratio * 0.75);
  EXPECT_LE(adaptive_ratio, 2.0 + options.beta + 0.5);
}

TEST(AdaptiveDrwp, KeepsConsistencyUnderPerfectPredictions) {
  // With an oracle, the monitor should rarely trip; the adapted variant
  // keeps (close to) the plain algorithm's advantage.
  const Trace trace = testing::random_trace(5, 0.05, 5000.0, 67);
  const SystemConfig config = make_config(5, 25.0);
  const double opt = optimal_offline_cost(config, trace);
  OraclePredictor oracle_a(trace), oracle_b(trace);
  DrwpPolicy plain(0.2);
  AdaptiveDrwpPolicy::Options options;
  options.beta = 1.0;
  options.warmup_requests = 20;
  AdaptiveDrwpPolicy adaptive(0.2, options);
  const double plain_ratio =
      evaluate_policy(config, plain, trace, oracle_a, opt).ratio;
  const double adaptive_ratio =
      evaluate_policy(config, adaptive, trace, oracle_b, opt).ratio;
  EXPECT_LE(adaptive_ratio, consistency_bound(0.2) + 1e-9);
  EXPECT_NEAR(adaptive_ratio, plain_ratio, 0.35);
}

TEST(AdaptiveDrwp, RobustnessBoundAcrossSeeds) {
  // The adapted algorithm's measured ratio stays within the plain
  // robustness bound and, empirically on these workloads, within
  // 2 + beta + transient slack even under the worst predictor.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Trace trace = testing::random_trace(5, 0.05, 4000.0, seed + 90);
    if (trace.empty()) continue;
    const SystemConfig config = make_config(5, 20.0);
    AdversarialPredictor wrong(trace);
    AdaptiveDrwpPolicy::Options options;
    options.beta = 0.5;
    options.warmup_requests = 30;
    AdaptiveDrwpPolicy adaptive(0.1, options);
    const RatioReport report =
        evaluate_policy(config, adaptive, trace, wrong);
    EXPECT_LE(report.ratio, robustness_bound(0.1) + 1e-9);
    EXPECT_LE(report.ratio, 2.0 + 0.5 + 1.0) << "seed=" << seed;
  }
}

TEST(AdaptiveDrwp, CloneCarriesMonitorState) {
  const SystemConfig config = make_config(2, 10.0);
  AdaptiveDrwpPolicy::Options options;
  options.warmup_requests = 0;
  AdaptiveDrwpPolicy policy(0.5, options);
  NullEventSink sink;
  policy.reset(config, Prediction{false}, sink);
  policy.advance_to(100.0, sink);
  policy.on_request(1, 100.0, Prediction{false}, sink);
  auto clone = policy.clone();
  auto* cloned = dynamic_cast<AdaptiveDrwpPolicy*>(clone.get());
  ASSERT_NE(cloned, nullptr);
  EXPECT_DOUBLE_EQ(cloned->monitored_ratio(), policy.monitored_ratio());
}

TEST(AdaptiveDrwp, NameReflectsParameters) {
  AdaptiveDrwpPolicy::Options options;
  options.beta = 0.25;
  AdaptiveDrwpPolicy policy(0.5, options);
  EXPECT_EQ(policy.name(), "adaptive-drwp(alpha=0.5,beta=0.25)");
}

}  // namespace
}  // namespace repl
