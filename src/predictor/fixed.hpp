// Constant predictors: always "within lambda" or always "beyond lambda".
// The paper's tight examples (Figures 5 and 6) assume such streams.
#pragma once

#include "predictor/predictor.hpp"

namespace repl {

class FixedPredictor final : public Predictor {
 public:
  explicit FixedPredictor(bool within_lambda) : within_(within_lambda) {}

  Prediction predict(const PredictionQuery&) override {
    return Prediction{within_};
  }
  std::string name() const override {
    return within_ ? "always-within" : "always-beyond";
  }

 private:
  bool within_;
};

inline FixedPredictor always_within_predictor() {
  return FixedPredictor(true);
}
inline FixedPredictor always_beyond_predictor() {
  return FixedPredictor(false);
}

}  // namespace repl
