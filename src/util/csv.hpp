// Minimal CSV reading/writing for trace import/export and bench output.
// Handles quoting of fields containing commas, quotes, or newlines; does
// not attempt full RFC 4180 (multi-line quoted fields are supported on
// read, embedded CR is normalized away).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace repl {

using CsvRow = std::vector<std::string>;

/// Serializes one row, quoting fields as needed, and appends '\n'.
void write_csv_row(std::ostream& os, const CsvRow& row);

/// Parses a complete CSV document. Empty trailing line is ignored.
/// Throws std::invalid_argument on unterminated quotes.
std::vector<CsvRow> parse_csv(const std::string& text);

/// Reads a whole file; throws std::runtime_error if it cannot be opened.
std::string read_file(const std::string& path);

/// Writes a whole file; throws std::runtime_error on failure.
void write_file(const std::string& path, const std::string& contents);

/// Formats a double with enough digits to round-trip (max_digits10).
std::string format_double(double v);

/// Line-level helpers shared by the simple numeric CSV formats (the
/// "time,server" trace files and the "time,object,server" event-log
/// twin — no quoting, one record per line).

enum class NumericRow {
  kBlank,   // empty line (or lone CR) — skip
  kHeader,  // the header row — skip
  kData,    // `fields` holds the split record
};

/// Strips one trailing CR and splits `line` on commas into `fields`.
/// A line whose first field equals `header_first_field` is the header —
/// but only while `allow_header` is true (callers clear it after the
/// first header or data row, so an embedded header from concatenated
/// CSVs fails the numeric parse instead of being silently swallowed).
/// Throws std::invalid_argument("<context> row <row_index>: expected
/// <expected_desc>") when a data row's field count is not
/// `expected_fields`.
NumericRow split_numeric_row(const std::string& line, std::size_t row_index,
                             const std::string& context,
                             const std::string& header_first_field,
                             const std::string& expected_desc,
                             std::size_t expected_fields, bool allow_header,
                             std::vector<std::string>& fields);

/// Strict full-consumption field parsers: the entire field must be one
/// number. Throw std::invalid_argument (bare message — callers add the
/// row context) on malformed or out-of-range input;
/// parse_uint64_field additionally rejects any minus sign.
double parse_double_field(const std::string& field);
long long parse_int_field(const std::string& field);
unsigned long long parse_uint64_field(const std::string& field);

}  // namespace repl
