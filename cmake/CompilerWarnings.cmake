# Interface target carrying the project's warning flags. Linked by every
# first-party target; third-party code (googletest, benchmark) is untouched.
add_library(repl_warnings INTERFACE)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(repl_warnings INTERFACE
    -Wall
    -Wextra
    -Wpedantic
    -Wshadow
    -Wconversion
    -Wsign-conversion
    -Wnon-virtual-dtor
    -Wold-style-cast
    -Wcast-align
    -Wunused
    -Woverloaded-virtual
    -Wdouble-promotion
    -Wimplicit-fallthrough)
  if(REPL_WARNINGS_AS_ERRORS)
    target_compile_options(repl_warnings INTERFACE -Werror)
  endif()
elseif(MSVC)
  target_compile_options(repl_warnings INTERFACE /W4)
  if(REPL_WARNINGS_AS_ERRORS)
    target_compile_options(repl_warnings INTERFACE /WX)
  endif()
endif()
