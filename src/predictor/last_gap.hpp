// Last-gap (order-1 Markov) predictor: forecasts that the next
// inter-request time at a server falls in the same class (within/beyond
// λ) as the previous one. Cheap, causal, and surprisingly competitive on
// bursty workloads where gap classes are strongly autocorrelated —
// a useful contrast to the EWMA predictor in the benches.
#pragma once

#include <vector>

#include "predictor/predictor.hpp"

namespace repl {

class LastGapPredictor final : public Predictor {
 public:
  explicit LastGapPredictor(int num_servers, bool default_within = false);

  void reset() override;
  Prediction predict(const PredictionQuery& query) override;
  std::string name() const override { return "last-gap"; }
  void save_state(StateWriter& out) const override;
  void load_state(StateReader& in) override;

 private:
  struct ServerState {
    double last_time = -1.0;
    int last_class = -1;  // -1 unknown, 0 beyond, 1 within
  };

  int num_servers_;
  bool default_within_;
  std::vector<ServerState> state_;
};

}  // namespace repl
