// Experiment E7 — policy comparison across workload families (the
// summary behind the paper's Section-10 claims): for each workload
// (Poisson, bursty MMPP, diurnal, IBM-like) and each λ regime, the ratio
// of every policy against the exact offline optimum, plus the measured
// accuracy of the causal history predictor.
//
// Expected shape: DRWP with good predictions wins everywhere it matters
// (λ comparable to typical gaps); at extreme λ all reasonable policies
// converge; naive policies lose by large factors in their adverse regime.
#include <iostream>
#include <memory>

#include "analysis/ratio.hpp"
#include "baselines/naive.hpp"
#include "baselines/wang2021.hpp"
#include "bench_util.hpp"
#include "core/adaptive_drwp.hpp"
#include "core/drwp.hpp"
#include "extensions/randomized_drwp.hpp"
#include "offline/opt_dp.hpp"
#include "predictor/ensemble.hpp"
#include "predictor/history.hpp"
#include "predictor/last_gap.hpp"
#include "predictor/noisy.hpp"
#include "predictor/oracle.hpp"
#include "trace/generators.hpp"
#include "trace/trace_stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

struct Workload {
  std::string name;
  repl::Trace trace;
};

std::vector<Workload> make_workloads(std::uint64_t seed) {
  using namespace repl;
  std::vector<Workload> workloads;
  workloads.push_back(
      {"poisson", generate_poisson_trace(8, 0.02, 2 * 86400.0,
                                         ServerAssignment{}, seed)});
  MmppConfig mmpp;
  mmpp.rate_low = 0.002;
  mmpp.rate_high = 0.3;
  mmpp.mean_low_duration = 7200.0;
  mmpp.mean_high_duration = 600.0;
  mmpp.horizon = 2 * 86400.0;
  workloads.push_back(
      {"bursty-mmpp",
       generate_mmpp_trace(8, mmpp, ServerAssignment{}, seed + 1)});
  DiurnalConfig diurnal;
  diurnal.base_rate = 0.02;
  diurnal.amplitude = 0.85;
  diurnal.horizon = 2 * 86400.0;
  workloads.push_back(
      {"diurnal",
       generate_diurnal_trace(8, diurnal, ServerAssignment{}, seed + 2)});
  IbmSynthConfig ibm;
  ibm.horizon = 2 * 86400.0;
  ibm.target_requests = 11688.0 * 2.0 / 7.0;
  workloads.push_back({"ibm-like", synthesize_ibm_like(ibm, seed + 3)});
  return workloads;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace repl;
  CliParser cli("bench_policy_comparison",
                "all policies x workload families x lambda");
  cli.add_flag("seed", "11", "workload seed");
  cli.add_flag("alpha", "0.2", "alpha for prediction-using policies");
  cli.add_flag("lambdas", "30,300,3000", "lambda values");
  if (!cli.parse(argc, argv)) return 0;
  const double alpha = cli.get_double("alpha");

  bench::ShapeChecks checks;
  for (Workload& workload : make_workloads(cli.get_uint64("seed"))) {
    const Trace& trace = workload.trace;
    const TraceStats stats = compute_trace_stats(trace);
    std::cout << "=== workload " << workload.name << ": "
              << stats.summary() << " ===\n";
    SystemConfig config;
    config.num_servers = trace.num_servers();

    for (double lambda : cli.get_double_list("lambdas")) {
      config.transfer_cost = lambda;
      const double opt = optimal_offline_cost(config, trace);
      std::cout << "--- lambda = " << lambda
                << " (fraction of same-server gaps <= lambda: "
                << Table::cell(stats.fraction_gaps_within(lambda), 3)
                << ") ---\n";
      Table table({"policy", "predictor", "ratio", "transfers"});
      double drwp_oracle_ratio = 0.0, static_ratio = 0.0;

      auto run = [&](ReplicationPolicy& policy, Predictor& predictor) {
        const RatioReport report =
            evaluate_policy(config, policy, trace, predictor, opt);
        table.add_row({report.policy_name, report.predictor_name,
                       Table::cell(report.ratio, 4),
                       Table::cell(report.num_transfers)});
        return report.ratio;
      };

      OraclePredictor oracle(trace);
      AccuracyPredictor noisy80(trace, 0.8, 99);
      HistoryPredictor history(trace.num_servers());
      LastGapPredictor last_gap(trace.num_servers());
      std::vector<std::shared_ptr<Predictor>> experts;
      experts.push_back(
          std::make_shared<HistoryPredictor>(trace.num_servers()));
      experts.push_back(
          std::make_shared<LastGapPredictor>(trace.num_servers()));
      experts.push_back(std::make_shared<AccuracyPredictor>(trace, 0.6, 5));
      EnsemblePredictor ensemble(std::move(experts));

      DrwpPolicy drwp_o(alpha);
      drwp_oracle_ratio = run(drwp_o, oracle);
      DrwpPolicy drwp_n(alpha);
      run(drwp_n, noisy80);
      DrwpPolicy drwp_h(alpha);
      run(drwp_h, history);
      DrwpPolicy drwp_lg(alpha);
      run(drwp_lg, last_gap);
      DrwpPolicy drwp_ens(alpha);
      run(drwp_ens, ensemble);
      AdaptiveDrwpPolicy adaptive(
          alpha, AdaptiveDrwpPolicy::Options{0.5, 100});
      AccuracyPredictor noisy80b(trace, 0.8, 99);
      run(adaptive, noisy80b);
      ConventionalPolicy conventional;
      run(conventional, oracle);
      RandomizedDrwpPolicy randomized(alpha, 7);
      AccuracyPredictor noisy80c(trace, 0.8, 99);
      run(randomized, noisy80c);
      Wang2021Policy wang;
      run(wang, oracle);
      FullReplicationPolicy full;
      run(full, oracle);
      StaticPolicy pinned;
      static_ratio = run(pinned, oracle);
      SingleCopyChasePolicy chase;
      run(chase, oracle);

      std::cout << table.str() << "\n";
      checks.expect(
          drwp_oracle_ratio <= consistency_bound(alpha) + 1e-9,
          workload.name + " lambda=" + std::to_string(lambda) +
              ": drwp+oracle within consistency bound");
      if (stats.fraction_gaps_within(lambda) > 0.3) {
        checks.expect(drwp_oracle_ratio < static_ratio,
                      workload.name + " lambda=" +
                          std::to_string(lambda) +
                          ": drwp+oracle beats static pinning when "
                          "locality matters");
      }
    }
    std::cout << "\n";
  }
  return checks.finish();
}
