// Proposition-2 cost allocation (Section 4.1).
//
// The paper's competitive analysis charges the entire online cost to
// individual requests:
//   Type-1:  l_i + λ
//   Type-2:  (t_i − t'_i) + l_i + λ
//   Type-3:  t_i − t_{p(i)}
//   Type-4:  t_i − t_{p(i)}   ( = (t_i − t'_i) + l_i )
// with the end-of-sequence adjustments: the regular copy created after
// the final request r_m and the special copy that survives forever are
// excluded, and the n'−1 leftover regular copies (after each other active
// server's last request) are charged to the n'−1 first requests at
// non-initial servers.
//
// `allocate_costs` computes both sides of the allocation identity — the
// per-request allocations and the independently-integrated adjusted
// online cost — so tests can assert they agree to rounding error. A
// nonzero discrepancy indicates a bug in the policy, the simulator, or
// this analyzer.
//
// Only meaningful for DRWP-family simulations (policies with intended
// durations and special-copy semantics).
#pragma once

#include <vector>

#include "core/simulator.hpp"
#include "trace/trace.hpp"

namespace repl {

struct AllocationReport {
  /// Per-request allocation, aligned with the trace. First requests at
  /// non-initial servers include their share of the leftover copies.
  std::vector<double> allocated;
  /// Sum of `allocated`.
  double total_allocated = 0.0;
  /// λ·(transfers) + storage integrated over all copy segments, minus the
  /// two excluded artifacts (the post-r_m regular copy at s[r_m] and the
  /// infinite special copy).
  double adjusted_online_cost = 0.0;

  double discrepancy() const {
    return total_allocated - adjusted_online_cost;
  }
};

AllocationReport allocate_costs(const SimulationResult& result,
                                const Trace& trace);

}  // namespace repl
