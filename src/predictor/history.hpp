// Causal history-based predictor.
//
// A realistic stand-in for the machine-learned predictor the paper
// assumes: it observes only past arrivals and forecasts the next
// inter-request time at a server from an exponentially weighted moving
// average (EWMA) of that server's past inter-request times. The forecast
// is "within lambda" iff the EWMA is at most `margin * lambda`.
//
// Unlike the clairvoyant predictors this one can be used on live request
// streams; its accuracy on a trace is itself an interesting measurement
// (see the cdn_workload example).
#pragma once

#include <vector>

#include "predictor/predictor.hpp"

namespace repl {

class HistoryPredictor final : public Predictor {
 public:
  struct Config {
    double ewma_decay = 0.3;       // weight of the newest observation
    double margin = 1.0;           // compare EWMA against margin * lambda
    bool default_within = false;   // forecast before any observation
  };

  explicit HistoryPredictor(int num_servers)
      : HistoryPredictor(num_servers, Config()) {}
  HistoryPredictor(int num_servers, Config config);

  void reset() override;
  Prediction predict(const PredictionQuery& query) override;
  std::string name() const override { return "history-ewma"; }
  void save_state(StateWriter& out) const override;
  void load_state(StateReader& in) override;

  /// EWMA currently held for `server`; negative if no observation yet.
  double ewma(int server) const;

 private:
  struct ServerState {
    double last_time = -1.0;  // time of previous request; <0 if none
    double ewma = -1.0;       // <0 until the first gap is observed
  };

  int num_servers_;
  Config config_;
  std::vector<ServerState> state_;
};

}  // namespace repl
