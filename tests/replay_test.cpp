// Replay subsystem tests: fixture format round trip and corruption
// rejection, failure-signature normalization, capture → replay
// bit-parity across slice formats and checkpointing, the structured
// fuzzer's determinism and zero-escape invariant, and minimizer
// convergence on a large failing input.
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/experiment.hpp"
#include "checkpoint/snapshot.hpp"
#include "codec/crc32.hpp"
#include "codec/endian.hpp"
#include "replay/fixture.hpp"
#include "replay/fixture_run.hpp"
#include "replay/fuzz.hpp"
#include "replay/minimize.hpp"
#include "replay/structure.hpp"
#include "trace/event_log.hpp"

namespace repl {
namespace {

class ReplayTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& name) {
    return (dir_ / name).string();
  }

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("repl_replay_test_" + std::string(::testing::UnitTest::GetInstance()
                                                  ->current_test_info()
                                                  ->name()));
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
};

std::vector<LogEvent> make_events(std::size_t n) {
  std::vector<LogEvent> events;
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += 0.125 * static_cast<double>(1 + (i % 5));
    events.push_back(
        LogEvent{t, (i * 13) % 29, static_cast<std::uint32_t>(i % 3)});
  }
  return events;
}

std::string write_event_log(const std::string& path,
                            const std::vector<LogEvent>& events,
                            EventLogFormat format,
                            std::size_t block_events = kEventLogBlockEvents) {
  EventLogWriter writer(path, /*num_servers=*/3, /*num_objects=*/0, format,
                        block_events);
  for (const LogEvent& event : events) writer.write(event);
  writer.close();
  return path;
}

TEST_F(ReplayTest, FixtureRoundTripsEveryField) {
  Fixture fixture;
  fixture.target = FixtureTarget::kServe;
  fixture.expect = FixtureExpect::kFailure;
  fixture.policy_spec = "drwp(alpha=0.3)";
  fixture.predictor_spec = "last_gap";
  fixture.source_name = "unit-test";
  fixture.num_servers = 5;
  fixture.transfer_cost = 2.5;
  fixture.initial_server = 1;
  fixture.storage_rates = {0.5, 1.0, 1.5, 2.0, 2.5};
  fixture.base_seed = 42;
  fixture.horizon = 99.5;
  fixture.compute_lower_bound = false;
  fixture.compress_checkpoints = true;
  fixture.slice_first_event = 7;
  fixture.slice_events = 123;
  fixture.slice_begin_byte = 32;
  fixture.slice_end_byte = 4096;
  fixture.cuts = {10, 20, 30};
  fixture.aggregates.objects = 29;
  fixture.aggregates.events = 123;
  fixture.aggregates.num_local = 60;
  fixture.aggregates.num_transfers = 9;
  fixture.aggregates.online_cost = 17.125;
  fixture.aggregates.lower_bound = 11.0625;
  fixture.signature = "event log slice.evlog: something # happened";
  fixture.blob = {0x01, 0x02, 0x03, 0xff, 0x00, 0x7f};

  const std::string path = temp_path("roundtrip.replfixt");
  write_fixture(path, fixture);
  const Fixture back = read_fixture(path);

  EXPECT_EQ(back.target, fixture.target);
  EXPECT_EQ(back.expect, fixture.expect);
  EXPECT_EQ(back.policy_spec, fixture.policy_spec);
  EXPECT_EQ(back.predictor_spec, fixture.predictor_spec);
  EXPECT_EQ(back.source_name, fixture.source_name);
  EXPECT_EQ(back.num_servers, fixture.num_servers);
  EXPECT_EQ(back.transfer_cost, fixture.transfer_cost);
  EXPECT_EQ(back.initial_server, fixture.initial_server);
  EXPECT_EQ(back.storage_rates, fixture.storage_rates);
  EXPECT_EQ(back.base_seed, fixture.base_seed);
  EXPECT_EQ(back.horizon, fixture.horizon);
  EXPECT_EQ(back.compute_lower_bound, fixture.compute_lower_bound);
  EXPECT_EQ(back.compress_checkpoints, fixture.compress_checkpoints);
  EXPECT_EQ(back.slice_first_event, fixture.slice_first_event);
  EXPECT_EQ(back.slice_events, fixture.slice_events);
  EXPECT_EQ(back.slice_begin_byte, fixture.slice_begin_byte);
  EXPECT_EQ(back.slice_end_byte, fixture.slice_end_byte);
  EXPECT_EQ(back.cuts, fixture.cuts);
  EXPECT_EQ(back.aggregates.objects, fixture.aggregates.objects);
  EXPECT_EQ(back.aggregates.events, fixture.aggregates.events);
  EXPECT_EQ(back.aggregates.num_local, fixture.aggregates.num_local);
  EXPECT_EQ(back.aggregates.num_transfers, fixture.aggregates.num_transfers);
  EXPECT_EQ(back.aggregates.online_cost, fixture.aggregates.online_cost);
  EXPECT_EQ(back.aggregates.lower_bound, fixture.aggregates.lower_bound);
  EXPECT_EQ(back.signature, fixture.signature);
  EXPECT_EQ(back.blob, fixture.blob);
}

TEST_F(ReplayTest, FixtureFileRejectsEveryFlippedByte) {
  Fixture fixture;
  fixture.target = FixtureTarget::kWire;
  fixture.source_name = "flip";
  fixture.blob = {1, 2, 3, 4, 5};
  const std::string path = temp_path("flip.replfixt");
  write_fixture(path, fixture);
  const std::vector<unsigned char> bytes = read_bytes(path);

  const std::string corrupt = temp_path("flip_corrupt.replfixt");
  for (std::size_t offset = 0; offset < bytes.size(); ++offset) {
    std::vector<unsigned char> mutated = bytes;
    mutated[offset] ^= 0x20;
    write_bytes(corrupt, mutated);
    EXPECT_THROW(read_fixture(corrupt), std::runtime_error)
        << "flipped byte " << offset << " went undetected";
  }
}

TEST_F(ReplayTest, SnapshotWalkSurvivesTruncationAtEveryByte) {
  // Regression: a v2/v3 snapshot truncated inside the extension header
  // (64..87 bytes) used to underflow the walker's size_t arithmetic and
  // read past the buffer. Every prefix must walk cleanly, and a
  // well-formed header claim must stay inside the bytes it was given.
  SnapshotHeader header;
  header.num_servers = 3;
  header.num_objects = 2;
  header.policy_spec = "drwp(alpha=0.3)";
  header.predictor_spec = "last_gap";
  const std::string path = temp_path("walk.ckpt");
  {
    SnapshotWriter writer(path, header);
    writer.add_object(1, {0x10, 0x20, 0x30});
    writer.add_object(4, {0x40});
    writer.close();
  }
  const std::vector<unsigned char> bytes = read_bytes(path);
  ASSERT_GT(bytes.size(), SnapshotHeader::kSize + SnapshotHeader::kExtensionSize);

  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    std::vector<unsigned char> prefix(
        bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    for (const std::uint32_t version : {std::uint32_t{3}, std::uint32_t{2}}) {
      if (version != 3) {
        if (prefix.size() < 12) continue;
        store_le32(prefix.data() + 8, version);
      }
      const SnapshotImage image = walk_snapshot_image(prefix);
      EXPECT_LE(image.header_bytes, prefix.size()) << "cut " << cut;
      EXPECT_LE(image.tail_offset, prefix.size()) << "cut " << cut;
      if (cut < bytes.size()) {
        EXPECT_FALSE(image.header_ok && image.records.size() == 2 &&
                     image.footer_present)
            << "cut " << cut << " walked as complete";
      }
    }
  }

  // End-to-end reachability from the review: minimizing a fixture whose
  // blob is a snapshot cut mid-extension drives build_snapshot_model
  // over exactly these truncated bytes.
  Fixture fixture;
  fixture.target = FixtureTarget::kSnapshot;
  fixture.expect = FixtureExpect::kFailure;
  fixture.source_name = "truncated-extension";
  fixture.blob.assign(bytes.begin(), bytes.begin() + 70);
  const MinimizeResult result = minimize_fixture(fixture);
  EXPECT_FALSE(result.signature.empty());
  const FixtureRunResult replay = fixture_run(result.fixture);
  EXPECT_TRUE(replay.pass) << replay.detail;
}

// Overwrites the u32 at `at` and reseals the trailing CRC, so the
// mutation reaches the metadata decoder instead of the CRC check.
void patch_fixture_u32(std::vector<unsigned char>& bytes, std::size_t at,
                       std::uint32_t value) {
  ASSERT_LT(at + 4, bytes.size() - 12);
  store_le32(bytes.data() + at, value);
  const std::size_t crc_at = bytes.size() - 12;
  store_le32(bytes.data() + crc_at, crc32c(bytes.data(), crc_at));
}

TEST_F(ReplayTest, FixtureRejectsImplausibleServerAndRateCounts) {
  // Regression: num_servers and the storage-rate count are untrusted
  // u32s; uncapped they drove an int overflow (SystemConfig) and a
  // multi-GB resize respectively. Both must fail with a diagnostic.
  Fixture fixture;
  fixture.policy_spec = "p";
  fixture.predictor_spec = "q";
  fixture.source_name = "s";
  fixture.num_servers = 2;
  fixture.storage_rates = {1.0, 2.0};
  const std::string path = temp_path("counts.replfixt");
  write_fixture(path, fixture);
  const std::vector<unsigned char> sealed = read_bytes(path);

  // Meta field offsets (see write_fixture): three length-prefixed spec
  // strings, then num_servers u32, transfer_cost f64, initial_server
  // i32, rate count u32.
  const std::size_t meta_at = 32;
  const std::size_t servers_at = meta_at + (4 + fixture.policy_spec.size()) +
                                 (4 + fixture.predictor_spec.size()) +
                                 (4 + fixture.source_name.size());
  const std::size_t rates_at = servers_at + 4 + 8 + 4;

  const auto read_failure = [&](const std::vector<unsigned char>& bytes) {
    const std::string corrupt = temp_path("counts_bad.replfixt");
    write_bytes(corrupt, bytes);
    try {
      read_fixture(corrupt);
    } catch (const std::runtime_error& e) {
      return std::string(e.what());
    }
    return std::string();
  };

  {
    std::vector<unsigned char> mutated = sealed;
    patch_fixture_u32(mutated, servers_at, 0xFFFFFFFFu);
    EXPECT_NE(read_failure(mutated).find("implausible server count"),
              std::string::npos);
  }
  {
    std::vector<unsigned char> mutated = sealed;
    patch_fixture_u32(mutated, servers_at, 0);
    EXPECT_NE(read_failure(mutated).find("implausible server count"),
              std::string::npos);
  }
  {
    // A server count at the cap is fine, but a rate count claiming more
    // doubles than the metadata holds must fail before any resize.
    std::vector<unsigned char> mutated = sealed;
    patch_fixture_u32(mutated, servers_at, 1u << 20);
    patch_fixture_u32(mutated, rates_at, 1u << 20);
    EXPECT_NE(read_failure(mutated).find("implausible storage-rate count"),
              std::string::npos);
  }

  // The untouched fixture still reads back.
  EXPECT_EQ(read_fixture(path).num_servers, 2u);
}

TEST_F(ReplayTest, FailureSignatureNormalizesPathsAndDigits) {
  EXPECT_EQ(failure_signature(
                "event log /tmp/replfixt-123-4/slice.evlog: CRC mismatch "
                "(corrupt block) (block 17, byte offset 4242)"),
            "event log slice.evlog: CRC mismatch (corrupt block) (block #, "
            "byte offset #)");
  // Signatures are stable across scratch directories and positions.
  EXPECT_EQ(failure_signature("log /a/b/x.evlog: bad 1 at 999"),
            failure_signature("log /other/dir/x.evlog: bad 7 at 3"));
}

TEST_F(ReplayTest, CaptureReplayParityAcrossFormatsAndCheckpoints) {
  const std::vector<LogEvent> events = make_events(600);
  const std::string log_path = write_event_log(
      temp_path("source.evlog"), events, EventLogFormat::kCompressed, 64);

  for (const EventLogFormat slice_format :
       {EventLogFormat::kRaw, EventLogFormat::kCompressed}) {
    for (const std::uint64_t checkpoint_every : {std::uint64_t{0},
                                                 std::uint64_t{150}}) {
      const std::string label =
          std::string(event_log_format_name(slice_format)) + "-ckpt" +
          std::to_string(checkpoint_every);

      SystemConfig config;
      config.num_servers = 3;
      EngineBuilder builder;
      builder.config(config).policy("drwp(alpha=0.3)").predictor("last_gap");
      auto engine = builder.build();

      const std::string fixture_path = temp_path(label + ".replfixt");
      ServeOptions serve;
      serve.batch_events = 128;
      serve.checkpoint_every = checkpoint_every;
      if (checkpoint_every > 0) {
        serve.checkpoint_path = temp_path(label + ".ckpt");
      }
      CaptureOptions capture;
      capture.path = fixture_path;
      capture.log_format = slice_format;
      capture.source_name = log_path;
      serve.capture = capture;

      EventLogReader reader(log_path);
      engine->serve(reader, serve);

      const Fixture fixture = read_fixture(fixture_path);
      EXPECT_EQ(fixture.slice_events, events.size()) << label;
      EXPECT_EQ(fixture.cuts.size(), checkpoint_every > 0 ? 4u : 0u) << label;

      // Replay must reproduce the aggregates bit-exactly — including
      // when every recorded cut is checkpointed, restored, and finished.
      FixtureRunOptions run;
      run.verify_cuts = checkpoint_every > 0;
      const FixtureRunResult result = fixture_run(fixture, run);
      EXPECT_TRUE(result.pass) << label << ": " << result.detail;

      // And the parity check has teeth: a single-ulp aggregate nudge
      // fails the replay.
      Fixture tampered = fixture;
      tampered.aggregates.online_cost =
          tampered.aggregates.online_cost * (1.0 + 1e-15) + 1e-300;
      const FixtureRunResult mismatch = fixture_run(tampered);
      EXPECT_FALSE(mismatch.pass) << label;
      EXPECT_NE(mismatch.detail.find("aggregates differ"), std::string::npos)
          << label << ": " << mismatch.detail;
    }
  }
}

TEST_F(ReplayTest, FuzzerIsDeterministicPerSeed) {
  for (const FuzzTarget target :
       {FuzzTarget::kLog, FuzzTarget::kSnapshot, FuzzTarget::kWire}) {
    FuzzOptions options;
    options.seed = 5;
    options.cases = 40;
    const FuzzReport first = fuzz_format(target, options);
    const FuzzReport second = fuzz_format(target, options);
    EXPECT_EQ(first.trace, second.trace) << fuzz_target_name(target);
    EXPECT_EQ(first.accepted, second.accepted) << fuzz_target_name(target);
    EXPECT_EQ(first.rejected, second.rejected) << fuzz_target_name(target);

    options.seed = 6;
    const FuzzReport other = fuzz_format(target, options);
    EXPECT_NE(first.trace, other.trace) << fuzz_target_name(target);
  }
}

TEST_F(ReplayTest, FuzzSmokeFindsNoEscapes) {
  // The zero-escape invariant on a small budget: every mutation either
  // decodes to the expected result or is rejected with a positioned
  // diagnostic. (CI runs the same check with bigger budgets.)
  for (const FuzzTarget target :
       {FuzzTarget::kLog, FuzzTarget::kSnapshot, FuzzTarget::kWire}) {
    FuzzOptions options;
    options.seed = 11;
    options.cases = 80;
    const FuzzReport report = fuzz_format(target, options);
    std::string escapes;
    for (const FuzzFailure& failure : report.failures) {
      escapes += failure.mutation + ": " + failure.detail + "\n";
    }
    EXPECT_TRUE(report.ok()) << fuzz_target_name(target) << " escapes:\n"
                             << escapes;
  }
}

TEST_F(ReplayTest, MinimizerConvergesOnLargeFailingInput) {
  // A 10k-event compressed log with one corrupt block must shrink to a
  // fixture of fewer than 100 events that still fails with the same
  // signature.
  const std::vector<LogEvent> events = make_events(10000);
  const std::string log_path = write_event_log(
      temp_path("big.evlog"), events, EventLogFormat::kCompressed, 64);
  std::vector<unsigned char> bytes = read_bytes(log_path);
  const LogImage image = walk_log_image(bytes);
  ASSERT_GT(image.segments.size(), 100u);
  const SegmentSpan& victim = image.segments[image.segments.size() / 2];
  bytes[victim.payload_offset + 5] ^= 0x08;

  Fixture fixture;
  fixture.target = FixtureTarget::kServe;
  fixture.expect = FixtureExpect::kFailure;
  fixture.policy_spec = "drwp(alpha=0.3)";
  fixture.predictor_spec = "last_gap";
  fixture.num_servers = 3;
  fixture.source_name = "minimizer-convergence";
  fixture.blob = std::move(bytes);

  const MinimizeResult result = minimize_fixture(fixture);
  EXPECT_LT(result.fixture.slice_events, 100u);
  EXPECT_LT(result.minimized_bytes, result.original_bytes / 10);
  EXPECT_NE(result.signature.find("CRC mismatch"), std::string::npos)
      << result.signature;

  // The minimized fixture still fails with the preserved signature.
  const FixtureRunResult replay = fixture_run(result.fixture);
  EXPECT_TRUE(replay.pass) << replay.detail;

  // A healthy input has nothing to minimize.
  Fixture healthy = fixture;
  healthy.blob = read_bytes(log_path);
  EXPECT_THROW(minimize_fixture(healthy), std::invalid_argument);
}

}  // namespace
}  // namespace repl
