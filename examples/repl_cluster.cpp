// Distributed partitioned serving launcher: one binary, three roles.
//
//   coordinator  owns the event log, fork/execs one worker per
//                partition (re-invoking this binary with --role=worker),
//                routes events by the stable partition function over
//                unix-domain sockets, and reduces the workers' finals
//                into global aggregates;
//   worker       one partition's StreamingEngine behind a NetIngestServer
//                (spawned by the coordinator — rarely run by hand);
//   single       the same log served in-process, printing the same
//                canonical AGGREGATE line — the bit-parity diff target.
//
//   ./build/examples/repl_cluster --role=single --log=trace.evlog
//   ./build/examples/repl_cluster --log=trace.evlog --partitions=4
//       --checkpoint-every=100000
//
// The two AGGREGATE lines are bit-identical (costs print as hexfloat) at
// any partition/shard/thread geometry — including after a worker is
// killed mid-serve and respawned from its per-partition checkpoint,
// which --test-kill-partition/--test-kill-after-events stage on purpose
// for the e2e suite.
#include <signal.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "api/experiment.hpp"
#include "cluster/coordinator.hpp"
#include "cluster/worker.hpp"
#include "engine/engine.hpp"
#include "obs/http_exporter.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "trace/event_log.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace repl;

namespace {

/// The canonical machine-diffable aggregate line. Costs print as
/// hexfloat so equality in the output is bit equality of the doubles.
void print_aggregate(const EngineMetrics& metrics) {
  std::ostringstream out;
  out << "AGGREGATE objects=" << metrics.objects
      << " events=" << metrics.events << " local=" << metrics.num_local
      << " transfers=" << metrics.num_transfers << std::hexfloat
      << " online_cost=" << metrics.online_cost
      << " lower_bound=" << metrics.lower_bound;
  std::cout << out.str() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("repl_cluster",
                "distributed partitioned serving: coordinator, worker, "
                "and single-process parity roles");
  cli.add_flag("role", "coordinator", "coordinator | worker | single");
  cli.add_flag("log", "", "event log to serve (coordinator/single roles)");
  cli.add_flag("partitions", "4", "worker processes / object partitions");
  cli.add_flag("socket-dir", "",
               "directory for the cluster's sockets and per-partition "
               "checkpoints (default: a fresh temp dir)");
  cli.add_flag("worker-binary", "",
               "worker executable (default: this binary)");
  cli.add_flag("servers", "10", "servers in the replicated system");
  cli.add_flag("lambda", "10", "transfer cost λ");
  cli.add_flag("initial-server", "0", "initial replica location");
  cli.add_flag("policy", "drwp(alpha=0.3)", "policy component spec");
  cli.add_flag("predictor", "last_gap", "predictor component spec");
  cli.add_flag("seed", std::to_string(0x5eed5eed5eed5eedULL),
               "base seed of the per-object seed streams");
  cli.add_flag("shards", "64", "object-table shards per engine");
  cli.add_flag("threads", "0",
               "worker threads per engine (0 = all hardware threads)");
  cli.add_flag("batch-events", "65536", "events per wire block / batch");
  cli.add_flag("checkpoint-every", "0",
               "per-partition checkpoint cadence in partition-local "
               "events (0 = never)");
  cli.add_flag("max-respawns", "3", "respawn budget per partition");
  cli.add_bool_flag("compress", "write snapshots with compressed records");
  cli.add_bool_flag("no-lower-bound", "skip the OPTL lower bound");
  cli.add_flag("metrics-port", "-1",
               "(coordinator) GET /metrics endpoint on 127.0.0.1:PORT "
               "(0 = ephemeral, -1 = off); serves the federated cluster "
               "view plus /healthz with per-partition state");
  cli.add_flag("trace-out", "",
               "coordinator: merge the whole cluster serve into one "
               "Chrome trace_event JSON here; worker: this process's "
               "trace part file (JSONL, coordinator-assigned); single: "
               "one-process trace JSONL");
  cli.add_flag("log-level", "",
               "structured-log spec, e.g. 'info' or 'warn,net=debug,"
               "cluster=debug' (default: warn)");
  cli.add_bool_flag("log-json", "emit log lines as JSON objects");
  cli.add_flag("stats-every", "0",
               "periodic progress lines every N seconds (0 = off); the "
               "coordinator also forwards this to workers");
  // Worker-role plumbing (the coordinator passes these).
  cli.add_flag("partition", "0", "(worker) partition id");
  cli.add_flag("event-socket", "", "(worker) unix socket to serve events on");
  cli.add_flag("control-socket", "",
               "(worker) coordinator's control socket to dial");
  cli.add_flag("checkpoint-path", "", "(worker) snapshot destination");
  cli.add_flag("resume-from", "", "(worker) restore this snapshot");
  // Failure-injection hooks for the e2e suite.
  cli.add_flag("test-kill-partition", "-1",
               "(coordinator, tests) SIGKILL this partition's worker once "
               "--test-kill-after-events of its events have been routed");
  cli.add_flag("test-kill-after-events", "0",
               "(coordinator, tests) the kill threshold, in "
               "partition-local events");
  if (!cli.parse(argc, argv)) return 0;

  const std::string role = cli.get_string("role");
  const auto partitions =
      static_cast<std::uint32_t>(cli.get_size_t("partitions", 1, 1024));

  // Logs go to stderr (stdout carries the AGGREGATE/table contract
  // lines); the spec/json flags reach workers via the coordinator's
  // pass-through, so one invocation configures the whole cluster.
  if (!cli.get_string("log-level").empty()) {
    obs::Logger::global().configure(cli.get_string("log-level"));
  }
  if (cli.get_bool("log-json")) obs::Logger::global().set_json(true);
  const std::string trace_out = cli.get_string("trace-out");
  const double stats_every = cli.get_double("stats-every");

  SystemConfig config;
  config.num_servers = static_cast<int>(cli.get_size_t("servers", 1, 4096));
  config.transfer_cost = cli.get_double("lambda");
  config.initial_server =
      static_cast<int>(cli.get_size_t("initial-server", 0, 4095));

  EngineOptions engine_options;
  engine_options.num_shards = cli.get_size_t("shards", 1, 1 << 20);
  engine_options.num_threads =
      static_cast<int>(cli.get_size_t("threads", 0, 4096));
  engine_options.base_seed = cli.get_uint64("seed");
  engine_options.compress_checkpoints = cli.get_bool("compress");
  engine_options.compute_lower_bound = !cli.get_bool("no-lower-bound");

  try {
    if (role == "worker") {
      ClusterWorkerOptions worker;
      worker.partition_id =
          static_cast<std::uint32_t>(cli.get_size_t("partition"));
      worker.num_partitions = partitions;
      worker.event_socket = cli.get_string("event-socket");
      worker.control_socket = cli.get_string("control-socket");
      worker.snapshot_path = cli.get_string("checkpoint-path");
      worker.checkpoint_every = cli.get_uint64("checkpoint-every");
      worker.resume_from = cli.get_string("resume-from");
      worker.config = config;
      worker.engine = engine_options;
      if (worker.resume_from.empty()) {
        worker.policy_spec = cli.get_string("policy");
        worker.predictor_spec = cli.get_string("predictor");
      }
      worker.batch_events = cli.get_size_t("batch-events", 1);
      worker.stats_every = stats_every;
      if (!trace_out.empty()) {
        obs::Tracer::global().start(
            trace_out, "worker-p" + std::to_string(worker.partition_id));
      }
      run_cluster_worker(worker);
      obs::Tracer::global().stop();
      return EXIT_SUCCESS;
    }

    const std::string log_path = cli.get_string("log");
    if (log_path.empty()) {
      std::cerr << "error: --log is required for role " << role << "\n";
      return EXIT_FAILURE;
    }

    if (role == "single") {
      EngineBuilder builder;
      builder.config(config)
          .options(engine_options)
          .policy(cli.get_string("policy"))
          .predictor(cli.get_string("predictor"));
      std::unique_ptr<StreamingEngine> engine = builder.build();
      EventLogReader reader(log_path);
      ServeOptions serve;
      serve.batch_events = cli.get_size_t("batch-events", 1);
      serve.stats_every = stats_every;
      if (!trace_out.empty()) {
        obs::Tracer::global().start(trace_out, "single");
      }
      const EngineMetrics metrics = engine->serve(reader, serve);
      obs::Tracer::global().stop();
      print_aggregate(metrics);
      return EXIT_SUCCESS;
    }

    if (role != "coordinator") {
      std::cerr << "error: unknown --role " << role << "\n";
      return EXIT_FAILURE;
    }

    std::string socket_dir = cli.get_string("socket-dir");
    if (socket_dir.empty()) {
      socket_dir = (std::filesystem::temp_directory_path() /
                    ("repl_cluster_" + std::to_string(::getpid())))
                       .string();
    }
    std::filesystem::create_directories(socket_dir);

    obs::MetricsRegistry registry;
    ClusterCoordinatorOptions opts;
    opts.num_partitions = partitions;
    opts.worker_binary = cli.get_string("worker-binary").empty()
                             ? std::string(argv[0])
                             : cli.get_string("worker-binary");
    opts.socket_dir = socket_dir;
    opts.config = config;
    opts.policy_spec = cli.get_string("policy");
    opts.predictor_spec = cli.get_string("predictor");
    opts.base_seed = engine_options.base_seed;
    opts.worker_shards = engine_options.num_shards;
    opts.worker_threads = engine_options.num_threads;
    opts.compute_lower_bound = engine_options.compute_lower_bound;
    opts.compress_checkpoints = engine_options.compress_checkpoints;
    opts.batch_events = cli.get_size_t("batch-events", 1);
    opts.checkpoint_every = cli.get_uint64("checkpoint-every");
    opts.max_respawns = cli.get_size_t("max-respawns");
    opts.metrics = &registry;
    opts.log_spec = cli.get_string("log-level");
    opts.log_json = cli.get_bool("log-json");
    opts.stats_every = stats_every;
    // Trace parts collect next to the sockets; the merged timeline goes
    // wherever --trace-out points.
    std::string coord_trace_part;
    if (!trace_out.empty()) {
      opts.trace_dir = socket_dir;
      coord_trace_part = socket_dir + "/trace.coord.jsonl";
      obs::Tracer::global().start(coord_trace_part, "coordinator");
    }

    // Staged failure injection: kill our own worker (a real SIGKILL of a
    // real process) once its routed-event count crosses the threshold —
    // the respawn/catch-up path then runs for real, deterministically.
    ClusterCoordinator* coordinator_ptr = nullptr;
    const long long kill_partition = cli.get_int("test-kill-partition");
    const std::uint64_t kill_after = cli.get_uint64("test-kill-after-events");
    bool killed = false;
    if (kill_partition >= 0) {
      opts.on_progress = [&](std::uint32_t p, std::uint64_t routed) {
        if (killed || coordinator_ptr == nullptr) return;
        if (p != static_cast<std::uint32_t>(kill_partition) ||
            routed < kill_after) {
          return;
        }
        const int pid = coordinator_ptr->worker_pid(p);
        if (pid > 0) ::kill(pid, SIGKILL);
        killed = true;
      };
    }

    ClusterCoordinator coordinator(opts);
    coordinator_ptr = &coordinator;

    // The coordinator's /metrics is the whole cluster's: its own
    // repl_cluster_* series plus every worker's federated snapshot, and
    // /healthz reports per-partition liveness. Hooks go in before
    // start() — the server reads them from its handler thread.
    std::unique_ptr<obs::MetricsHttpServer> metrics_http;
    if (cli.get_int("metrics-port") >= 0) {
      obs::MetricsHttpOptions http;
      http.port = static_cast<int>(cli.get_int("metrics-port"));
      metrics_http = std::make_unique<obs::MetricsHttpServer>(registry, http);
      metrics_http->set_extra_samples(
          [&coordinator] { return coordinator.federated_samples(); });
      metrics_http->set_health_extra(
          [&coordinator](JsonWriter& w) { coordinator.health_json(w); });
      metrics_http->start();
      std::cout << "metrics: http://127.0.0.1:" << metrics_http->port()
                << "/metrics" << std::endl;
    }

    std::cout << "serving " << log_path << " across " << partitions
              << " worker processes (sockets in " << socket_dir << ")"
              << std::endl;
    const ClusterServeResult result = coordinator.serve_log(log_path);

    if (!trace_out.empty()) {
      // Workers have exited (serve_log reaps them), so every part file
      // that will ever exist does; stitch them into one timeline.
      obs::Tracer::global().stop();
      std::vector<std::string> parts = coordinator.trace_parts();
      parts.push_back(coord_trace_part);
      const std::size_t events = obs::merge_trace_parts(parts, trace_out);
      std::cout << "trace: " << trace_out << " (" << events << " events from "
                << parts.size() << " part files)" << std::endl;
    }

    Table table({"partition", "objects", "events", "local", "transfers"});
    for (std::uint32_t p = 0; p < partitions; ++p) {
      const ControlSummary& s = result.summaries[p];
      table.add_row({std::to_string(p), Table::cell(s.objects),
                     Table::cell(s.events), Table::cell(s.num_local),
                     Table::cell(s.num_transfers)});
    }
    std::cout << table.str();
    std::cout << "respawns: " << result.respawns << "\n";
    print_aggregate(result.metrics);
    return EXIT_SUCCESS;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
