#include "replay/minimize.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "codec/block.hpp"
#include "replay/structure.hpp"
#include "trace/event_log.hpp"

namespace repl {

namespace {

/// One structural unit of the blob being shrunk. Decoded pieces (v2
/// blocks whose CRCs were valid) re-encode from their event list, so
/// events can be deleted inside them; raw pieces — malformed frames,
/// v1 records, snapshot records — travel as opaque bytes.
struct Piece {
  bool decoded = false;
  std::vector<LogEvent> events;
  std::vector<unsigned char> raw;
  /// Logical items for header-count patching (events for log blocks,
  /// 1 for records), as walked from the original.
  std::uint64_t items = 0;

  std::uint64_t live_items() const {
    return decoded ? events.size() : items;
  }
};

struct Model {
  /// Header bytes copied verbatim from the original blob.
  std::vector<unsigned char> header;
  std::vector<Piece> pieces;
  /// Bytes after the structured region (undecodable garbage — and, for
  /// snapshots, the footer travels separately below).
  std::vector<unsigned char> tail;
  std::vector<unsigned char> footer;
  /// Patch the header's event/object count to match the kept pieces.
  /// Only set when the original count was consistent, so a count
  /// mismatch that IS the failure is never repaired away.
  bool patch_count = false;
  bool snapshot = false;
};

Model build_log_model(const Fixture& fixture) {
  Model model;
  const std::vector<unsigned char>& blob = fixture.blob;
  const LogImage image = walk_log_image(blob);
  const std::size_t header_bytes =
      image.header_ok ? image.header_bytes
                      : std::min(blob.size(), EventLogHeader::kSize);
  model.header.assign(blob.begin(),
                      blob.begin() + static_cast<std::ptrdiff_t>(header_bytes));
  for (const SegmentSpan& span : image.segments) {
    Piece piece;
    piece.items = span.items;
    if (image.version == EventLogHeader::kVersionCompressed &&
        span.well_formed) {
      try {
        decode_event_block(static_cast<std::uint32_t>(span.items),
                           blob.data() + span.payload_offset,
                           span.size - kBlockFrameBytes, piece.events,
                           "minimizer");
        piece.decoded = true;
      } catch (const std::exception&) {
        piece.events.clear();
        piece.decoded = false;
      }
    }
    if (!piece.decoded) {
      piece.raw.assign(blob.begin() + static_cast<std::ptrdiff_t>(span.offset),
                       blob.begin() + static_cast<std::ptrdiff_t>(span.end()));
    }
    model.pieces.push_back(std::move(piece));
  }
  model.tail.assign(blob.begin() + static_cast<std::ptrdiff_t>(
                                       std::max(image.tail_offset,
                                                header_bytes)),
                    blob.end());
  const std::uint64_t total = image.items_before(image.segments.size());
  model.patch_count =
      image.header_ok && image.num_events == total;
  return model;
}

Model build_cluster_model(const Fixture& fixture) {
  // Control frames travel as opaque bytes: each is a protocol message
  // whose meaning depends on stream position, so the minimizer only
  // deletes whole frames (and the undecodable tail) — the protocol
  // state machine decides whether the failure survives.
  Model model;
  const std::vector<unsigned char>& blob = fixture.blob;
  const ControlImage image = walk_control_image(blob);
  const std::size_t header_bytes =
      image.header_ok ? image.header_bytes : std::min(blob.size(),
                                                      std::size_t{16});
  model.header.assign(blob.begin(),
                      blob.begin() + static_cast<std::ptrdiff_t>(header_bytes));
  for (const SegmentSpan& span : image.segments) {
    Piece piece;
    piece.items = span.items;
    piece.raw.assign(blob.begin() + static_cast<std::ptrdiff_t>(span.offset),
                     blob.begin() + static_cast<std::ptrdiff_t>(span.end()));
    model.pieces.push_back(std::move(piece));
  }
  model.tail.assign(blob.begin() + static_cast<std::ptrdiff_t>(
                                       std::max(image.tail_offset,
                                                header_bytes)),
                    blob.end());
  return model;
}

Model build_snapshot_model(const Fixture& fixture) {
  Model model;
  model.snapshot = true;
  const std::vector<unsigned char>& blob = fixture.blob;
  const SnapshotImage image = walk_snapshot_image(blob);
  const std::size_t header_bytes =
      image.header_ok ? image.header_bytes : std::min(blob.size(),
                                                      std::size_t{64});
  model.header.assign(blob.begin(),
                      blob.begin() + static_cast<std::ptrdiff_t>(header_bytes));
  for (const SegmentSpan& span : image.records) {
    Piece piece;
    piece.items = 1;
    piece.raw.assign(blob.begin() + static_cast<std::ptrdiff_t>(span.offset),
                     blob.begin() + static_cast<std::ptrdiff_t>(span.end()));
    model.pieces.push_back(std::move(piece));
  }
  if (image.footer_present) {
    model.footer.assign(
        blob.begin() + static_cast<std::ptrdiff_t>(image.footer_offset),
        blob.begin() + static_cast<std::ptrdiff_t>(image.footer_offset + 8));
  }
  model.tail.assign(blob.begin() + static_cast<std::ptrdiff_t>(
                                       std::max(image.tail_offset,
                                                header_bytes)),
                    blob.end());
  model.patch_count =
      image.header_ok && image.num_objects == image.records.size();
  return model;
}

std::vector<unsigned char> materialize(const Model& model) {
  std::vector<unsigned char> bytes = model.header;
  std::uint64_t items = 0;
  std::vector<unsigned char> body;
  for (const Piece& piece : model.pieces) {
    if (piece.decoded) {
      if (piece.events.empty()) continue;  // an empty block adds nothing
      body.clear();
      encode_event_block(piece.events.data(), piece.events.size(), body);
      const std::vector<unsigned char> block =
          frame_block(static_cast<std::uint32_t>(piece.events.size()), body);
      bytes.insert(bytes.end(), block.begin(), block.end());
      items += piece.events.size();
    } else {
      bytes.insert(bytes.end(), piece.raw.begin(), piece.raw.end());
      items += piece.items;
    }
  }
  bytes.insert(bytes.end(), model.footer.begin(), model.footer.end());
  bytes.insert(bytes.end(), model.tail.begin(), model.tail.end());
  if (model.patch_count) {
    if (model.snapshot) {
      patch_snapshot_object_count(bytes, items);
    } else {
      patch_log_event_count(bytes, items);
    }
  }
  return bytes;
}

std::uint64_t model_events(const Model& model) {
  std::uint64_t total = 0;
  for (const Piece& piece : model.pieces) total += piece.live_items();
  return total;
}

class Probe {
 public:
  Probe(const Fixture& input, std::string signature,
        const FixtureRunOptions& run)
      : fixture_(input), run_(run) {
    fixture_.expect = FixtureExpect::kFailure;
    fixture_.signature = std::move(signature);
  }

  /// True when `candidate` still fails with the preserved signature.
  bool operator()(const std::vector<unsigned char>& candidate) {
    ++count_;
    fixture_.blob = candidate;
    return fixture_run(fixture_, run_).pass;
  }

  std::size_t count() const { return count_; }

 private:
  Fixture fixture_;
  FixtureRunOptions run_;
  std::size_t count_ = 0;
};

/// One ddmin sweep over the pieces: try removing chunks of shrinking
/// size; returns true when anything was removed.
bool shrink_pieces(Model& model, Probe& probe) {
  bool changed = false;
  std::size_t chunk = std::max<std::size_t>(1, (model.pieces.size() + 1) / 2);
  while (true) {
    bool removed_any = false;
    for (std::size_t at = 0; at < model.pieces.size();) {
      const std::size_t n = std::min(chunk, model.pieces.size() - at);
      Model candidate = model;
      candidate.pieces.erase(
          candidate.pieces.begin() + static_cast<std::ptrdiff_t>(at),
          candidate.pieces.begin() + static_cast<std::ptrdiff_t>(at + n));
      if (probe(materialize(candidate))) {
        model = std::move(candidate);
        removed_any = true;
        changed = true;
        // keep `at`: the next chunk slid into place
      } else {
        at += n;
      }
    }
    if (chunk == 1) {
      if (!removed_any) break;
      continue;  // single-piece removals cascaded; sweep again
    }
    chunk = (chunk + 1) / 2;
  }
  return changed;
}

/// ddmin inside each decoded piece: delete event chunks while the
/// failure persists.
bool shrink_events(Model& model, Probe& probe) {
  bool changed = false;
  for (std::size_t p = 0; p < model.pieces.size(); ++p) {
    if (!model.pieces[p].decoded) continue;
    std::size_t chunk =
        std::max<std::size_t>(1, (model.pieces[p].events.size() + 1) / 2);
    while (!model.pieces[p].events.empty()) {
      bool removed_any = false;
      for (std::size_t at = 0; at < model.pieces[p].events.size();) {
        const std::size_t n =
            std::min(chunk, model.pieces[p].events.size() - at);
        Model candidate = model;
        auto& events = candidate.pieces[p].events;
        events.erase(events.begin() + static_cast<std::ptrdiff_t>(at),
                     events.begin() + static_cast<std::ptrdiff_t>(at + n));
        if (probe(materialize(candidate))) {
          model = std::move(candidate);
          removed_any = true;
          changed = true;
        } else {
          at += n;
        }
      }
      if (chunk == 1) {
        if (!removed_any) break;
        continue;
      }
      chunk = (chunk + 1) / 2;
    }
  }
  return changed;
}

bool shrink_extras(Model& model, Probe& probe) {
  bool changed = false;
  if (!model.tail.empty()) {
    Model candidate = model;
    candidate.tail.clear();
    if (probe(materialize(candidate))) {
      model = std::move(candidate);
      changed = true;
    }
  }
  return changed;
}

}  // namespace

MinimizeResult minimize_fixture(const Fixture& input,
                                const MinimizeOptions& options) {
  // Re-derive the failure to preserve: replay the input as-is. (The
  // recorded signature may be stale or empty; the observed one is the
  // ground truth.)
  Fixture observe = input;
  observe.expect = FixtureExpect::kFailure;
  observe.signature = "";
  const FixtureRunResult first = fixture_run(observe, options.run);
  if (first.signature.empty()) {
    throw std::invalid_argument(
        "fixture replay does not fail — nothing to minimize (an escape-"
        "class fixture only becomes minimizable once the decoder "
        "rejects it)");
  }
  const std::string signature = first.signature;

  Model model = input.target == FixtureTarget::kSnapshot
                    ? build_snapshot_model(input)
                : input.target == FixtureTarget::kCluster
                    ? build_cluster_model(input)
                    : build_log_model(input);
  Probe probe(input, signature, options.run);

  // The model must reproduce before any shrinking: materializing an
  // unmodified model re-encodes decoded blocks byte-identically, so a
  // mismatch here means the walker mis-parsed — fall back to byte-level
  // tail truncation only.
  if (!probe(materialize(model))) {
    model = Model{};
    model.header = input.blob;
  } else {
    for (std::size_t round = 0; round < options.max_rounds; ++round) {
      bool changed = false;
      changed |= shrink_extras(model, probe);
      changed |= shrink_pieces(model, probe);
      changed |= shrink_events(model, probe);
      if (!changed) break;
    }
  }

  MinimizeResult result;
  result.signature = signature;
  result.original_bytes = input.blob.size();
  result.probes = probe.count();
  result.fixture = input;
  result.fixture.expect = FixtureExpect::kFailure;
  result.fixture.signature = signature;
  result.fixture.blob = materialize(model);
  result.fixture.aggregates = FixtureAggregates{};
  result.fixture.cuts.clear();
  result.fixture.slice_events = model_events(model);
  result.fixture.slice_first_event = 0;
  result.fixture.slice_begin_byte = 0;
  result.fixture.slice_end_byte = 0;
  result.minimized_bytes = result.fixture.blob.size();
  return result;
}

}  // namespace repl
