// Structured, deterministic fuzzing of the four untrusted-input
// decoders: event-log files (EventLogReader), snapshot files
// (SnapshotReader), the event wire protocol (FrameAssembler), and the
// cluster control protocol (ClusterControlAssembler).
//
// Unlike blind byte fuzzing, the mutator *speaks the formats*: every
// case starts from a freshly generated well-formed artifact, then
// applies one structure-aware mutation — truncate at or inside a
// frame/record boundary, flip a bit in a CRC-covered or CRC-exempt
// region, splice valid frames across two logs, overflow a
// length/aux/count steering field (with or without fixing the frame CRC
// so both the CRC check and the plausibility check get exercised),
// insert a zero-event frame, duplicate or reorder records. Each
// mutation carries its own oracle: the decoder must either reject with
// a diagnostic (every std::runtime_error / std::invalid_argument with a
// message counts — never a crash, hang, or CheckFailure) or accept and
// produce exactly the events/records the mutation's semantics dictate,
// having consumed the entire input. Anything else — an accepted
// corruption, a silently ignored tail, a wrong decode — is an escape
// and becomes a FuzzFailure (and, when `save_dir` is set, a replayable
// failure fixture for the minimizer).
//
// Determinism: case i of a run is fully determined by (seed, i). The
// report's `trace` logs every case's mutation and outcome, so two runs
// with the same seed are comparable line by line.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace repl {

enum class FuzzTarget : std::uint32_t {
  kLog = 0,
  kSnapshot = 1,
  kWire = 2,
  kCluster = 3,
};

const char* fuzz_target_name(FuzzTarget target);
FuzzTarget parse_fuzz_target(const std::string& name);

struct FuzzOptions {
  std::uint64_t seed = 1;
  /// Mutated inputs to try.
  std::size_t cases = 256;
  /// Scratch directory for staged artifacts ("" = fresh temp dir).
  std::string scratch_dir;
  /// When set, every escape is saved here as a replayable fixture
  /// (<target>-<seed>-<case>.replfixt).
  std::string save_dir;
  /// Stop early after this many escapes (0 = never).
  std::size_t max_failures = 16;
};

/// One decoder escape: a mutated input the decoder mishandled.
struct FuzzFailure {
  std::size_t case_index = 0;
  /// The mutation that produced the input (deterministic description).
  std::string mutation;
  /// What went wrong: the escape class and the evidence.
  std::string detail;
  /// Saved reproducer fixture ("" unless FuzzOptions::save_dir is set).
  std::string fixture_path;
};

struct FuzzReport {
  FuzzTarget target = FuzzTarget::kLog;
  std::uint64_t seed = 0;
  std::size_t cases = 0;
  /// Mutated inputs the decoder accepted (and the oracle agreed).
  std::size_t accepted = 0;
  /// Mutated inputs the decoder rejected with a diagnostic.
  std::size_t rejected = 0;
  std::vector<FuzzFailure> failures;
  /// One line per case: "<index> <mutation> => <outcome>". Identical
  /// across runs with the same (target, seed, cases) — the determinism
  /// contract the tests pin.
  std::string trace;

  bool ok() const { return failures.empty(); }
};

/// Runs `options.cases` structured mutations against `target`'s decoder.
/// Throws only on harness I/O failure; decoder behavior — good or bad —
/// is reported, not thrown.
FuzzReport fuzz_format(FuzzTarget target, const FuzzOptions& options);

}  // namespace repl
