// Load client for repl_server: stream an existing event log over TCP or
// a unix-domain socket.
//
//   ./build/examples/repl_client --log=trace.evlog --connect=127.0.0.1:9410
//   ./build/examples/repl_client --log=trace.evlog --unix=/tmp/repl.sock
//       --block-events=512 --chunk-bytes=64 --pace-ms=5   # a slow client
//   ./build/examples/repl_client --log=trace.evlog --connect=...:9410
//       --disconnect-after-bytes=10000   # drop mid-frame (server hardening)
//
// The handshake returns the server's resume offset (non-zero when it
// restored from a checkpoint); the client skips that many events before
// streaming, so a resumed session continues the logical stream instead
// of replaying it.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "net/client.hpp"
#include "net/socket.hpp"
#include "trace/event_log.hpp"
#include "util/cli.hpp"

using namespace repl;

int main(int argc, char** argv) {
  CliParser cli("repl_client", "stream an event log to a repl_server");
  cli.add_flag("log", "", "event log to stream (required; any format)");
  cli.add_flag("connect", "", "server TCP address, host:port");
  cli.add_flag("unix", "", "server unix-domain socket path");
  cli.add_flag("block-events", "4096", "events per wire frame");
  cli.add_flag("chunk-bytes", "0",
               "write frames in chunks of at most this many bytes "
               "(0 = whole frames)");
  cli.add_flag("pace-ms", "0", "sleep between chunks (milliseconds)");
  cli.add_flag("disconnect-after-bytes", "0",
               "drop the connection abruptly after this many stream bytes "
               "(0 = stream everything and close cleanly)");
  cli.add_flag("limit", "0", "stream at most N events (0 = the whole log)");
  if (!cli.parse(argc, argv)) return 0;

  const std::string log_path = cli.get_string("log");
  const std::string connect = cli.get_string("connect");
  const std::string unix_path = cli.get_string("unix");
  if (log_path.empty() || (connect.empty() == unix_path.empty())) {
    std::cerr << "error: --log plus exactly one of --connect/--unix is "
                 "required\n";
    return EXIT_FAILURE;
  }

  try {
    EventLogReader reader(log_path);

    Socket sock;
    if (!connect.empty()) {
      const std::size_t colon = connect.rfind(':');
      if (colon == std::string::npos) {
        std::cerr << "error: --connect expects host:port\n";
        return EXIT_FAILURE;
      }
      sock = connect_tcp(connect.substr(0, colon),
                         std::stoi(connect.substr(colon + 1)));
    } else {
      sock = connect_unix(unix_path);
    }

    EventStreamClientOptions options;
    options.block_events = cli.get_size_t("block-events", 1);
    options.chunk_bytes = cli.get_size_t("chunk-bytes");
    options.pace_seconds = cli.get_double("pace-ms") / 1000.0;
    options.abort_after_bytes = cli.get_uint64("disconnect-after-bytes");

    EventStreamClient client(std::move(sock), options);
    const std::uint64_t resume = client.handshake(
        static_cast<std::uint32_t>(reader.num_servers()));
    if (resume > 0) {
      std::cout << "server resumes at event " << resume << "; skipping\n";
      reader.skip_events(resume);
    }

    const std::uint64_t limit = cli.get_uint64("limit");
    LogEvent event;
    while (reader.next(event)) {
      if (!client.send(event)) break;  // hit the disconnect budget
      if (limit > 0 && client.events_sent() >= limit) break;
    }
    client.finish();
    std::cout << (client.aborted() ? "dropped connection after "
                                   : "streamed ")
              << client.bytes_sent() << " bytes ("
              << client.events_sent() << " events queued)\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
