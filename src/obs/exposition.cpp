#include "obs/exposition.hpp"

#include <sstream>

#include "util/csv.hpp"

namespace repl::obs {
namespace {

const char* type_text(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

/// Escaping for HELP docstrings: backslash and newline.
std::string escape_help(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

/// Escaping for label values: backslash, double-quote, newline.
std::string escape_label(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

/// `{k="v",...}` or empty; `extra` appends one more pair (used for `le`).
std::string label_block(const Labels& labels, const std::string& extra_key = {},
                        const std::string& extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return {};
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ',';
    first = false;
    os << k << "=\"" << escape_label(v) << '"';
  }
  if (!extra_key.empty()) {
    if (!first) os << ',';
    os << extra_key << "=\"" << escape_label(extra_value) << '"';
  }
  os << '}';
  return os.str();
}

/// Series key used in the JSON document: name plus selector-style labels.
std::string series_name(const Sample& s) {
  return s.name + label_block(s.labels);
}

}  // namespace

std::string prometheus_text(MetricsRegistry& registry) {
  return prometheus_text(registry.collect());
}

std::string prometheus_text(const std::vector<Sample>& samples) {
  std::ostringstream os;
  std::string last_family;
  for (const Sample& s : samples) {
    if (s.name != last_family) {
      last_family = s.name;
      if (!s.help.empty())
        os << "# HELP " << s.name << ' ' << escape_help(s.help) << '\n';
      os << "# TYPE " << s.name << ' ' << type_text(s.type) << '\n';
    }
    switch (s.type) {
      case MetricType::kCounter:
        os << s.name << label_block(s.labels) << ' ' << s.counter_value
           << '\n';
        break;
      case MetricType::kGauge:
        os << s.name << label_block(s.labels) << ' ' << format_double(s.value)
           << '\n';
        break;
      case MetricType::kHistogram: {
        for (std::size_t i = 0; i < s.bounds.size(); ++i) {
          os << s.name << "_bucket"
             << label_block(s.labels, "le", format_double(s.bounds[i])) << ' '
             << s.cumulative[i] << '\n';
        }
        os << s.name << "_bucket" << label_block(s.labels, "le", "+Inf") << ' '
           << s.count << '\n';
        os << s.name << "_sum" << label_block(s.labels) << ' '
           << format_double(s.sum) << '\n';
        os << s.name << "_count" << label_block(s.labels) << ' ' << s.count
           << '\n';
        break;
      }
    }
  }
  return os.str();
}

const char* prometheus_content_type() {
  return "text/plain; version=0.0.4; charset=utf-8";
}

std::string metrics_json_text(
    MetricsRegistry& registry,
    const std::function<void(JsonWriter&)>& extra) {
  return metrics_json_text(registry.collect(), extra);
}

std::string metrics_json_text(
    const std::vector<Sample>& samples,
    const std::function<void(JsonWriter&)>& extra) {
  JsonWriter w;
  w.begin_object();
  w.key("metrics").begin_object();
  for (const Sample& s : samples) {
    w.key(series_name(s)).begin_object();
    w.key("type").value(type_text(s.type));
    switch (s.type) {
      case MetricType::kCounter:
        w.key("value").value(s.counter_value);
        break;
      case MetricType::kGauge:
        w.key("value").value(s.value);
        break;
      case MetricType::kHistogram: {
        w.key("count").value(s.count);
        w.key("sum").value(s.sum);
        w.key("buckets").begin_array();
        for (std::size_t i = 0; i < s.bounds.size(); ++i) {
          w.begin_object();
          w.key("le").value(s.bounds[i]);
          w.key("count").value(s.cumulative[i]);
          w.end_object();
        }
        w.begin_object();
        w.key("le").value("+Inf");
        w.key("count").value(s.count);
        w.end_object();
        w.end_array();
        break;
      }
    }
    w.end_object();
  }
  w.end_object();
  if (extra) extra(w);
  w.end_object();
  return w.str();
}

}  // namespace repl::obs
