#include "baselines/naive.hpp"

#include <cmath>

#include "util/check.hpp"

namespace repl {

void NaivePolicyBase::reset(const SystemConfig& config, const Prediction&,
                            EventSink& sink) {
  config.validate();
  config_ = config;
  holding_.assign(static_cast<std::size_t>(config.num_servers), false);
  holding_[static_cast<std::size_t>(config.initial_server)] = true;
  copy_count_ = 1;
  now_ = 0.0;
  sink.on_create(config.initial_server, 0.0);
}

void NaivePolicyBase::advance_to(double time, EventSink&) {
  REPL_CHECK(time >= now_);
  if (std::isfinite(time)) now_ = time;
}

bool NaivePolicyBase::holds(int server) const {
  REPL_REQUIRE(server >= 0 && server < config_.num_servers);
  return holding_[static_cast<std::size_t>(server)];
}

ServeAction FullReplicationPolicy::on_request(int server, double time,
                                              const Prediction&,
                                              EventSink& sink) {
  REPL_REQUIRE(server >= 0 && server < config_.num_servers);
  ServeAction action;
  if (holding_[static_cast<std::size_t>(server)]) {
    action.local = true;
    action.source = server;
  } else {
    int source = -1;
    for (int s = 0; s < config_.num_servers; ++s) {
      if (holding_[static_cast<std::size_t>(s)]) {
        source = s;
        break;
      }
    }
    REPL_CHECK(source >= 0);
    action.local = false;
    action.source = source;
    sink.on_transfer(source, server, time);
    holding_[static_cast<std::size_t>(server)] = true;
    ++copy_count_;
    sink.on_create(server, time);
  }
  now_ = time;
  return action;
}

ServeAction StaticPolicy::on_request(int server, double time,
                                     const Prediction&, EventSink& sink) {
  REPL_REQUIRE(server >= 0 && server < config_.num_servers);
  ServeAction action;
  if (server == config_.initial_server) {
    action.local = true;
    action.source = server;
  } else {
    action.local = false;
    action.source = config_.initial_server;
    // Serve remotely; the requester does not retain a copy.
    sink.on_transfer(config_.initial_server, server, time);
  }
  now_ = time;
  return action;
}

void SingleCopyChasePolicy::reset(const SystemConfig& config,
                                  const Prediction& pred0, EventSink& sink) {
  NaivePolicyBase::reset(config, pred0, sink);
  holder_ = config.initial_server;
}

ServeAction SingleCopyChasePolicy::on_request(int server, double time,
                                              const Prediction&,
                                              EventSink& sink) {
  REPL_REQUIRE(server >= 0 && server < config_.num_servers);
  ServeAction action;
  if (server == holder_) {
    action.local = true;
    action.source = server;
  } else {
    action.local = false;
    action.source = holder_;
    sink.on_transfer(holder_, server, time);
    holding_[static_cast<std::size_t>(server)] = true;
    ++copy_count_;
    sink.on_create(server, time);
    holding_[static_cast<std::size_t>(holder_)] = false;
    --copy_count_;
    sink.on_drop(holder_, time);
    holder_ = server;
  }
  now_ = time;
  return action;
}

}  // namespace repl
