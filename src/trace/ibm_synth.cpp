#include "trace/ibm_synth.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace repl {

Trace synthesize_ibm_like(const IbmSynthConfig& config, std::uint64_t seed) {
  REPL_REQUIRE(config.num_servers >= 1);
  REPL_REQUIRE(config.horizon > 0.0);
  REPL_REQUIRE(config.target_requests > 0.0);
  REPL_REQUIRE(config.burst_fraction >= 0.0 && config.burst_fraction < 1.0);
  REPL_REQUIRE(config.diurnal_amplitude >= 0.0 &&
               config.diurnal_amplitude < 1.0);

  Rng rng(seed);
  const ZipfDistribution zipf(config.num_servers, config.zipf_s);

  // Split the request budget between a diurnal background process and
  // burst episodes.
  const double background_budget =
      config.target_requests * (1.0 - config.burst_fraction);
  const double burst_budget = config.target_requests * config.burst_fraction;

  const double base_rate = background_budget / config.horizon;
  const double day = 86400.0;
  const double rate_max = base_rate * (1.0 + config.diurnal_amplitude);

  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(config.target_requests * 1.2));

  // Background: thinned non-homogeneous Poisson, diurnal modulation.
  double t = 0.0;
  for (;;) {
    t += rng.exponential(rate_max);
    if (t > config.horizon) break;
    const double rate =
        base_rate *
        (1.0 + config.diurnal_amplitude * std::sin(2.0 * M_PI * t / day));
    if (rng.bernoulli(rate / rate_max)) {
      requests.push_back(Request{t, zipf.sample(rng) - 1});
    }
  }

  // Bursts: episodes start as a Poisson process; each episode has a
  // Pareto-distributed length and emits requests at an elevated rate,
  // concentrated on a single Zipf-sampled server (object-storage bursts
  // typically hit one client location).
  const double burst_rate = rate_max * config.burst_rate_multiplier;
  // The Pareto scale below is chosen so the mean episode length equals
  // burst_mean_length, hence the expected request count per episode:
  const double expected_per_burst = burst_rate * config.burst_mean_length;
  const double episodes =
      std::max(1.0, burst_budget / std::max(expected_per_burst, 1.0));
  const double episode_rate = episodes / config.horizon;
  // Pareto scale so that the mean equals burst_mean_length (shape > 1).
  const double shape = config.burst_length_shape;
  const double scale = shape > 1.0
                           ? config.burst_mean_length * (shape - 1.0) / shape
                           : config.burst_mean_length;

  double episode_start = 0.0;
  for (;;) {
    episode_start += rng.exponential(episode_rate);
    if (episode_start > config.horizon) break;
    const double length = rng.pareto(scale, shape);
    const double episode_end =
        std::min(episode_start + length, config.horizon);
    const int hot_server = zipf.sample(rng) - 1;
    double bt = episode_start;
    for (;;) {
      bt += rng.exponential(burst_rate);
      if (bt > episode_end) break;
      // Mostly the hot server, occasionally spillover elsewhere.
      const int server =
          rng.bernoulli(0.85) ? hot_server : zipf.sample(rng) - 1;
      requests.push_back(Request{bt, server});
    }
  }

  return Trace::from_unsorted(config.num_servers, std::move(requests));
}

Trace default_ibm_like_trace(std::uint64_t seed) {
  return synthesize_ibm_like(IbmSynthConfig{}, seed);
}

}  // namespace repl
