#include "replay/fuzz.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "checkpoint/snapshot.hpp"
#include "cluster/control.hpp"
#include "codec/block.hpp"
#include "net/wire.hpp"
#include "replay/fixture.hpp"
#include "replay/structure.hpp"
#include "trace/event_log.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace repl {

namespace {

// ---------------------------------------------------------------------------
// Shared plumbing
// ---------------------------------------------------------------------------

/// What a mutated input is allowed to do to its decoder.
enum class Expect {
  /// Must reject with a diagnostic; acceptance is an escape.
  kReject,
  /// Must accept and decode exactly the expected items; a rejection is
  /// an escape (the mutation is well-formed by the format's own rules).
  kAccept,
  /// Accept => items must match the expectation; rejecting is also fine
  /// (the decoder is allowed to be stricter than the mutation assumes).
  kEither,
  /// Accept => item *count* must match; values unconstrained (v1 record
  /// bytes carry no CRC, so flips legitimately change values).
  kEitherCount,
  /// Accept or reject freely; only the universal acceptance invariants
  /// apply (whole input consumed, header count honored).
  kFree,
};

using SnapRecord = std::pair<std::uint64_t, std::vector<unsigned char>>;

struct Mutation {
  std::vector<unsigned char> bytes;
  std::string name;
  Expect expect = Expect::kFree;
  std::vector<LogEvent> expected_events;
  std::uint64_t expected_count = 0;
  std::vector<SnapRecord> expected_records;
  /// Cluster target: control messages an accepted stream must decode.
  std::uint64_t expected_messages = 0;
};

struct DecodeOutcome {
  enum class Kind { kAccepted, kRejected, kEscape };
  Kind kind = Kind::kAccepted;
  /// Rejection diagnostic or escape evidence.
  std::string detail;
  std::vector<LogEvent> events;
  std::vector<SnapRecord> records;
  /// Cluster target: decoded message / finals-record counts.
  std::uint64_t cluster_messages = 0;
  std::uint64_t cluster_finals = 0;
};

/// Classifies an in-flight exception the way the fuzz oracle sees it:
/// runtime_error / invalid_argument with a non-empty message is the
/// contract (a diagnosed rejection); CheckFailure is a breached internal
/// invariant; anything else is an undisciplined escape.
DecodeOutcome classify_throw() {
  DecodeOutcome out;
  try {
    throw;
  } catch (const CheckFailure& e) {
    out.kind = DecodeOutcome::Kind::kEscape;
    out.detail = std::string("internal invariant breached (CheckFailure): ") +
                 e.what();
  } catch (const std::invalid_argument& e) {
    out.kind = DecodeOutcome::Kind::kRejected;
    out.detail = e.what();
  } catch (const std::runtime_error& e) {
    out.kind = DecodeOutcome::Kind::kRejected;
    out.detail = e.what();
  } catch (const std::exception& e) {
    out.kind = DecodeOutcome::Kind::kEscape;
    out.detail = std::string("unexpected exception type: ") + e.what();
  }
  if (out.kind == DecodeOutcome::Kind::kRejected && out.detail.empty()) {
    out.kind = DecodeOutcome::Kind::kEscape;
    out.detail = "rejection with an empty diagnostic";
  }
  return out;
}

std::string describe_event(const LogEvent& e) {
  std::ostringstream os;
  os << "{t=" << e.time << ", obj=" << e.object << ", srv=" << e.server << "}";
  return os.str();
}

std::string diff_events(const std::vector<LogEvent>& want,
                        const std::vector<LogEvent>& got) {
  if (want.size() != got.size()) {
    return "decoded " + std::to_string(got.size()) + " events, expected " +
           std::to_string(want.size());
  }
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (!(want[i] == got[i])) {
      return "event " + std::to_string(i) + " decoded as " +
             describe_event(got[i]) + ", expected " + describe_event(want[i]);
    }
  }
  return "";
}

std::string diff_records(const std::vector<SnapRecord>& want,
                         const std::vector<SnapRecord>& got) {
  if (want.size() != got.size()) {
    return "read " + std::to_string(got.size()) + " records, expected " +
           std::to_string(want.size());
  }
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (want[i].first != got[i].first) {
      return "record " + std::to_string(i) + " has id " +
             std::to_string(got[i].first) + ", expected " +
             std::to_string(want[i].first);
    }
    if (want[i].second != got[i].second) {
      return "record " + std::to_string(i) + " (id " +
             std::to_string(got[i].first) + ") payload differs";
    }
  }
  return "";
}

/// The verdict: "" when the decoder behaved, else the escape evidence.
std::string judge(const Mutation& m, const DecodeOutcome& o, bool snapshot) {
  if (o.kind == DecodeOutcome::Kind::kEscape) return o.detail;
  if (o.kind == DecodeOutcome::Kind::kRejected) {
    if (m.expect == Expect::kAccept) {
      return "rejected a well-formed input: " + o.detail;
    }
    return "";
  }
  switch (m.expect) {
    case Expect::kReject:
      return "accepted malformed input and decoded " +
             std::to_string(snapshot ? o.records.size() : o.events.size()) +
             (snapshot ? " records" : " events");
    case Expect::kAccept:
    case Expect::kEither: {
      const std::string diff =
          snapshot ? diff_records(m.expected_records, o.records)
                   : diff_events(m.expected_events, o.events);
      return diff.empty() ? "" : "silent wrong decode: " + diff;
    }
    case Expect::kEitherCount:
      if (o.events.size() != m.expected_count) {
        return "silent wrong decode: " + std::to_string(o.events.size()) +
               " events, expected " + std::to_string(m.expected_count);
      }
      return "";
    case Expect::kFree:
      return "";
  }
  return "";
}

/// Monotonically non-decreasing, as the wire protocol requires.
bool times_monotone(const std::vector<LogEvent>& events) {
  for (std::size_t i = 1; i < events.size(); ++i) {
    if (events[i].time < events[i - 1].time) return false;
  }
  return true;
}

std::vector<LogEvent> gen_events(Rng& rng, std::size_t count,
                                 std::uint32_t num_servers, double t0) {
  std::vector<LogEvent> events;
  events.reserve(count);
  double t = t0;
  for (std::size_t i = 0; i < count; ++i) {
    t += rng.exponential(4.0);  // strictly increasing, positive, finite
    LogEvent e;
    e.time = t;
    e.object = rng.uniform_index(24);
    e.server = static_cast<std::uint32_t>(rng.uniform_index(num_servers));
    events.push_back(e);
  }
  return events;
}

void flip_bit(std::vector<unsigned char>& bytes, std::size_t byte,
              std::size_t bit) {
  bytes[byte] = static_cast<unsigned char>(bytes[byte] ^ (1u << bit));
}

void append_bytes(std::vector<unsigned char>& dst,
                  const std::vector<unsigned char>& src, std::size_t begin,
                  std::size_t end) {
  dst.insert(dst.end(), src.begin() + static_cast<std::ptrdiff_t>(begin),
             src.begin() + static_cast<std::ptrdiff_t>(end));
}

// ---------------------------------------------------------------------------
// Event-log / wire cases (byte-identical formats, different oracles)
// ---------------------------------------------------------------------------

struct LogCase {
  std::vector<unsigned char> base;
  std::vector<LogEvent> events;
  LogImage image;
  std::uint32_t num_servers = 1;
  EventLogFormat format = EventLogFormat::kCompressed;
  std::size_t block_events = 16;
};

LogCase make_log_case(Rng& rng, const ScratchDir& scratch) {
  LogCase c;
  c.num_servers = 1 + static_cast<std::uint32_t>(rng.uniform_index(4));
  c.format = rng.bernoulli(0.7) ? EventLogFormat::kCompressed
                                : EventLogFormat::kRaw;
  static constexpr std::size_t kBlockChoices[] = {4, 16, 64};
  c.block_events = kBlockChoices[rng.uniform_index(3)];
  c.events = gen_events(rng, 1 + rng.uniform_index(150), c.num_servers, 0.0);
  const std::string path = scratch.file("base.evlog");
  {
    EventLogWriter writer(path, static_cast<int>(c.num_servers), 0, c.format,
                          c.block_events);
    for (const LogEvent& e : c.events) writer.write(e);
    writer.close();
  }
  c.base = read_bytes(path);
  c.image = walk_log_image(c.base);
  return c;
}

/// A second, independent stream for splicing: same geometry, times
/// starting at `t0`.
LogCase make_donor_case(Rng& rng, const LogCase& like,
                        const ScratchDir& scratch, double t0) {
  LogCase c;
  c.num_servers = like.num_servers;
  c.format = like.format;
  c.block_events = like.block_events;
  c.events = gen_events(rng, 1 + rng.uniform_index(60), c.num_servers, t0);
  const std::string path = scratch.file("donor.evlog");
  {
    EventLogWriter writer(path, static_cast<int>(c.num_servers), 0, c.format,
                          c.block_events);
    for (const LogEvent& e : c.events) writer.write(e);
    writer.close();
  }
  c.base = read_bytes(path);
  c.image = walk_log_image(c.base);
  return c;
}

/// Builds the in-memory wire stream equivalent of a compressed log:
/// stream header (counts unknown) + one frame per `block_events` chunk.
LogCase make_wire_case(Rng& rng) {
  LogCase c;
  c.num_servers = 1 + static_cast<std::uint32_t>(rng.uniform_index(4));
  c.format = EventLogFormat::kCompressed;
  static constexpr std::size_t kBlockChoices[] = {4, 16, 64};
  c.block_events = kBlockChoices[rng.uniform_index(3)];
  c.events = gen_events(rng, 1 + rng.uniform_index(150), c.num_servers, 0.0);
  c.base.resize(EventLogHeader::kSize);
  encode_stream_header(c.base.data(), c.num_servers);
  std::vector<unsigned char> body;
  for (std::size_t i = 0; i < c.events.size(); i += c.block_events) {
    const std::size_t n = std::min(c.block_events, c.events.size() - i);
    body.clear();
    encode_event_block(c.events.data() + i, n, body);
    const std::vector<unsigned char> block =
        frame_block(static_cast<std::uint32_t>(n), body);
    c.base.insert(c.base.end(), block.begin(), block.end());
  }
  c.image = walk_log_image(c.base);
  return c;
}

LogCase make_wire_donor(Rng& rng, const LogCase& like, double t0) {
  LogCase c;
  c.num_servers = like.num_servers;
  c.format = EventLogFormat::kCompressed;
  c.block_events = like.block_events;
  c.events = gen_events(rng, 1 + rng.uniform_index(60), c.num_servers, t0);
  c.base.resize(EventLogHeader::kSize);
  encode_stream_header(c.base.data(), c.num_servers);
  std::vector<unsigned char> body;
  for (std::size_t i = 0; i < c.events.size(); i += c.block_events) {
    const std::size_t n = std::min(c.block_events, c.events.size() - i);
    body.clear();
    encode_event_block(c.events.data() + i, n, body);
    const std::vector<unsigned char> block =
        frame_block(static_cast<std::uint32_t>(n), body);
    c.base.insert(c.base.end(), block.begin(), block.end());
  }
  c.image = walk_log_image(c.base);
  return c;
}

/// Truncation point at the k-th structural boundary (0 = end of
/// header); mid-segment variants add an interior offset.
Mutation mutate_truncate(const LogCase& c, Rng& rng, bool wire) {
  Mutation m;
  const bool at_boundary = rng.bernoulli(0.5);
  const std::size_t segs = c.image.segments.size();
  if (at_boundary) {
    const std::size_t keep = rng.uniform_index(segs);  // proper prefix
    const std::size_t cut =
        keep == 0 ? c.image.header_bytes : c.image.segments[keep - 1].end();
    m.bytes.assign(c.base.begin(),
                   c.base.begin() + static_cast<std::ptrdiff_t>(cut));
    const std::uint64_t prefix_events = c.image.items_before(keep);
    if (wire) {
      // A clean close at a frame boundary is a legal end of stream.
      m.expect = Expect::kAccept;
      m.expected_events.assign(
          c.events.begin(),
          c.events.begin() + static_cast<std::ptrdiff_t>(prefix_events));
      m.name = "truncate:boundary:keep=" + std::to_string(keep);
      return m;
    }
    const bool unknown = rng.bernoulli(0.5);
    if (unknown) {
      // A crashed writer: count never patched. The prefix must read
      // back cleanly.
      patch_log_event_count(m.bytes, EventLogHeader::kUnknownCount);
      m.expect = Expect::kAccept;
      m.expected_events.assign(
          c.events.begin(),
          c.events.begin() + static_cast<std::ptrdiff_t>(prefix_events));
    } else {
      m.expect = Expect::kReject;  // fewer events than the header promises
    }
    m.name = "truncate:boundary:keep=" + std::to_string(keep) +
             ":unknown=" + std::to_string(unknown);
    return m;
  }
  // Mid-segment (or mid-header) cut: never a clean end.
  std::size_t cut;
  if (segs == 0 || rng.bernoulli(0.15)) {
    cut = 1 + rng.uniform_index(std::min(c.base.size(), std::size_t{31}));
    m.name = "truncate:mid-header:cut=" + std::to_string(cut);
  } else {
    const std::size_t k = rng.uniform_index(segs);
    const SegmentSpan& span = c.image.segments[k];
    cut = span.offset + 1 + rng.uniform_index(span.size - 1);
    m.name = "truncate:mid-segment:" + std::to_string(k) +
             ":cut=" + std::to_string(cut);
  }
  m.bytes.assign(c.base.begin(),
                 c.base.begin() + static_cast<std::ptrdiff_t>(cut));
  if (!wire && rng.bernoulli(0.5) && m.bytes.size() >= EventLogHeader::kSize) {
    patch_log_event_count(m.bytes, EventLogHeader::kUnknownCount);
    m.name += ":unknown=1";
  }
  m.expect = Expect::kReject;
  return m;
}

Mutation mutate_flip(const LogCase& c, Rng& rng, bool wire) {
  Mutation m;
  m.bytes = c.base;
  const bool header = rng.bernoulli(0.3) || c.base.size() <= 32;
  std::size_t byte;
  if (header) {
    byte = rng.uniform_index(std::min<std::size_t>(c.base.size(), 32));
  } else {
    byte = 32 + rng.uniform_index(c.base.size() - 32);
  }
  const std::size_t bit = rng.uniform_index(8);
  flip_bit(m.bytes, byte, bit);
  m.name = "flip:byte=" + std::to_string(byte) + ":bit=" + std::to_string(bit);
  if (byte < 12) {
    // Magic or version: unrecognizable container.
    m.expect = Expect::kReject;
  } else if (byte < 32) {
    if (wire) {
      // Counts are unknown-by-design on the wire; servers ignore them.
      // num_servers flips may or may not be validated. Accepted streams
      // must still decode the exact baseline (frames are CRC-covered).
      m.expect = Expect::kEither;
      m.expected_events = c.events;
    } else {
      // Count/num_objects flips: the universal invariants (whole file
      // consumed, header count delivered) are the oracle.
      m.expect = Expect::kFree;
    }
  } else if (c.image.version == EventLogHeader::kVersionCompressed) {
    // Every body byte is CRC-covered (frame or payload).
    m.expect = Expect::kReject;
  } else {
    // v1 records carry no CRC: flips silently change values, never the
    // count, and must never crash.
    m.expect = Expect::kEitherCount;
    m.expected_count = c.events.size();
  }
  return m;
}

Mutation mutate_overflow(const LogCase& c, Rng& rng) {
  Mutation m;
  m.bytes = c.base;
  m.expect = Expect::kReject;
  const std::size_t k = rng.uniform_index(c.image.segments.size());
  const std::size_t off = c.image.segments[k].offset;
  const std::uint32_t variant =
      static_cast<std::uint32_t>(rng.uniform_index(5));
  unsigned char* frame = m.bytes.data() + off;
  switch (variant) {
    case 0:  // implausible length, stale frame CRC
      store_le32(frame, (1u << 26) + 1 +
                            static_cast<std::uint32_t>(rng.uniform_index(1024)));
      break;
    case 1:  // implausible length, *valid* frame CRC
      store_le32(frame, (1u << 26) + 1 +
                            static_cast<std::uint32_t>(rng.uniform_index(1024)));
      refresh_frame_crc(m.bytes, off);
      break;
    case 2:  // count exceeds what the payload can hold, valid frame CRC
      store_le32(frame + 4,
                 load_le32(frame + 4) + 1000 +
                     static_cast<std::uint32_t>(rng.uniform_index(1 << 20)));
      refresh_frame_crc(m.bytes, off);
      break;
    case 3:  // count lowered: payload left with trailing bytes
      store_le32(frame + 4, load_le32(frame + 4) / 2);
      refresh_frame_crc(m.bytes, off);
      break;
    default:  // length nudged: payload CRC window shifts off the rails
      store_le32(frame, load_le32(frame) + 1 +
                            static_cast<std::uint32_t>(rng.uniform_index(8)));
      refresh_frame_crc(m.bytes, off);
      break;
  }
  m.name = "overflow:segment=" + std::to_string(k) +
           ":variant=" + std::to_string(variant);
  return m;
}

Mutation mutate_splice(const LogCase& c, const LogCase& donor, Rng& rng,
                       bool wire) {
  Mutation m;
  const std::size_t i = rng.uniform_index(c.image.segments.size() + 1);
  const std::size_t j = rng.uniform_index(donor.image.segments.size());
  const std::size_t cut_a =
      i == 0 ? c.image.header_bytes : c.image.segments[i - 1].end();
  const std::size_t cut_b = donor.image.segments[j].offset;
  m.bytes.assign(c.base.begin(),
                 c.base.begin() + static_cast<std::ptrdiff_t>(cut_a));
  append_bytes(m.bytes, donor.base, cut_b, donor.image.tail_offset);

  const std::uint64_t a_events = c.image.items_before(i);
  const std::uint64_t b_skip = donor.image.items_before(j);
  m.expected_events.assign(
      c.events.begin(),
      c.events.begin() + static_cast<std::ptrdiff_t>(a_events));
  m.expected_events.insert(
      m.expected_events.end(),
      donor.events.begin() + static_cast<std::ptrdiff_t>(b_skip),
      donor.events.end());
  m.name = "splice:a=" + std::to_string(i) + ":b=" + std::to_string(j);
  if (wire) {
    // The assembler enforces non-decreasing times; whether the splice
    // is decodable depends on the seam.
    m.expect =
        times_monotone(m.expected_events) ? Expect::kEither : Expect::kReject;
    if (m.expect == Expect::kReject) m.name += ":regressing";
    return m;
  }
  patch_log_event_count(m.bytes, m.expected_events.size());
  // Blocks decode independently (delta state resets per block), so the
  // file reader must decode the spliced sequence verbatim.
  m.expect = Expect::kEither;
  std::uint64_t max_object = 0;
  for (const LogEvent& e : m.expected_events) {
    max_object = std::max(max_object, e.object);
  }
  store_le64(m.bytes.data() + 16, max_object + 1);
  return m;
}

Mutation mutate_zero_frame(const LogCase& c, Rng& rng) {
  Mutation m;
  const std::size_t at = rng.uniform_index(c.image.segments.size() + 1);
  const std::size_t pos =
      at == 0 ? c.image.header_bytes : c.image.segments[at - 1].end();
  const std::vector<unsigned char> empty_block = frame_block(0, {});
  m.bytes.assign(c.base.begin(),
                 c.base.begin() + static_cast<std::ptrdiff_t>(pos));
  m.bytes.insert(m.bytes.end(), empty_block.begin(), empty_block.end());
  append_bytes(m.bytes, c.base, pos, c.base.size());
  // A zero-event block is CRC-valid and carries nothing: the stream
  // decodes exactly as before, with no hang and no spurious error.
  m.expect = Expect::kAccept;
  m.expected_events = c.events;
  m.name = "zero-frame:at=" + std::to_string(at);
  return m;
}

Mutation mutate_dup_frame(const LogCase& c, Rng& rng, bool wire) {
  Mutation m;
  const std::size_t k = rng.uniform_index(c.image.segments.size());
  const SegmentSpan& span = c.image.segments[k];
  m.bytes.assign(c.base.begin(),
                 c.base.begin() + static_cast<std::ptrdiff_t>(span.end()));
  append_bytes(m.bytes, c.base, span.offset, span.end());
  append_bytes(m.bytes, c.base, span.end(), c.base.size());

  const std::uint64_t before = c.image.items_before(k);
  const std::uint64_t items = span.items;
  m.expected_events.assign(
      c.events.begin(),
      c.events.begin() + static_cast<std::ptrdiff_t>(before + items));
  m.expected_events.insert(
      m.expected_events.end(),
      c.events.begin() + static_cast<std::ptrdiff_t>(before),
      c.events.end());
  m.name = "dup-frame:segment=" + std::to_string(k);
  if (wire) {
    m.expect =
        times_monotone(m.expected_events) ? Expect::kEither : Expect::kReject;
    if (m.expect == Expect::kReject) m.name += ":regressing";
    return m;
  }
  const bool patch = rng.bernoulli(0.5);
  if (patch) {
    patch_log_event_count(m.bytes, m.expected_events.size());
    m.expect = Expect::kEither;
  } else {
    // Header promises fewer events than the stream holds: the reader
    // must flag the surplus, not silently ignore it.
    m.expect = Expect::kReject;
  }
  m.name += ":patched=" + std::to_string(patch);
  return m;
}

Mutation make_log_mutation(const LogCase& c, Rng& rng,
                           const ScratchDir& scratch) {
  if (c.image.version == EventLogHeader::kVersionRaw) {
    switch (rng.uniform_index(2)) {
      case 0:
        return mutate_truncate(c, rng, /*wire=*/false);
      default:
        return mutate_flip(c, rng, /*wire=*/false);
    }
  }
  switch (rng.uniform_index(8)) {
    case 0:
      return mutate_truncate(c, rng, /*wire=*/false);
    case 1:
      return mutate_flip(c, rng, /*wire=*/false);
    case 2:
      return mutate_overflow(c, rng);
    case 3: {
      const double t0 =
          rng.bernoulli(0.5) ? c.events.back().time + 1.0 : 0.0;
      const LogCase donor = make_donor_case(rng, c, scratch, t0);
      return mutate_splice(c, donor, rng, /*wire=*/false);
    }
    case 4:
      return mutate_zero_frame(c, rng);
    case 5:
      return mutate_dup_frame(c, rng, /*wire=*/false);
    case 6:
      return mutate_truncate(c, rng, /*wire=*/false);
    default:
      return mutate_flip(c, rng, /*wire=*/false);
  }
}

Mutation make_wire_mutation(const LogCase& c, Rng& rng) {
  switch (rng.uniform_index(8)) {
    case 0:
      return mutate_truncate(c, rng, /*wire=*/true);
    case 1:
      return mutate_flip(c, rng, /*wire=*/true);
    case 2:
      return mutate_overflow(c, rng);
    case 3: {
      const double t0 =
          rng.bernoulli(0.5) ? c.events.back().time + 1.0 : 0.0;
      const LogCase donor = make_wire_donor(rng, c, t0);
      return mutate_splice(c, donor, rng, /*wire=*/true);
    }
    case 4:
      return mutate_zero_frame(c, rng);
    case 5:
      return mutate_dup_frame(c, rng, /*wire=*/true);
    case 6:
      return mutate_truncate(c, rng, /*wire=*/true);
    default:
      return mutate_flip(c, rng, /*wire=*/true);
  }
}

DecodeOutcome decode_log_file(const std::string& path, std::size_t file_size,
                              std::size_t event_cap) {
  DecodeOutcome out;
  try {
    EventLogReader reader(path);
    LogEvent e;
    while (reader.next(e)) {
      out.events.push_back(e);
      if (out.events.size() > event_cap) {
        out.kind = DecodeOutcome::Kind::kEscape;
        out.detail = "decode explosion: more than " +
                     std::to_string(event_cap) + " events from a " +
                     std::to_string(file_size) + "-byte log";
        return out;
      }
    }
    const std::uint64_t promised = reader.header().num_events;
    if (promised != EventLogHeader::kUnknownCount &&
        out.events.size() != promised) {
      out.kind = DecodeOutcome::Kind::kEscape;
      out.detail = "accepted with " + std::to_string(out.events.size()) +
                   " events against a header promising " +
                   std::to_string(promised);
      return out;
    }
    if (reader.bytes_read() != file_size) {
      out.kind = DecodeOutcome::Kind::kEscape;
      out.detail = "accepted after consuming " +
                   std::to_string(reader.bytes_read()) + " of " +
                   std::to_string(file_size) +
                   " bytes — trailing data silently ignored";
      return out;
    }
    out.kind = DecodeOutcome::Kind::kAccepted;
  } catch (...) {
    out = classify_throw();
  }
  return out;
}

DecodeOutcome decode_wire_stream(const std::vector<unsigned char>& bytes,
                                 Rng& rng, std::size_t event_cap) {
  DecodeOutcome out;
  try {
    FrameAssembler assembler("fuzz.wire");
    std::size_t at = 0;
    while (at < bytes.size()) {
      const std::size_t take =
          std::min(std::size_t{1} + rng.uniform_index(97), bytes.size() - at);
      assembler.feed(bytes.data() + at, take, out.events);
      at += take;
      if (out.events.size() > event_cap) {
        out.kind = DecodeOutcome::Kind::kEscape;
        out.detail = "decode explosion: more than " +
                     std::to_string(event_cap) + " events from a " +
                     std::to_string(bytes.size()) + "-byte stream";
        return out;
      }
    }
    if (!assembler.at_boundary()) {
      // The peer would be closing mid-frame here — the server treats
      // that as a protocol error, so the fuzz oracle counts it as a
      // detected rejection.
      out.kind = DecodeOutcome::Kind::kRejected;
      out.detail = "stream ends mid-frame (close would be rejected)";
      out.events.clear();
      return out;
    }
    out.kind = DecodeOutcome::Kind::kAccepted;
  } catch (...) {
    out = classify_throw();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Snapshot cases
// ---------------------------------------------------------------------------

struct SnapCase {
  std::vector<unsigned char> base;
  std::vector<SnapRecord> records;
  SnapshotImage image;
  /// Object-record payload codec the base was written with.
  std::uint32_t codec = SnapshotHeader::kCodecRaw;
};

SnapCase make_snapshot_case(Rng& rng, const ScratchDir& scratch) {
  SnapCase c;
  SnapshotHeader header;
  header.num_servers = 1 + static_cast<std::uint32_t>(rng.uniform_index(4));
  header.events_ingested = rng.uniform_index(100000);
  header.batches = rng.uniform_index(500);
  header.base_seed = rng.next_u64();
  header.last_batch_time = rng.uniform(0.0, 1000.0);
  header.flags = SnapshotHeader::kFlagAnyEvent | SnapshotHeader::kFlagLowerBound;
  if (rng.bernoulli(0.7)) {
    header.policy_spec = "drwp(alpha=0.3)";
    header.predictor_spec = "last_gap";
  }
  header.codec = rng.bernoulli(0.5) ? SnapshotHeader::kCodecWord
                                    : SnapshotHeader::kCodecRaw;
  const std::size_t n = 1 + rng.uniform_index(10);
  header.num_objects = n;
  std::uint64_t id = rng.uniform_index(5);
  for (std::size_t i = 0; i < n; ++i) {
    SnapRecord record;
    record.first = id;
    id += 1 + rng.uniform_index(9);
    record.second.resize(rng.uniform_index(65));
    for (unsigned char& b : record.second) {
      b = static_cast<unsigned char>(rng.uniform_index(256));
    }
    c.records.push_back(std::move(record));
  }
  const std::string path = scratch.file("base.ckpt");
  {
    SnapshotWriter writer(path, header);
    for (const SnapRecord& r : c.records) writer.add_object(r.first, r.second);
    writer.close();
  }
  c.base = read_bytes(path);
  c.image = walk_snapshot_image(c.base);
  c.codec = header.codec;
  return c;
}

Mutation mutate_snapshot_truncate(const SnapCase& c, Rng& rng) {
  Mutation m;
  m.expect = Expect::kReject;  // the footer (at least) goes missing
  const std::size_t recs = c.image.records.size();
  if (rng.bernoulli(0.5)) {
    // At a structural boundary: end of header, end of record k, or just
    // before the footer.
    const std::size_t keep = rng.uniform_index(recs + 1);
    const std::size_t cut =
        keep == 0 ? c.image.header_bytes : c.image.records[keep - 1].end();
    m.bytes.assign(c.base.begin(),
                   c.base.begin() + static_cast<std::ptrdiff_t>(cut));
    m.name = "truncate:boundary:keep=" + std::to_string(keep);
    return m;
  }
  std::size_t cut;
  const std::size_t roll = rng.uniform_index(3);
  if (roll == 0 || recs == 0) {
    cut = 1 + rng.uniform_index(std::min(c.base.size() - 1,
                                         c.image.header_bytes));
    m.name = "truncate:mid-header:cut=" + std::to_string(cut);
  } else if (roll == 1) {
    const std::size_t k = rng.uniform_index(recs);
    const SegmentSpan& span = c.image.records[k];
    cut = span.offset + 1 + rng.uniform_index(span.size - 1);
    m.name = "truncate:mid-record:" + std::to_string(k) +
             ":cut=" + std::to_string(cut);
  } else {
    cut = c.base.size() - 1 - rng.uniform_index(7);  // inside the footer
    m.name = "truncate:mid-footer:cut=" + std::to_string(cut);
  }
  m.bytes.assign(c.base.begin(),
                 c.base.begin() + static_cast<std::ptrdiff_t>(cut));
  return m;
}

Mutation mutate_snapshot_flip(const SnapCase& c, Rng& rng) {
  Mutation m;
  m.bytes = c.base;
  const std::size_t region = rng.uniform_index(3);
  std::size_t byte;
  if (region == 0 || c.image.records.empty()) {
    byte = rng.uniform_index(c.image.header_bytes);
  } else if (region == 1) {
    const std::size_t lo = c.image.header_bytes;
    const std::size_t hi = c.image.footer_present ? c.image.footer_offset
                                                  : c.base.size();
    byte = lo + rng.uniform_index(hi - lo);
  } else {
    byte = c.base.size() - 8 + rng.uniform_index(8);  // footer magic
  }
  const std::size_t bit = rng.uniform_index(8);
  flip_bit(m.bytes, byte, bit);
  m.name = "flip:byte=" + std::to_string(byte) + ":bit=" + std::to_string(bit);
  if (byte < 12) {
    m.expect = Expect::kReject;  // magic / version
  } else if (byte < c.image.header_bytes) {
    // Header scalars and spec strings: acceptance is fine (specs are
    // opaque here), but the records must come through untouched.
    m.expect = Expect::kEither;
    m.expected_records = c.records;
  } else {
    // Record region (v3: fully CRC-covered) or footer.
    m.expect = Expect::kReject;
  }
  return m;
}

Mutation mutate_snapshot_overflow(const SnapCase& c, Rng& rng) {
  Mutation m;
  m.bytes = c.base;
  m.expect = Expect::kReject;
  const std::size_t k = rng.uniform_index(c.image.records.size());
  const std::size_t off = c.image.records[k].offset;
  const std::size_t variant = rng.uniform_index(4);
  unsigned char* rec = m.bytes.data() + off;
  switch (variant) {
    case 0:  // encoded_len implausible, stale record CRC
      store_le32(rec + 8, SnapshotHeader::kMaxEncodedRecordBytes + 1 +
                              static_cast<std::uint32_t>(
                                  rng.uniform_index(1024)));
      break;
    case 1:  // encoded_len implausible, recomputed CRC (plausibility
             // check must fire before any allocation)
      store_le32(rec + 8, SnapshotHeader::kMaxEncodedRecordBytes + 1 +
                              static_cast<std::uint32_t>(
                                  rng.uniform_index(1024)));
      refresh_record_crc(m.bytes, off);
      break;
    case 2:  // raw_len implausible, recomputed CRC
      store_le32(rec + 12, SnapshotHeader::kMaxRecordBytes + 1 +
                               static_cast<std::uint32_t>(
                                   rng.uniform_index(1024)));
      refresh_record_crc(m.bytes, off);
      break;
    default: {  // raw_len lies (decode can't produce it), recomputed CRC
      const std::uint32_t raw_len = load_le32(rec + 12);
      std::uint32_t lied;
      if (c.codec == SnapshotHeader::kCodecWord) {
        // A raw_len that grows the word count can coincidentally
        // re-parse as a *valid* encoding of different content (an
        // unused high control nibble decodes as "repeat previous
        // word"), which no decoder could reject. Lying within the same
        // word count only changes the expected tail length, which the
        // decoder's exact-tail check must always catch.
        const std::uint32_t tail = raw_len % 8;
        const std::uint32_t new_tail =
            (tail + 1 + static_cast<std::uint32_t>(rng.uniform_index(7))) % 8;
        lied = raw_len - tail + new_tail;
      } else {
        // Raw records: any mismatch against encoded_len must fail.
        lied = raw_len + 1 +
               static_cast<std::uint32_t>(rng.uniform_index(64));
      }
      store_le32(rec + 12, lied);
      refresh_record_crc(m.bytes, off);
      break;
    }
  }
  m.name = "overflow:record=" + std::to_string(k) +
           ":variant=" + std::to_string(variant);
  return m;
}

Mutation mutate_snapshot_reorder(const SnapCase& c, Rng& rng) {
  Mutation m;
  m.expect = Expect::kReject;  // ids must be strictly increasing
  const std::size_t recs = c.image.records.size();
  if (recs >= 2 && rng.bernoulli(0.5)) {
    // Swap two adjacent records wholesale (CRCs travel with them).
    const std::size_t k = rng.uniform_index(recs - 1);
    const SegmentSpan& a = c.image.records[k];
    const SegmentSpan& b = c.image.records[k + 1];
    m.bytes.assign(c.base.begin(),
                   c.base.begin() + static_cast<std::ptrdiff_t>(a.offset));
    append_bytes(m.bytes, c.base, b.offset, b.end());
    append_bytes(m.bytes, c.base, a.offset, a.end());
    append_bytes(m.bytes, c.base, b.end(), c.base.size());
    m.name = "reorder:swap=" + std::to_string(k);
    return m;
  }
  // Duplicate record k in place and raise the header's object count:
  // the duplicate id breaks strict ordering.
  const std::size_t k = rng.uniform_index(recs);
  const SegmentSpan& span = c.image.records[k];
  m.bytes.assign(c.base.begin(),
                 c.base.begin() + static_cast<std::ptrdiff_t>(span.end()));
  append_bytes(m.bytes, c.base, span.offset, span.end());
  append_bytes(m.bytes, c.base, span.end(), c.base.size());
  patch_snapshot_object_count(m.bytes, c.image.num_objects + 1);
  m.name = "dup-record:" + std::to_string(k);
  return m;
}

Mutation make_snapshot_mutation(const SnapCase& c, Rng& rng) {
  switch (rng.uniform_index(4)) {
    case 0:
      return mutate_snapshot_truncate(c, rng);
    case 1:
      return mutate_snapshot_flip(c, rng);
    case 2:
      return mutate_snapshot_overflow(c, rng);
    default:
      return mutate_snapshot_reorder(c, rng);
  }
}

DecodeOutcome decode_snapshot_file(const std::string& path) {
  DecodeOutcome out;
  try {
    SnapshotReader reader(path);
    std::uint64_t id = 0;
    std::vector<unsigned char> payload;
    while (reader.next_object(id, payload)) {
      out.records.emplace_back(id, payload);
    }
    out.kind = DecodeOutcome::Kind::kAccepted;
  } catch (...) {
    out = classify_throw();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Cluster control-protocol cases
// ---------------------------------------------------------------------------

/// A well-formed worker control session: hello, progress/checkpoints,
/// chunked id-sorted finals, terminal summary — kept as parts so the
/// protocol mutations can rebuild the stream with one rule broken.
struct ClusterCase {
  ControlHello hello;
  std::vector<ControlProgress> progress;
  std::vector<ControlMetrics> metrics;
  std::vector<std::uint64_t> checkpoints;
  std::vector<EngineObjectFinal> finals;
  ControlSummary summary;
  std::size_t finals_chunk = 3;
  std::vector<unsigned char> base;
  ControlImage image;
  /// Frames in `base` (hello + progress + metrics + checkpoints + chunks
  /// + summary).
  std::uint64_t messages = 0;
};

void append_finals_chunks(const std::vector<EngineObjectFinal>& finals,
                          std::size_t chunk,
                          std::vector<unsigned char>& out) {
  for (std::size_t i = 0; i < finals.size(); i += chunk) {
    encode_control_finals(finals.data() + i,
                          std::min(chunk, finals.size() - i), out);
  }
}

std::vector<unsigned char> encode_cluster_stream(const ClusterCase& c) {
  std::vector<unsigned char> out;
  encode_control_header(out);
  encode_control_hello(c.hello, out);
  for (const ControlProgress& p : c.progress) {
    encode_control_progress(p, out);
  }
  for (const ControlMetrics& m : c.metrics) {
    encode_control_metrics(m, out);
  }
  for (std::uint64_t events : c.checkpoints) {
    encode_control_checkpoint({events}, out);
  }
  append_finals_chunks(c.finals, c.finals_chunk, out);
  encode_control_summary(c.summary, out);
  return out;
}

ClusterCase make_cluster_case(Rng& rng) {
  ClusterCase c;
  c.hello.num_partitions = 1 + static_cast<std::uint32_t>(rng.uniform_index(4));
  c.hello.partition_id =
      static_cast<std::uint32_t>(rng.uniform_index(c.hello.num_partitions));
  c.hello.pf_version = 1;
  c.hello.num_servers = 1 + static_cast<std::uint32_t>(rng.uniform_index(4));
  c.hello.resume_events = rng.bernoulli(0.5) ? rng.uniform_index(100000) : 0;
  c.hello.base_seed = rng.next_u64();

  // At least one progress strictly past the resume floor (the regress
  // mutation needs headroom to regress into).
  std::uint64_t events = c.hello.resume_events;
  std::uint64_t batches = 0;
  const std::size_t np = 1 + rng.uniform_index(5);
  for (std::size_t i = 0; i < np; ++i) {
    events += 1 + rng.uniform_index(5000);
    batches += 1 + rng.uniform_index(3);
    c.progress.push_back({events, batches});
  }
  // Metrics snapshots: valid anywhere between hello and finals. Their
  // bodies carry the federation sample codec, so the flip/truncate
  // mutators exercise that decoder through the control stream too.
  const std::size_t nm = rng.uniform_index(3);
  for (std::size_t i = 0; i < nm; ++i) {
    ControlMetrics m;
    m.trace_id = rng.next_u64();
    m.span_id = rng.next_u64();
    const std::size_t ns = 1 + rng.uniform_index(4);
    for (std::size_t s = 0; s < ns; ++s) {
      obs::Sample sample;
      sample.name = "repl_fuzz_series_" + std::to_string(rng.uniform_index(4));
      sample.help = "fuzz-generated series";
      if (rng.bernoulli(0.5)) {
        sample.labels.push_back(
            {"partition", std::to_string(rng.uniform_index(4))});
      }
      switch (rng.uniform_index(3)) {
        case 0: {
          sample.type = obs::MetricType::kCounter;
          sample.counter_value = rng.uniform_index(1 << 20);
          sample.value = static_cast<double>(sample.counter_value);
          break;
        }
        case 1: {
          sample.type = obs::MetricType::kGauge;
          sample.value = rng.uniform(-1000.0, 1000.0);
          break;
        }
        default: {
          sample.type = obs::MetricType::kHistogram;
          sample.bounds = {0.5, 1.5, 4.5};
          std::uint64_t cum = 0;
          for (std::size_t b = 0; b <= sample.bounds.size(); ++b) {
            cum += rng.uniform_index(50);
            sample.cumulative.push_back(cum);
          }
          sample.count = sample.cumulative.back();
          sample.sum = rng.uniform(0.0, 500.0);
          break;
        }
      }
      m.samples.push_back(std::move(sample));
    }
    c.metrics.push_back(std::move(m));
  }
  std::uint64_t ck = c.hello.resume_events;
  const std::size_t nc = 1 + rng.uniform_index(2);
  for (std::size_t i = 0; i < nc; ++i) {
    ck += 1 + rng.uniform_index(4000);
    c.checkpoints.push_back(ck);
  }
  const std::size_t n = 2 + rng.uniform_index(40);
  std::uint64_t id = rng.uniform_index(5);
  for (std::size_t i = 0; i < n; ++i) {
    EngineObjectFinal final;
    final.id = id;
    id += 1 + rng.uniform_index(9);
    final.events = rng.uniform_index(500);
    final.num_local = rng.uniform_index(400);
    final.num_transfers = rng.uniform_index(100);
    final.online_cost = rng.uniform(0.0, 1000.0);
    final.lower_bound = rng.uniform(0.0, 500.0);
    c.finals.push_back(final);
  }
  c.finals_chunk = 1 + rng.uniform_index(7);
  c.summary.objects = n;
  c.summary.events = events;
  c.summary.num_local = rng.uniform_index(100000);
  c.summary.num_transfers = rng.uniform_index(10000);
  c.summary.online_cost = rng.uniform(0.0, 100000.0);
  c.summary.lower_bound = rng.uniform(0.0, 50000.0);
  c.base = encode_cluster_stream(c);
  c.image = walk_control_image(c.base);
  c.messages = c.image.segments.size();
  return c;
}

/// Truncations: a control stream may only end after its summary, so
/// every proper prefix — boundary or mid-frame — must be rejected.
Mutation mutate_cluster_truncate(const ClusterCase& c, Rng& rng) {
  Mutation m;
  m.expect = Expect::kReject;
  const std::size_t segs = c.image.segments.size();
  if (rng.bernoulli(0.5)) {
    const std::size_t keep = rng.uniform_index(segs);  // proper prefix
    const std::size_t cut =
        keep == 0 ? c.image.header_bytes : c.image.segments[keep - 1].end();
    m.bytes.assign(c.base.begin(),
                   c.base.begin() + static_cast<std::ptrdiff_t>(cut));
    m.name = "truncate:boundary:keep=" + std::to_string(keep);
    return m;
  }
  std::size_t cut;
  if (rng.bernoulli(0.15)) {
    cut = 1 + rng.uniform_index(std::min(c.base.size(), std::size_t{15}));
    m.name = "truncate:mid-header:cut=" + std::to_string(cut);
  } else {
    const std::size_t k = rng.uniform_index(segs);
    const SegmentSpan& span = c.image.segments[k];
    cut = span.offset + 1 + rng.uniform_index(span.size - 1);
    m.name = "truncate:mid-frame:" + std::to_string(k) +
             ":cut=" + std::to_string(cut);
  }
  m.bytes.assign(c.base.begin(),
                 c.base.begin() + static_cast<std::ptrdiff_t>(cut));
  return m;
}

/// Bit flips: every byte of a control stream is covered — header fields
/// are checked verbatim, frames by the frame CRC, bodies by the payload
/// CRC — so a single flip anywhere must be rejected.
Mutation mutate_cluster_flip(const ClusterCase& c, Rng& rng) {
  Mutation m;
  m.bytes = c.base;
  m.expect = Expect::kReject;
  const std::size_t byte = rng.uniform_index(c.base.size());
  const std::size_t bit = rng.uniform_index(8);
  flip_bit(m.bytes, byte, bit);
  m.name = "flip:byte=" + std::to_string(byte) + ":bit=" + std::to_string(bit);
  return m;
}

/// Steering-field tampering with the frame CRC recomputed, so the
/// plausibility / type / size checks (not the CRC) must fire.
Mutation mutate_cluster_overflow(const ClusterCase& c, Rng& rng) {
  Mutation m;
  m.bytes = c.base;
  m.expect = Expect::kReject;
  const std::size_t k = rng.uniform_index(c.image.segments.size());
  const std::size_t off = c.image.segments[k].offset;
  const std::size_t variant = rng.uniform_index(5);
  unsigned char* frame = m.bytes.data() + off;
  switch (variant) {
    case 0:  // implausible length, stale frame CRC
      store_le32(frame, static_cast<std::uint32_t>(kMaxControlBodyBytes) + 1 +
                            static_cast<std::uint32_t>(rng.uniform_index(1024)));
      break;
    case 1:  // implausible length, *valid* frame CRC
      store_le32(frame, static_cast<std::uint32_t>(kMaxControlBodyBytes) + 1 +
                            static_cast<std::uint32_t>(rng.uniform_index(1024)));
      refresh_frame_crc(m.bytes, off);
      break;
    case 2:  // item count raised: body size no longer matches
      store_le32(frame + 4, load_le32(frame + 4) + 1 +
                                static_cast<std::uint32_t>(
                                    rng.uniform_index(1 << 16)));
      refresh_frame_crc(m.bytes, off);
      break;
    case 3:  // type zeroed: below the valid range
      store_le32(frame + 4, load_le32(frame + 4) & 0x00ffffffu);
      refresh_frame_crc(m.bytes, off);
      break;
    default:  // type past kMetrics: unknown message
      store_le32(frame + 4, (load_le32(frame + 4) & 0x00ffffffu) |
                                ((7u + static_cast<std::uint32_t>(
                                           rng.uniform_index(200)))
                                 << 24));
      refresh_frame_crc(m.bytes, off);
      break;
  }
  m.name = "overflow:frame=" + std::to_string(k) +
           ":variant=" + std::to_string(variant);
  return m;
}

/// Protocol-rule violations: each variant rebuilds the stream with one
/// state-machine rule broken; the decoder must reject at the violation.
Mutation mutate_cluster_protocol(const ClusterCase& c, Rng& rng) {
  Mutation m;
  m.expect = Expect::kReject;
  std::vector<unsigned char>& out = m.bytes;
  encode_control_header(out);
  const auto emit_progress = [&] {
    for (const ControlProgress& p : c.progress) {
      encode_control_progress(p, out);
    }
  };
  const std::size_t variant = rng.uniform_index(13);
  switch (variant) {
    case 0: {  // duplicate hello
      encode_control_hello(c.hello, out);
      encode_control_hello(c.hello, out);
      m.name = "protocol:dup-hello";
      break;
    }
    case 1: {  // hello missing: progress opens the stream
      emit_progress();
      m.name = "protocol:missing-hello";
      break;
    }
    case 2: {  // progress regresses below the last report
      encode_control_hello(c.hello, out);
      emit_progress();
      encode_control_progress({c.hello.resume_events, 0}, out);
      m.name = "protocol:progress-regress";
      break;
    }
    case 3: {  // checkpoint position regresses
      encode_control_hello(c.hello, out);
      encode_control_checkpoint({c.checkpoints.back()}, out);
      encode_control_checkpoint({c.hello.resume_events}, out);
      m.name = "protocol:checkpoint-regress";
      break;
    }
    case 4: {  // finals ids out of order (adjacent swap)
      encode_control_hello(c.hello, out);
      std::vector<EngineObjectFinal> finals = c.finals;
      const std::size_t at = rng.uniform_index(finals.size() - 1);
      std::swap(finals[at], finals[at + 1]);
      append_finals_chunks(finals, c.finals_chunk, out);
      m.name = "protocol:finals-unsorted:at=" + std::to_string(at);
      break;
    }
    case 5: {  // duplicated finals id (strictly increasing required)
      encode_control_hello(c.hello, out);
      std::vector<EngineObjectFinal> finals = c.finals;
      const std::size_t at = rng.uniform_index(finals.size());
      finals.insert(finals.begin() + static_cast<std::ptrdiff_t>(at),
                    finals[at]);
      append_finals_chunks(finals, c.finals_chunk, out);
      m.name = "protocol:finals-dup-id:at=" + std::to_string(at);
      break;
    }
    case 6: {  // summary object count disagrees with streamed finals
      encode_control_hello(c.hello, out);
      append_finals_chunks(c.finals, c.finals_chunk, out);
      ControlSummary summary = c.summary;
      summary.objects = c.finals.size() + 1;
      encode_control_summary(summary, out);
      m.name = "protocol:summary-count-mismatch";
      break;
    }
    case 7: {  // progress after finals began
      encode_control_hello(c.hello, out);
      encode_control_finals(c.finals.data(), 1, out);
      encode_control_progress(c.progress.front(), out);
      m.name = "protocol:progress-after-finals";
      break;
    }
    case 8: {  // message after the terminal summary
      encode_control_hello(c.hello, out);
      append_finals_chunks(c.finals, c.finals_chunk, out);
      encode_control_summary(c.summary, out);
      encode_control_progress(c.progress.back(), out);
      m.name = "protocol:message-after-summary";
      break;
    }
    case 9: {  // zero-record finals frame
      encode_control_hello(c.hello, out);
      const std::vector<unsigned char> frame = frame_block(
          static_cast<std::uint32_t>(ControlType::kFinals) << 24, {});
      out.insert(out.end(), frame.begin(), frame.end());
      m.name = "protocol:empty-finals-frame";
      break;
    }
    case 10: {  // non-finals frame claiming an item count
      encode_control_hello(c.hello, out);
      std::vector<unsigned char> framed;
      encode_control_progress(c.progress.front(), framed);
      const std::uint32_t aux = load_le32(framed.data() + 4);
      store_le32(framed.data() + 4,
                 aux | (1u + static_cast<std::uint32_t>(
                                 rng.uniform_index(100))));
      refresh_frame_crc(framed, 0);
      out.insert(out.end(), framed.begin(), framed.end());
      m.name = "protocol:count-on-progress";
      break;
    }
    case 11: {  // metrics once the finals sequence has begun
      encode_control_hello(c.hello, out);
      encode_control_finals(c.finals.data(), 1, out);
      ControlMetrics snapshot;
      snapshot.trace_id = rng.next_u64();
      obs::Sample sample;
      sample.name = "repl_fuzz_series_0";
      sample.type = obs::MetricType::kCounter;
      sample.counter_value = 1;
      snapshot.samples.push_back(std::move(sample));
      encode_control_metrics(snapshot, out);
      m.name = "protocol:metrics-after-finals";
      break;
    }
    default: {  // metrics sample count disagrees with the body
      encode_control_hello(c.hello, out);
      ControlMetrics snapshot;
      snapshot.trace_id = rng.next_u64();
      obs::Sample sample;
      sample.name = "repl_fuzz_series_0";
      sample.type = obs::MetricType::kGauge;
      sample.value = 1.0;
      snapshot.samples.push_back(std::move(sample));
      std::vector<unsigned char> framed;
      encode_control_metrics(snapshot, framed);
      const std::uint32_t aux = load_le32(framed.data() + 4);
      store_le32(framed.data() + 4, aux + 1);  // count 1 -> 2, same body
      refresh_frame_crc(framed, 0);
      out.insert(out.end(), framed.begin(), framed.end());
      m.name = "protocol:metrics-count-mismatch";
      break;
    }
  }
  return m;
}

/// Well-formed variations the decoder must accept in full.
Mutation mutate_cluster_accept(const ClusterCase& c, Rng& rng) {
  Mutation m;
  m.expect = Expect::kAccept;
  const std::size_t variant = rng.uniform_index(4);
  switch (variant) {
    case 0:  // the untouched baseline
      m.bytes = c.base;
      m.expected_messages = c.messages;
      m.expected_count = c.finals.size();
      m.name = "accept:baseline";
      return m;
    case 1: {  // every progress repeated verbatim (equal is not regress)
      ClusterCase dup = c;
      dup.progress.clear();
      for (const ControlProgress& p : c.progress) {
        dup.progress.push_back(p);
        dup.progress.push_back(p);
      }
      m.bytes = encode_cluster_stream(dup);
      m.expected_messages = c.messages + c.progress.size();
      m.expected_count = c.finals.size();
      m.name = "accept:dup-progress";
      return m;
    }
    case 2: {  // checkpoint repeated at the same position
      ClusterCase dup = c;
      dup.checkpoints.push_back(dup.checkpoints.back());
      m.bytes = encode_cluster_stream(dup);
      m.expected_messages = c.messages + 1;
      m.expected_count = c.finals.size();
      m.name = "accept:dup-checkpoint";
      return m;
    }
    default: {  // minimal session: hello straight to an empty summary
      encode_control_header(m.bytes);
      encode_control_hello(c.hello, m.bytes);
      ControlSummary summary = c.summary;
      summary.objects = 0;
      encode_control_summary(summary, m.bytes);
      m.expected_messages = 2;
      m.expected_count = 0;
      m.name = "accept:empty-partition";
      return m;
    }
  }
}

Mutation make_cluster_mutation(const ClusterCase& c, Rng& rng) {
  switch (rng.uniform_index(8)) {
    case 0:
      return mutate_cluster_truncate(c, rng);
    case 1:
      return mutate_cluster_flip(c, rng);
    case 2:
      return mutate_cluster_overflow(c, rng);
    case 3:
    case 4:
    case 5:
      return mutate_cluster_protocol(c, rng);
    case 6:
      return mutate_cluster_accept(c, rng);
    default:
      return mutate_cluster_flip(c, rng);
  }
}

DecodeOutcome decode_cluster_stream(const std::vector<unsigned char>& bytes,
                                    Rng& rng) {
  DecodeOutcome out;
  try {
    ClusterControlAssembler assembler("fuzz.cluster");
    std::vector<ControlMessage> messages;
    std::size_t at = 0;
    while (at < bytes.size()) {
      const std::size_t take =
          std::min(std::size_t{1} + rng.uniform_index(97), bytes.size() - at);
      assembler.feed(bytes.data() + at, take, messages);
      at += take;
    }
    out.cluster_messages = assembler.messages_decoded();
    out.cluster_finals = assembler.finals_records();
    if (!assembler.at_boundary()) {
      out.kind = DecodeOutcome::Kind::kRejected;
      out.detail = "stream ends mid-frame (close would be rejected)";
      return out;
    }
    if (!assembler.complete()) {
      // The coordinator treats EOF before the summary as a failed
      // worker, so the oracle counts it as a detected rejection.
      out.kind = DecodeOutcome::Kind::kRejected;
      out.detail = "stream closed before the terminal summary";
      return out;
    }
    out.kind = DecodeOutcome::Kind::kAccepted;
  } catch (...) {
    out = classify_throw();
  }
  return out;
}

/// Cluster verdict: acceptance must reproduce the exact message and
/// finals-record counts the mutation's semantics dictate.
std::string judge_cluster(const Mutation& m, const DecodeOutcome& o) {
  if (o.kind == DecodeOutcome::Kind::kEscape) return o.detail;
  if (o.kind == DecodeOutcome::Kind::kRejected) {
    if (m.expect == Expect::kAccept) {
      return "rejected a well-formed input: " + o.detail;
    }
    return "";
  }
  switch (m.expect) {
    case Expect::kReject:
      return "accepted malformed input and decoded " +
             std::to_string(o.cluster_messages) + " control messages";
    case Expect::kAccept:
    case Expect::kEither:
      if (o.cluster_messages != m.expected_messages) {
        return "silent wrong decode: " + std::to_string(o.cluster_messages) +
               " messages, expected " + std::to_string(m.expected_messages);
      }
      if (o.cluster_finals != m.expected_count) {
        return "silent wrong decode: " + std::to_string(o.cluster_finals) +
               " finals records, expected " +
               std::to_string(m.expected_count);
      }
      return "";
    case Expect::kEitherCount:
    case Expect::kFree:
      return "";
  }
  return "";
}

// ---------------------------------------------------------------------------
// Escape fixtures + the driver
// ---------------------------------------------------------------------------

std::string save_escape_fixture(const FuzzOptions& options, FuzzTarget target,
                                std::size_t case_index,
                                const Mutation& mutation,
                                std::uint32_t num_servers) {
  std::filesystem::create_directories(options.save_dir);
  Fixture fixture;
  switch (target) {
    case FuzzTarget::kLog:
      fixture.target = FixtureTarget::kServe;
      fixture.policy_spec = "drwp(alpha=0.3)";
      fixture.predictor_spec = "last_gap";
      break;
    case FuzzTarget::kSnapshot:
      fixture.target = FixtureTarget::kSnapshot;
      break;
    case FuzzTarget::kWire:
      fixture.target = FixtureTarget::kWire;
      break;
    case FuzzTarget::kCluster:
      fixture.target = FixtureTarget::kCluster;
      break;
  }
  fixture.expect = FixtureExpect::kFailure;
  fixture.num_servers = num_servers;
  fixture.source_name = std::string("fuzz:") + fuzz_target_name(target) +
                        ":seed=" + std::to_string(options.seed) +
                        ":case=" + std::to_string(case_index) + ":" +
                        mutation.name;
  fixture.blob = mutation.bytes;
  // The signature is unknown by construction — an escape means the
  // decoder did NOT fail. Once the decoder is fixed, re-record with
  // `fixture_tool resign` (or minimize, which re-derives it).
  const std::string path =
      (std::filesystem::path(options.save_dir) /
       (std::string(fuzz_target_name(target)) + "-s" +
        std::to_string(options.seed) + "-c" + std::to_string(case_index) +
        ".replfixt"))
          .string();
  write_fixture(path, fixture);
  return path;
}

}  // namespace

const char* fuzz_target_name(FuzzTarget target) {
  switch (target) {
    case FuzzTarget::kLog:
      return "log";
    case FuzzTarget::kSnapshot:
      return "snapshot";
    case FuzzTarget::kWire:
      return "wire";
    case FuzzTarget::kCluster:
      return "cluster";
  }
  return "?";
}

FuzzTarget parse_fuzz_target(const std::string& name) {
  if (name == "log") return FuzzTarget::kLog;
  if (name == "snapshot") return FuzzTarget::kSnapshot;
  if (name == "wire") return FuzzTarget::kWire;
  if (name == "cluster") return FuzzTarget::kCluster;
  throw std::invalid_argument("unknown fuzz target '" + name +
                              "' (expected log, snapshot, wire, or cluster)");
}

FuzzReport fuzz_format(FuzzTarget target, const FuzzOptions& options) {
  FuzzReport report;
  report.target = target;
  report.seed = options.seed;
  ScratchDir scratch(options.scratch_dir);
  std::ostringstream trace;

  for (std::size_t i = 0; i < options.cases; ++i) {
    SplitMix64 mix(options.seed ^
                   (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(i) +
                                             1)));
    Rng rng(mix.next());
    Mutation mutation;
    DecodeOutcome outcome;
    bool snapshot = false;
    bool cluster = false;
    std::uint32_t num_servers = 1;

    switch (target) {
      case FuzzTarget::kLog: {
        const LogCase c = make_log_case(rng, scratch);
        num_servers = c.num_servers;
        mutation = make_log_mutation(c, rng, scratch);
        const std::string path = scratch.file("case.evlog");
        write_bytes(path, mutation.bytes);
        outcome = decode_log_file(path, mutation.bytes.size(),
                                  4096 + 4 * c.events.size());
        break;
      }
      case FuzzTarget::kWire: {
        const LogCase c = make_wire_case(rng);
        num_servers = c.num_servers;
        mutation = make_wire_mutation(c, rng);
        outcome = decode_wire_stream(mutation.bytes, rng,
                                     4096 + 4 * c.events.size());
        break;
      }
      case FuzzTarget::kSnapshot: {
        snapshot = true;
        const SnapCase c = make_snapshot_case(rng, scratch);
        mutation = make_snapshot_mutation(c, rng);
        const std::string path = scratch.file("case.ckpt");
        write_bytes(path, mutation.bytes);
        outcome = decode_snapshot_file(path);
        break;
      }
      case FuzzTarget::kCluster: {
        cluster = true;
        const ClusterCase c = make_cluster_case(rng);
        num_servers = c.hello.num_servers;
        mutation = make_cluster_mutation(c, rng);
        outcome = decode_cluster_stream(mutation.bytes, rng);
        break;
      }
    }

    ++report.cases;
    const std::string escape = cluster
                                   ? judge_cluster(mutation, outcome)
                                   : judge(mutation, outcome, snapshot);
    if (!escape.empty()) {
      FuzzFailure failure;
      failure.case_index = i;
      failure.mutation = mutation.name;
      failure.detail = escape;
      if (!options.save_dir.empty()) {
        failure.fixture_path =
            save_escape_fixture(options, target, i, mutation, num_servers);
      }
      report.failures.push_back(std::move(failure));
      trace << i << ' ' << mutation.name << " => ESCAPE\n";
      if (options.max_failures != 0 &&
          report.failures.size() >= options.max_failures) {
        break;
      }
      continue;
    }
    if (outcome.kind == DecodeOutcome::Kind::kAccepted) {
      ++report.accepted;
      trace << i << ' ' << mutation.name << " => accepted\n";
    } else {
      ++report.rejected;
      trace << i << ' ' << mutation.name << " => rejected\n";
    }
  }
  report.trace = trace.str();
  return report;
}

}  // namespace repl
