// Little-endian load/store primitives, shared by every on-disk format
// (event logs, snapshots, block frames). Byte-at-a-time shifts compile
// to single mov/bswap instructions on the targets we care about and are
// UB-free on any alignment.
#pragma once

#include <cstdint>

namespace repl {

inline void store_le32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

inline void store_le64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

inline std::uint32_t load_le32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

inline std::uint64_t load_le64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

}  // namespace repl
