// The division approach of Section 5: splitting a request sequence into
// partitions at the requests r_i where no server other than s[r_i] holds
// a copy crossing t_i in the optimal offline strategy. The paper's
// competitive analysis bounds Online(d,e)/OPT(d,e) per partition and
// aggregates; this module reconstructs that decomposition from an
// OfflinePlan and a DRWP run so the concentration of the competitive
// ratio can be inspected empirically (which partitions are tight, which
// are slack).
//
// Note: the DP may return *any* cost-optimal plan, not necessarily one
// with the canonical Proposition 3–6 structure the paper's proof picks,
// so the per-partition ratio is reported, not asserted against the
// theoretical bound; the aggregate identities (sums of per-partition
// costs equal the totals) always hold and are tested.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/allocation.hpp"
#include "core/simulator.hpp"
#include "offline/opt_dp.hpp"
#include "trace/trace.hpp"

namespace repl {

struct Partition {
  /// Request index range (first_request..last_request, inclusive); the
  /// paper's (r_d, r_e] with d = first_request - 1.
  std::size_t first_request = 0;
  std::size_t last_request = 0;
  /// Online cost allocated to the partition's requests (Proposition 2).
  double online_cost = 0.0;
  /// Offline cost incurred over the partition's time span by the plan.
  double opt_cost = 0.0;

  double ratio() const {
    return opt_cost > 0.0 ? online_cost / opt_cost
                          : std::numeric_limits<double>::infinity();
  }
  std::size_t size() const { return last_request - first_request + 1; }
};

struct PartitionReport {
  std::vector<Partition> partitions;
  double total_online = 0.0;  // == allocation.total_allocated
  double total_opt = 0.0;     // == plan.cost
  double max_ratio = 0.0;

  std::size_t count() const { return partitions.size(); }
};

/// Decomposes the sequence using `plan` for the offline side and the
/// Proposition-2 allocation of `result` for the online side.
PartitionReport partition_sequence(const Trace& trace,
                                   const SimulationResult& result,
                                   const OfflinePlan& plan);

}  // namespace repl
