// Reference offline solver: identical cost model to OptimalDpSolver but
// with a brute-force transition (explicit minimization over all pairs of
// predecessor/successor holder sets, O(4^k) per request) and no
// superset-min / buy-pass transforms. Exists purely to cross-validate the
// fast solver on small instances; tests assert bit-for-bit agreement.
#pragma once

#include "core/types.hpp"
#include "trace/trace.hpp"

namespace repl {

/// Optimal offline cost by exhaustive state-pair enumeration. Limited to
/// 12 active servers.
double reference_offline_cost(const SystemConfig& config, const Trace& trace);

}  // namespace repl
