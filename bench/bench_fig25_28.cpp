// Experiment E1 — Figures 25–28 of the paper: online-to-optimal cost
// ratio of Algorithm 1 over the (alpha, prediction accuracy) grid, one
// table per transfer cost λ ∈ {10, 100, 1000, 10000}, on the IBM-like
// trace (10 servers, 7 days, ~11.7k requests), normalized by the exact
// offline optimum.
//
// Paper shapes this harness checks:
//  * every cell ≤ 1 + 1/alpha (robustness) — spot-checked at extremes;
//  * the 100%-accuracy column ≤ (5+alpha)/3 (consistency);
//  * the alpha = 1 row is constant across accuracies;
//  * the minimum sits at (alpha -> 0, accuracy = 100%);
//  * at λ = 10 the whole surface is ≈ 1;
//  * at larger λ the worst cell is at (alpha -> 0, accuracy = 0%).
#include <algorithm>
#include <iostream>

#include "analysis/ratio.hpp"
#include "bench_util.hpp"
#include "core/drwp.hpp"
#include "offline/opt_dp.hpp"
#include "predictor/noisy.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace repl;
  CliParser cli("bench_fig25_28",
                "Figures 25-28: ratio vs (alpha, accuracy) per lambda");
  cli.add_flag("seed", "1", "trace seed");
  cli.add_flag("scale", "1.0", "trace scale (1.0 = full 7 days)");
  cli.add_flag("lambdas", "10,100,1000,10000", "lambda values");
  if (!cli.parse(argc, argv)) return 0;

  const Trace trace =
      bench::evaluation_trace(cli.get_uint64("seed"), cli.get_double("scale"));
  std::cout << "trace: " << trace.size() << " requests over "
            << trace.duration() / 86400.0 << " days on "
            << trace.num_servers() << " servers\n\n";

  bench::ShapeChecks checks;
  SystemConfig config;
  config.num_servers = trace.num_servers();

  for (double lambda : cli.get_double_list("lambdas")) {
    config.transfer_cost = lambda;
    const double opt = optimal_offline_cost(config, trace);
    std::cout << "=== lambda = " << lambda << "  (OPT = " << opt
              << ") ===\n";

    std::vector<std::string> header = {"alpha \\ accuracy"};
    for (double accuracy : bench::accuracy_grid()) {
      header.push_back(bench::percent_label(accuracy));
    }
    Table table(header);

    double min_ratio = 1e18, max_ratio = 0.0;
    double min_alpha = 0, min_accuracy = 0, max_alpha = 0, max_accuracy = 0;
    double alpha1_first = -1.0;
    bool alpha1_constant = true;
    double perfect_col_worst_gap = -1e18;  // ratio - consistency bound

    for (double alpha : bench::alpha_grid()) {
      std::vector<std::string> row = {Table::cell(alpha, 2)};
      for (double accuracy : bench::accuracy_grid()) {
        AccuracyPredictor predictor(trace, accuracy, 1234);
        DrwpPolicy policy(alpha);
        const double ratio =
            evaluate_policy(config, policy, trace, predictor, opt).ratio;
        row.push_back(Table::cell(ratio, 4));
        if (ratio < min_ratio) {
          min_ratio = ratio;
          min_alpha = alpha;
          min_accuracy = accuracy;
        }
        if (ratio > max_ratio) {
          max_ratio = ratio;
          max_alpha = alpha;
          max_accuracy = accuracy;
        }
        if (alpha == 1.0) {
          if (alpha1_first < 0.0) {
            alpha1_first = ratio;
          } else if (std::abs(ratio - alpha1_first) > 1e-12) {
            alpha1_constant = false;
          }
        }
        if (accuracy == 1.0) {
          perfect_col_worst_gap = std::max(
              perfect_col_worst_gap, ratio - consistency_bound(alpha));
        }
      }
      table.add_row(std::move(row));
    }
    std::cout << table.str() << "\n";

    checks.expect(alpha1_constant,
                  "lambda=" + std::to_string(lambda) +
                      ": alpha=1 row is accuracy-independent");
    checks.expect(perfect_col_worst_gap <= 1e-9,
                  "lambda=" + std::to_string(lambda) +
                      ": 100%-accuracy column within (5+alpha)/3");
    if (lambda <= 10.0) {
      checks.expect(max_ratio < 1.2,
                    "lambda=10: whole surface close to 1 (max " +
                        Table::cell(max_ratio, 4) + ")");
    } else {
      checks.expect(min_accuracy == 1.0 && min_alpha <= 0.25,
                    "lambda=" + std::to_string(lambda) +
                        ": minimum at (alpha->0, accuracy=100%), found "
                        "alpha=" + Table::cell(min_alpha, 2) +
                        " accuracy=" + bench::percent_label(min_accuracy));
      checks.expect(max_accuracy <= 0.25 && max_alpha <= 0.25,
                    "lambda=" + std::to_string(lambda) +
                        ": peak at (alpha->0, accuracy->0), found alpha=" +
                        Table::cell(max_alpha, 2) + " accuracy=" +
                        bench::percent_label(max_accuracy));
    }
    std::cout << "\n";
  }
  return checks.finish();
}
