#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

namespace repl {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

std::size_t Socket::read_some(unsigned char* data, std::size_t size) {
  for (;;) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    sys_fail("socket read failed");
  }
}

bool Socket::read_exact(unsigned char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const std::size_t n = read_some(data + got, size - got);
    if (n == 0) {
      if (got == 0) return false;
      throw std::runtime_error("socket closed mid-read (" +
                               std::to_string(got) + " of " +
                               std::to_string(size) + " bytes)");
    }
    got += n;
  }
  return true;
}

void Socket::write_all(const unsigned char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a vanished peer must surface as an EPIPE error on
    // this connection's thread, never as a process-wide SIGPIPE.
    const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      sys_fail("socket write failed");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void Socket::shutdown_write() { ::shutdown(fd_, SHUT_WR); }

void Socket::shutdown_both() { ::shutdown(fd_, SHUT_RDWR); }

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener Listener::tcp(const std::string& host, int port) {
  Listener listener;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("cannot create TCP socket");
  listener.sock_ = Socket(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("bad listen address: " + host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    sys_fail("cannot bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, SOMAXCONN) != 0) sys_fail("listen failed");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    sys_fail("getsockname failed");
  }
  listener.port_ = static_cast<int>(ntohs(bound.sin_port));
  listener.describe_ = "tcp:" + host + ":" + std::to_string(listener.port_);
  return listener;
}

Listener Listener::unix_domain(const std::string& path) {
  Listener listener;
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("cannot create unix socket");
  listener.sock_ = Socket(fd);
  listener.unix_path_ = path;
  {
    std::error_code ec;
    std::filesystem::remove(path, ec);  // stale socket from a crashed run
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    sys_fail("cannot bind unix socket " + path);
  }
  if (::listen(fd, SOMAXCONN) != 0) sys_fail("listen failed");
  listener.describe_ = "unix:" + path;
  return listener;
}

Listener::~Listener() {
  if (!unix_path_.empty() && sock_.valid()) {
    std::error_code ec;
    std::filesystem::remove(unix_path_, ec);
  }
}

Socket Listener::accept() {
  for (;;) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    // EINVAL/others after shutdown(): the orderly "listener closed"
    // signal for the accept loop.
    return Socket();
  }
}

void Listener::shutdown() { sock_.shutdown_both(); }

Socket connect_tcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("cannot create TCP socket");
  Socket sock(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("bad connect address: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    sys_fail("cannot connect to " + host + ":" + std::to_string(port));
  }
  return sock;
}

Socket connect_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("cannot create unix socket");
  Socket sock(fd);
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    sys_fail("cannot connect to unix socket " + path);
  }
  return sock;
}

}  // namespace repl
