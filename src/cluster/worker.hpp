// Cluster worker runtime: one partition's slice of a distributed serve.
//
// A worker is a StreamingEngine wrapped in the two wire protocols the
// cluster composes from existing parts. Its *event plane* is a
// NetIngestServer on a unix-domain socket — the coordinator is just an
// event-stream client, and the handshake ACK already tells a
// reconnecting coordinator how many partition-local events a restored
// worker holds. Its *control plane* is one outbound connection to the
// coordinator speaking cluster/control.hpp: hello (identity + resume
// position), per-batch progress, checkpoint notices, and — when the
// slice drains — the id-sorted per-object finals and a summary for the
// cross-partition reduce.
//
// Correctness guards:
//   * every ingested event is checked against partition_of(): an event
//     routed to the wrong worker fails the serve loudly instead of
//     silently double-counting an object;
//   * checkpoints are the ordinary engine snapshots plus a partition
//     manifest (checkpoint/partition_manifest.hpp) binding the cut to
//     (partition id, partition count, partition-function version, server
//     count, base seed) — resuming the wrong slice fails loudly;
//   * restore validates the manifest before the engine touches the
//     snapshot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/types.hpp"
#include "engine/engine.hpp"

namespace repl {

struct ClusterWorkerOptions {
  /// This worker's slice: objects with partition_of(id, num_partitions)
  /// == partition_id.
  std::uint32_t partition_id = 0;
  std::uint32_t num_partitions = 1;

  /// Unix-domain socket this worker listens on for the coordinator's
  /// event stream.
  std::string event_socket;
  /// Unix-domain socket of the coordinator's control listener; the
  /// worker dials it once at startup.
  std::string control_socket;

  /// Periodic crash-safe checkpoints: engine snapshot at snapshot_path
  /// (+ ".pman" manifest) every checkpoint_every partition-local events;
  /// 0 disables.
  std::string snapshot_path;
  std::uint64_t checkpoint_every = 0;
  /// Restore from this snapshot (manifest-validated) instead of starting
  /// fresh; the engine's resume position flows to the coordinator via
  /// both the event-plane ACK and the control hello.
  std::string resume_from;

  SystemConfig config;
  EngineOptions engine;
  /// Component specs (empty on resume = self-construct from snapshot).
  std::string policy_spec;
  std::string predictor_spec;

  /// Events per engine batch on the ingest side.
  std::size_t batch_events = std::size_t{1} << 16;

  /// Periodic engine stats lines (seconds; 0 disables). Emitted through
  /// the structured logger, component "engine".
  double stats_every = 0.0;
};

/// Runs one worker to completion: build/restore the engine, say hello,
/// serve the event socket until the coordinator finishes its stream,
/// then ship finals + summary over the control socket. Returns the
/// partition's aggregates (what the summary carried). Throws on any
/// protocol, validation, or transport failure — the coordinator treats
/// a dead worker uniformly, however it died.
EngineMetrics run_cluster_worker(const ClusterWorkerOptions& options);

}  // namespace repl
