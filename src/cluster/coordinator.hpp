// Cluster coordinator: distributed partitioned serving over worker
// processes, with a deterministic cross-partition reduce.
//
// The coordinator owns the event source (a finished event log) and the
// partition map (cluster/partition.hpp). It fork/execs one worker
// process per partition, routes each event to its partition's worker
// over the existing v2 event wire (each worker is a NetIngestServer on
// a unix-domain socket; the coordinator is one reconnecting event-stream
// client per worker), and listens on one control socket where workers
// report progress, checkpoints, and — when their slice drains — the
// id-sorted per-object finals plus a summary (cluster/control.hpp).
//
// Parity contract: the final aggregates are bit-identical to a
// single-process StreamingEngine serve of the same log, at every
// (partitions × shards × threads) geometry. The mechanism is shared
// code, not luck: each worker's finals are the exact id-sorted records
// its own finish() reduced, partitions are disjoint in object space, so
// the coordinator's ascending-id k-way merge reproduces the global
// id-sorted sweep, and reduce_object_finals — the same function
// finish() reduces through — accumulates it in the same floating-point
// order.
//
// Failure model: a worker death surfaces as a transport error on its
// event stream (or a control-stream EOF without a summary). The
// coordinator reaps the process, respawns it — from its per-partition
// checkpoint when one exists, fresh otherwise — reconnects with capped
// exponential backoff, replays the partition's tail from the worker's
// reported resume offset by re-reading the source log, and continues.
// Aggregates after any number of kill/respawn cycles are bit-identical
// to an uninterrupted run, because the resume offset counts exactly the
// events the snapshot covers and everything after is replayed.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/control.hpp"
#include "core/types.hpp"
#include "engine/engine.hpp"
#include "net/client.hpp"
#include "net/socket.hpp"
#include "obs/federation.hpp"

namespace repl {

class JsonWriter;

namespace obs {
class MetricsRegistry;
}

struct ClusterCoordinatorOptions {
  /// Worker processes / object-space partitions. 1 is legal (and useful
  /// as the degenerate parity case).
  std::uint32_t num_partitions = 2;
  /// Executable spawned per worker; must accept the repl_cluster
  /// --role=worker flag set (examples/repl_cluster.cpp).
  std::string worker_binary;
  /// Directory for the cluster's unix-domain sockets and per-partition
  /// checkpoints; must exist.
  std::string socket_dir;

  SystemConfig config;
  std::string policy_spec = "drwp(alpha=0.3)";
  std::string predictor_spec = "last_gap";
  std::uint64_t base_seed = 0x5eed5eed5eed5eedULL;
  /// Per-worker engine geometry (free for parity — the contract holds at
  /// any shard/thread count).
  std::size_t worker_shards = 64;
  int worker_threads = 0;
  bool compute_lower_bound = true;
  bool compress_checkpoints = false;

  /// Events per wire block / engine batch.
  std::size_t batch_events = std::size_t{1} << 16;
  /// Per-partition checkpoint cadence, in partition-local events;
  /// 0 disables (a killed worker then replays its whole slice).
  std::uint64_t checkpoint_every = 0;
  /// Respawn budget per partition; exhausting it propagates the last
  /// transport error out of serve_log.
  std::size_t max_respawns = 3;

  /// repl_cluster_* series land here; null = coordinator-private registry.
  obs::MetricsRegistry* metrics = nullptr;
  /// Backoff schedule for (re)connecting to worker event sockets.
  ReconnectPolicy reconnect;

  /// Directory for per-process trace part files. Non-empty: every worker
  /// incarnation gets --trace-out=<dir>/trace.p<P>.i<N>.jsonl, the
  /// coordinator mints a root span per routed batch and announces it to
  /// every worker with a wire trace frame. The coordinator's own Tracer
  /// is the caller's to start (examples/repl_cluster does). Empty
  /// disables the worker flags.
  std::string trace_dir;
  /// --log-level spec forwarded to workers; empty keeps their default.
  std::string log_spec;
  /// Forward --log-json to workers (JSON log lines on stderr).
  bool log_json = false;
  /// Coordinator progress line cadence in seconds (0 disables); also
  /// forwarded to workers as --stats-every.
  double stats_every = 0.0;

  /// Test hook: invoked after each partition-p event is routed (or
  /// skipped as already-ingested) with the running partition-local
  /// count. Kill-matrix tests SIGKILL workers from here at exact cuts.
  std::function<void(std::uint32_t partition, std::uint64_t routed)>
      on_progress;
};

struct ClusterServeResult {
  /// The cross-partition reduce — bit-identical to single-process serve.
  EngineMetrics metrics;
  /// Each worker's own summary, indexed by partition.
  std::vector<ControlSummary> summaries;
  /// Worker respawns across the serve (0 on an undisturbed run).
  std::size_t respawns = 0;
};

class ClusterCoordinator {
 public:
  explicit ClusterCoordinator(ClusterCoordinatorOptions options);
  ~ClusterCoordinator();

  ClusterCoordinator(const ClusterCoordinator&) = delete;
  ClusterCoordinator& operator=(const ClusterCoordinator&) = delete;

  /// Serves one event log across the cluster to completion. One-shot.
  ClusterServeResult serve_log(const std::string& log_path);

  /// OS pid of partition p's current worker (-1 before spawn). For
  /// kill/respawn tests.
  int worker_pid(std::uint32_t partition) const;

  /// The cluster's file layout under socket_dir.
  std::string event_socket_path(std::uint32_t partition) const;
  std::string control_socket_path() const;
  std::string snapshot_path(std::uint32_t partition) const;
  /// Part file for one incarnation of one worker (under trace_dir).
  std::string trace_part_path(std::uint32_t partition,
                              std::size_t incarnation) const;
  /// Every worker part file this serve may have produced (one per
  /// incarnation per partition; the coordinator's own part is the
  /// caller's Tracer path). Some may not exist — a SIGKILLed worker
  /// might never have flushed; merge_trace_parts skips those.
  std::vector<std::string> trace_parts() const;

  /// Registry the repl_cluster_* series land in.
  obs::MetricsRegistry& registry() const { return *registry_; }

  /// The federated metrics view: every worker's latest control-plane
  /// snapshot, `partition`-labeled, plus cluster-derived gauges
  /// (per-partition admitted lag, slowest-partition watermark). Wire
  /// into MetricsHttpServer::set_extra_samples for a one-stop cluster
  /// /metrics.
  std::vector<obs::Sample> federated_samples() const;

  /// Latest federated value of an unlabeled counter for one partition
  /// (0 when the worker has not reported it). For tests and probes.
  std::uint64_t federated_counter(std::uint32_t partition,
                                  const std::string& name) const;

  /// Appends per-partition health members (state, respawns, progress,
  /// checkpoint age) to an open JSON object — the coordinator /healthz
  /// body. Thread-safe.
  void health_json(JsonWriter& w) const;

 private:
  struct Partition;
  struct Instruments;

  void start_control_plane();
  void stop_control_plane();
  void control_accept_loop();
  void control_connection_main(Socket sock, std::uint64_t epoch);
  void spawn_worker(std::uint32_t p);
  /// SIGKILL + reap; idempotent, no-op when already reaped.
  void kill_worker(std::uint32_t p);
  /// kill + respawn + reconnect; throws once the respawn budget is gone.
  void respawn_worker(std::uint32_t p);
  /// Re-reads the log and re-sends partition-p events in positions
  /// (resume offset, through] that the respawned worker is missing.
  void catch_up(std::uint32_t p, std::uint64_t through);
  /// respawn + catch_up until both succeed (budget-capped).
  void recover(std::uint32_t p, std::uint64_t through);
  void route_event(std::uint32_t p, const LogEvent& event);
  void finish_partition(std::uint32_t p);
  void await_summary(std::uint32_t p);

  ClusterCoordinatorOptions options_;
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_ = nullptr;
  std::unique_ptr<Instruments> inst_;
  obs::FederatedMetrics fed_;
  std::vector<std::unique_ptr<Partition>> parts_;
  std::string log_path_;
  bool served_ = false;
  std::size_t total_respawns_ = 0;
  std::chrono::steady_clock::time_point serve_start_{};

  /// Control plane: one listener, one accept thread, one reader thread
  /// per worker control connection. Per-partition control state lives in
  /// Partition, guarded by ctl_mu_; ctl_cv_ signals summary/failure.
  std::unique_ptr<Listener> control_listener_;
  std::thread accept_thread_;
  std::vector<std::thread> control_threads_;
  mutable std::mutex ctl_mu_;
  std::condition_variable ctl_cv_;
  std::uint64_t next_epoch_ = 0;
  bool control_stopping_ = false;
};

}  // namespace repl
