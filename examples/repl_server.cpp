// Live serving front-end: run the streaming engine as an actual server.
//
// Listens on TCP and/or a unix-domain socket for client event streams
// (the v2 block-framed wire format — repl_client streams an existing
// log, or pipe stream_gen output through one), merges all connections
// into one time-ordered stream, and serves it online with periodic
// crash-safe checkpoints. Prints "READY ..." with the bound addresses
// once accepting (TCP port 0 binds an ephemeral port), and the same
// aggregate metrics table as engine_serve when the serve ends.
//
//   ./build/examples/repl_server --listen=9410 --servers=10
//   ./build/examples/repl_server --unix=/tmp/repl.sock --metrics-port=9411
//       --checkpoint-every=200000 --checkpoint-path=live.ckpt
//   ./build/examples/repl_server --listen=9410 --resume-from=live.ckpt
//
// The serve ends once at least --min-clients connections have come and
// gone and every queue has drained; aggregates are then finalized and
// printed. After a crash, --resume-from restores the snapshot and
// reconnecting clients are told (in the handshake ACK) how many events
// to skip, so the resumed session continues the same logical stream.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "api/experiment.hpp"
#include "engine/engine.hpp"
#include "net/ingest_server.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace repl;

int main(int argc, char** argv) {
  CliParser cli("repl_server",
                "serve live network event streams through the engine");
  cli.add_flag("listen", "-1",
               "TCP port to accept event streams on (0 = ephemeral, "
               "-1 = TCP disabled)");
  cli.add_flag("host", "127.0.0.1", "TCP listen address");
  cli.add_flag("unix", "", "unix-domain socket path to listen on");
  cli.add_flag("metrics-port", "-1",
               "HTTP metrics/health port (GET /metrics, /healthz; "
               "0 = ephemeral, -1 = disabled)");
  cli.add_flag("servers", "10", "servers in the replicated system");
  cli.add_flag("lambda", "10", "transfer cost λ");
  cli.add_flag("shards", "64", "object-table shards");
  cli.add_flag("threads", "0", "worker threads (0 = all hardware threads)");
  cli.add_flag("alpha", "0.3", "DRWP α (used when --policy is not given)");
  cli.add_flag("policy", "",
               "policy component spec (default: drwp(alpha=<alpha>); on "
               "--resume-from, the snapshot's recorded spec)");
  cli.add_flag("predictor", "",
               "predictor component spec (default: last_gap; on "
               "--resume-from, the snapshot's spec)");
  cli.add_flag("min-clients", "1",
               "serve until at least this many clients have connected and "
               "all of them have finished");
  cli.add_flag("batch-events", "65536", "events per engine batch");
  cli.add_flag("max-queue", "65536", "per-connection queue bound (events)");
  cli.add_flag("max-total-queue", "1048576",
               "global queue bound across connections (events)");
  cli.add_flag("max-events-per-sec", "0",
               "per-connection ingest rate cap, events/second (token "
               "bucket with one second of burst; 0 = unlimited)");
  cli.add_bool_flag("compress", "write snapshots with compressed records");
  cli.add_flag("checkpoint-every", "0",
               "snapshot the engine every N events (0 = never)");
  cli.add_flag("checkpoint-path", "", "snapshot destination");
  cli.add_flag("resume-from", "",
               "restore this snapshot; reconnecting clients are told to "
               "skip the already-ingested prefix");
  cli.add_flag("stats-every", "0",
               "print a one-line serve report every N seconds (0 = off)");
  cli.add_flag("trace-out", "",
               "write this process's spans as trace_event JSONL here "
               "(flushed at each checkpoint and at exit)");
  cli.add_flag("log-level", "",
               "structured-log spec, e.g. 'info' or 'warn,net=debug' "
               "(default: warn)");
  cli.add_bool_flag("log-json", "emit log lines as JSON objects");
  if (!cli.parse(argc, argv)) return 0;

  if (!cli.get_string("log-level").empty()) {
    obs::Logger::global().configure(cli.get_string("log-level"));
  }
  if (cli.get_bool("log-json")) obs::Logger::global().set_json(true);
  if (!cli.get_string("trace-out").empty()) {
    obs::Tracer::global().start(cli.get_string("trace-out"), "repl_server");
  }

  const int servers = static_cast<int>(cli.get_size_t("servers", 1, 4096));

  SystemConfig config;
  config.num_servers = servers;
  config.transfer_cost = cli.get_double("lambda");

  EngineOptions options;
  options.num_shards = cli.get_size_t("shards", 1, 1 << 20);
  options.num_threads = static_cast<int>(cli.get_size_t("threads", 0, 4096));
  options.compress_checkpoints = cli.get_bool("compress");

  // One registry for the whole process: the engine's pipeline telemetry
  // and the net server's ingest counters land in the same store, so the
  // --metrics-port endpoint scrapes everything in one GET. Declared
  // before the engine so it outlives it.
  obs::MetricsRegistry registry;
  options.metrics = &registry;

  const std::string resume_from = cli.get_string("resume-from");
  EngineBuilder builder;
  builder.config(config).options(options);
  std::unique_ptr<StreamingEngine> engine;
  try {
    if (!cli.get_string("policy").empty()) {
      builder.policy(cli.get_string("policy"));
    } else if (resume_from.empty()) {
      builder.policy("drwp(alpha=" + cli.get_string("alpha") + ")");
    }
    if (!cli.get_string("predictor").empty()) {
      builder.predictor(cli.get_string("predictor"));
    } else if (resume_from.empty()) {
      builder.predictor("last_gap");
    }
    engine = resume_from.empty() ? builder.build() : builder.restore(resume_from);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
  if (!resume_from.empty()) {
    std::cout << "resumed " << resume_from << ": " << engine->object_count()
              << " objects at event offset " << engine->resume_position()
              << "\n";
  }
  std::cout << "policy: " << engine->options().policy_spec
            << "\npredictor: " << engine->options().predictor_spec << "\n";

  NetServerOptions net;
  net.tcp_host = cli.get_string("host");
  net.tcp_port = static_cast<int>(cli.get_int("listen"));
  net.unix_path = cli.get_string("unix");
  net.metrics_port = static_cast<int>(cli.get_int("metrics-port"));
  net.batch_events = cli.get_size_t("batch-events", 1);
  net.max_connection_events = cli.get_size_t("max-queue", 1);
  net.max_total_events = cli.get_size_t("max-total-queue", 1);
  net.max_events_per_sec = cli.get_double("max-events-per-sec");
  net.min_connections = cli.get_size_t("min-clients", 1);
  net.metrics = &registry;

  ServeOptions serve_options;
  serve_options.batch_events = net.batch_events;
  serve_options.checkpoint_every = cli.get_uint64("checkpoint-every");
  serve_options.checkpoint_path = cli.get_string("checkpoint-path");
  serve_options.async_ingest = false;  // the net source decodes off-thread
  serve_options.stats_every = cli.get_double("stats-every");

  EngineMetrics metrics;
  try {
    NetIngestServer server(net);
    NetIngestSource source(server,
                           static_cast<std::uint32_t>(servers));
    serve_options.on_checkpoint = [&server, &engine] {
      server.note_checkpoint(engine->stats().events_ingested);
    };
    // Ingest spans adopt the newest trace context any client announced
    // on the wire, so a tracing client's timeline reaches into ours.
    serve_options.trace_parent = [&server] { return server.latest_trace(); };
    serve_options.stats_extra = [&server] {
      return "queued=" + std::to_string(server.events_queued()) + " conns=" +
             std::to_string(server.connections_total()) + "/" +
             std::to_string(server.connections_failed()) + "f";
    };
    // Attach now (serve()'s own attach is a no-op on an attached source)
    // so the READY line can carry the kernel-assigned ports before
    // serve() blocks for the first batch.
    source.attach(*engine);
    std::cout << "READY";
    if (server.tcp_port() >= 0) {
      std::cout << " tcp=" << net.tcp_host << ":" << server.tcp_port();
    }
    if (!net.unix_path.empty()) std::cout << " unix=" << net.unix_path;
    if (server.metrics_port() >= 0) {
      std::cout << " metrics=" << net.tcp_host << ":"
                << server.metrics_port();
    }
    std::cout << std::endl;  // flushed: drivers wait for this line
    metrics = engine->serve(source, serve_options);
    obs::Tracer::global().stop();
    std::cout << "clients: " << server.connections_total() << " total, "
              << server.connections_failed() << " failed\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }

  const EngineStats& stats = engine->stats();
  const double wall = stats.ingest_seconds + stats.finish_seconds;
  Table table({"metric", "value"});
  table.add_row({"objects served", Table::cell(metrics.objects)});
  table.add_row({"events served", Table::cell(metrics.events)});
  table.add_row({"local serves", Table::cell(metrics.num_local)});
  table.add_row({"transfers", Table::cell(metrics.num_transfers)});
  table.add_row({"online cost", Table::cell(metrics.online_cost, 1)});
  table.add_row({"OPTL lower bound", Table::cell(metrics.lower_bound, 1)});
  table.add_row({"cost / OPTL", Table::cell(metrics.ratio(), 4)});
  if (stats.checkpoints_written > 0) {
    table.add_row({"checkpoints", Table::cell(stats.checkpoints_written)});
  }
  table.add_row({"wall seconds", Table::cell(wall, 3)});
  std::cout << table.str();
  return EXIT_SUCCESS;
}
