// Experiment E9 — engine microbenchmarks (google-benchmark): simulator
// throughput in requests/second across system sizes and policies, DP
// solver scaling in trace length and active-server count, and adversary
// generation speed.
//
// Besides the human console table, every run appends nothing and writes a
// fresh machine-readable BENCH_perf.json (per-benchmark events/sec, wall
// time, thread count, plus the configure-time git describe) so the bench
// trajectory can accumulate across commits.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "util/json.hpp"

#ifndef REPL_GIT_DESCRIBE
#define REPL_GIT_DESCRIBE "unknown"
#endif

#include "adversary/lower_bound_adversary.hpp"
#include "baselines/wang2021.hpp"
#include "core/adaptive_drwp.hpp"
#include "core/drwp.hpp"
#include "core/simulator.hpp"
#include "extensions/multi_object.hpp"
#include "offline/opt_dp.hpp"
#include "offline/opt_lower_bound.hpp"
#include "predictor/noisy.hpp"
#include "predictor/oracle.hpp"
#include "run/parallel_runner.hpp"
#include "trace/generators.hpp"

namespace {

using namespace repl;

Trace bench_trace(int num_servers, std::size_t approx_requests,
                  std::uint64_t seed) {
  const double horizon = 100000.0;
  const double rate = static_cast<double>(approx_requests) / horizon;
  return generate_poisson_trace(num_servers, rate, horizon,
                                ServerAssignment{}, seed);
}

void BM_SimulatorDrwp(benchmark::State& state) {
  const int servers = static_cast<int>(state.range(0));
  const Trace trace = bench_trace(servers, 20000, 1);
  SystemConfig config;
  config.num_servers = servers;
  config.transfer_cost = 25.0;
  OraclePredictor predictor(trace);
  SimulationOptions lean;
  lean.record_events = false;
  const Simulator simulator(config, lean);
  for (auto _ : state) {
    DrwpPolicy policy(0.3);
    benchmark::DoNotOptimize(
        simulator.run(policy, trace, predictor).total_cost());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_SimulatorDrwp)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_SimulatorAdaptive(benchmark::State& state) {
  const Trace trace = bench_trace(16, 20000, 2);
  SystemConfig config;
  config.num_servers = 16;
  config.transfer_cost = 25.0;
  AccuracyPredictor predictor(trace, 0.7, 3);
  SimulationOptions lean;
  lean.record_events = false;
  const Simulator simulator(config, lean);
  for (auto _ : state) {
    AdaptiveDrwpPolicy policy(0.3, AdaptiveDrwpPolicy::Options{0.1, 100});
    benchmark::DoNotOptimize(
        simulator.run(policy, trace, predictor).total_cost());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_SimulatorAdaptive);

void BM_SimulatorWang(benchmark::State& state) {
  const Trace trace = bench_trace(16, 20000, 4);
  SystemConfig config;
  config.num_servers = 16;
  config.transfer_cost = 25.0;
  OraclePredictor predictor(trace);
  SimulationOptions lean;
  lean.record_events = false;
  const Simulator simulator(config, lean);
  for (auto _ : state) {
    Wang2021Policy policy;
    benchmark::DoNotOptimize(
        simulator.run(policy, trace, predictor).total_cost());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_SimulatorWang);

void BM_SimulatorEventRecording(benchmark::State& state) {
  const bool record = state.range(0) != 0;
  const Trace trace = bench_trace(16, 20000, 5);
  SystemConfig config;
  config.num_servers = 16;
  config.transfer_cost = 25.0;
  OraclePredictor predictor(trace);
  SimulationOptions options;
  options.record_events = record;
  const Simulator simulator(config, options);
  for (auto _ : state) {
    DrwpPolicy policy(0.3);
    benchmark::DoNotOptimize(
        simulator.run(policy, trace, predictor).total_cost());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_SimulatorEventRecording)->Arg(0)->Arg(1);

void BM_OptimalDpByRequests(benchmark::State& state) {
  const auto requests = static_cast<std::size_t>(state.range(0));
  const Trace trace = bench_trace(8, requests, 6);
  SystemConfig config;
  config.num_servers = 8;
  config.transfer_cost = 25.0;
  const OptimalDpSolver solver(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_OptimalDpByRequests)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_OptimalDpByActiveServers(benchmark::State& state) {
  const int servers = static_cast<int>(state.range(0));
  const Trace trace = bench_trace(servers, 4000, 7);
  SystemConfig config;
  config.num_servers = servers;
  config.transfer_cost = 25.0;
  const OptimalDpSolver solver(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(trace));
  }
}
BENCHMARK(BM_OptimalDpByActiveServers)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_OptLowerBound(benchmark::State& state) {
  const Trace trace = bench_trace(16, 20000, 8);
  SystemConfig config;
  config.num_servers = 16;
  config.transfer_cost = 25.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt_lower_bound(config, trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_OptLowerBound);

void BM_AdversaryGenerate(benchmark::State& state) {
  LowerBoundAdversary::Options options;
  options.lambda = 10.0;
  options.epsilon = 1e-3;
  options.num_requests = static_cast<int>(state.range(0));
  const LowerBoundAdversary adversary(options);
  const DrwpPolicy prototype(0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adversary.generate(prototype).trace.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AdversaryGenerate)->Arg(100)->Arg(1000);

const MultiObjectWorkload& runner_workload() {
  static const MultiObjectWorkload workload = [] {
    MultiObjectConfig config;
    config.num_objects = 2000;
    config.num_servers = 10;
    config.horizon = 86400.0;
    config.request_rate = 20.0 * 2000.0 / config.horizon;
    return generate_multi_object_workload(config, 9);
  }();
  return workload;
}

/// Multi-object engine throughput by worker count (Arg = threads; 1 is
/// the serial reference path).
void BM_ParallelRunner(benchmark::State& state) {
  const MultiObjectWorkload& workload = runner_workload();
  SystemConfig config;
  config.num_servers = 10;
  config.transfer_cost = 100.0;
  RunnerOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  options.compute_opt = false;
  options.simulation.record_events = false;
  const ParallelRunner runner(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        runner
            .run(
                workload, config,
                [](const ObjectContext&) -> PolicyPtr {
                  return std::make_unique<DrwpPolicy>(0.3);
                },
                [](const ObjectContext& context) -> PredictorPtr {
                  return std::make_unique<AccuracyPredictor>(
                      *context.trace, 0.9, context.seed);
                })
            .online_cost);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(runner.last_stats().requests_simulated));
}
BENCHMARK(BM_ParallelRunner)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_TraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench_trace(16, static_cast<std::size_t>(state.range(0)),
                    static_cast<std::uint64_t>(state.iterations()))
            .size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(10000);

/// ConsoleReporter that additionally collects the per-iteration runs so
/// main() can dump them as JSON. Only fields stable across the
/// google-benchmark versions we build against (1.6–1.8) are touched.
class TrajectoryReporter final : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.run_type == Run::RT_Iteration) runs_.push_back(run);
    }
    benchmark::ConsoleReporter::ReportRuns(report);
  }

  const std::vector<Run>& runs() const { return runs_; }

 private:
  std::vector<Run> runs_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  TrajectoryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  repl::JsonWriter json;
  json.begin_object();
  json.key("bench").value("bench_perf");
  json.key("git_describe").value(REPL_GIT_DESCRIBE);
  json.key("hardware_threads")
      .value(static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  json.key("benchmarks").begin_array();
  for (const auto& run : reporter.runs()) {
    const double wall = run.real_accumulated_time;
    const auto items = run.counters.find("items_per_second");
    json.begin_object();
    json.key("name").value(run.benchmark_name());
    json.key("iterations").value(static_cast<std::int64_t>(run.iterations));
    json.key("threads").value(static_cast<std::int64_t>(run.threads));
    json.key("wall_seconds").value(wall);
    json.key("real_seconds_per_iter")
        .value(run.iterations > 0
                   ? wall / static_cast<double>(run.iterations)
                   : wall);
    json.key("events_per_second")
        .value(items != run.counters.end()
                   ? static_cast<double>(items->second)
                   : 0.0);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  const char* out_path = "BENCH_perf.json";
  std::ofstream out(out_path);
  out << json.str() << "\n";
  out.flush();
  if (!out) {
    std::cerr << "bench_perf: failed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << " (" << reporter.runs().size()
            << " benchmarks)\n";
  benchmark::Shutdown();
  return 0;
}
