// Experiment E3 — Figure 5 of the paper: the tight robustness instance.
// Two servers, same-server gaps of αλ + ε, always-"beyond" predictions
// (all wrong). The online-to-optimal ratio must approach 1 + 1/α from
// below as m grows and ε shrinks.
#include <iostream>

#include "analysis/ratio.hpp"
#include "bench_util.hpp"
#include "core/drwp.hpp"
#include "offline/opt_dp.hpp"
#include "predictor/fixed.hpp"
#include "trace/paper_instances.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace repl;
  CliParser cli("bench_fig5_robustness",
                "Figure 5: ratio -> 1 + 1/alpha on the tight instance");
  cli.add_flag("lambda", "100", "transfer cost");
  if (!cli.parse(argc, argv)) return 0;
  const double lambda = cli.get_double("lambda");

  bench::ShapeChecks checks;
  SystemConfig config;
  config.num_servers = 2;
  config.transfer_cost = lambda;

  Table table({"alpha", "m", "eps/(alpha*lambda)", "ratio", "bound 1+1/a"});
  for (double alpha : {0.2, 0.5, 1.0}) {
    double last_ratio = 0.0;
    for (int m : {10, 50, 200, 1000}) {
      for (double eps_frac : {1e-1, 1e-3}) {
        const double eps = alpha * lambda * eps_frac;
        const Trace trace = make_figure5_trace(alpha, lambda, m, eps);
        DrwpPolicy policy(alpha);
        FixedPredictor beyond = always_beyond_predictor();
        const RatioReport report =
            evaluate_policy(config, policy, trace, beyond);
        table.add_row({Table::cell(alpha, 2), Table::cell(m),
                       Table::cell(eps_frac, 4),
                       Table::cell(report.ratio, 5),
                       Table::cell(robustness_bound(alpha), 5)});
        if (eps_frac == 1e-3) last_ratio = report.ratio;
        checks.expect(report.ratio <= robustness_bound(alpha) + 1e-9,
                      "ratio within bound at alpha=" +
                          Table::cell(alpha, 2) + " m=" + Table::cell(m));
      }
    }
    checks.expect(last_ratio > robustness_bound(alpha) * 0.99,
                  "ratio converges to 1+1/alpha at alpha=" +
                      Table::cell(alpha, 2) + " (reached " +
                      Table::cell(last_ratio, 4) + ")");
  }
  std::cout << table.str() << "\n";
  return checks.finish();
}
