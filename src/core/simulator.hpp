// Drives a ReplicationPolicy over a trace, integrating storage/transfer
// costs and validating the model invariants on every event:
//
//  * at least one copy exists at all times;
//  * transfers originate at copy holders;
//  * a special copy is the only copy when marked (Proposition 1);
//  * event times are non-decreasing.
//
// The full event log (serve records, copy segments, transfers) is
// returned so the analysis module can classify requests (Section 4.1)
// and verify the Proposition-2 cost allocation identity.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "checkpoint/state_io.hpp"
#include "core/policy.hpp"
#include "core/types.hpp"
#include "predictor/predictor.hpp"
#include "trace/trace.hpp"

namespace repl {

/// One entry per request, in trace order.
struct ServeRecord {
  std::size_t index = 0;
  int server = -1;
  double time = 0.0;
  bool local = false;
  int source = -1;
  bool source_special = false;
  double special_since = std::numeric_limits<double>::infinity();
  double intended_duration = 0.0;
  Prediction prediction;
};

/// A maximal interval during which one server continuously held a copy.
/// `special_from` is +inf if the copy never became special; `end` is +inf
/// if the copy was never dropped (the final surviving copy).
struct CopySegment {
  int server = -1;
  double begin = 0.0;
  double special_from = std::numeric_limits<double>::infinity();
  double end = std::numeric_limits<double>::infinity();
};

struct TransferRecord {
  int src = -1;
  int dst = -1;
  double time = 0.0;
};

struct SimulationResult {
  SystemConfig config;
  double horizon = 0.0;
  /// Storage cost integrated over [0, horizon], weighted by the
  /// per-server storage rates.
  double storage_cost = 0.0;
  /// transfer_cost = λ × number of transfers.
  double transfer_cost = 0.0;
  double total_cost() const { return storage_cost + transfer_cost; }

  std::size_t num_local = 0;
  std::size_t num_transfers = 0;
  /// Intended duration set for the initial copy at time 0 (from the r0
  /// prediction); NaN for policies that do not use TTLs.
  double initial_intended_duration =
      std::numeric_limits<double>::quiet_NaN();
  /// The prediction issued for the dummy request r0.
  Prediction initial_prediction;

  std::vector<ServeRecord> serves;
  std::vector<CopySegment> segments;
  std::vector<TransferRecord> transfers;

  std::string policy_name;
  std::string predictor_name;
};

struct SimulationOptions {
  /// Cost horizon; negative means "the final request time" (the paper's
  /// convention of counting cost up to r_m only).
  double horizon = -1.0;
  /// Keep per-event logs (serves/segments/transfers). Benches on long
  /// traces may disable to save memory; analysis requires them.
  bool record_events = true;
};

/// Incremental form of the simulator: requests are fed one at a time via
/// step(), so a driver does not need the whole trace up front (the
/// streaming engine serves millions of interleaved objects this way).
/// Simulator::run() is a thin loop over this class, which makes the two
/// paths bit-identical by construction.
///
/// Lifetime: the config, policy, and predictor must outlive the
/// OnlineSimulation; reset() is called on both components here.
/// step() times must be strictly increasing and strictly positive (the
/// Trace invariants). finish() may be called once; it resolves a negative
/// `options.horizon` to the last step() time, flushes pending expiries,
/// and returns the completed result.
class OnlineSimulation {
 public:
  OnlineSimulation(const SystemConfig& config,
                   const SimulationOptions& options,
                   ReplicationPolicy& policy, Predictor& predictor);
  ~OnlineSimulation();
  OnlineSimulation(OnlineSimulation&&) noexcept;
  OnlineSimulation& operator=(OnlineSimulation&&) noexcept;

  /// Serves the next request, arriving at `server` at `time`.
  void step(int server, double time);

  /// Pre-sizes the serve log when the request count is known up front.
  void reserve(std::size_t num_requests);

  /// Requests served so far.
  std::size_t steps() const;

  /// Time of the last step; 0 before the first.
  double last_time() const;

  /// Checkpoint protocol (see checkpoint/snapshot.hpp). save_state
  /// serializes everything the remaining stream needs for bit-identical
  /// costs — the request clock, the cost accumulators, and the policy's
  /// and predictor's own state (delegated) — but NOT the per-event
  /// observability logs (serves/segments/transfers), which can grow
  /// without bound on a long-running serve. A restored simulation
  /// therefore reports only post-restore events in those vectors, while
  /// every scalar of its final SimulationResult (costs, counts, horizon)
  /// is bit-identical to the uninterrupted run's.
  ///
  /// load_state must run on a freshly constructed simulation (no steps
  /// yet) whose config, options, policy type, and predictor type match
  /// the saved one; mismatches raise std::runtime_error.
  void save_state(StateWriter& out) const;
  void load_state(StateReader& in);

  SimulationResult finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

class Simulator {
 public:
  explicit Simulator(SystemConfig config, SimulationOptions options = {});

  /// Runs `policy` over `trace` with predictions from `predictor`.
  /// The policy is reset first; the predictor's reset() is called too.
  SimulationResult run(ReplicationPolicy& policy, const Trace& trace,
                       Predictor& predictor) const;

 private:
  SystemConfig config_;
  SimulationOptions options_;
};

/// Convenience wrapper: one-shot simulation.
SimulationResult simulate(const SystemConfig& config,
                          ReplicationPolicy& policy, const Trace& trace,
                          Predictor& predictor,
                          SimulationOptions options = {});

}  // namespace repl
