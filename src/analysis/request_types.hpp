// Request typing per Section 4.1 of the paper.
//
// Under Algorithm 1 every request falls into one of four types according
// to how it was served:
//   Type-1: by a transfer from a *regular* copy at another server;
//   Type-2: by a transfer from a *special* copy;
//   Type-3: by the local copy while *regular*;
//   Type-4: by the local copy while *special*.
#pragma once

#include <string>
#include <vector>

#include "core/simulator.hpp"

namespace repl {

enum class RequestType { kType1 = 1, kType2 = 2, kType3 = 3, kType4 = 4 };

std::string to_string(RequestType type);

/// Classifies one serve record.
RequestType classify_request(const ServeRecord& record);

/// Classifies all requests of a DRWP-family simulation.
std::vector<RequestType> classify_requests(const SimulationResult& result);

/// Counts per type (index 0 unused; 1..4 = Type-1..4).
struct TypeCounts {
  std::size_t counts[5] = {0, 0, 0, 0, 0};
  std::size_t total() const {
    return counts[1] + counts[2] + counts[3] + counts[4];
  }
};

TypeCounts count_request_types(const SimulationResult& result);

}  // namespace repl
