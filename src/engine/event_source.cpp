#include "engine/event_source.hpp"

#include "engine/engine.hpp"
#include "util/check.hpp"

namespace repl {

LogReplaySource::LogReplaySource(EventLogReader& reader,
                                 std::size_t batch_events, bool async_ingest)
    : reader_(reader), batch_events_(batch_events), async_(async_ingest) {
  REPL_REQUIRE(batch_events_ >= 1);
}

void LogReplaySource::attach(StreamingEngine& engine) {
  engine.bind_log(reader_.header());
  engine.seek_to_resume(reader_);
  if (async_) prefetch_.emplace(reader_, batch_events_);
}

std::uint64_t LogReplaySource::bytes_consumed() const {
  // Async: the prefetcher owns the reader's position; report the byte
  // mark of the last batch it handed over. Sync: the reader is ours.
  return prefetch_ ? prefetch_->bytes_delivered() : reader_.bytes_read();
}

bool LogReplaySource::next_batch(std::vector<LogEvent>& out) {
  if (error_ != nullptr) std::rethrow_exception(error_);
  if (prefetch_) return prefetch_->next(out);
  try {
    return reader_.read_batch(out, batch_events_) > 0;
  } catch (...) {
    // read_batch appends as it decodes, so `out` holds every event that
    // precedes the failure. Deliver that prefix now — identical to what
    // the prefetcher does — and surface the error on the next call.
    if (out.empty()) throw;
    error_ = std::current_exception();
    return true;
  }
}

}  // namespace repl
