// Byte-level serialization primitives for the checkpoint subsystem.
//
// StateWriter appends fixed-width little-endian fields to an in-memory
// byte buffer; StateReader decodes the same fields back with strict
// bounds checking. The encoding mirrors trace/event_log.cpp's
// conventions: integers little-endian, doubles as IEEE-754 binary64 bit
// patterns (NaN/inf round-trip exactly — several simulator fields use
// them as sentinels), strings length-prefixed.
//
// Every stateful component exposes
//
//   void save_state(StateWriter& out) const;
//   void load_state(StateReader& in);
//
// and the two must consume the byte stream symmetrically. Readers throw
// std::runtime_error with the reader's context label on any underflow or
// decode mismatch, so a corrupt snapshot fails with a diagnostic instead
// of undefined behaviour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace repl {

class StateWriter {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Length-prefixed (u32) UTF-8 bytes.
  void str(const std::string& v);

  const std::vector<unsigned char>& buffer() const { return buffer_; }
  std::size_t size() const { return buffer_.size(); }
  /// Moves the encoded bytes out, leaving the writer empty.
  std::vector<unsigned char> release() { return std::move(buffer_); }

 private:
  std::vector<unsigned char> buffer_;
};

/// Decodes a byte span produced by StateWriter. Does not own the bytes;
/// the span must outlive the reader. `context` names the payload (e.g.
/// "object 42") in error messages.
class StateReader {
 public:
  StateReader(const unsigned char* data, std::size_t size,
              std::string context)
      : data_(data), size_(size), context_(std::move(context)) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64();
  bool boolean();
  std::string str();

  std::size_t remaining() const { return size_ - pos_; }
  const std::string& context() const { return context_; }

  /// Fails unless the payload was consumed exactly — trailing bytes mean
  /// the snapshot and the code disagree about the format.
  void expect_end() const;

  /// Raises a decode failure with this reader's context attached.
  [[noreturn]] void fail(const std::string& what) const;

 private:
  const unsigned char* take(std::size_t n);

  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string context_;
};

}  // namespace repl
