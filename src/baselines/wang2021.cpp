#include "baselines/wang2021.hpp"

#include <cmath>

#include "util/check.hpp"

namespace repl {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

void Wang2021Policy::reset(const SystemConfig& config, const Prediction&,
                           EventSink& sink) {
  config.validate();
  config_ = config;
  home_ = 0;
  for (int s = 1; s < config.num_servers; ++s) {
    if (config.storage_rate(s) < config.storage_rate(home_)) home_ = s;
  }
  REPL_REQUIRE_MSG(config.initial_server == home_,
                   "Wang et al. assume the object starts at the "
                   "minimum-storage-rate server (server "
                       << home_ << ")");
  servers_.assign(static_cast<std::size_t>(config.num_servers),
                  ServerState{});
  copy_count_ = 0;
  now_ = 0.0;
  expiries_ = {};

  ServerState& s0 = servers_[static_cast<std::size_t>(home_)];
  s0.has_copy = true;
  copy_count_ = 1;
  sink.on_create(home_, 0.0);
  arm_expiry(home_, 0.0, sink);
}

void Wang2021Policy::arm_expiry(int server, double time, EventSink& sink) {
  ServerState& st = servers_[static_cast<std::size_t>(server)];
  REPL_CHECK(st.has_copy);
  st.expiry = time + ttl(server);
  ++st.generation;
  expiries_.push(HeapEntry{st.expiry, server, st.generation});
  sink.on_set_duration(server, time, ttl(server));
}

void Wang2021Policy::purge_stale_heap() const {
  while (!expiries_.empty()) {
    const HeapEntry& top = expiries_.top();
    const ServerState& st = servers_[static_cast<std::size_t>(top.server)];
    if (st.has_copy && st.generation == top.generation) return;
    expiries_.pop();
  }
}

double Wang2021Policy::next_transition_time() const {
  purge_stale_heap();
  return expiries_.empty() ? kInf : expiries_.top().time;
}

void Wang2021Policy::process_expiry(int server, double time,
                                    EventSink& sink) {
  ServerState& st = servers_[static_cast<std::size_t>(server)];
  REPL_CHECK(st.has_copy);
  if (copy_count_ > 1) {
    st.has_copy = false;
    st.renewed_once = false;
    --copy_count_;
    sink.on_drop(server, time);
    return;
  }
  // The only copy in the system.
  if (server == home_) {
    arm_expiry(server, time, sink);  // home renews indefinitely
    return;
  }
  if (!st.renewed_once) {
    st.renewed_once = true;  // one grace renewal of λ/µ(s)
    arm_expiry(server, time, sink);
    return;
  }
  // Held 2λ/µ(s) without a local request: migrate the object home.
  sink.on_transfer(server, home_, time);
  ServerState& h = servers_[static_cast<std::size_t>(home_)];
  REPL_CHECK(!h.has_copy);
  h.has_copy = true;
  ++copy_count_;
  sink.on_create(home_, time);
  arm_expiry(home_, time, sink);
  st.has_copy = false;
  st.renewed_once = false;
  --copy_count_;
  sink.on_drop(server, time);
  REPL_CHECK(copy_count_ == 1);
}

void Wang2021Policy::advance_to(double time, EventSink& sink) {
  REPL_CHECK_MSG(time >= now_, "advance_to moved backwards");
  for (;;) {
    purge_stale_heap();
    if (expiries_.empty()) break;
    const HeapEntry top = expiries_.top();
    if (!(top.time < time)) break;
    expiries_.pop();
    process_expiry(top.server, top.time, sink);
    now_ = top.time;
  }
  if (std::isfinite(time)) now_ = time;
}

ServeAction Wang2021Policy::on_request(int server, double time,
                                       const Prediction&, EventSink& sink) {
  REPL_REQUIRE(server >= 0 && server < config_.num_servers);
  REPL_CHECK(time >= now_);
  REPL_CHECK_MSG(next_transition_time() >= time,
                 "advance_to(t) must run before on_request(t)");

  ServerState& st = servers_[static_cast<std::size_t>(server)];
  ServeAction action;
  if (st.has_copy) {
    action.local = true;
    action.source = server;
  } else {
    int source = -1;
    for (int s = 0; s < config_.num_servers; ++s) {
      if (s != server && servers_[static_cast<std::size_t>(s)].has_copy) {
        source = s;
        break;
      }
    }
    REPL_CHECK_MSG(source >= 0, "no transfer source available");
    action.local = false;
    action.source = source;
    sink.on_transfer(source, server, time);
    st.has_copy = true;
    ++copy_count_;
    sink.on_create(server, time);
  }
  st.renewed_once = false;
  arm_expiry(server, time, sink);
  action.intended_duration = ttl(server);
  now_ = time;
  return action;
}

bool Wang2021Policy::holds(int server) const {
  REPL_REQUIRE(server >= 0 && server < config_.num_servers);
  return servers_[static_cast<std::size_t>(server)].has_copy;
}

std::unique_ptr<ReplicationPolicy> Wang2021Policy::clone() const {
  return std::make_unique<Wang2021Policy>(*this);
}

}  // namespace repl
