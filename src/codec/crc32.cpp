#include "codec/crc32.hpp"

#include <array>

namespace repl {

namespace {

/// Reflected CRC-32C polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

/// Slicing-by-4 tables, built once at first use. table[0] is the plain
/// byte-at-a-time table; table[k] advances a byte through k extra zero
/// bytes, letting the hot loop fold 4 input bytes per iteration.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t{};

  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t k = 1; k < 4; ++k) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Tables& tables() {
  static const Tables instance;
  return instance;
}

}  // namespace

std::uint32_t crc32c_update(std::uint32_t state, const void* data,
                            std::size_t size) {
  const auto& t = tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = state;
  while (size >= 4) {
    crc ^= std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
           (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
    crc = t[3][crc & 0xFFu] ^ t[2][(crc >> 8) & 0xFFu] ^
          t[1][(crc >> 16) & 0xFFu] ^ t[0][crc >> 24];
    p += 4;
    size -= 4;
  }
  while (size > 0) {
    crc = t[0][(crc ^ *p) & 0xFFu] ^ (crc >> 8);
    ++p;
    --size;
  }
  return crc;
}

std::uint32_t crc32c(const void* data, std::size_t size) {
  return crc32c_final(crc32c_update(crc32c_init(), data, size));
}

}  // namespace repl
