// Streaming multi-object workload synthesis.
//
// Where extensions/multi_object.hpp materializes one Trace per object in
// memory, these generators draw a single aggregate arrival process,
// assign each arrival to an object (Zipf popularity) and a server
// (uniform or Zipf, as in trace/generators.hpp), and emit the interleaved
// stream straight to an EventLogWriter — so a million-object, multi-GB
// workload is produced in O(1) memory beyond the Zipf tables.
//
// Arrival processes mirror the single-trace generators: homogeneous
// Poisson, heavy-tailed Pareto renewal gaps, and diurnal (sinusoidal
// rate, sampled by thinning). Global times are strictly increasing, so
// every per-object subsequence satisfies the Trace invariants.
#pragma once

#include <cstdint>
#include <string>

#include "trace/event_log.hpp"

namespace repl {

struct StreamWorkloadConfig {
  std::uint64_t num_objects = 1000;
  int num_servers = 10;
  /// Object popularity: P(object i) ∝ (i+1)^(-s).
  double object_zipf_s = 1.0;
  /// Server assignment skew (the paper's Appendix-J rule); s = 0 degrades
  /// to uniform.
  double server_zipf_s = 1.0;

  enum class Arrivals { kPoisson, kPareto, kDiurnal };
  Arrivals arrivals = Arrivals::kPoisson;
  /// Aggregate arrival rate (requests per time unit). For Pareto this is
  /// the *mean* rate (the gap scale is derived from it); for diurnal it
  /// is the base rate around which the sinusoid swings.
  double rate = 1.0;

  /// Pareto gap shape (> 1 keeps the mean finite; heavier tails as the
  /// shape approaches 1).
  double pareto_shape = 1.5;
  /// Diurnal modulation: rate(t) = rate·(1 + amplitude·sin(2πt/period)).
  double diurnal_amplitude = 0.8;  // in [0, 1)
  double diurnal_period = 86400.0;

  /// Stop conditions: the stream ends at the first arrival past `horizon`
  /// (if positive) or once `max_events` events are emitted (if nonzero).
  /// At least one must be set.
  double horizon = 0.0;
  std::uint64_t max_events = 0;
};

/// Synthesizes the configured stream into `out` (the caller closes it).
/// Returns the number of events emitted. Deterministic given `seed`.
std::uint64_t generate_event_stream(const StreamWorkloadConfig& config,
                                    std::uint64_t seed, EventLogWriter& out);

/// Convenience wrapper: creates the log file at `path` (in `format`),
/// streams the workload into it, and closes it. Returns the number of
/// events. The event sequence depends only on (config, seed), never on
/// the format — the same workload encodes bit-identically either way.
std::uint64_t generate_event_log(const StreamWorkloadConfig& config,
                                 std::uint64_t seed, const std::string& path,
                                 EventLogFormat format = EventLogFormat::kRaw);

}  // namespace repl
