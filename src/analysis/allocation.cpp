#include "analysis/allocation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "analysis/request_types.hpp"
#include "util/check.hpp"

namespace repl {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

AllocationReport allocate_costs(const SimulationResult& result,
                                const Trace& trace) {
  REPL_REQUIRE_MSG(result.serves.size() == trace.size(),
                   "allocation needs the full event log "
                   "(SimulationOptions::record_events)");
  REPL_REQUIRE_MSG(!trace.empty(), "allocation of an empty trace");
  REPL_REQUIRE_MSG(!std::isnan(result.initial_intended_duration),
                   "allocation requires a TTL-based (DRWP-family) policy");
  const SystemConfig& config = result.config;
  const double lambda = config.transfer_cost;
  const int final_server = trace[trace.size() - 1].server;
  const double final_time = trace.duration();

  AllocationReport report;
  report.allocated.assign(trace.size(), 0.0);

  // ---- Per-request base allocations (Proposition 2) -------------------
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const ServeRecord& serve = result.serves[i];
    const RequestType type = classify_request(serve);
    const int p = trace.prev_same_server(i);
    const bool first_at_initial =
        p < 0 && serve.server == config.initial_server;
    // l_i: intended duration of the regular copy created after p(i).
    double l_i = std::numeric_limits<double>::quiet_NaN();
    double t_p = std::numeric_limits<double>::quiet_NaN();
    if (p >= 0) {
      l_i = result.serves[static_cast<std::size_t>(p)].intended_duration;
      t_p = trace[static_cast<std::size_t>(p)].time;
    } else if (first_at_initial) {
      l_i = result.initial_intended_duration;  // the copy after dummy r0
      t_p = 0.0;
    }

    double alloc = 0.0;
    switch (type) {
      case RequestType::kType1:
        alloc = lambda + (std::isnan(l_i) ? 0.0 : l_i);
        break;
      case RequestType::kType2:
        REPL_CHECK(serve.special_since <= serve.time);
        alloc = lambda + (serve.time - serve.special_since) +
                (std::isnan(l_i) ? 0.0 : l_i);
        break;
      case RequestType::kType3:
      case RequestType::kType4:
        // A local serve implies a copy held since the previous request at
        // this server, so p(i) (or the dummy) must exist.
        REPL_CHECK_MSG(!std::isnan(t_p),
                       "local serve without a preceding request");
        alloc = serve.time - t_p;
        break;
    }
    report.allocated[i] = alloc;
  }

  // ---- Leftover regular copies -> first requests -----------------------
  // Every active server except s[r_m] leaves one unallocated regular copy
  // after its last request; their durations are charged to the first
  // requests at non-initial servers (sums match, pairing is irrelevant —
  // we distribute in server order for determinism).
  std::vector<double> leftovers;
  for (int s = 0; s < config.num_servers; ++s) {
    if (s == final_server) continue;
    const int last = [&] {
      int idx = -1;
      for (std::size_t i = trace.size(); i-- > 0;) {
        if (trace[i].server == s) {
          idx = static_cast<int>(i);
          break;
        }
      }
      return idx;
    }();
    if (last >= 0) {
      leftovers.push_back(
          result.serves[static_cast<std::size_t>(last)].intended_duration);
    } else if (s == config.initial_server) {
      // Active only through the dummy r0.
      leftovers.push_back(result.initial_intended_duration);
    }
  }
  std::vector<std::size_t> first_requests;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace.prev_same_server(i) < 0 &&
        trace[i].server != config.initial_server) {
      first_requests.push_back(i);
    }
  }
  REPL_CHECK_MSG(leftovers.size() == first_requests.size(),
                 "leftover copies (" << leftovers.size()
                                     << ") != first requests ("
                                     << first_requests.size() << ")");
  for (std::size_t j = 0; j < leftovers.size(); ++j) {
    report.allocated[first_requests[j]] += leftovers[j];
  }

  report.total_allocated = 0.0;
  for (double a : report.allocated) report.total_allocated += a;

  // ---- Independently integrated adjusted online cost -------------------
  // Storage of every copy segment, clipping out (a) everything after r_m
  // in the segment live at s[r_m] when r_m arrived, and (b) the infinite
  // special tail of the final surviving copy.
  double storage = 0.0;
  for (const CopySegment& seg : result.segments) {
    double cut = seg.end;
    if (seg.end == kInf) {
      REPL_CHECK_MSG(seg.special_from < kInf,
                     "surviving copy must end as a special copy");
      cut = seg.special_from;  // exclusion (b)
    }
    if (seg.server == final_server && seg.begin <= final_time &&
        (seg.end > final_time || seg.end == kInf)) {
      cut = std::min(cut, final_time);  // exclusion (a)
    }
    if (cut > seg.begin) storage += cut - seg.begin;
  }
  report.adjusted_online_cost =
      storage + lambda * static_cast<double>(result.transfers.size());
  return report;
}

}  // namespace repl
