// CRC-32C (Castagnoli) checksum, the per-block integrity check of the
// codec subsystem's framed containers.
//
// Software slicing-by-4 implementation (no SSE4.2 dependency), reflected
// polynomial 0x1EDC6F41, init and final xor 0xFFFFFFFF — the same
// parameterization as iSCSI/ext4, so the values are checkable against
// any standard CRC-32C tool. An incremental interface is exposed for
// framing layers that checksum a header and a payload in one value.
#pragma once

#include <cstddef>
#include <cstdint>

namespace repl {

/// One-shot CRC-32C of `size` bytes.
std::uint32_t crc32c(const void* data, std::size_t size);

/// Incremental form: feed `crc32c_update` the previous return value
/// (starting from crc32c_init()) and finish with crc32c_final().
inline constexpr std::uint32_t crc32c_init() { return 0xFFFFFFFFu; }
std::uint32_t crc32c_update(std::uint32_t state, const void* data,
                            std::size_t size);
inline constexpr std::uint32_t crc32c_final(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

}  // namespace repl
