#include "extensions/multi_object.hpp"

#include "core/simulator.hpp"
#include "offline/opt_dp.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace repl {

MultiObjectWorkload generate_multi_object_workload(
    const MultiObjectConfig& config, std::uint64_t seed) {
  REPL_REQUIRE(config.num_objects >= 1);
  REPL_REQUIRE(config.request_rate > 0.0);
  REPL_REQUIRE(config.horizon > 0.0);
  Rng rng(seed);
  const ZipfDistribution object_zipf(config.num_objects,
                                     config.object_zipf_s);
  const ZipfDistribution server_zipf(config.num_servers,
                                     config.server_zipf_s);

  std::vector<std::vector<Request>> per_object(
      static_cast<std::size_t>(config.num_objects));
  double t = 0.0;
  for (;;) {
    t += rng.exponential(config.request_rate);
    if (t > config.horizon) break;
    const int object = object_zipf.sample(rng) - 1;
    const int server = server_zipf.sample(rng) - 1;
    per_object[static_cast<std::size_t>(object)].push_back(
        Request{t, server});
  }

  MultiObjectWorkload workload;
  workload.num_servers = config.num_servers;
  workload.objects.reserve(per_object.size());
  for (auto& requests : per_object) {
    workload.objects.push_back(
        Trace::from_unsorted(config.num_servers, std::move(requests)));
  }
  return workload;
}

MultiObjectResult run_multi_object(const MultiObjectWorkload& workload,
                                   const SystemConfig& base_config,
                                   const PolicyFactory& make_policy,
                                   const PredictorFactory& make_predictor) {
  REPL_REQUIRE(base_config.num_servers == workload.num_servers);
  MultiObjectResult result;
  SimulationOptions options;
  options.record_events = false;
  const Simulator simulator(base_config, options);
  const OptimalDpSolver solver(base_config);
  for (const Trace& trace : workload.objects) {
    if (trace.empty()) {
      result.per_object_online.push_back(0.0);
      result.per_object_opt.push_back(0.0);
      continue;
    }
    PolicyPtr policy = make_policy();
    auto predictor = make_predictor(trace);
    const SimulationResult run = simulator.run(*policy, trace, *predictor);
    const double opt = solver.solve(trace);
    result.per_object_online.push_back(run.total_cost());
    result.per_object_opt.push_back(opt);
    result.online_cost += run.total_cost();
    result.opt_cost += opt;
  }
  return result;
}

}  // namespace repl
