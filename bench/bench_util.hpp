// Shared plumbing for the experiment harness binaries.
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "predictor/noisy.hpp"
#include "trace/ibm_synth.hpp"
#include "trace/trace.hpp"
#include "util/table.hpp"

namespace repl::bench {

/// The evaluation trace standing in for the paper's IBM object
/// "652aaef228286e0a" (11688 reads / 7 days / 10 servers); see DESIGN.md
/// §4 for the substitution rationale. `scale` < 1 shortens the horizon
/// and the request budget proportionally for quick runs.
inline Trace evaluation_trace(std::uint64_t seed, double scale = 1.0) {
  IbmSynthConfig config;
  config.horizon *= scale;
  config.target_requests *= scale;
  return synthesize_ibm_like(config, seed);
}

/// The alpha grid of the paper's plots. The paper sweeps {0, 0.1, ..., 1}
/// but alpha = 0 is outside Algorithm 1's domain (unbounded robustness);
/// 0.02 stands in for "alpha -> 0".
inline std::vector<double> alpha_grid() {
  return {0.02, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
}

/// Prediction accuracies {0%, 10%, ..., 100%}.
inline std::vector<double> accuracy_grid() {
  std::vector<double> grid;
  for (int pct = 0; pct <= 100; pct += 10) grid.push_back(pct / 100.0);
  return grid;
}

/// Shape-check reporting: benches print PASS/FAIL lines so their output
/// is self-validating without a test harness.
class ShapeChecks {
 public:
  void expect(bool condition, const std::string& what) {
    ++total_;
    failures_ += !condition;
    std::cout << (condition ? "  [PASS] " : "  [FAIL] ") << what << "\n";
  }

  /// Prints a summary and returns a process exit code.
  int finish() const {
    std::cout << "shape checks: " << (total_ - failures_) << "/" << total_
              << " passed\n";
    return failures_ == 0 ? 0 : 1;
  }

 private:
  int total_ = 0;
  int failures_ = 0;
};

inline std::string percent_label(double fraction) {
  return std::to_string(static_cast<int>(fraction * 100.0 + 0.5)) + "%";
}

}  // namespace repl::bench
