#include "trace/trace.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace repl {

Trace::Trace(int num_servers, std::vector<Request> requests)
    : num_servers_(num_servers), requests_(std::move(requests)) {
  REPL_REQUIRE_MSG(num_servers_ >= 1, "need at least one server");
  double prev_time = 0.0;
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    const Request& r = requests_[i];
    REPL_REQUIRE_MSG(r.server >= 0 && r.server < num_servers_,
                     "request " << i << ": server " << r.server
                                << " out of range [0, " << num_servers_
                                << ")");
    REPL_REQUIRE_MSG(r.time > 0.0,
                     "request " << i << ": time must be > 0 (time 0 is the "
                                   "dummy request r0)");
    REPL_REQUIRE_MSG(i == 0 || r.time > prev_time,
                     "request " << i << ": times must be strictly increasing"
                                << " (" << r.time << " after " << prev_time
                                << ")");
    prev_time = r.time;
  }

  prev_same_server_.assign(requests_.size(), -1);
  next_same_server_.assign(requests_.size(), -1);
  first_at_server_.assign(static_cast<std::size_t>(num_servers_), -1);
  count_at_server_.assign(static_cast<std::size_t>(num_servers_), 0);
  std::vector<int> last(static_cast<std::size_t>(num_servers_), -1);
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    const auto s = static_cast<std::size_t>(requests_[i].server);
    prev_same_server_[i] = last[s];
    if (last[s] >= 0) {
      next_same_server_[static_cast<std::size_t>(last[s])] =
          static_cast<int>(i);
    }
    if (first_at_server_[s] < 0) first_at_server_[s] = static_cast<int>(i);
    ++count_at_server_[s];
    last[s] = static_cast<int>(i);
  }
}

Trace Trace::from_unsorted(int num_servers, std::vector<Request> requests,
                           double min_gap) {
  REPL_REQUIRE(min_gap > 0.0);
  std::stable_sort(requests.begin(), requests.end(),
                   [](const Request& a, const Request& b) {
                     return a.time < b.time;
                   });
  double floor_time = 0.0;
  for (Request& r : requests) {
    if (r.time <= floor_time) r.time = floor_time + min_gap;
    floor_time = r.time;
  }
  return Trace(num_servers, std::move(requests));
}

int Trace::first_at_server(int server) const {
  REPL_REQUIRE(server >= 0 && server < num_servers_);
  return first_at_server_[static_cast<std::size_t>(server)];
}

std::size_t Trace::count_at_server(int server) const {
  REPL_REQUIRE(server >= 0 && server < num_servers_);
  return count_at_server_[static_cast<std::size_t>(server)];
}

std::vector<int> Trace::active_servers() const {
  std::vector<int> out;
  for (int s = 0; s < num_servers_; ++s) {
    if (count_at_server_[static_cast<std::size_t>(s)] > 0) out.push_back(s);
  }
  return out;
}

double interarrival_to_prev(const Trace& trace, std::size_t i,
                            int initial_server) {
  REPL_REQUIRE(i < trace.size());
  const int p = trace.prev_same_server(i);
  if (p >= 0) return trace[i].time - trace[static_cast<std::size_t>(p)].time;
  if (trace[i].server == initial_server) return trace[i].time;  // r0 at t=0
  return kNoTime;
}

bool next_gap_within_lambda(const Trace& trace, std::size_t i,
                            double lambda) {
  REPL_REQUIRE(i < trace.size());
  const int nxt = trace.next_same_server(i);
  if (nxt < 0) return false;
  return trace[static_cast<std::size_t>(nxt)].time - trace[i].time <= lambda;
}

bool first_gap_within_lambda(const Trace& trace, int initial_server,
                             double lambda) {
  const int first = trace.first_at_server(initial_server);
  if (first < 0) return false;
  return trace[static_cast<std::size_t>(first)].time <= lambda;
}

}  // namespace repl
