// Tests for the extension modules: weighted storage rates, multi-object
// aggregation, and the randomized duration variant.
#include <gtest/gtest.h>

#include "analysis/ratio.hpp"
#include "baselines/wang2021.hpp"
#include "core/simulator.hpp"
#include "extensions/multi_object.hpp"
#include "extensions/randomized_drwp.hpp"
#include "extensions/weighted_drwp.hpp"
#include "offline/opt_dp.hpp"
#include "predictor/fixed.hpp"
#include "predictor/oracle.hpp"
#include "test_util.hpp"

namespace repl {
namespace {

using testing::make_config;

TEST(WeightedDrwp, ScalesDurationsByRate) {
  SystemConfig config = make_config(2, 10.0);
  config.storage_rates = {1.0, 4.0};
  WeightedDrwpPolicy policy(0.5);
  NullEventSink sink;
  policy.reset(config, Prediction{false}, sink);
  EXPECT_DOUBLE_EQ(policy.intended_expiry(0), 5.0);  // αλ/µ0 = 5
  policy.advance_to(1.0, sink);
  const ServeAction a = policy.on_request(1, 1.0, Prediction{true}, sink);
  EXPECT_DOUBLE_EQ(a.intended_duration, 2.5);  // λ/µ1 = 10/4
}

TEST(WeightedDrwp, MatchesPlainOnUniformRates) {
  const SystemConfig config = make_config(4, 15.0);
  const Trace trace = testing::random_trace(4, 0.05, 3000.0, 171);
  FixedPredictor beyond = always_beyond_predictor();
  WeightedDrwpPolicy weighted(0.5);
  DrwpPolicy plain(0.5);
  const double a =
      Simulator(config).run(weighted, trace, beyond).total_cost();
  const double b =
      Simulator(config).run(plain, trace, beyond).total_cost();
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(WeightedDrwp, BeatsUnawareDrwpOnSkewedRates) {
  // An expensive server with frequent local requests: the rate-aware
  // policy holds shorter copies there and should not lose to the
  // rate-oblivious one by much — and on strongly skewed configurations
  // it wins. Assert the aggregate over several seeds.
  SystemConfig config = make_config(3, 20.0);
  config.storage_rates = {1.0, 8.0, 1.0};
  double weighted_total = 0.0, plain_total = 0.0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    ServerAssignment assignment;
    assignment.kind = ServerAssignment::Kind::kUniform;
    const Trace trace =
        generate_poisson_trace(3, 0.08, 2000.0, assignment, seed + 500);
    if (trace.empty()) continue;
    FixedPredictor beyond = always_beyond_predictor();
    WeightedDrwpPolicy weighted(0.5);
    DrwpPolicy plain(0.5);
    SimulationOptions lean;
    lean.record_events = false;
    weighted_total +=
        Simulator(config, lean).run(weighted, trace, beyond).total_cost();
    plain_total +=
        Simulator(config, lean).run(plain, trace, beyond).total_cost();
  }
  EXPECT_LT(weighted_total, plain_total);
}

TEST(WeightedDrwp, RespectsOptimum) {
  SystemConfig config = make_config(3, 12.0);
  config.storage_rates = {1.0, 3.0, 0.5};
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Trace trace = testing::random_trace(3, 0.06, 1500.0, seed + 600);
    if (trace.empty()) continue;
    const double opt = optimal_offline_cost(config, trace);
    WeightedDrwpPolicy policy(0.5);
    FixedPredictor beyond = always_beyond_predictor();
    SimulationOptions lean;
    lean.record_events = false;
    const double cost =
        Simulator(config, lean).run(policy, trace, beyond).total_cost();
    EXPECT_GE(cost, opt - 1e-9) << "seed=" << seed;
  }
}

TEST(MultiObject, WorkloadSplitsAllRequests) {
  MultiObjectConfig config;
  config.num_objects = 8;
  config.num_servers = 5;
  config.request_rate = 0.1;
  config.horizon = 20000.0;
  const MultiObjectWorkload workload =
      generate_multi_object_workload(config, 7);
  ASSERT_EQ(workload.objects.size(), 8u);
  std::size_t total = 0;
  for (const Trace& trace : workload.objects) total += trace.size();
  EXPECT_NEAR(static_cast<double>(total), 2000.0, 300.0);
  // Zipf popularity: object 0 dominates object 7.
  EXPECT_GT(workload.objects[0].size(), workload.objects[7].size());
}

TEST(MultiObject, AggregateEqualsSumOfParts) {
  MultiObjectConfig config;
  config.num_objects = 5;
  config.num_servers = 4;
  config.request_rate = 0.05;
  config.horizon = 10000.0;
  const MultiObjectWorkload workload =
      generate_multi_object_workload(config, 11);
  const SystemConfig base = make_config(4, 25.0);
  const MultiObjectResult result = run_multi_object(
      workload, base, [] { return std::make_unique<DrwpPolicy>(0.5); },
      [](const Trace& trace) {
        return std::make_unique<OraclePredictor>(trace);
      });
  ASSERT_EQ(result.per_object_online.size(), 5u);
  double online = 0.0, opt = 0.0;
  for (std::size_t i = 0; i < 5; ++i) {
    online += result.per_object_online[i];
    opt += result.per_object_opt[i];
    EXPECT_GE(result.per_object_online[i], result.per_object_opt[i] - 1e-9);
  }
  EXPECT_DOUBLE_EQ(result.online_cost, online);
  EXPECT_DOUBLE_EQ(result.opt_cost, opt);
  EXPECT_GE(result.ratio(), 1.0 - 1e-9);
  EXPECT_LE(result.ratio(), consistency_bound(0.5) + 1e-9);
}

TEST(RandomizedDrwp, ReproducibleForSameSeed) {
  const SystemConfig config = make_config(4, 20.0);
  const Trace trace = testing::random_trace(4, 0.05, 3000.0, 191);
  FixedPredictor beyond = always_beyond_predictor();
  RandomizedDrwpPolicy a(0.5, 42), b(0.5, 42);
  const double cost_a =
      Simulator(config).run(a, trace, beyond).total_cost();
  const double cost_b =
      Simulator(config).run(b, trace, beyond).total_cost();
  EXPECT_DOUBLE_EQ(cost_a, cost_b);
}

TEST(RandomizedDrwp, SeedsChangeBehaviour) {
  const SystemConfig config = make_config(4, 20.0);
  const Trace trace = testing::random_trace(4, 0.08, 5000.0, 193);
  FixedPredictor beyond = always_beyond_predictor();
  RandomizedDrwpPolicy a(0.5, 1), b(0.5, 2);
  const double cost_a =
      Simulator(config).run(a, trace, beyond).total_cost();
  const double cost_b =
      Simulator(config).run(b, trace, beyond).total_cost();
  EXPECT_NE(cost_a, cost_b);
}

TEST(RandomizedDrwp, NeverBeatsOptimum) {
  const SystemConfig config = make_config(4, 20.0);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Trace trace = testing::random_trace(4, 0.05, 2000.0, seed + 800);
    if (trace.empty()) continue;
    const double opt = optimal_offline_cost(config, trace);
    RandomizedDrwpPolicy policy(0.5, seed);
    FixedPredictor beyond = always_beyond_predictor();
    SimulationOptions lean;
    lean.record_events = false;
    const double cost =
        Simulator(config, lean).run(policy, trace, beyond).total_cost();
    EXPECT_GE(cost, opt - 1e-9);
  }
}

TEST(RandomizedDrwp, WithinPredictionStillGivesLambda) {
  const SystemConfig config = make_config(1, 10.0);
  RandomizedDrwpPolicy policy(0.5, 7);
  NullEventSink sink;
  policy.reset(config, Prediction{true}, sink);
  EXPECT_DOUBLE_EQ(policy.intended_expiry(0), 10.0);
}

}  // namespace
}  // namespace repl
