// RAII span timer for pipeline stages.
//
// Measures wall time from construction to stop()/destruction and records
// it into an optional seconds accumulator (EngineStats-style) and an
// optional obs::Histogram — either may be null, in which case that sink is
// skipped; with both null the timer never reads the clock, so an
// uninstrumented hot path pays nothing but two pointer compares.
#pragma once

#include <chrono>

#include "obs/metrics.hpp"

namespace repl::obs {

class StageTimer {
 public:
  explicit StageTimer(double* accumulator, Histogram* histogram = nullptr)
      : accumulator_(accumulator), histogram_(histogram) {
    if (armed()) start_ = std::chrono::steady_clock::now();
  }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  ~StageTimer() { stop(); }

  /// Records the span once and disarms; returns the elapsed seconds
  /// (0 if disarmed or never armed).
  double stop() {
    if (!armed()) return 0.0;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_;
    const double seconds = elapsed.count();
    if (accumulator_ != nullptr) *accumulator_ += seconds;
    if (histogram_ != nullptr) histogram_->observe(seconds);
    accumulator_ = nullptr;
    histogram_ = nullptr;
    return seconds;
  }

 private:
  bool armed() const {
    return accumulator_ != nullptr || histogram_ != nullptr;
  }

  double* accumulator_;
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace repl::obs
