#include "trace/trace_io.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace repl {

std::string trace_to_csv(const Trace& trace) {
  std::ostringstream os;
  write_csv_row(os, {"time", "server"});
  for (const Request& r : trace.requests()) {
    write_csv_row(os, {format_double(r.time), std::to_string(r.server)});
  }
  return os.str();
}

namespace {

/// One line-by-line parser behind both the string and the file API, so
/// the two accept exactly the same inputs. Blank lines are skipped; the
/// header ("time,server") is honored until the first data row.
Trace trace_from_lines(std::istream& in, int num_servers) {
  std::vector<Request> requests;
  std::vector<std::string> fields;
  std::string line;
  int max_server = -1;
  bool allow_header = true;
  bool any_row = false;
  for (std::size_t row = 0; std::getline(in, line); ++row) {
    const NumericRow kind =
        split_numeric_row(line, row, "trace CSV", "time", "time,server", 2,
                          allow_header, fields);
    if (kind == NumericRow::kBlank) continue;
    allow_header = false;
    any_row = true;
    if (kind == NumericRow::kHeader) continue;
    Request r;
    try {
      r.time = parse_double_field(fields[0]);
      const long long server = parse_int_field(fields[1]);
      if (server < std::numeric_limits<int>::min() ||
          server > std::numeric_limits<int>::max()) {
        throw std::invalid_argument(fields[1]);
      }
      r.server = static_cast<int>(server);
    } catch (const std::exception&) {
      throw std::invalid_argument("trace CSV row " + std::to_string(row) +
                                  ": malformed number");
    }
    max_server = std::max(max_server, r.server);
    requests.push_back(r);
  }
  REPL_REQUIRE_MSG(any_row, "empty trace CSV");
  if (num_servers == 0) num_servers = max_server + 1;
  return Trace::from_unsorted(num_servers, std::move(requests));
}

}  // namespace

Trace trace_from_csv(const std::string& text, int num_servers) {
  std::istringstream in(text);
  return trace_from_lines(in, num_servers);
}

void save_trace(const Trace& trace, const std::string& path) {
  // Streamed row by row so a large trace is never duplicated in one
  // in-memory CSV string.
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_csv_row(out, {"time", "server"});
  for (const Request& r : trace.requests()) {
    write_csv_row(out, {format_double(r.time), std::to_string(r.server)});
    if (!out) throw std::runtime_error("write failed: " + path);
  }
  out.flush();
  if (!out) throw std::runtime_error("write failed: " + path);
}

Trace load_trace(const std::string& path, int num_servers) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  Trace trace = trace_from_lines(in, num_servers);
  if (in.bad()) throw std::runtime_error("read failed: " + path);
  return trace;
}

}  // namespace repl
