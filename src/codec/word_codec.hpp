// Sentinel/run-aware codec for state payloads (checkpoint object
// records).
//
// Checkpoint payloads are StateWriter streams dominated by 64-bit
// fields: doubles that repeat sentinel bit patterns (+inf expiries, NaN
// "never" markers), near-constant doubles (accumulators that move in the
// low mantissa bits), and counters whose high bytes are zero. The codec
// views the payload as little-endian 64-bit words and XORs each against
// the previous word, then drops the XOR's leading zero bytes:
//
//   * a repeated word (sentinel runs, constant fields) XORs to zero and
//     costs half a byte;
//   * a near-constant double XORs to a few low-order bytes;
//   * an unrelated word costs its 8 bytes plus the half-byte tag —
//     the bounded worst case (~6% expansion), there is no pathological
//     blow-up.
//
// Wire format: for each pair of words one control byte (low nibble =
// significant XOR bytes of the first word, high nibble = the second;
// nibbles 9..15 are invalid), followed by the significant bytes of both
// words in order. A final partial word (payload size not a multiple of
// 8) is appended raw. The decoder requires the exact raw size up front
// (the snapshot record stores it), so output never over-allocates and a
// size mismatch is a hard decode error, not silent truncation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace repl {

/// Compresses `size` bytes. Deterministic; never fails.
std::vector<unsigned char> word_pack(const unsigned char* data,
                                     std::size_t size);
inline std::vector<unsigned char> word_pack(
    const std::vector<unsigned char>& data) {
  return word_pack(data.data(), data.size());
}

/// Decompresses an encoded span back to exactly `raw_size` bytes. Throws
/// std::runtime_error (prefixed with `context`) when the encoding is
/// malformed or does not reproduce `raw_size` bytes.
std::vector<unsigned char> word_unpack(const unsigned char* data,
                                       std::size_t size, std::size_t raw_size,
                                       const std::string& context);

}  // namespace repl
