// Live-ingest throughput: how much does serving over a socket cost
// relative to file replay of the same stream?
//
// Synthesizes one interleaved event log, serves it twice per row — once
// by file replay (the baseline ingestion path), once through
// NetIngestServer over a unix-domain socket with N concurrent clients
// each streaming a round-robin share of the log — and reports events/sec
// for both plus the net/file ratio. The aggregates of every net serve
// are required to be bit-identical to the file replay: the watermark
// merge preserves each producer's order and the engine's aggregates
// depend only on per-object subsequences, so any divergence is a bug,
// not noise.
//
//   ./build/bench/bench_net              # 10^6 events, 1/2/4 clients
//   ./build/bench/bench_net --smoke      # CI-sized, same parity checks
//
// Writes BENCH_net.json next to the table.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "api/experiment.hpp"
#include "engine/engine.hpp"
#include "net/client.hpp"
#include "net/ingest_server.hpp"
#include "net/socket.hpp"
#include "trace/event_log.hpp"
#include "trace/stream_gen.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

#include "bench_util.hpp"

#ifndef REPL_GIT_DESCRIBE
#define REPL_GIT_DESCRIBE "unknown"
#endif

namespace {

using namespace repl;

struct NetRow {
  int clients = 0;
  std::uint64_t events = 0;
  double file_events_per_sec = 0.0;
  double net_events_per_sec = 0.0;
  bool identical = false;
};

std::unique_ptr<StreamingEngine> build_engine(int servers) {
  SystemConfig config;
  config.num_servers = servers;
  config.transfer_cost = 10.0;
  EngineBuilder builder;
  builder.config(config);
  builder.policy("drwp(alpha=0.3)").predictor("last_gap");
  return builder.build();
}

bool same_aggregates(const EngineMetrics& a, const EngineMetrics& b) {
  return a.objects == b.objects && a.events == b.events &&
         a.num_local == b.num_local && a.num_transfers == b.num_transfers &&
         a.online_cost == b.online_cost && a.lower_bound == b.lower_bound;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_net", "socket ingest throughput vs file replay");
  cli.add_flag("events", "1000000", "events in the synthesized log");
  cli.add_flag("objects", "20000", "objects in the synthesized log");
  cli.add_flag("servers", "10", "servers in the system");
  cli.add_flag("seed", "1", "workload seed");
  cli.add_bool_flag("smoke", "CI-sized run (50k events)");
  if (!cli.parse(argc, argv)) return 0;

  const bool smoke = cli.get_bool("smoke");
  const std::uint64_t events =
      smoke ? 50000 : cli.get_uint64("events");
  const std::size_t objects = smoke ? 2000 : cli.get_size_t("objects", 1);
  const int servers = static_cast<int>(cli.get_size_t("servers", 1, 4096));

  const std::string log_path =
      (std::filesystem::temp_directory_path() / "bench_net.evlog").string();
  const std::string sock_path =
      (std::filesystem::temp_directory_path() / "bench_net.sock").string();

  StreamWorkloadConfig workload;
  workload.num_objects = objects;
  workload.num_servers = servers;
  workload.max_events = events;
  workload.rate = static_cast<double>(objects) / 64.0;
  std::cout << "synthesizing " << events << " events over " << objects
            << " objects -> " << log_path << "\n";
  generate_event_log(workload, cli.get_uint64("seed"), log_path,
                     EventLogFormat::kCompressed);

  // The whole log in memory once, so client threads stream slices
  // without disk contention inside the timed region.
  std::vector<LogEvent> all;
  {
    EventLogReader reader(log_path);
    std::vector<LogEvent> batch;
    while (reader.read_batch(batch, std::size_t{1} << 16) > 0) {
      all.insert(all.end(), batch.begin(), batch.end());
    }
  }

  // Baseline: file replay.
  EngineMetrics file_metrics;
  double file_rate = 0.0;
  {
    auto engine = build_engine(servers);
    EventLogReader reader(log_path);
    ServeOptions options;
    file_metrics = engine->serve(reader, options);
    const double wall = engine->stats().ingest_seconds +
                        engine->stats().finish_seconds;
    file_rate = wall > 0.0 ? static_cast<double>(file_metrics.events) / wall
                           : 0.0;
  }

  bench::ShapeChecks checks;
  std::vector<NetRow> rows;
  for (const int clients : {1, 2, 4}) {
    NetServerOptions net;
    net.tcp_port = -1;
    net.unix_path = sock_path;
    net.min_connections = static_cast<std::size_t>(clients);

    auto engine = build_engine(servers);
    NetIngestServer server(net);
    NetIngestSource source(server, static_cast<std::uint32_t>(servers));
    source.attach(*engine);

    std::vector<std::thread> senders;
    senders.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      senders.emplace_back([&, c] {
        try {
          EventStreamClient client(connect_unix(sock_path));
          client.handshake(static_cast<std::uint32_t>(servers));
          for (std::size_t i = static_cast<std::size_t>(c); i < all.size();
               i += static_cast<std::size_t>(clients)) {
            client.send(all[i]);
          }
          client.finish();
        } catch (const std::exception& e) {
          std::cerr << "client " << c << " failed: " << e.what() << "\n";
        }
      });
    }

    ServeOptions options;
    const EngineMetrics metrics = engine->serve(source, options);
    for (std::thread& t : senders) t.join();
    const double wall = engine->stats().ingest_seconds +
                        engine->stats().finish_seconds;

    NetRow row;
    row.clients = clients;
    row.events = metrics.events;
    row.file_events_per_sec = file_rate;
    row.net_events_per_sec =
        wall > 0.0 ? static_cast<double>(metrics.events) / wall : 0.0;
    row.identical = same_aggregates(metrics, file_metrics);
    rows.push_back(row);
    checks.expect(row.identical,
                  std::to_string(clients) +
                      "-client net serve is bit-identical to file replay");
  }

  Table table({"clients", "events", "file ev/s", "net ev/s", "net/file"});
  for (const NetRow& row : rows) {
    table.add_row({Table::cell(row.clients), Table::cell(row.events),
                   Table::cell(row.file_events_per_sec, 0),
                   Table::cell(row.net_events_per_sec, 0),
                   Table::cell(row.file_events_per_sec > 0.0
                                   ? row.net_events_per_sec /
                                         row.file_events_per_sec
                                   : 0.0,
                               3)});
  }
  std::cout << table.str();

  JsonWriter json;
  json.begin_object();
  json.key("bench").value("net");
  json.key("git").value(REPL_GIT_DESCRIBE);
  json.key("events").value(events);
  json.key("file_events_per_sec").value(file_rate);
  json.key("rows").begin_array();
  for (const NetRow& row : rows) {
    json.begin_object();
    json.key("clients").value(row.clients);
    json.key("events").value(row.events);
    json.key("net_events_per_sec").value(row.net_events_per_sec);
    json.key("identical").value(row.identical);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  std::ofstream("BENCH_net.json") << json.str() << "\n";
  std::cout << "wrote BENCH_net.json\n";

  std::error_code ec;
  std::filesystem::remove(log_path, ec);
  return checks.finish();
}
