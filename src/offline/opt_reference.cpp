#include "offline/opt_reference.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace repl {

double reference_offline_cost(const SystemConfig& config,
                              const Trace& trace) {
  config.validate();
  if (trace.empty()) return 0.0;
  REPL_REQUIRE(trace.num_servers() == config.num_servers);

  // Active-server bit mapping (independent re-implementation).
  std::vector<int> server_to_bit(
      static_cast<std::size_t>(config.num_servers), -1);
  std::vector<int> bit_to_server;
  auto add = [&](int server) {
    auto& bit = server_to_bit[static_cast<std::size_t>(server)];
    if (bit < 0) {
      bit = static_cast<int>(bit_to_server.size());
      bit_to_server.push_back(server);
    }
  };
  add(config.initial_server);
  for (const Request& r : trace.requests()) add(r.server);
  if (!config.storage_rates.empty()) {
    // Allow parking at the cheapest server (see opt_dp.cpp).
    int cheapest = 0;
    for (int s = 1; s < config.num_servers; ++s) {
      if (config.storage_rate(s) < config.storage_rate(cheapest)) {
        cheapest = s;
      }
    }
    add(cheapest);
  }
  const int k = static_cast<int>(bit_to_server.size());
  REPL_REQUIRE_MSG(k <= 12, "reference solver is O(m·4^k); k capped at 12");
  const std::size_t full = std::size_t{1} << k;
  const double lambda = config.transfer_cost;
  constexpr double kInfCost = std::numeric_limits<double>::infinity();

  std::vector<double> weight(full, 0.0);
  for (std::size_t s = 1; s < full; ++s) {
    const int low = std::countr_zero(s);
    weight[s] =
        weight[s & (s - 1)] +
        config.storage_rate(bit_to_server[static_cast<std::size_t>(low)]);
  }

  std::vector<double> dp(full, kInfCost);
  std::vector<double> next(full);
  dp[std::size_t{1}
     << server_to_bit[static_cast<std::size_t>(config.initial_server)]] =
      0.0;

  double prev_time = 0.0;
  // Process the dummy request r0 (gap 0, at the initial server) followed
  // by the trace requests.
  for (std::size_t i = 0; i <= trace.size(); ++i) {
    double gap;
    int server;
    if (i == 0) {
      gap = 0.0;
      server = config.initial_server;
    } else {
      gap = trace[i - 1].time - prev_time;
      server = trace[i - 1].server;
      prev_time = trace[i - 1].time;
    }
    const std::size_t abit =
        std::size_t{1} << server_to_bit[static_cast<std::size_t>(server)];
    std::fill(next.begin(), next.end(), kInfCost);
    for (std::size_t s = 1; s < full; ++s) {
      if (dp[s] == kInfCost) continue;
      const double base = dp[s] + gap * weight[s] +
                          ((s & abit) ? 0.0 : lambda);
      for (std::size_t sp = 1; sp < full; ++sp) {
        const double bought = static_cast<double>(
            std::popcount(sp & ~(s | abit)));
        next[sp] = std::min(next[sp], base + lambda * bought);
      }
    }
    dp.swap(next);
  }

  double best = kInfCost;
  for (std::size_t s = 1; s < full; ++s) best = std::min(best, dp[s]);
  REPL_CHECK(best < kInfCost);
  return best;
}

}  // namespace repl
