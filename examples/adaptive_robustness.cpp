// The Section-8 adaptation in action: how the robustness target 2 + β
// protects against degrading prediction quality.
//
// Sweeps prediction accuracy from 100% down to 0% and prints, side by
// side, the plain Algorithm 1 (small alpha: great consistency, terrible
// robustness) and the adapted variant with two β settings. The plain
// ratio climbs toward 1 + 1/α while the adapted ones stay clamped.
//
//   ./build/examples/adaptive_robustness [--alpha=0.1] [--lambda=400]
#include <iostream>

#include "analysis/ratio.hpp"
#include "core/adaptive_drwp.hpp"
#include "core/drwp.hpp"
#include "offline/opt_dp.hpp"
#include "predictor/noisy.hpp"
#include "trace/ibm_synth.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  repl::CliParser cli("adaptive_robustness",
                      "bounded robustness under degrading predictions");
  cli.add_flag("alpha", "0.1", "distrust hyper-parameter");
  cli.add_flag("lambda", "400", "transfer cost λ");
  cli.add_flag("seed", "3", "workload seed");
  cli.add_flag("warmup", "100", "adaptive warm-up requests");
  if (!cli.parse(argc, argv)) return 0;

  const double alpha = cli.get_double("alpha");
  const double lambda = cli.get_double("lambda");

  // A scaled-down IBM-like day of traffic (same generator as the paper's
  // evaluation substitute).
  repl::IbmSynthConfig synth;
  synth.horizon = 86400.0;
  synth.target_requests = 1700.0;
  const repl::Trace trace =
      repl::synthesize_ibm_like(synth, cli.get_uint64("seed"));

  repl::SystemConfig config;
  config.num_servers = synth.num_servers;
  config.transfer_cost = lambda;
  const double opt = repl::optimal_offline_cost(config, trace);

  const auto warmup =
      static_cast<std::size_t>(cli.get_int("warmup"));
  repl::Table table({"accuracy", "plain drwp", "adapted b=0.1",
                     "adapted b=1.0", "fallbacks b=0.1"});
  for (int pct = 100; pct >= 0; pct -= 10) {
    const double accuracy = pct / 100.0;
    repl::AccuracyPredictor p1(trace, accuracy, 11);
    repl::AccuracyPredictor p2(trace, accuracy, 11);
    repl::AccuracyPredictor p3(trace, accuracy, 11);
    repl::DrwpPolicy plain(alpha);
    repl::AdaptiveDrwpPolicy small_beta(
        alpha, repl::AdaptiveDrwpPolicy::Options{0.1, warmup});
    repl::AdaptiveDrwpPolicy large_beta(
        alpha, repl::AdaptiveDrwpPolicy::Options{1.0, warmup});
    const double r_plain =
        repl::evaluate_policy(config, plain, trace, p1, opt).ratio;
    const double r_small =
        repl::evaluate_policy(config, small_beta, trace, p2, opt).ratio;
    const double r_large =
        repl::evaluate_policy(config, large_beta, trace, p3, opt).ratio;
    table.add_row({std::to_string(pct) + "%",
                   repl::Table::cell(r_plain, 4),
                   repl::Table::cell(r_small, 4),
                   repl::Table::cell(r_large, 4),
                   repl::Table::cell(small_beta.fallback_count())});
  }

  std::cout << "alpha = " << alpha << " (robustness bound "
            << repl::robustness_bound(alpha) << ", consistency bound "
            << repl::consistency_bound(alpha) << "), lambda = " << lambda
            << ", " << trace.size() << " requests\n\n"
            << table.str()
            << "\nThe adapted columns should stay near their 2+beta "
               "targets as accuracy degrades,\nwhile the plain column "
               "drifts toward 1 + 1/alpha = "
            << repl::robustness_bound(alpha) << ".\n";
  return 0;
}
