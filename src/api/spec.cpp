#include "api/spec.hpp"

#include <cctype>
#include <sstream>

namespace repl {

namespace {

bool is_name_start(char c) {
  return (c >= 'a' && c <= 'z') || c == '_';
}

bool is_name_char(char c) {
  return is_name_start(c) || (c >= '0' && c <= '9');
}

bool is_value_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '.' || c == '+' || c == '-';
}

/// Recursive-descent parser over the spec text. Positions in diagnostics
/// are 0-based byte offsets into the original input.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ComponentSpec parse() {
    ComponentSpec spec = parse_spec();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after the spec");
    }
    return spec;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::ostringstream os;
    os << "bad component spec \"" << text_ << "\": " << what
       << " at position " << pos_;
    throw SpecError(os.str());
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::string parse_name(const char* what) {
    skip_ws();
    if (pos_ >= text_.size() || !is_name_start(text_[pos_])) {
      fail(std::string("expected ") + what +
           " ([a-z_][a-z0-9_]*; names are lowercase)");
    }
    const std::size_t start = pos_;
    while (pos_ < text_.size() && is_name_char(text_[pos_])) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string parse_value() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() && is_value_char(text_[pos_])) ++pos_;
    if (pos_ == start) {
      fail("expected a parameter value after '='");
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  ComponentSpec parse_spec() {
    ComponentSpec spec;
    spec.name = parse_name("a component name");
    skip_ws();
    if (peek() == '(') {
      ++pos_;  // consume '('
      parse_args(spec);
    }
    return spec;
  }

  /// Parses the argument list after its opening '(' through the ')'.
  void parse_args(ComponentSpec& spec) {
    skip_ws();
    if (peek() == ')') {
      ++pos_;
      return;  // empty argument list: `name()` == `name`
    }
    for (;;) {
      parse_arg(spec);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ')') {
        ++pos_;
        return;
      }
      fail("expected ',' or ')' in the argument list");
    }
  }

  void parse_arg(ComponentSpec& spec) {
    const std::string name = parse_name("a parameter name or component");
    skip_ws();
    if (peek() == '=') {
      ++pos_;  // consume '='
      for (const auto& [key, value] : spec.params) {
        if (key == name) {
          fail("duplicate parameter '" + name + "'");
        }
      }
      spec.params.emplace_back(name, parse_value());
      return;
    }
    // A nested component: bare name, or name followed by its own
    // argument list.
    ComponentSpec child;
    child.name = name;
    if (peek() == '(') {
      ++pos_;
      parse_args(child);
    }
    spec.children.push_back(std::move(child));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void print_to(const ComponentSpec& spec, std::string& out) {
  out += spec.name;
  if (spec.children.empty() && spec.params.empty()) return;
  out += '(';
  bool first = true;
  for (const ComponentSpec& child : spec.children) {
    if (!first) out += ',';
    first = false;
    print_to(child, out);
  }
  for (const auto& [key, value] : spec.params) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += '=';
    out += value;
  }
  out += ')';
}

}  // namespace

ComponentSpec parse_component_spec(std::string_view text) {
  return Parser(text).parse();
}

std::string print_component_spec(const ComponentSpec& spec) {
  std::string out;
  print_to(spec, out);
  return out;
}

}  // namespace repl
