#include "replay/fixture.hpp"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "checkpoint/state_io.hpp"
#include "codec/crc32.hpp"
#include "codec/endian.hpp"
#include "util/check.hpp"

namespace repl {

namespace {

constexpr std::uint64_t kFixtureMagic = 0x545849464c504552ULL;   // "REPLFIXT"
constexpr std::uint64_t kFixtureFooter = 0x444e584652504552ULL;  // "REPLFXND"
constexpr std::uint32_t kFixtureVersion = 1;
constexpr std::size_t kFixturePrefixBytes = 32;  // through meta_len
/// Sanity cap on the whole fixture: these are test artifacts, not logs.
constexpr std::uint64_t kMaxFixtureBytes = std::uint64_t{1} << 32;
/// Sanity cap on the server count: SystemConfig stores an int, and the
/// count sizes per-server state downstream, so an untrusted u32 must be
/// bounded well below INT_MAX before it leaves the reader.
constexpr std::uint32_t kMaxFixtureServers = 1u << 20;

[[noreturn]] void fixture_fail(const std::string& path,
                               const std::string& what) {
  throw std::runtime_error("fixture " + path + ": " + what);
}

}  // namespace

const char* fixture_target_name(FixtureTarget target) {
  switch (target) {
    case FixtureTarget::kServe:
      return "serve";
    case FixtureTarget::kSnapshot:
      return "snapshot";
    case FixtureTarget::kWire:
      return "wire";
    case FixtureTarget::kCluster:
      return "cluster";
  }
  return "?";
}

FixtureTarget parse_fixture_target(const std::string& name) {
  if (name == "serve") return FixtureTarget::kServe;
  if (name == "snapshot") return FixtureTarget::kSnapshot;
  if (name == "wire") return FixtureTarget::kWire;
  if (name == "cluster") return FixtureTarget::kCluster;
  throw std::invalid_argument("unknown fixture target '" + name +
                              "' (expected serve, snapshot, wire, or "
                              "cluster)");
}

SystemConfig Fixture::system_config() const {
  SystemConfig config;
  config.num_servers = static_cast<int>(num_servers);
  config.transfer_cost = transfer_cost;
  config.initial_server = initial_server;
  config.storage_rates = storage_rates;
  return config;
}

void write_fixture(const std::string& path, const Fixture& fixture) {
  StateWriter meta;
  meta.str(fixture.policy_spec);
  meta.str(fixture.predictor_spec);
  meta.str(fixture.source_name);
  meta.u32(fixture.num_servers);
  meta.f64(fixture.transfer_cost);
  meta.i32(fixture.initial_server);
  meta.u32(static_cast<std::uint32_t>(fixture.storage_rates.size()));
  for (double rate : fixture.storage_rates) meta.f64(rate);
  meta.u64(fixture.base_seed);
  meta.f64(fixture.horizon);
  meta.boolean(fixture.compute_lower_bound);
  meta.boolean(fixture.compress_checkpoints);
  meta.u64(fixture.slice_first_event);
  meta.u64(fixture.slice_events);
  meta.u64(fixture.slice_begin_byte);
  meta.u64(fixture.slice_end_byte);
  meta.u32(static_cast<std::uint32_t>(fixture.cuts.size()));
  for (std::uint64_t cut : fixture.cuts) meta.u64(cut);
  meta.u64(fixture.aggregates.objects);
  meta.u64(fixture.aggregates.events);
  meta.u64(fixture.aggregates.num_local);
  meta.u64(fixture.aggregates.num_transfers);
  meta.f64(fixture.aggregates.online_cost);
  meta.f64(fixture.aggregates.lower_bound);
  meta.str(fixture.signature);

  std::vector<unsigned char> out;
  out.resize(kFixturePrefixBytes);
  store_le64(out.data(), kFixtureMagic);
  store_le32(out.data() + 8, kFixtureVersion);
  store_le32(out.data() + 12, static_cast<std::uint32_t>(fixture.target));
  store_le32(out.data() + 16, static_cast<std::uint32_t>(fixture.expect));
  store_le32(out.data() + 20, 0);
  store_le64(out.data() + 24, meta.size());
  out.insert(out.end(), meta.buffer().begin(), meta.buffer().end());
  unsigned char len[8];
  store_le64(len, fixture.blob.size());
  out.insert(out.end(), len, len + sizeof(len));
  out.insert(out.end(), fixture.blob.begin(), fixture.blob.end());
  unsigned char tail[12];
  store_le32(tail, crc32c(out.data(), out.size()));
  store_le64(tail + 4, kFixtureFooter);
  out.insert(out.end(), tail, tail + sizeof(tail));

  // Atomic replace: a crash mid-write must never leave a half fixture
  // shadowing a good one (same discipline as periodic checkpoints).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) fixture_fail(path, "cannot open for writing");
    file.write(reinterpret_cast<const char*>(out.data()),
               static_cast<std::streamsize>(out.size()));
    file.flush();
    if (!file) fixture_fail(path, "write failed");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) fixture_fail(path, "rename failed: " + ec.message());
}

Fixture read_fixture(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) fixture_fail(path, "cannot open for reading");
  std::vector<unsigned char> raw(
      (std::istreambuf_iterator<char>(file)), std::istreambuf_iterator<char>());
  if (file.bad()) fixture_fail(path, "read failed");
  // Smallest legal file: prefix + empty meta + blob_len + crc + footer.
  if (raw.size() < kFixturePrefixBytes + 8 + 12) {
    fixture_fail(path, "truncated (" + std::to_string(raw.size()) + " bytes)");
  }
  if (load_le64(raw.data()) != kFixtureMagic) {
    fixture_fail(path, "bad magic (not a replay fixture)");
  }
  const std::uint32_t version = load_le32(raw.data() + 8);
  if (version != kFixtureVersion) {
    fixture_fail(path, "unsupported version " + std::to_string(version));
  }
  const std::size_t crc_at = raw.size() - 12;
  if (load_le64(raw.data() + crc_at + 4) != kFixtureFooter) {
    fixture_fail(path, "missing footer (truncated or not sealed)");
  }
  if (crc32c(raw.data(), crc_at) != load_le32(raw.data() + crc_at)) {
    fixture_fail(path, "CRC mismatch (corrupt fixture)");
  }

  Fixture fixture;
  const std::uint32_t target = load_le32(raw.data() + 12);
  if (target > static_cast<std::uint32_t>(FixtureTarget::kCluster)) {
    fixture_fail(path, "unknown target " + std::to_string(target));
  }
  fixture.target = static_cast<FixtureTarget>(target);
  const std::uint32_t expect = load_le32(raw.data() + 16);
  if (expect > static_cast<std::uint32_t>(FixtureExpect::kFailure)) {
    fixture_fail(path, "unknown expectation " + std::to_string(expect));
  }
  fixture.expect = static_cast<FixtureExpect>(expect);
  const std::uint64_t meta_len = load_le64(raw.data() + 24);
  if (meta_len > crc_at - kFixturePrefixBytes - 8) {
    fixture_fail(path, "implausible metadata length " +
                           std::to_string(meta_len));
  }
  StateReader meta(raw.data() + kFixturePrefixBytes,
                   static_cast<std::size_t>(meta_len), "fixture " + path);
  fixture.policy_spec = meta.str();
  fixture.predictor_spec = meta.str();
  fixture.source_name = meta.str();
  fixture.num_servers = meta.u32();
  if (fixture.num_servers == 0 || fixture.num_servers > kMaxFixtureServers) {
    meta.fail("implausible server count " +
              std::to_string(fixture.num_servers));
  }
  fixture.transfer_cost = meta.f64();
  fixture.initial_server = meta.i32();
  const std::uint32_t rates = meta.u32();
  // Bounded two ways: by the (already capped) server count, and by the
  // bytes actually present (8 per f64) — so a crafted count fails with a
  // diagnostic before it can drive a huge resize.
  if (rates > fixture.num_servers || rates > meta.remaining() / 8) {
    meta.fail("implausible storage-rate count");
  }
  fixture.storage_rates.resize(rates);
  for (std::uint32_t i = 0; i < rates; ++i) {
    fixture.storage_rates[i] = meta.f64();
  }
  fixture.base_seed = meta.u64();
  fixture.horizon = meta.f64();
  fixture.compute_lower_bound = meta.boolean();
  fixture.compress_checkpoints = meta.boolean();
  fixture.slice_first_event = meta.u64();
  fixture.slice_events = meta.u64();
  fixture.slice_begin_byte = meta.u64();
  fixture.slice_end_byte = meta.u64();
  const std::uint32_t cuts = meta.u32();
  if (cuts > meta.remaining() / 8) meta.fail("implausible cut count");
  fixture.cuts.resize(cuts);
  for (std::uint32_t i = 0; i < cuts; ++i) fixture.cuts[i] = meta.u64();
  fixture.aggregates.objects = meta.u64();
  fixture.aggregates.events = meta.u64();
  fixture.aggregates.num_local = meta.u64();
  fixture.aggregates.num_transfers = meta.u64();
  fixture.aggregates.online_cost = meta.f64();
  fixture.aggregates.lower_bound = meta.f64();
  fixture.signature = meta.str();
  meta.expect_end();

  const std::size_t blob_at = kFixturePrefixBytes +
                              static_cast<std::size_t>(meta_len);
  const std::uint64_t blob_len = load_le64(raw.data() + blob_at);
  if (blob_len > kMaxFixtureBytes ||
      blob_at + 8 + blob_len != crc_at) {
    fixture_fail(path, "implausible blob length " + std::to_string(blob_len));
  }
  fixture.blob.assign(raw.begin() + static_cast<std::ptrdiff_t>(blob_at + 8),
                      raw.begin() + static_cast<std::ptrdiff_t>(crc_at));
  return fixture;
}

std::string failure_signature(const std::string& message) {
  // Two normalizations: directory prefixes go (scratch dirs differ per
  // run; the basename — "slice.evlog" etc. — is stable and kept), and
  // digit runs collapse to '#' (block indices, byte offsets, and counts
  // legitimately drift as an input shrinks; the failure mode must not).
  std::string out;
  out.reserve(message.size());
  std::size_t token_start = 0;  // start of the current token in `out`
  bool in_digits = false;
  for (char c : message) {
    if (c == ' ') {
      token_start = out.size() + 1;
      in_digits = false;
      out.push_back(c);
      continue;
    }
    if (c == '/') {
      // Drop everything of this token so far: only the basename counts.
      out.resize(token_start);
      in_digits = false;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      if (!in_digits) out.push_back('#');
      in_digits = true;
      continue;
    }
    in_digits = false;
    out.push_back(c);
  }
  return out;
}

SessionCapture::SessionCapture(const CaptureOptions& options,
                               const SystemConfig& config,
                               const EngineOptions& engine_options,
                               std::uint64_t first_event)
    : options_(options) {
  REPL_REQUIRE_MSG(!options.path.empty(), "capture requires a fixture path");
  REPL_REQUIRE_MSG(first_event == 0,
                   "capture requires a fresh engine: a session resumed at "
                   "event " << first_event
                            << " depends on state the fixture cannot embed");
  REPL_REQUIRE_MSG(!engine_options.policy_spec.empty() &&
                       !engine_options.predictor_spec.empty(),
                   "capture requires a spec-built engine (EngineBuilder): "
                   "raw factory lambdas cannot be replayed from a fixture");
  fixture_.target = FixtureTarget::kServe;
  fixture_.expect = FixtureExpect::kParity;
  fixture_.policy_spec = engine_options.policy_spec;
  fixture_.predictor_spec = engine_options.predictor_spec;
  fixture_.source_name = options.source_name;
  fixture_.num_servers = static_cast<std::uint32_t>(config.num_servers);
  fixture_.transfer_cost = config.transfer_cost;
  fixture_.initial_server = config.initial_server;
  fixture_.storage_rates = config.storage_rates;
  fixture_.base_seed = engine_options.base_seed;
  fixture_.horizon = engine_options.horizon;
  fixture_.compute_lower_bound = engine_options.compute_lower_bound;
  fixture_.compress_checkpoints = engine_options.compress_checkpoints;
  fixture_.slice_first_event = first_event;
  scratch_log_ = options.path + ".slice.tmp";
  writer_ = std::make_unique<EventLogWriter>(scratch_log_,
                                             config.num_servers,
                                             /*num_objects=*/0,
                                             options.log_format);
}

SessionCapture::~SessionCapture() {
  // finish() owns the happy path; anything else is an abandoned capture
  // whose scratch file must not linger.
  writer_.reset();
  if (!scratch_log_.empty()) {
    std::error_code ec;
    std::filesystem::remove(scratch_log_, ec);
  }
}

void SessionCapture::record(const LogEvent* events, std::size_t count) {
  REPL_CHECK_MSG(writer_ != nullptr, "record after finish()");
  for (std::size_t i = 0; i < count; ++i) writer_->write(events[i]);
  events_ += count;
}

void SessionCapture::record_cut(std::uint64_t events_ingested) {
  fixture_.cuts.push_back(events_ingested);
}

void SessionCapture::set_byte_range(std::uint64_t begin, std::uint64_t end) {
  fixture_.slice_begin_byte = begin;
  fixture_.slice_end_byte = end;
}

void SessionCapture::finish(const EngineMetrics& metrics) {
  REPL_CHECK_MSG(writer_ != nullptr, "finish() called twice");
  writer_->close();
  writer_.reset();
  {
    std::ifstream slice(scratch_log_, std::ios::binary);
    if (!slice) fixture_fail(options_.path, "cannot reopen captured slice");
    fixture_.blob.assign((std::istreambuf_iterator<char>(slice)),
                         std::istreambuf_iterator<char>());
    if (slice.bad()) fixture_fail(options_.path, "captured slice read failed");
  }
  std::error_code ec;
  std::filesystem::remove(scratch_log_, ec);
  scratch_log_.clear();
  fixture_.slice_events = events_;
  fixture_.aggregates.objects = metrics.objects;
  fixture_.aggregates.events = metrics.events;
  fixture_.aggregates.num_local = metrics.num_local;
  fixture_.aggregates.num_transfers = metrics.num_transfers;
  fixture_.aggregates.online_cost = metrics.online_cost;
  fixture_.aggregates.lower_bound = metrics.lower_bound;
  write_fixture(options_.path, fixture_);
}

}  // namespace repl
