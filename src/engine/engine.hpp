// Streaming serving engine: online replication over an interleaved
// multi-object event stream.
//
// Where ParallelRunner consumes a fully materialized per-object workload,
// the engine ingests one globally time-ordered stream of (time, object,
// server) events — from an EventLogReader or any in-memory batch source —
// and serves each event online through a lazily instantiated per-object
// OnlineSimulation. Millions of objects fit without pre-splitting the
// stream into traces.
//
// Architecture:
//   * a sharded object table: object state lives in one of `num_shards`
//     hash maps, shard = mix(object_id) mod num_shards;
//   * an event batcher: ingest() routes a time-ordered batch to per-shard
//     inboxes and executes the non-empty shards in parallel on the
//     work-stealing ThreadPool. Within a shard events stay in stream
//     order, so per-object order is preserved; across shards objects are
//     independent (the paper's footnote 1 — the same argument that makes
//     ParallelRunner correct);
//   * a metrics reducer: finish() finalizes every object, reduces each
//     shard in ascending object id, then reduces globally in ascending
//     object id across shards.
//
// Determinism contract (same as run/parallel_runner.hpp): the global
// aggregates are bit-identical to running each object's subsequence
// through Simulator serially in object-id order, for every shard count
// and thread count. Shard tasks only touch their own shard; the global
// floating-point reduction happens on the calling thread over the
// id-sorted per-object results; per-object randomness derives from
// ParallelRunner::object_seed(base_seed, object_id).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "core/simulator.hpp"
#include "obs/trace.hpp"
#include "predictor/predictor.hpp"
#include "trace/event_log.hpp"

namespace repl {

namespace obs {
class MetricsRegistry;
}

class EventSource;
class ThreadPool;

/// Everything the factories get to build one object's components. There
/// is no trace — the engine is online — so predictors must be causal
/// (last-gap, EWMA history, fixed, ...), not trace-peeking ones.
struct EngineObjectContext {
  std::uint64_t object_id = 0;
  /// Deterministic per-object seed: a pure function of
  /// (EngineOptions::base_seed, object_id), independent of shard and
  /// thread counts.
  std::uint64_t seed = 0;
};

/// Invoked concurrently from shard tasks — must be thread-safe (draw
/// randomness only from the context's seed).
using EnginePolicyFactory = std::function<PolicyPtr(const EngineObjectContext&)>;
using EnginePredictorFactory =
    std::function<PredictorPtr(const EngineObjectContext&)>;

struct EngineOptions {
  /// Shards of the object table; also the parallelism grain. More shards
  /// than threads keeps the pool busy when object popularity is skewed.
  std::size_t num_shards = 64;
  /// 0 => all hardware threads; 1 => run shards inline on the calling
  /// thread (the serial reference path — no pool is created).
  int num_threads = 0;
  /// Per-object cost horizon, as SimulationOptions::horizon: negative
  /// means "that object's final request time".
  double horizon = -1.0;
  /// Also accumulate the streaming OPTL lower bound per object, enabling
  /// the ratio aggregate. Requires uniform unit storage rates.
  bool compute_lower_bound = true;
  /// Root of the per-object seed streams.
  std::uint64_t base_seed = 0x5eed5eed5eed5eedULL;
  /// Write snapshots with word-codec-compressed object records
  /// (checkpoint/snapshot.hpp format v3, codec 1). Purely an on-disk
  /// choice: restore() reads either transparently and the engine state
  /// is bit-identical.
  bool compress_checkpoints = false;
  /// Canonical component specs of the factories (api/registry.hpp),
  /// recorded in checkpoints so restore() can cross-check the resuming
  /// components — or reconstruct them from the snapshot alone (see
  /// EngineBuilder::restore). Empty when the engine was built from raw
  /// factory lambdas: the snapshot then carries no spec and restore()
  /// trusts the caller's factories unchecked.
  std::string policy_spec;
  std::string predictor_spec;
  /// Publish engine telemetry (event/batch/checkpoint counters, per-stage
  /// latency histograms, the active-object gauge) into this registry.
  /// Null (the default) disables telemetry entirely: the hot path then
  /// pays nothing beyond the EngineStats accumulators it always kept.
  /// Telemetry is observational only — aggregates are bit-identical with
  /// it on or off. The registry must outlive the engine.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One finalized object's contribution to the global reduction. Public
/// so distributed serving can ship per-object finals across process
/// boundaries and reduce them with reduce_object_finals — the same code
/// path finish() uses, which is what keeps a cross-partition reduce
/// bit-identical to a single-process serve.
struct EngineObjectFinal {
  std::uint64_t id = 0;
  std::size_t events = 0;
  std::size_t num_local = 0;
  std::size_t num_transfers = 0;
  double online_cost = 0.0;
  double lower_bound = 0.0;
};

/// Per-shard aggregate, reduced in ascending object id within the shard.
struct EngineShardMetrics {
  std::size_t objects = 0;
  std::size_t events = 0;
  std::size_t num_local = 0;
  std::size_t num_transfers = 0;
  double online_cost = 0.0;
  double lower_bound = 0.0;
};

/// Global aggregate, reduced in ascending object id across all shards —
/// the order a serial per-object Simulator sweep would use.
struct EngineMetrics {
  std::size_t objects = 0;
  std::size_t events = 0;
  std::size_t num_local = 0;
  std::size_t num_transfers = 0;
  double online_cost = 0.0;
  /// Sum of per-object OPTL bounds; 0 when compute_lower_bound is off.
  double lower_bound = 0.0;
  /// online / OPTL — an upper bound on the empirical competitive ratio.
  double ratio() const {
    return lower_bound > 0.0 ? online_cost / lower_bound : 1.0;
  }

  std::vector<EngineShardMetrics> shards;
};

/// Accumulates id-sorted per-object finals into global aggregates — the
/// exact floating-point order of the determinism contract (a serial
/// per-object sweep in ascending object id). finish() reduces through
/// this, and a distributed coordinator reduces its id-merged
/// cross-partition finals through the same function, so the two paths
/// cannot drift. Requires strictly increasing ids.
EngineMetrics reduce_object_finals(const std::vector<EngineObjectFinal>& finals);

/// Diagnostics accumulated across ingest()/finish().
struct EngineStats {
  int threads_used = 1;
  std::size_t batches = 0;
  std::uint64_t events_ingested = 0;
  std::uint64_t steals = 0;
  double ingest_seconds = 0.0;
  double finish_seconds = 0.0;
  /// Stage split of ingest_seconds: batch validation + shard routing on
  /// the calling thread vs. parallel shard execution.
  double route_seconds = 0.0;
  double execute_seconds = 0.0;
  /// serve() time spent waiting on the source for the next batch — file
  /// decode (what the prefetcher hides) or network admission.
  double source_wait_seconds = 0.0;
  /// Periodic checkpoints written by serve() and their cumulative cost.
  std::size_t checkpoints_written = 0;
  double checkpoint_seconds = 0.0;
  /// Bytes sealed into snapshots by checkpoint() (encode side of the
  /// codec; the decode side is the source's bytes_consumed).
  std::uint64_t checkpoint_bytes = 0;
};

/// Records one serve() session into a self-contained REPLFIXT fixture
/// (replay/fixture.hpp): the component specs, the served event slice
/// (re-encoded, so live network sessions capture too), every checkpoint
/// cut point, and the final aggregates. fixture_run() replays the file
/// and diffs aggregates bit-exactly — the capture-to-test workflow.
struct CaptureOptions {
  /// Fixture destination. Written only after finish() succeeds.
  std::string path;
  /// Wire format of the embedded event slice.
  EventLogFormat log_format = EventLogFormat::kCompressed;
  /// Label recorded in the fixture (the driving log path, a peer name —
  /// whatever identifies the source for humans).
  std::string source_name;
};

/// Controls one serve() drain, including periodic crash-safe snapshots.
struct ServeOptions {
  /// Events per ingest batch.
  std::size_t batch_events = std::size_t{1} << 16;
  /// Write a checkpoint after roughly every this many ingested events
  /// (snapshots land on the next batch boundary); 0 disables. Requires
  /// `checkpoint_path`.
  std::uint64_t checkpoint_every = 0;
  /// Destination for periodic checkpoints. Written atomically: the
  /// snapshot goes to "<path>.tmp" and is renamed over `path` only once
  /// sealed, so a crash mid-checkpoint never corrupts the last good one.
  std::string checkpoint_path;
  /// Double-buffered ingestion: a reader thread decodes batch N+1 while
  /// the shards execute batch N (engine/prefetch.hpp), overlapping log
  /// decode — significant for compressed logs — with serving. Delivers
  /// exactly the synchronous read order, so aggregates stay
  /// bit-identical; disable to keep serve() strictly single-threaded
  /// beyond the shard pool. File replay only — a network source does its
  /// own decode on its connection threads.
  bool async_ingest = true;
  /// Invoked after each periodic checkpoint has been renamed into place.
  /// Live-serving front-ends hang checkpoint-age reporting off this.
  std::function<void()> on_checkpoint;
  /// Print one progress line roughly every this many seconds of serve()
  /// wall time (events/sec since the last line, p50/p99 batch latency,
  /// checkpoint count); 0 disables. Purely observational — aggregates
  /// are bit-identical with reporting on or off.
  double stats_every = 0.0;
  /// Where stats lines go; stderr when unset.
  std::function<void(const std::string&)> stats_sink;
  /// Extra text appended to each stats line (queue depths, connection
  /// counts — whatever the front-end knows and the engine does not).
  std::function<std::string()> stats_extra;
  /// When set, serve() records this session as a replay fixture. Capture
  /// requires a fresh engine (resume_position() == 0): a restored
  /// engine's aggregates depend on state the fixture would not embed.
  /// Observational only — aggregates are bit-identical with capture on
  /// or off.
  std::optional<CaptureOptions> capture;
  /// Invoked after every ingested batch with the engine's running stats —
  /// the per-batch partial-aggregate hook distributed workers use to
  /// stream progress back to their coordinator. Observational only:
  /// aggregates are bit-identical with the hook set or not.
  std::function<void(const EngineStats&)> on_batch;
  /// When set, serve() moves the id-sorted per-object finals here at
  /// finish() time (see finish(finals)) — how a partition worker extracts
  /// the records the coordinator's cross-partition reduce consumes.
  std::vector<EngineObjectFinal>* collect_finals = nullptr;
  /// Distributed-tracing parent lookup: called per batch (only while the
  /// process Tracer is enabled) for the TraceContext the batch's spans
  /// should join — a net front-end returns its latest wire trace frame.
  /// Unset or invalid context ⇒ spans root a fresh local trace.
  /// Observational only: aggregates are bit-identical either way.
  std::function<obs::TraceContext()> trace_parent;
};

class StreamingEngine {
 public:
  StreamingEngine(SystemConfig config, EngineOptions options,
                  EnginePolicyFactory make_policy,
                  EnginePredictorFactory make_predictor);
  ~StreamingEngine();

  StreamingEngine(const StreamingEngine&) = delete;
  StreamingEngine& operator=(const StreamingEngine&) = delete;

  /// Serves one time-ordered batch of events. Batches must be mutually
  /// ordered too (the stream's global time order spans calls). Bad
  /// input that needs no per-object state to detect — out-of-order or
  /// non-positive times, servers outside the config — is rejected
  /// up front, before any engine state changes, so the caller may
  /// retry with corrected input. A failure *inside* shard execution
  /// (a per-object time tie, a policy invariant violation) has already
  /// advanced some object state: it poisons the engine and every later
  /// call fails fast. Lowest shard index wins when several shards fail.
  void ingest(const LogEvent* events, std::size_t count);
  void ingest(const std::vector<LogEvent>& events) {
    ingest(events.data(), events.size());
  }

  /// Drains any EventSource (engine/event_source.hpp) through ingest()
  /// and returns finish(). One ingestion path for every producer: file
  /// replay and live network ingest both land here. The source is
  /// attach()ed first — it binds the stream identity and positions
  /// itself past a restored engine's consumed prefix — then batches flow
  /// until the source ends, with periodic atomic checkpoints per
  /// `options`.
  EngineMetrics serve(EventSource& source, const ServeOptions& options);

  /// Drains `reader` through ingest() in batch-sized chunks and returns
  /// finish(). The whole log never resides in memory. Invariant header
  /// state (server count, batch geometry) is validated and hoisted once,
  /// before the read → ingest loop. On an engine restored from a
  /// checkpoint, serve() first seeks the reader forward to the snapshot's
  /// event offset, so passing the original log resumes mid-stream.
  EngineMetrics serve(EventLogReader& reader, const ServeOptions& options);
  EngineMetrics serve(EventLogReader& reader,
                      std::size_t batch_events = 1 << 16) {
    ServeOptions options;
    options.batch_events = batch_events;
    return serve(reader, options);
  }

  /// Freezes the full engine state — every object's policy, predictor,
  /// simulation, and lower-bound accumulators, plus the stream position —
  /// into a versioned snapshot at `path` (see checkpoint/snapshot.hpp).
  /// Object records are written in ascending object id, so the snapshot
  /// is canonical: independent of this engine's shard count and thread
  /// count, and restorable into any other shard/thread geometry.
  /// The engine remains serveable afterwards.
  void checkpoint(const std::string& path);

  /// Reconstructs an engine from a snapshot written by checkpoint().
  /// `config`, `options.compute_lower_bound`, `options.base_seed`, and
  /// the factories must match the checkpointing run (the snapshot
  /// cross-checks what it can and fails with a diagnostic otherwise);
  /// shard and thread counts are free to differ. Continue with serve()
  /// on the original log — final aggregates are bit-identical to an
  /// uninterrupted run.
  static std::unique_ptr<StreamingEngine> restore(
      const std::string& path, SystemConfig config, EngineOptions options,
      EnginePolicyFactory make_policy, EnginePredictorFactory make_predictor);

  /// Events already consumed from the driving log at the restore point
  /// (0 for an engine that was never restored): the record offset
  /// serve() seeks past before reading.
  std::uint64_t resume_position() const { return resume_events_; }

  /// Binds the engine to the identity of the log it is serving. serve()
  /// calls this automatically; manual ingest() loops should call it once
  /// before reading so checkpoints record the log fingerprint. On an
  /// engine restored from a snapshot that was bound, a mismatching
  /// header (different object/event counts) fails with a diagnostic —
  /// the cheap first line of the wrong-log defense.
  void bind_log(const EventLogHeader& header);

  /// Seeks `reader` forward to the snapshot's resume position. When the
  /// reader is still at the log start and the snapshot carries a rolling
  /// event hash (format v2), the skipped prefix is read and verified
  /// against it, so resuming against the wrong log fails with a
  /// diagnostic; otherwise this degrades to a positional skip. serve()
  /// calls this automatically; manual ingest() loops should call it
  /// after bind_log(). No-op on a fresh engine.
  void seek_to_resume(EventLogReader& reader);

  /// Finalizes every object (post-stream expiry flush, per-object cost
  /// extraction) and reduces the aggregates. No ingest() may follow.
  /// When `finals` is non-null the id-sorted per-object finals are moved
  /// into it — exactly the records the returned metrics were reduced
  /// from, so reduce_object_finals(*finals) reproduces them bit for bit.
  EngineMetrics finish(std::vector<EngineObjectFinal>* finals = nullptr);

  /// Objects instantiated so far.
  std::size_t object_count() const;

  const EngineStats& stats() const { return stats_; }
  const EngineOptions& options() const { return options_; }

 private:
  struct Shard;
  struct ObjectState;
  struct Telemetry;

  Shard& shard_for(std::uint64_t object_id);
  void run_shard_tasks(const std::vector<std::size_t>& shard_ids,
                       const std::function<void(Shard&)>& work);
  std::unique_ptr<ObjectState> make_object_state(std::uint64_t object_id);

  SystemConfig config_;
  EngineOptions options_;
  EnginePolicyFactory make_policy_;
  EnginePredictorFactory make_predictor_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Lazily created on the first multi-threaded batch; reused across
  /// batches so ingestion does not pay spawn/join churn.
  std::unique_ptr<ThreadPool> pool_;
  /// Registry-backed instruments, created iff options_.metrics is set.
  std::unique_ptr<Telemetry> telemetry_;
  EngineStats stats_;
  double last_batch_time_ = 0.0;
  bool any_event_ = false;
  bool finished_ = false;
  /// Stream position recorded in the snapshot this engine was restored
  /// from; 0 for a fresh engine.
  std::uint64_t resume_events_ = 0;
  /// Rolling hash over every ingested event (event_stream_hash), the
  /// snapshot↔log binding. Continues from the snapshot's value across a
  /// restore; invalid only when restored from a pre-v2 snapshot.
  std::uint64_t log_hash_ = kEventStreamHashSeed;
  bool log_hash_valid_ = true;
  /// Hash of the consumed prefix at the restore point, verified by
  /// seek_to_resume.
  std::uint64_t resume_hash_ = 0;
  bool resume_hash_valid_ = false;
  /// Identity of the bound log (bind_log / restored snapshot).
  bool log_bound_ = false;
  std::uint64_t log_num_objects_ = 0;  // 0 = unknown
  std::uint64_t log_num_events_ = EventLogHeader::kUnknownCount;
  /// Set when a shard task failed (object state partially advanced);
  /// every later ingest()/finish() fails fast. A batch rejected by the
  /// pre-routing validation does NOT poison the engine — no state was
  /// touched, so the caller may retry with corrected input.
  bool failed_ = false;
};

/// One-shot convenience: serves the log at `log_path` and returns the
/// aggregates (stats optionally copied out).
EngineMetrics serve_event_log(const std::string& log_path,
                              const SystemConfig& config,
                              const EngineOptions& options,
                              const EnginePolicyFactory& make_policy,
                              const EnginePredictorFactory& make_predictor,
                              EngineStats* stats = nullptr);

}  // namespace repl
