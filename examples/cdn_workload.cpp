// CDN scenario: a content-distribution workload with diurnal traffic over
// regional edge servers, served with a *causal* history-based predictor
// (no clairvoyance) — the realistic deployment of the paper's algorithm.
//
// Compares DRWP under the EWMA history predictor against: the same
// algorithm with an oracle (upper bound on what better ML could buy),
// the prediction-free conventional policy, Wang et al. 2021, and naive
// strategies — all normalized by the exact offline optimum. Also reports
// the measured accuracy of the history predictor.
//
//   ./build/examples/cdn_workload [--lambda=120] [--alpha=0.25] ...
#include <iostream>
#include <memory>

#include "analysis/ratio.hpp"
#include "api/registry.hpp"
#include "baselines/naive.hpp"
#include "baselines/wang2021.hpp"
#include "core/adaptive_drwp.hpp"
#include "core/drwp.hpp"
#include "extensions/multi_object.hpp"
#include "offline/opt_dp.hpp"
#include "offline/planned_policy.hpp"
#include "predictor/history.hpp"
#include "predictor/oracle.hpp"
#include "run/parallel_runner.hpp"
#include "trace/generators.hpp"
#include "trace/trace_stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

/// Measures how often a causal predictor agrees with the ground truth.
double measure_accuracy(const repl::Trace& trace, repl::Predictor& predictor,
                        double lambda) {
  predictor.reset();
  std::size_t correct = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    repl::PredictionQuery query;
    query.request_index = static_cast<long>(i);
    query.server = trace[i].server;
    query.time = trace[i].time;
    query.lambda = lambda;
    const bool forecast = predictor.predict(query).within_lambda;
    correct += forecast == repl::next_gap_within_lambda(trace, i, lambda);
  }
  return trace.empty() ? 1.0
                       : static_cast<double>(correct) /
                             static_cast<double>(trace.size());
}

}  // namespace

int main(int argc, char** argv) {
  repl::CliParser cli("cdn_workload",
                      "diurnal CDN workload with a causal predictor");
  cli.add_flag("servers", "8", "number of edge servers");
  cli.add_flag("days", "3", "workload length in days");
  cli.add_flag("lambda", "120", "transfer cost λ (seconds of storage)");
  cli.add_flag("alpha", "0.25", "distrust hyper-parameter");
  cli.add_flag("seed", "7", "workload seed");
  cli.add_flag("objects", "500", "objects in the multi-object fleet pass");
  cli.add_flag("fleet-threads", "0",
               "worker threads for the fleet pass (0 = all cores)");
  cli.add_flag("policy", "",
               "fleet policy component spec (default: drwp(alpha=<alpha>))");
  cli.add_flag("predictor", "",
               "fleet predictor component spec (default: history; "
               "clairvoyant specs like oracle are allowed here — the "
               "fleet pass is offline)");
  if (!cli.parse(argc, argv)) return 0;

  const int servers = static_cast<int>(cli.get_int("servers"));
  const double lambda = cli.get_double("lambda");
  const double alpha = cli.get_double("alpha");

  repl::DiurnalConfig workload;
  workload.base_rate = 0.03;
  workload.amplitude = 0.85;
  workload.horizon = 86400.0 * static_cast<double>(cli.get_int("days"));
  const repl::Trace trace = repl::generate_diurnal_trace(
      servers, workload, repl::ServerAssignment{}, cli.get_uint64("seed"));
  std::cout << "workload: " << repl::compute_trace_stats(trace).summary()
            << "\n";

  repl::SystemConfig config;
  config.num_servers = servers;
  config.transfer_cost = lambda;
  const double opt = repl::optimal_offline_cost(config, trace);
  std::cout << "offline optimum: " << opt << "\n";

  repl::HistoryPredictor history(servers);
  std::cout << "history predictor accuracy on this trace: "
            << 100.0 * measure_accuracy(trace, history, lambda) << "%\n\n";

  repl::Table table({"policy", "predictor", "cost", "ratio", "transfers"});
  auto add_row = [&](repl::ReplicationPolicy& policy,
                     repl::Predictor& predictor) {
    const repl::RatioReport report =
        repl::evaluate_policy(config, policy, trace, predictor, opt);
    table.add_row({report.policy_name, report.predictor_name,
                   repl::Table::cell(report.online_cost, 1),
                   repl::Table::cell(report.ratio, 4),
                   repl::Table::cell(report.num_transfers)});
  };

  repl::OraclePredictor oracle(trace);
  repl::HistoryPredictor ewma(servers);

  repl::DrwpPolicy drwp_history(alpha);
  add_row(drwp_history, ewma);
  repl::DrwpPolicy drwp_oracle(alpha);
  add_row(drwp_oracle, oracle);
  repl::AdaptiveDrwpPolicy adaptive(
      alpha, repl::AdaptiveDrwpPolicy::Options{/*beta=*/0.5,
                                               /*warmup_requests=*/100});
  repl::HistoryPredictor ewma2(servers);
  add_row(adaptive, ewma2);
  repl::ConventionalPolicy conventional;
  add_row(conventional, oracle);  // predictions ignored anyway
  repl::Wang2021Policy wang;
  add_row(wang, oracle);
  repl::FullReplicationPolicy full;
  add_row(full, oracle);
  repl::StaticPolicy pinned;
  add_row(pinned, oracle);
  // The hindsight-optimal strategy itself, replayed (ratio 1.0000 by
  // construction — a built-in sanity row).
  repl::PlannedPolicy offline_plan(
      trace, repl::OptimalDpSolver(config).solve_with_plan(trace));
  add_row(offline_plan, oracle);

  std::cout << table.str() << "\n"
            << "Reading: drwp+history is what you can deploy today; "
               "drwp+oracle bounds what a better\npredictor could buy; "
               "conventional is the best prediction-free ratio (2)."
            << "\n\n";

  // A whole-CDN pass: many independent objects sharded across cores by
  // the parallel runner, each served by DRWP with its own causal
  // predictor, normalized by the per-object offline optimum.
  const int objects = static_cast<int>(cli.get_int("objects"));
  repl::MultiObjectConfig fleet;
  fleet.num_objects = objects;
  fleet.num_servers = servers;
  fleet.horizon = workload.horizon;
  fleet.request_rate = 25.0 * static_cast<double>(objects) / fleet.horizon;
  const repl::MultiObjectWorkload fleet_workload =
      repl::generate_multi_object_workload(fleet, cli.get_uint64("seed") + 1);

  // Spec-driven: any registered policy×predictor pair — including the
  // clairvoyant predictors, since each object's trace is materialized
  // here — is one CLI flag away.
  std::string fleet_policy = cli.get_string("policy");
  if (fleet_policy.empty()) {
    fleet_policy = "drwp(alpha=" + cli.get_string("alpha") + ")";
  }
  std::string fleet_predictor = cli.get_string("predictor");
  if (fleet_predictor.empty()) fleet_predictor = "history";
  repl::ComponentRegistry& registry = repl::ComponentRegistry::instance();
  repl::MultiObjectResult fleet_result;
  repl::RunnerStats fleet_stats;
  try {
    fleet_policy = registry.canonical_string(repl::ComponentKind::kPolicy,
                                             fleet_policy);
    fleet_predictor = registry.canonical_string(
        repl::ComponentKind::kPredictor, fleet_predictor);
    fleet_result = repl::run_multi_object_spec(
        fleet_workload, config, fleet_policy, fleet_predictor,
        static_cast<int>(cli.get_int("fleet-threads")),
        0x5eed5eed5eed5eedULL, &fleet_stats);
  } catch (const repl::SpecError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cout << "fleet: " << objects << " objects under " << fleet_policy
            << " x " << fleet_predictor << "\n"
            << "fleet: " << fleet_stats.requests_simulated
            << " requests on " << fleet_stats.threads_used << " threads in "
            << fleet_stats.wall_seconds << " s (" << fleet_stats.steals
            << " steals)\n"
            << "fleet aggregate cost " << fleet_result.online_cost
            << ", offline optimum " << fleet_result.opt_cost
            << ", ratio " << fleet_result.ratio() << "\n";
  return 0;
}
