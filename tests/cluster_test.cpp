// Cluster tests: the deterministic partition function, the control
// protocol codec and its state machine, the per-partition checkpoint
// manifest, and — when the repl_cluster launcher is built — true
// multi-process serving: coordinator + N workers over unix sockets,
// bit-identical to single-process serve, including after SIGKILLing
// workers at every point of the kill matrix and respawning them from
// their per-partition checkpoints.
#include <signal.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/experiment.hpp"
#include "checkpoint/partition_manifest.hpp"
#include "cluster/control.hpp"
#include "cluster/coordinator.hpp"
#include "cluster/partition.hpp"
#include "codec/block.hpp"
#include "codec/crc32.hpp"
#include "codec/endian.hpp"
#include "engine/engine.hpp"
#include "obs/federation.hpp"
#include "obs/trace.hpp"
#include "trace/event_log.hpp"
#include "util/json.hpp"

namespace repl {
namespace {

constexpr int kServers = 5;
constexpr std::uint64_t kSeed = 0x5eed5eed5eed5eedULL;

#ifdef REPL_CLUSTER_BIN
constexpr const char* kClusterBin = REPL_CLUSTER_BIN;
#else
constexpr const char* kClusterBin = nullptr;
#endif

SystemConfig cluster_config() {
  SystemConfig config;
  config.num_servers = kServers;
  config.transfer_cost = 10.0;
  return config;
}

/// A deterministic interleaved stream: `count` events over `objects`
/// objects with strictly increasing times (the net_test generator).
std::vector<LogEvent> make_events(std::size_t count, std::uint64_t objects) {
  std::vector<LogEvent> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    events.push_back(LogEvent{0.25 * static_cast<double>(i + 1),
                              (i * 7919) % objects,
                              static_cast<std::uint32_t>((i * 31) % kServers)});
  }
  return events;
}

void expect_same(const EngineMetrics& a, const EngineMetrics& b) {
  EXPECT_EQ(a.objects, b.objects);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.num_local, b.num_local);
  EXPECT_EQ(a.num_transfers, b.num_transfers);
  EXPECT_EQ(a.online_cost, b.online_cost);
  EXPECT_EQ(a.lower_bound, b.lower_bound);
}

/// Asserts `fn` throws a std::exception whose message contains `needle`.
template <typename Fn>
void expect_throws_with(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected an exception containing \"" << needle << "\"";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "diagnostic was: " << e.what();
  }
}

// ---------------------------------------------------------------------
// Partition function

TEST(PartitionFunction, GoldenValuesPinTheMapping) {
  // kPartitionFunctionVersion = 1 IS these outputs. If this test fails,
  // the mapping changed: every existing manifest and cross-version
  // cluster would resume the wrong slice. Bump the version, don't
  // repin silently.
  struct Golden {
    std::uint64_t id;
    std::uint32_t p2, p4, p7;
  };
  constexpr Golden kGolden[] = {
      {0ULL, 1, 1, 2},
      {1ULL, 0, 0, 4},
      {2ULL, 0, 0, 5},
      {3ULL, 0, 0, 5},
      {42ULL, 0, 0, 1},
      {7919ULL, 1, 1, 6},
      {123456789ULL, 0, 2, 5},
      {18446744073709551615ULL, 1, 1, 5},
  };
  for (const Golden& g : kGolden) {
    EXPECT_EQ(partition_of(g.id, 2), g.p2) << "id " << g.id;
    EXPECT_EQ(partition_of(g.id, 4), g.p4) << "id " << g.id;
    EXPECT_EQ(partition_of(g.id, 7), g.p7) << "id " << g.id;
  }
  EXPECT_EQ(kPartitionFunctionVersion, 1u);
}

TEST(PartitionFunction, StableInRangeAndDegenerate) {
  for (std::uint32_t n : {1u, 2u, 3u, 4u, 7u, 64u}) {
    for (std::uint64_t id = 0; id < 4096; ++id) {
      const std::uint32_t p = partition_of(id, n);
      ASSERT_LT(p, n);
      // Pure function: repeated evaluation must agree.
      ASSERT_EQ(partition_of(id, n), p);
    }
  }
  // One partition degenerates to the single-process stream.
  for (std::uint64_t id = 0; id < 4096; ++id) {
    ASSERT_EQ(partition_of(id * 0x9e3779b97f4a7c15ULL, 1), 0u);
  }
}

TEST(PartitionFunction, SpreadsObjectsRoughlyEvenly) {
  constexpr std::uint32_t kPartitions = 4;
  constexpr std::uint64_t kIds = 100000;
  std::uint64_t counts[kPartitions] = {0, 0, 0, 0};
  for (std::uint64_t id = 0; id < kIds; ++id) {
    ++counts[partition_of(id, kPartitions)];
  }
  for (std::uint32_t p = 0; p < kPartitions; ++p) {
    // Uniform expectation is 25000; a mixed 64-bit hash stays well
    // inside +-20% at this sample size.
    EXPECT_GT(counts[p], kIds / kPartitions * 8 / 10) << "partition " << p;
    EXPECT_LT(counts[p], kIds / kPartitions * 12 / 10) << "partition " << p;
  }
}

TEST(PartitionFunction, VersionGuardFailsLoudly) {
  EXPECT_NO_THROW(
      require_partition_function_version(kPartitionFunctionVersion));
  EXPECT_THROW(
      require_partition_function_version(kPartitionFunctionVersion + 1),
      std::invalid_argument);
  EXPECT_THROW(require_partition_function_version(0), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Control protocol codec

ControlHello test_hello() {
  ControlHello hello;
  hello.partition_id = 1;
  hello.num_partitions = 4;
  hello.pf_version = kPartitionFunctionVersion;
  hello.num_servers = kServers;
  hello.resume_events = 77;
  hello.base_seed = kSeed;
  return hello;
}

/// Stream header + hello — the prefix every legal control stream shares.
std::vector<unsigned char> control_prefix(
    const ControlHello& hello = test_hello()) {
  std::vector<unsigned char> bytes;
  encode_control_header(bytes);
  encode_control_hello(hello, bytes);
  return bytes;
}

/// Feeds `bytes` in `chunk`-sized pieces through `assembler`.
std::vector<ControlMessage> feed_all(const std::vector<unsigned char>& bytes,
                                     std::size_t chunk,
                                     ClusterControlAssembler& assembler) {
  std::vector<ControlMessage> out;
  for (std::size_t at = 0; at < bytes.size();) {
    const std::size_t take = std::min(chunk, bytes.size() - at);
    assembler.feed(bytes.data() + at, take, out);
    at += take;
  }
  return out;
}

/// Asserts a fresh assembler rejects `bytes` with `needle` in the
/// diagnostic, at a few different chunkings.
void expect_control_rejects(const std::vector<unsigned char>& bytes,
                            const std::string& needle) {
  for (std::size_t chunk : {std::size_t{1}, std::size_t{7}, bytes.size()}) {
    ClusterControlAssembler assembler("test");
    expect_throws_with([&] { feed_all(bytes, chunk, assembler); }, needle);
  }
}

std::vector<EngineObjectFinal> make_finals(std::size_t count,
                                           std::uint64_t first_id) {
  std::vector<EngineObjectFinal> finals(count);
  for (std::size_t i = 0; i < count; ++i) {
    finals[i].id = first_id + 3 * i;
    finals[i].events = 10 + i;
    finals[i].num_local = 7 + i;
    finals[i].num_transfers = 3;
    finals[i].online_cost = 1.25 * static_cast<double>(i + 1);
    finals[i].lower_bound = 0.5 * static_cast<double>(i + 1);
  }
  return finals;
}

TEST(ControlCodec, RoundTripsAFullSessionAtEveryChunking) {
  const ControlHello hello = test_hello();
  const std::vector<EngineObjectFinal> finals = make_finals(10, 100);
  ControlSummary summary;
  summary.objects = 10;
  summary.events = 145;
  summary.num_local = 115;
  summary.num_transfers = 30;
  summary.online_cost = 68.75;
  summary.lower_bound = 27.5;

  std::vector<unsigned char> bytes = control_prefix(hello);
  encode_control_progress(ControlProgress{100, 1}, bytes);
  encode_control_checkpoint(ControlCheckpoint{100}, bytes);
  encode_control_finals(finals.data(), 6, bytes);
  encode_control_finals(finals.data() + 6, 4, bytes);
  encode_control_summary(summary, bytes);

  for (std::size_t chunk : {std::size_t{1}, std::size_t{5}, bytes.size()}) {
    ClusterControlAssembler assembler("test");
    const std::vector<ControlMessage> messages =
        feed_all(bytes, chunk, assembler);
    ASSERT_EQ(messages.size(), 6u) << "chunk " << chunk;
    EXPECT_TRUE(assembler.at_boundary());
    EXPECT_TRUE(assembler.complete());
    EXPECT_EQ(assembler.messages_decoded(), 6u);
    EXPECT_EQ(assembler.finals_records(), 10u);
    EXPECT_EQ(assembler.bytes_consumed(), bytes.size());

    EXPECT_EQ(messages[0].type, ControlType::kHello);
    EXPECT_EQ(messages[0].hello.partition_id, hello.partition_id);
    EXPECT_EQ(messages[0].hello.num_partitions, hello.num_partitions);
    EXPECT_EQ(messages[0].hello.pf_version, hello.pf_version);
    EXPECT_EQ(messages[0].hello.num_servers, hello.num_servers);
    EXPECT_EQ(messages[0].hello.resume_events, hello.resume_events);
    EXPECT_EQ(messages[0].hello.base_seed, hello.base_seed);

    EXPECT_EQ(messages[1].type, ControlType::kProgress);
    EXPECT_EQ(messages[1].progress.events_ingested, 100u);
    EXPECT_EQ(messages[1].progress.batches, 1u);
    EXPECT_EQ(messages[2].type, ControlType::kCheckpoint);
    EXPECT_EQ(messages[2].checkpoint.events_ingested, 100u);

    ASSERT_EQ(messages[3].type, ControlType::kFinals);
    ASSERT_EQ(messages[4].type, ControlType::kFinals);
    std::vector<EngineObjectFinal> got = messages[3].finals;
    got.insert(got.end(), messages[4].finals.begin(),
               messages[4].finals.end());
    ASSERT_EQ(got.size(), finals.size());
    for (std::size_t i = 0; i < finals.size(); ++i) {
      EXPECT_EQ(got[i].id, finals[i].id);
      EXPECT_EQ(got[i].events, finals[i].events);
      EXPECT_EQ(got[i].num_local, finals[i].num_local);
      EXPECT_EQ(got[i].num_transfers, finals[i].num_transfers);
      EXPECT_EQ(got[i].online_cost, finals[i].online_cost);
      EXPECT_EQ(got[i].lower_bound, finals[i].lower_bound);
    }

    EXPECT_EQ(messages[5].type, ControlType::kSummary);
    EXPECT_EQ(messages[5].summary.objects, summary.objects);
    EXPECT_EQ(messages[5].summary.events, summary.events);
    EXPECT_EQ(messages[5].summary.online_cost, summary.online_cost);
    EXPECT_EQ(messages[5].summary.lower_bound, summary.lower_bound);
  }
}

TEST(ControlCodec, RejectsBadStreamHeader) {
  std::vector<unsigned char> bad_magic = control_prefix();
  bad_magic[0] ^= 0xff;
  expect_control_rejects(bad_magic, "bad control stream magic");

  std::vector<unsigned char> bad_version = control_prefix();
  bad_version[8] = 9;
  expect_control_rejects(bad_version, "unsupported control stream version 9");

  std::vector<unsigned char> bad_reserved = control_prefix();
  bad_reserved[12] = 1;
  expect_control_rejects(bad_reserved,
                         "control stream header reserved field is not zero");
}

TEST(ControlCodec, HelloMustOpenTheStreamExactlyOnce) {
  std::vector<unsigned char> no_hello;
  encode_control_header(no_hello);
  encode_control_progress(ControlProgress{10, 1}, no_hello);
  expect_control_rejects(no_hello,
                         "progress before hello (hello must open the stream)");

  std::vector<unsigned char> twice = control_prefix();
  encode_control_hello(test_hello(), twice);
  expect_control_rejects(twice, "duplicate hello");
}

TEST(ControlCodec, RejectsInvalidHelloGeometry) {
  ControlHello zero_parts = test_hello();
  zero_parts.partition_id = 0;
  zero_parts.num_partitions = 0;
  expect_control_rejects(control_prefix(zero_parts),
                         "hello declares 0 partitions");

  ControlHello out_of_range = test_hello();
  out_of_range.partition_id = 4;
  expect_control_rejects(control_prefix(out_of_range),
                         "hello partition id 4 out of range [0, 4)");

  ControlHello zero_servers = test_hello();
  zero_servers.num_servers = 0;
  expect_control_rejects(control_prefix(zero_servers),
                         "hello declares 0 servers");
}

TEST(ControlCodec, CountersMustNotRegress) {
  // The hello's resume position is the floor both counters start from.
  std::vector<unsigned char> below_resume = control_prefix();
  encode_control_progress(ControlProgress{50, 1}, below_resume);
  expect_control_rejects(below_resume, "progress regressed");

  std::vector<unsigned char> events_back = control_prefix();
  encode_control_progress(ControlProgress{200, 2}, events_back);
  encode_control_progress(ControlProgress{100, 3}, events_back);
  expect_control_rejects(events_back, "progress regressed: 100 events after");

  std::vector<unsigned char> batches_back = control_prefix();
  encode_control_progress(ControlProgress{200, 2}, batches_back);
  encode_control_progress(ControlProgress{300, 1}, batches_back);
  expect_control_rejects(batches_back,
                         "progress batch count regressed: 1 after");

  std::vector<unsigned char> ckpt_back = control_prefix();
  encode_control_checkpoint(ControlCheckpoint{500}, ckpt_back);
  encode_control_checkpoint(ControlCheckpoint{400}, ckpt_back);
  expect_control_rejects(ckpt_back,
                         "checkpoint position regressed: 400 events after");

  // Equal repeats are legal (non-strict monotonicity): a worker may
  // re-announce its position.
  std::vector<unsigned char> equal = control_prefix();
  encode_control_progress(ControlProgress{200, 2}, equal);
  encode_control_progress(ControlProgress{200, 2}, equal);
  encode_control_checkpoint(ControlCheckpoint{200}, equal);
  encode_control_checkpoint(ControlCheckpoint{200}, equal);
  ClusterControlAssembler assembler("test");
  EXPECT_EQ(feed_all(equal, 13, assembler).size(), 5u);
}

TEST(ControlCodec, FinalsMustBeSortedAndSummaryMustAccount) {
  const std::vector<EngineObjectFinal> seven = make_finals(1, 7);
  const std::vector<EngineObjectFinal> three = make_finals(1, 3);

  std::vector<unsigned char> unsorted = control_prefix();
  encode_control_finals(seven.data(), 1, unsorted);
  encode_control_finals(three.data(), 1, unsorted);
  expect_control_rejects(unsorted,
                         "finals id 3 does not increase past 7 (finals must "
                         "be id-sorted)");

  std::vector<unsigned char> duplicate = control_prefix();
  encode_control_finals(seven.data(), 1, duplicate);
  encode_control_finals(seven.data(), 1, duplicate);
  expect_control_rejects(duplicate, "does not increase past 7");

  const std::vector<EngineObjectFinal> finals = make_finals(2, 10);
  std::vector<unsigned char> short_count = control_prefix();
  encode_control_finals(finals.data(), 2, short_count);
  ControlSummary summary;
  summary.objects = 3;
  encode_control_summary(summary, short_count);
  expect_control_rejects(short_count,
                         "summary claims 3 objects but 2 finals records "
                         "were streamed");

  std::vector<unsigned char> progress_after = control_prefix();
  encode_control_finals(finals.data(), 2, progress_after);
  encode_control_progress(ControlProgress{900, 9}, progress_after);
  expect_control_rejects(
      progress_after,
      "progress after finals began (only finals/summary may follow)");
}

TEST(ControlCodec, SummaryIsTerminal) {
  const std::vector<EngineObjectFinal> finals = make_finals(2, 10);
  std::vector<unsigned char> bytes = control_prefix();
  encode_control_finals(finals.data(), 2, bytes);
  ControlSummary summary;
  summary.objects = 2;
  encode_control_summary(summary, bytes);
  encode_control_progress(ControlProgress{900, 9}, bytes);
  expect_control_rejects(bytes,
                         "progress after summary (summary is terminal)");
}

/// A raw control frame: aux = (type << 24) | count over `body`.
std::vector<unsigned char> raw_control_frame(
    std::uint32_t type, std::uint32_t count,
    const std::vector<unsigned char>& body) {
  std::vector<unsigned char> frame(kBlockFrameBytes + body.size());
  encode_block_frame(frame.data(), (type << 24) | count, body.data(),
                     body.size());
  std::copy(body.begin(), body.end(), frame.begin() + kBlockFrameBytes);
  return frame;
}

TEST(ControlCodec, MetricsRoundTripAndObeyTheStateMachine) {
  ControlMetrics snapshot;
  snapshot.trace_id = 0x1111222233334444ULL;
  snapshot.span_id = 0x5555666677778888ULL;
  obs::Sample counter;
  counter.name = "repl_events_ingested_total";
  counter.help = "Events folded into per-object deques";
  counter.type = obs::MetricType::kCounter;
  counter.counter_value = 123456789;
  counter.value = 123456789.0;
  obs::Sample gauge;
  gauge.name = "repl_net_events_queued";
  gauge.type = obs::MetricType::kGauge;
  gauge.value = 17.5;
  gauge.labels = {{"listener", "unix"}};
  snapshot.samples = {counter, gauge};

  std::vector<unsigned char> bytes = control_prefix();
  encode_control_metrics(snapshot, bytes);
  for (std::size_t chunk : {std::size_t{1}, std::size_t{7}, bytes.size()}) {
    ClusterControlAssembler assembler("test");
    const std::vector<ControlMessage> messages =
        feed_all(bytes, chunk, assembler);
    ASSERT_EQ(messages.size(), 2u) << "chunk " << chunk;
    ASSERT_EQ(messages[1].type, ControlType::kMetrics);
    EXPECT_EQ(messages[1].metrics.trace_id, snapshot.trace_id);
    EXPECT_EQ(messages[1].metrics.span_id, snapshot.span_id);
    ASSERT_EQ(messages[1].metrics.samples.size(), 2u);
    EXPECT_EQ(messages[1].metrics.samples[0].name, counter.name);
    EXPECT_EQ(messages[1].metrics.samples[0].counter_value,
              counter.counter_value);
    EXPECT_EQ(messages[1].metrics.samples[1].name, gauge.name);
    EXPECT_EQ(messages[1].metrics.samples[1].value, gauge.value);
    ASSERT_EQ(messages[1].metrics.samples[1].labels.size(), 1u);
    EXPECT_EQ(messages[1].metrics.samples[1].labels[0].second, "unix");
  }

  // Metrics frames are rejected once the finals sequence has begun —
  // the worker must settle its snapshot before draining.
  const std::vector<EngineObjectFinal> finals = make_finals(1, 5);
  std::vector<unsigned char> late = control_prefix();
  encode_control_finals(finals.data(), 1, late);
  encode_control_metrics(snapshot, late);
  expect_control_rejects(late, "metrics after finals began");

  // The frame's item count must equal the encoded sample count.
  std::vector<unsigned char> body(16, 0);
  obs::encode_samples(snapshot.samples, body);
  std::vector<unsigned char> miscounted = control_prefix();
  const std::vector<unsigned char> frame = raw_control_frame(
      static_cast<std::uint32_t>(ControlType::kMetrics), 3, body);
  miscounted.insert(miscounted.end(), frame.begin(), frame.end());
  expect_control_rejects(miscounted, "truncated");

  // A body shorter than the trace prefix can hold no samples at all.
  std::vector<unsigned char> stub = control_prefix();
  const std::vector<unsigned char> short_frame = raw_control_frame(
      static_cast<std::uint32_t>(ControlType::kMetrics), 0,
      std::vector<unsigned char>(8));
  stub.insert(stub.end(), short_frame.begin(), short_frame.end());
  expect_control_rejects(stub, "metrics body is 8 bytes");
}

TEST(ControlCodec, RejectsMalformedFrames) {
  const auto append = [](std::vector<unsigned char>& out,
                         const std::vector<unsigned char>& frame) {
    out.insert(out.end(), frame.begin(), frame.end());
  };

  // Flipped payload byte: hello body starts at 16 (header) + 16 (frame).
  std::vector<unsigned char> bad_payload = control_prefix();
  bad_payload[kControlHeaderBytes + kBlockFrameBytes] ^= 0x01;
  expect_control_rejects(bad_payload, "control payload CRC mismatch");

  // Flipped frame-header byte.
  std::vector<unsigned char> bad_frame = control_prefix();
  bad_frame[kControlHeaderBytes] ^= 0x01;
  expect_control_rejects(bad_frame, "frame CRC mismatch");

  // An implausible body length with a freshly valid frame CRC must be
  // refused before any allocation.
  std::vector<unsigned char> huge = control_prefix();
  {
    unsigned char header[kBlockFrameBytes];
    store_le32(header, static_cast<std::uint32_t>(kMaxControlBodyBytes + 1));
    store_le32(header + 4,
               static_cast<std::uint32_t>(ControlType::kProgress) << 24);
    store_le32(header + 8, 0);
    store_le32(header + 12, crc32c(header, 12));
    huge.insert(huge.end(), header, header + kBlockFrameBytes);
  }
  expect_control_rejects(huge, "implausible frame length");

  // Unknown message type (7 is the first past kMetrics).
  std::vector<unsigned char> unknown = control_prefix();
  append(unknown, raw_control_frame(7, 0, std::vector<unsigned char>(8)));
  expect_control_rejects(unknown, "unknown control message type 7");

  // A finals frame with no records.
  std::vector<unsigned char> empty_finals = control_prefix();
  append(empty_finals,
         raw_control_frame(static_cast<std::uint32_t>(ControlType::kFinals),
                           0, {}));
  expect_control_rejects(empty_finals, "finals frame holds no records");

  // Item counts belong to finals frames only.
  std::vector<unsigned char> counted_progress = control_prefix();
  append(counted_progress,
         raw_control_frame(static_cast<std::uint32_t>(ControlType::kProgress),
                           1, std::vector<unsigned char>(16)));
  expect_control_rejects(counted_progress,
                         "progress frame declares item count 1 (only finals "
                         "frames carry items)");

  // Wrong body size for the declared type.
  std::vector<unsigned char> short_body = control_prefix();
  append(short_body,
         raw_control_frame(static_cast<std::uint32_t>(ControlType::kProgress),
                           0, std::vector<unsigned char>(12)));
  expect_control_rejects(short_body, "progress body is 12 bytes, expected 16");
}

TEST(ControlCodec, DeadAfterFailureAndTruncationIsVisible) {
  std::vector<unsigned char> bad = control_prefix();
  bad[0] ^= 0xff;
  ClusterControlAssembler assembler("test");
  std::vector<ControlMessage> out;
  EXPECT_THROW(assembler.feed(bad.data(), bad.size(), out),
               std::runtime_error);
  expect_throws_with([&] { assembler.feed(bad.data(), 1, out); },
                     "control stream already failed");

  // A truncated-but-clean prefix never throws; it is visibly incomplete.
  std::vector<unsigned char> whole = control_prefix();
  encode_control_progress(ControlProgress{100, 1}, whole);
  for (std::size_t cut :
       {std::size_t{8}, kControlHeaderBytes, kControlHeaderBytes + 5,
        kControlHeaderBytes + kBlockFrameBytes + 32, whole.size() - 1,
        whole.size()}) {
    ClusterControlAssembler partial("test");
    std::vector<ControlMessage> messages;
    partial.feed(whole.data(), cut, messages);
    EXPECT_FALSE(partial.complete()) << "cut " << cut;
    const bool boundary =
        cut == kControlHeaderBytes ||
        cut == kControlHeaderBytes + kBlockFrameBytes + 32 ||
        cut == whole.size();
    EXPECT_EQ(partial.at_boundary(), boundary) << "cut " << cut;
  }
}

// ---------------------------------------------------------------------
// Partition manifest

class ManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("repl_pman_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string file(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

PartitionManifest test_manifest() {
  PartitionManifest m;
  m.partition_id = 2;
  m.num_partitions = 4;
  m.pf_version = kPartitionFunctionVersion;
  m.num_servers = kServers;
  m.base_seed = kSeed;
  m.events_ingested = 123456;
  return m;
}

TEST_F(ManifestTest, RoundTripsAndNamesItself) {
  EXPECT_EQ(partition_manifest_path("/x/part2.ckpt"), "/x/part2.ckpt.pman");

  const std::string path = file("part2.ckpt.pman");
  const PartitionManifest want = test_manifest();
  write_partition_manifest(path, want);
  const PartitionManifest got = read_partition_manifest(path);
  EXPECT_EQ(got.partition_id, want.partition_id);
  EXPECT_EQ(got.num_partitions, want.num_partitions);
  EXPECT_EQ(got.pf_version, want.pf_version);
  EXPECT_EQ(got.num_servers, want.num_servers);
  EXPECT_EQ(got.base_seed, want.base_seed);
  EXPECT_EQ(got.events_ingested, want.events_ingested);
}

TEST_F(ManifestTest, WrongSliceFailsLoudly) {
  const PartitionManifest m = test_manifest();
  EXPECT_NO_THROW(require_manifest_matches(m, 2, 4, kServers));
  EXPECT_THROW(require_manifest_matches(m, 1, 4, kServers),
               std::invalid_argument);
  EXPECT_THROW(require_manifest_matches(m, 2, 8, kServers),
               std::invalid_argument);
  EXPECT_THROW(require_manifest_matches(m, 2, 4, kServers + 1),
               std::invalid_argument);
  PartitionManifest wrong_pf = m;
  wrong_pf.pf_version = kPartitionFunctionVersion + 1;
  EXPECT_THROW(require_manifest_matches(wrong_pf, 2, 4, kServers),
               std::invalid_argument);
}

TEST_F(ManifestTest, RejectsMissingTruncatedAndCorruptFiles) {
  EXPECT_THROW(read_partition_manifest(file("absent.pman")),
               std::runtime_error);

  const std::string path = file("m.pman");
  write_partition_manifest(path, test_manifest());

  // Truncation.
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    ASSERT_EQ(bytes.size(), PartitionManifest::kSize);
    std::ofstream out(file("short.pman"), std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 4));
  }
  EXPECT_THROW(read_partition_manifest(file("short.pman")),
               std::runtime_error);

  // A flipped payload byte must trip the CRC.
  {
    std::fstream io(path, std::ios::binary | std::ios::in | std::ios::out);
    char byte = 0;
    io.seekg(40);  // events_ingested
    io.get(byte);
    byte = static_cast<char>(byte ^ 0x01);
    io.seekp(40);
    io.put(byte);
  }
  EXPECT_THROW(read_partition_manifest(path), std::runtime_error);
}

// ---------------------------------------------------------------------
// Multi-process cluster serving (needs the repl_cluster launcher)

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (kClusterBin == nullptr) {
      GTEST_SKIP() << "repl_cluster launcher not built "
                      "(REPL_BUILD_EXAMPLES=OFF)";
    }
    dir_ = std::filesystem::temp_directory_path() /
           ("repl_clu_" + std::string(::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    if (dir_.empty()) return;
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string write_log(const std::vector<LogEvent>& events) const {
    const std::string path = (dir_ / "stream.evlog").string();
    EventLogWriter writer(path, kServers, 0, EventLogFormat::kCompressed);
    for (const LogEvent& event : events) writer.write(event);
    writer.close();
    return path;
  }

  /// A fresh subdirectory per cluster run, so one run's sockets and
  /// checkpoints cannot leak into the next.
  std::string run_dir(const std::string& name) const {
    const std::filesystem::path sub = dir_ / name;
    std::filesystem::create_directories(sub);
    return sub.string();
  }

  std::filesystem::path dir_;
};

/// The single-process ground truth: the same engine stack serving the
/// same log in one process.
EngineMetrics single_reference(const std::string& log_path) {
  EngineOptions options;
  options.base_seed = kSeed;
  options.compute_lower_bound = true;
  EngineBuilder builder;
  builder.config(cluster_config())
      .options(options)
      .policy("drwp(alpha=0.3)")
      .predictor("last_gap");
  auto engine = builder.build();
  EventLogReader reader(log_path);
  return engine->serve(reader, ServeOptions{});
}

/// SIGKILLs one worker once, at an exact partition-local routed count,
/// from the coordinator's progress hook.
struct KillPlan {
  std::uint32_t partition = 0;
  std::uint64_t at = 0;
  ClusterCoordinator* coordinator = nullptr;
  std::atomic<bool> fired{false};
};

ClusterServeResult run_cluster(const std::string& log_path,
                               const std::string& socket_dir,
                               std::uint32_t partitions,
                               std::uint64_t checkpoint_every,
                               std::size_t batch_events,
                               KillPlan* kill = nullptr) {
  ClusterCoordinatorOptions options;
  options.num_partitions = partitions;
  options.worker_binary = kClusterBin == nullptr ? "" : kClusterBin;
  options.socket_dir = socket_dir;
  options.config = cluster_config();
  options.base_seed = kSeed;
  // Deliberately a different geometry from the reference serve: parity
  // must hold at any shard/thread count.
  options.worker_shards = 8;
  options.checkpoint_every = checkpoint_every;
  options.batch_events = batch_events;
  if (kill != nullptr) {
    options.on_progress = [kill](std::uint32_t partition,
                                 std::uint64_t routed) {
      if (partition != kill->partition || routed < kill->at) return;
      if (kill->fired.exchange(true)) return;
      const int pid = kill->coordinator->worker_pid(partition);
      if (pid > 0) ::kill(pid, SIGKILL);
    };
  }
  ClusterCoordinator coordinator(options);
  if (kill != nullptr) kill->coordinator = &coordinator;
  return coordinator.serve_log(log_path);
}

/// Partition-local event counts — the denominators for kill cuts.
std::vector<std::uint64_t> slice_counts(const std::vector<LogEvent>& events,
                                        std::uint32_t partitions) {
  std::vector<std::uint64_t> counts(partitions, 0);
  for (const LogEvent& event : events) {
    ++counts[partition_of(event.object, partitions)];
  }
  return counts;
}

TEST_F(ClusterTest, MultiPartitionServeIsBitIdenticalToSingleProcess) {
  const std::vector<LogEvent> events = make_events(20000, 257);
  const std::string log = write_log(events);
  const EngineMetrics want = single_reference(log);
  ASSERT_EQ(want.events, events.size());

  for (std::uint32_t partitions : {1u, 2u, 4u}) {
    SCOPED_TRACE("partitions=" + std::to_string(partitions));
    const ClusterServeResult result =
        run_cluster(log, run_dir("p" + std::to_string(partitions)),
                    partitions, /*checkpoint_every=*/0,
                    /*batch_events=*/1024);
    expect_same(want, result.metrics);
    EXPECT_EQ(result.respawns, 0u);
    ASSERT_EQ(result.summaries.size(), partitions);
    std::uint64_t events_sum = 0;
    std::uint64_t objects_sum = 0;
    for (const ControlSummary& summary : result.summaries) {
      events_sum += summary.events;
      objects_sum += summary.objects;
    }
    EXPECT_EQ(events_sum, want.events);
    EXPECT_EQ(objects_sum, want.objects);
  }
}

TEST_F(ClusterTest, FederationAndTracingCoverTheWholeServe) {
  // One cluster serve with tracing on: the coordinator's federated
  // /metrics view must settle at the workers' true per-partition totals,
  // /healthz must report every partition, and the merged Chrome trace
  // must hold spans from the coordinator and both worker processes.
  const std::vector<LogEvent> events = make_events(12000, 101);
  const std::string log = write_log(events);
  const std::string dir = run_dir("fed");
  const std::string coord_part = dir + "/trace.coord.jsonl";

  ClusterCoordinatorOptions options;
  options.num_partitions = 2;
  options.worker_binary = kClusterBin == nullptr ? "" : kClusterBin;
  options.socket_dir = dir;
  options.config = cluster_config();
  options.base_seed = kSeed;
  options.worker_shards = 8;
  options.checkpoint_every = 1024;
  options.batch_events = 512;
  options.trace_dir = dir;

  obs::Tracer::global().start(coord_part, "coordinator-test");
  ClusterCoordinator coordinator(options);
  const ClusterServeResult result = coordinator.serve_log(log);
  obs::Tracer::global().stop();
  expect_same(single_reference(log), result.metrics);

  // Each worker's last metrics snapshot lands before its finals, so the
  // federated ingest counters equal the per-partition event totals and
  // sum to the whole log — the same number a single process would count.
  std::uint64_t fed_sum = 0;
  for (std::uint32_t p = 0; p < options.num_partitions; ++p) {
    const std::uint64_t ingested =
        coordinator.federated_counter(p, "repl_events_ingested_total");
    EXPECT_EQ(ingested, result.summaries[p].events) << "partition " << p;
    fed_sum += ingested;
  }
  EXPECT_EQ(fed_sum, events.size());

  // The federated samples carry partition labels plus the derived
  // cluster gauges.
  bool saw_labeled = false;
  bool saw_floor = false;
  for (const obs::Sample& sample : coordinator.federated_samples()) {
    if (sample.name == "repl_events_ingested_total") {
      for (const auto& [key, value] : sample.labels) {
        if (key == "partition") saw_labeled = true;
      }
    }
    if (sample.name == "repl_cluster_slowest_partition_events") {
      saw_floor = true;
      EXPECT_GT(sample.value, 0.0);
    }
  }
  EXPECT_TRUE(saw_labeled);
  EXPECT_TRUE(saw_floor);

  JsonWriter health;
  health.begin_object();
  coordinator.health_json(health);
  health.end_object();
  const std::string health_doc = health.str();
  EXPECT_NE(health_doc.find("\"partitions\":["), std::string::npos);
  EXPECT_NE(health_doc.find("\"state\":\"alive\""), std::string::npos);
  EXPECT_NE(health_doc.find("\"events_routed\":"), std::string::npos);

  // Merge the coordinator's part with every worker part: the timeline
  // must parse and contain spans from all three processes.
  std::vector<std::string> parts = coordinator.trace_parts();
  EXPECT_EQ(parts.size(), 2u);  // one incarnation per partition
  parts.push_back(coord_part);
  const std::string merged_path = dir + "/trace.json";
  const std::size_t merged = obs::merge_trace_parts(parts, merged_path);
  EXPECT_GT(merged, 0u);
  std::ifstream in(merged_path);
  std::string trace_doc((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  EXPECT_NE(trace_doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_doc.find("route.batch"), std::string::npos);
  EXPECT_NE(trace_doc.find("engine.ingest"), std::string::npos);
  EXPECT_NE(trace_doc.find("worker-p0"), std::string::npos);
  EXPECT_NE(trace_doc.find("worker-p1"), std::string::npos);
}

TEST_F(ClusterTest, KillRespawnMatrixStaysBitIdentical) {
  // The satellite matrix: SIGKILL one worker at 1/4, 1/2, and 3/4 of its
  // slice, at 2 and 4 partitions, with periodic per-partition
  // checkpoints; the respawned worker resumes from its snapshot, the
  // coordinator replays the tail, and the aggregates must not notice.
  const std::vector<LogEvent> events = make_events(20000, 257);
  const std::string log = write_log(events);
  const EngineMetrics want = single_reference(log);

  for (std::uint32_t partitions : {2u, 4u}) {
    const std::vector<std::uint64_t> counts =
        slice_counts(events, partitions);
    const std::uint32_t victim = partitions - 1;
    for (int quarter : {1, 2, 3}) {
      SCOPED_TRACE("partitions=" + std::to_string(partitions) +
                   " cut=" + std::to_string(quarter) + "/4");
      KillPlan plan;
      plan.partition = victim;
      plan.at = std::max<std::uint64_t>(
          1, counts[victim] * static_cast<std::uint64_t>(quarter) / 4);
      std::string dir_name = "k";
      dir_name += std::to_string(partitions);
      dir_name += 'q';
      dir_name += std::to_string(quarter);
      const ClusterServeResult result = run_cluster(
          log, run_dir(dir_name), partitions, /*checkpoint_every=*/1024,
          /*batch_events=*/512, &plan);
      EXPECT_TRUE(plan.fired.load());
      EXPECT_GE(result.respawns, 1u);
      expect_same(want, result.metrics);
    }
  }
}

TEST_F(ClusterTest, WorkerDeathMidBatchWithoutCheckpointReplaysTheSlice) {
  // No checkpoints at all: the respawned worker restarts from zero and
  // the coordinator must replay its whole slice. Small batches put the
  // kill mid-stream with frames in flight.
  const std::vector<LogEvent> events = make_events(12000, 101);
  const std::string log = write_log(events);
  const EngineMetrics want = single_reference(log);

  const std::uint32_t partitions = 4;
  const std::vector<std::uint64_t> counts = slice_counts(events, partitions);
  KillPlan plan;
  plan.partition = 1;
  plan.at = std::max<std::uint64_t>(1, counts[1] / 2 + 1);
  const ClusterServeResult result =
      run_cluster(log, run_dir("midbatch"), partitions,
                  /*checkpoint_every=*/0, /*batch_events=*/256, &plan);
  EXPECT_TRUE(plan.fired.load());
  EXPECT_GE(result.respawns, 1u);
  expect_same(want, result.metrics);
}

TEST_F(ClusterTest, MillionObjectSmokeParityWithKillAndRespawn) {
  // The acceptance workload: ~1.2M events over 10^6 objects, served at
  // 4 partitions with one worker SIGKILLed mid-serve and respawned from
  // its per-partition checkpoint — bit-identical to one process.
  const std::vector<LogEvent> events = make_events(1200000, 1000000);
  const std::string log = write_log(events);
  const EngineMetrics want = single_reference(log);
  ASSERT_EQ(want.objects, 1000000u);

  const std::uint32_t partitions = 4;
  const std::vector<std::uint64_t> counts = slice_counts(events, partitions);
  KillPlan plan;
  plan.partition = 2;
  plan.at = std::max<std::uint64_t>(1, counts[2] / 2);
  const ClusterServeResult result =
      run_cluster(log, run_dir("smoke"), partitions,
                  /*checkpoint_every=*/50000,
                  /*batch_events=*/std::size_t{1} << 16, &plan);
  EXPECT_TRUE(plan.fired.load());
  EXPECT_GE(result.respawns, 1u);
  expect_same(want, result.metrics);
}

}  // namespace
}  // namespace repl
