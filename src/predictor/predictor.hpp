// Prediction interface.
//
// The paper's learning-augmented setting assumes that after each request
// at a server, a *binary* prediction becomes available: will the next
// request at the same server arrive within λ time units? The simulator
// queries the predictor exactly once per request (plus once for the dummy
// request r0 at the initial copy holder), in request order — causal
// predictors may therefore maintain state across calls.
#pragma once

#include <memory>
#include <string>

#include "checkpoint/state_io.hpp"

namespace repl {

/// The binary forecast of Algorithm 1's input model.
struct Prediction {
  /// True: the next request at this server is forecast to arrive no later
  /// than `lambda` after the current one (Algorithm 1 line 10).
  bool within_lambda = false;

  friend bool operator==(const Prediction&, const Prediction&) = default;
};

/// Identifies the prediction being requested. `request_index` is the index
/// of the request just served in the driving trace, or -1 for the dummy
/// request r0 (in which case `server` is the initial copy holder and
/// `time` is 0).
struct PredictionQuery {
  long request_index = -1;
  int server = 0;
  double time = 0.0;
  double lambda = 0.0;
};

class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Called once before each simulation run; stateful predictors clear
  /// their history here.
  virtual void reset() {}

  /// Issues the forecast for the next inter-request time at
  /// `query.server`. Called in non-decreasing `query.time` order.
  virtual Prediction predict(const PredictionQuery& query) = 0;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;

  /// Checkpoint protocol (see checkpoint/snapshot.hpp): serialize every
  /// field that evolves across predict() calls, so a freshly constructed
  /// predictor continues bit-identically after load_state(). The default
  /// round-trips nothing, which is correct for the *stateless* predictors
  /// (fixed, oracle, adversarial, accuracy — their output is a pure
  /// function of the query); causal predictors with history must
  /// override both.
  virtual void save_state(StateWriter&) const {}
  virtual void load_state(StateReader&) {}
};

using PredictorPtr = std::unique_ptr<Predictor>;

}  // namespace repl
