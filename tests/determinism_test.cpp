// Determinism tests: identical seeds must produce identical results
// across repeated runs, across thread counts, and between the serial
// reference path and the work-stealing pool — the ParallelRunner's
// scheduling must never leak into SimulationResults or aggregates.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/drwp.hpp"
#include "core/simulator.hpp"
#include "extensions/multi_object.hpp"
#include "extensions/randomized_drwp.hpp"
#include "predictor/noisy.hpp"
#include "predictor/oracle.hpp"
#include "run/parallel_runner.hpp"
#include "test_util.hpp"

namespace repl {
namespace {

using testing::make_config;

MultiObjectWorkload workload_fixture(std::uint64_t seed) {
  MultiObjectConfig config;
  config.num_objects = 60;
  config.num_servers = 6;
  config.horizon = 40000.0;
  config.request_rate = 0.08;
  return generate_multi_object_workload(config, seed);
}

/// Randomized policy + noisy predictor, both drawing from the runner's
/// per-object seed stream — the hardest case for order-independence.
ObjectPolicyFactory randomized_factory(double alpha) {
  return [alpha](const ObjectContext& context) -> PolicyPtr {
    return std::make_unique<RandomizedDrwpPolicy>(alpha, context.seed);
  };
}

ObjectPredictorFactory noisy_factory(double accuracy) {
  return [accuracy](const ObjectContext& context) -> PredictorPtr {
    return std::make_unique<AccuracyPredictor>(*context.trace, accuracy,
                                               context.seed ^ 0xabcdULL);
  };
}

MultiObjectResult run_with(const MultiObjectWorkload& workload,
                           int num_threads, std::uint64_t base_seed) {
  RunnerOptions options;
  options.num_threads = num_threads;
  options.base_seed = base_seed;
  options.simulation.record_events = false;
  const ParallelRunner runner(options);
  return runner.run(workload, make_config(6, 80.0),
                    randomized_factory(0.3), noisy_factory(0.85));
}

void expect_identical(const MultiObjectResult& a, const MultiObjectResult& b) {
  EXPECT_EQ(a.online_cost, b.online_cost);
  EXPECT_EQ(a.opt_cost, b.opt_cost);
  EXPECT_EQ(a.per_object_online, b.per_object_online);
  EXPECT_EQ(a.per_object_opt, b.per_object_opt);
}

TEST(WorkloadDeterminism, SameSeedSameWorkload) {
  const MultiObjectWorkload a = workload_fixture(21);
  const MultiObjectWorkload b = workload_fixture(21);
  ASSERT_EQ(a.objects.size(), b.objects.size());
  for (std::size_t i = 0; i < a.objects.size(); ++i) {
    EXPECT_EQ(a.objects[i].requests(), b.objects[i].requests());
  }
  const MultiObjectWorkload c = workload_fixture(22);
  std::size_t a_total = 0, c_total = 0;
  for (const Trace& t : a.objects) a_total += t.size();
  for (const Trace& t : c.objects) c_total += t.size();
  EXPECT_NE(a_total, c_total);  // different seed, different stream
}

TEST(Determinism, RepeatedSerialRunsAreIdentical) {
  const MultiObjectWorkload workload = workload_fixture(1);
  expect_identical(run_with(workload, 1, 99), run_with(workload, 1, 99));
}

TEST(Determinism, RepeatedParallelRunsAreIdentical) {
  const MultiObjectWorkload workload = workload_fixture(2);
  expect_identical(run_with(workload, 4, 99), run_with(workload, 4, 99));
}

TEST(Determinism, ParallelMatchesSerialAcrossThreadCounts) {
  const MultiObjectWorkload workload = workload_fixture(3);
  const MultiObjectResult serial = run_with(workload, 1, 7);
  for (int threads : {2, 3, 4, 8}) {
    SCOPED_TRACE(threads);
    expect_identical(serial, run_with(workload, threads, 7));
  }
}

TEST(Determinism, BaseSeedChangesRandomizedResults) {
  const MultiObjectWorkload workload = workload_fixture(4);
  const MultiObjectResult a = run_with(workload, 2, 1);
  const MultiObjectResult b = run_with(workload, 2, 2);
  // The randomized policy consumes the per-object stream, so a different
  // base seed must change some per-object cost (opt is seed-free).
  EXPECT_NE(a.per_object_online, b.per_object_online);
  EXPECT_EQ(a.per_object_opt, b.per_object_opt);
}

TEST(Determinism, LegacyParallelWrapperMatchesSerialWrapper) {
  const MultiObjectWorkload workload = workload_fixture(5);
  const SystemConfig config = make_config(6, 40.0);
  const PolicyFactory policy = [] {
    return std::make_unique<DrwpPolicy>(0.5);
  };
  const PredictorFactory predictor = [](const Trace& trace) -> PredictorPtr {
    return std::make_unique<OraclePredictor>(trace);
  };
  const MultiObjectResult serial =
      run_multi_object(workload, config, policy, predictor);
  const MultiObjectResult parallel =
      run_multi_object_parallel(workload, config, policy, predictor, 4);
  expect_identical(serial, parallel);
}

TEST(Determinism, SingleObjectSimulationResultsAreReproducible) {
  // Full SimulationResult equality (costs, serves, segments, transfers)
  // for one object simulated twice with the same seed.
  const Trace trace = testing::random_trace(5, 0.05, 20000.0, 13);
  const SystemConfig config = make_config(5, 60.0);
  const auto run_once = [&](std::uint64_t seed) {
    RandomizedDrwpPolicy policy(0.4, seed);
    AccuracyPredictor predictor(trace, 0.8, seed);
    return Simulator(config).run(policy, trace, predictor);
  };
  const SimulationResult a = run_once(77);
  const SimulationResult b = run_once(77);
  EXPECT_EQ(a.storage_cost, b.storage_cost);
  EXPECT_EQ(a.transfer_cost, b.transfer_cost);
  EXPECT_EQ(a.num_local, b.num_local);
  EXPECT_EQ(a.num_transfers, b.num_transfers);
  ASSERT_EQ(a.serves.size(), b.serves.size());
  for (std::size_t i = 0; i < a.serves.size(); ++i) {
    EXPECT_EQ(a.serves[i].time, b.serves[i].time);
    EXPECT_EQ(a.serves[i].source, b.serves[i].source);
    EXPECT_EQ(a.serves[i].intended_duration, b.serves[i].intended_duration);
  }
  ASSERT_EQ(a.transfers.size(), b.transfers.size());
  for (std::size_t i = 0; i < a.transfers.size(); ++i) {
    EXPECT_EQ(a.transfers[i].time, b.transfers[i].time);
    EXPECT_EQ(a.transfers[i].src, b.transfers[i].src);
    EXPECT_EQ(a.transfers[i].dst, b.transfers[i].dst);
  }
}

}  // namespace
}  // namespace repl
