#include "obs/trace.hpp"

#include <time.h>
#include <unistd.h>

#include <array>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace repl::obs {

namespace {

/// splitmix64: cheap, well-mixed 64-bit permutation for id generation.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void append_json_escaped(std::string& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

/// SPSC ring: the owning thread pushes (release on head), the flusher —
/// any thread holding Tracer::mu_ — drains [tail, head) (acquire on
/// head, release on tail). The producer only writes slots at and past
/// head, the consumer only reads slots before head, so the slot payload
/// itself is ordered by the head publication.
struct Tracer::ThreadRing {
  static constexpr std::size_t kCapacity = 8192;  // power of two

  std::array<SpanRecord, kCapacity> slots;
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> tail{0};
  std::uint32_t tid = 0;

  bool push(const SpanRecord& record) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    const std::uint64_t t = tail.load(std::memory_order_acquire);
    if (h - t == kCapacity) return false;
    slots[h & (kCapacity - 1)] = record;
    head.store(h + 1, std::memory_order_release);
    return true;
  }

  void drain(std::vector<SpanRecord>& out) {
    const std::uint64_t t = tail.load(std::memory_order_relaxed);
    const std::uint64_t h = head.load(std::memory_order_acquire);
    for (std::uint64_t i = t; i != h; ++i) {
      out.push_back(slots[i & (kCapacity - 1)]);
    }
    tail.store(h, std::memory_order_release);
  }
};

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

std::uint64_t Tracer::now_ns() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint64_t Tracer::next_id() {
  const std::uint64_t n = id_counter_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = mix64(id_salt_ ^ (n + 1));
  return id == 0 ? 1 : id;
}

void Tracer::start(const std::string& path, const std::string& process_name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    throw std::runtime_error("tracer already started (writing " + path_ + ")");
  }
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    throw std::runtime_error("cannot open trace part file " + path);
  }
  file_ = f;
  path_ = path;
  // Salt span ids with the pid so ids minted by different cluster
  // processes never collide in the merged trace.
  id_salt_ = mix64(static_cast<std::uint64_t>(::getpid()) << 32 | 0x7472ULL);
  dropped_.store(0, std::memory_order_relaxed);

  std::string meta = "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
  meta += std::to_string(::getpid());
  meta += ",\"tid\":0,\"args\":{\"name\":\"";
  append_json_escaped(meta, process_name);
  meta += "\"}}\n";
  std::fwrite(meta.data(), 1, meta.size(), f);
  std::fflush(f);
  enabled_.store(true, std::memory_order_release);
}

Tracer::ThreadRing& Tracer::ring_for_this_thread() {
  thread_local ThreadRing* ring = nullptr;
  if (ring == nullptr) {
    // Rings are owned by the tracer and never freed before process
    // exit: a flusher may drain them after their thread has died.
    auto* fresh = new ThreadRing();
    std::lock_guard<std::mutex> lock(mu_);
    fresh->tid = next_tid_++;
    rings_.push_back(fresh);
    ring = fresh;
  }
  return *ring;
}

void Tracer::record(const SpanRecord& record) {
  if (!enabled()) return;
  ThreadRing& ring = ring_for_this_thread();
  SpanRecord r = record;
  r.tid = ring.tid;
  if (!ring.push(r)) dropped_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  flush_locked();
}

void Tracer::flush_locked() {
  if (file_ == nullptr) return;
  auto* f = static_cast<std::FILE*>(file_);
  std::vector<SpanRecord> records;
  for (ThreadRing* ring : rings_) ring->drain(records);
  const int pid = ::getpid();
  char buf[512];
  std::string line;
  for (const SpanRecord& r : records) {
    // Chrome trace_event "complete" event; ts/dur are microseconds.
    int n = std::snprintf(
        buf, sizeof(buf),
        "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
        "\"pid\":%d,\"tid\":%" PRIu32
        ",\"args\":{\"trace_id\":\"%016" PRIx64 "\",\"span_id\":\"%016" PRIx64
        "\",\"parent_id\":\"%016" PRIx64 "\"",
        r.name == nullptr ? "?" : r.name,
        static_cast<double>(r.start_ns) / 1000.0,
        static_cast<double>(r.dur_ns) / 1000.0, pid, r.tid, r.trace_id,
        r.span_id, r.parent_id);
    if (n < 0) continue;
    line.assign(buf, static_cast<std::size_t>(n));
    if (r.arg_key != nullptr) {
      n = std::snprintf(buf, sizeof(buf), ",\"%s\":%" PRIu64, r.arg_key,
                        r.arg_value);
      if (n > 0) line.append(buf, static_cast<std::size_t>(n));
    }
    line += "}}\n";
    std::fwrite(line.data(), 1, line.size(), f);
  }
  std::fflush(f);
}

void Tracer::stop() {
  enabled_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  flush_locked();
  auto* f = static_cast<std::FILE*>(file_);
  const std::uint64_t dropped = dropped_.load(std::memory_order_relaxed);
  if (dropped > 0) {
    std::string meta = "{\"name\":\"spans_dropped\",\"ph\":\"M\",\"pid\":";
    meta += std::to_string(::getpid());
    meta += ",\"tid\":0,\"args\":{\"count\":" + std::to_string(dropped) +
            "}}\n";
    std::fwrite(meta.data(), 1, meta.size(), f);
  }
  std::fclose(f);
  file_ = nullptr;
  path_.clear();
}

std::uint64_t Tracer::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

Span::Span(const char* name, TraceContext parent) : name_(name) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  armed_ = true;
  start_ns_ = Tracer::now_ns();
  ctx_.span_id = tracer.next_id();
  if (parent.valid()) {
    ctx_.trace_id = parent.trace_id;
    parent_id_ = parent.span_id;
  } else {
    ctx_.trace_id = tracer.next_id();
  }
}

void Span::set_parent(TraceContext parent) {
  if (!armed_ || !parent.valid()) return;
  ctx_.trace_id = parent.trace_id;
  parent_id_ = parent.span_id;
}

void Span::set_arg(const char* key, std::uint64_t value) {
  arg_key_ = key;
  arg_value_ = value;
}

void Span::end() {
  if (!armed_) return;
  armed_ = false;
  SpanRecord record;
  record.name = name_;
  record.arg_key = arg_key_;
  record.arg_value = arg_value_;
  record.start_ns = start_ns_;
  record.dur_ns = Tracer::now_ns() - start_ns_;
  record.trace_id = ctx_.trace_id;
  record.span_id = ctx_.span_id;
  record.parent_id = parent_id_;
  Tracer::global().record(record);
}

std::size_t merge_trace_parts(const std::vector<std::string>& parts,
                              const std::string& out_path) {
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open trace output " + out_path);
  }
  out << "{\"traceEvents\":[";
  std::size_t events = 0;
  for (const std::string& part : parts) {
    std::ifstream in(part, std::ios::binary);
    if (!in) continue;  // a killed worker may never have flushed
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty()) continue;
      if (line.front() != '{' || line.back() != '}') {
        throw std::runtime_error("trace part " + part + " line " +
                                 std::to_string(line_no) +
                                 " is not a JSON object");
      }
      if (events > 0) out << ',';
      out << '\n' << line;
      ++events;
    }
  }
  out << "\n]}\n";
  if (!out.flush()) {
    throw std::runtime_error("short write to trace output " + out_path);
  }
  return events;
}

}  // namespace repl::obs
