#include "replay/fixture_run.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "api/experiment.hpp"
#include "checkpoint/snapshot.hpp"
#include "cluster/control.hpp"
#include "net/wire.hpp"
#include "replay/structure.hpp"
#include "util/check.hpp"

namespace repl {

namespace {

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

std::string diff_aggregates(const FixtureAggregates& want,
                            const FixtureAggregates& got) {
  std::ostringstream os;
  const auto count = [&](const char* name, std::uint64_t w, std::uint64_t g) {
    if (w != g) os << name << " " << w << " -> " << g << "; ";
  };
  count("objects", want.objects, got.objects);
  count("events", want.events, got.events);
  count("num_local", want.num_local, got.num_local);
  count("num_transfers", want.num_transfers, got.num_transfers);
  const auto real = [&](const char* name, double w, double g) {
    if (!bits_equal(w, g)) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%s %.17g (%016llx) -> %.17g (%016llx); ",
                    name, w,
                    static_cast<unsigned long long>(
                        std::bit_cast<std::uint64_t>(w)),
                    g,
                    static_cast<unsigned long long>(
                        std::bit_cast<std::uint64_t>(g)));
      os << buf;
    }
  };
  real("online_cost", want.online_cost, got.online_cost);
  real("lower_bound", want.lower_bound, got.lower_bound);
  return os.str();
}

EngineBuilder make_builder(const Fixture& fixture,
                           const FixtureRunOptions& options) {
  EngineOptions engine_options;
  if (options.num_shards > 0) engine_options.num_shards = options.num_shards;
  engine_options.num_threads = options.num_threads;
  engine_options.horizon = fixture.horizon;
  engine_options.compute_lower_bound = fixture.compute_lower_bound;
  engine_options.base_seed = fixture.base_seed;
  engine_options.compress_checkpoints = fixture.compress_checkpoints;
  EngineBuilder builder;
  builder.config(fixture.system_config())
      .options(engine_options)
      .policy(fixture.policy_spec)
      .predictor(fixture.predictor_spec);
  return builder;
}

FixtureAggregates to_aggregates(const EngineMetrics& metrics) {
  FixtureAggregates a;
  a.objects = metrics.objects;
  a.events = metrics.events;
  a.num_local = metrics.num_local;
  a.num_transfers = metrics.num_transfers;
  a.online_cost = metrics.online_cost;
  a.lower_bound = metrics.lower_bound;
  return a;
}

/// Serves the fixture's slice end to end and returns the aggregates.
FixtureAggregates replay_serve(const Fixture& fixture,
                               const FixtureRunOptions& options,
                               const ScratchDir& scratch) {
  const std::string slice = scratch.file("slice.evlog");
  write_bytes(slice, fixture.blob);
  EngineBuilder builder = make_builder(fixture, options);

  if (options.verify_cuts) {
    // Every recorded cut is a restart point: snapshot there, restore
    // into a fresh engine, and the finished aggregates must not care.
    for (std::uint64_t cut : fixture.cuts) {
      if (cut == 0 || cut > fixture.slice_events) continue;
      const std::string ckpt = scratch.file("cut.ckpt");
      {
        auto engine = builder.build();
        EventLogReader reader(slice);
        engine->bind_log(reader.header());
        std::vector<LogEvent> batch;
        std::uint64_t remaining = cut;
        while (remaining > 0) {
          const std::size_t want = static_cast<std::size_t>(
              std::min<std::uint64_t>(remaining, options.batch_events));
          if (reader.read_batch(batch, want) == 0) {
            throw std::runtime_error(
                "fixture cut " + std::to_string(cut) +
                " lies past the embedded slice (" +
                std::to_string(cut - remaining) + " events)");
          }
          engine->ingest(batch);
          remaining -= batch.size();
        }
        engine->checkpoint(ckpt);
      }
      auto resumed = builder.restore(ckpt);
      EventLogReader reader(slice);
      ServeOptions serve_options;
      serve_options.batch_events = options.batch_events;
      const FixtureAggregates got =
          to_aggregates(resumed->serve(reader, serve_options));
      const std::string diff = diff_aggregates(fixture.aggregates, got);
      if (!diff.empty()) {
        throw std::runtime_error("aggregates diverge after restart at cut " +
                                 std::to_string(cut) + ": " + diff);
      }
    }
  }

  auto engine = builder.build();
  EventLogReader reader(slice);
  ServeOptions serve_options;
  serve_options.batch_events = options.batch_events;
  return to_aggregates(engine->serve(reader, serve_options));
}

/// Drains the embedded snapshot; objects = records, events = payload
/// bytes (a cheap content fingerprint on top of the record count).
FixtureAggregates replay_snapshot(const Fixture& fixture,
                                  const ScratchDir& scratch) {
  const std::string path = scratch.file("snapshot.ckpt");
  write_bytes(path, fixture.blob);
  SnapshotReader reader(path);
  FixtureAggregates a;
  std::uint64_t id = 0;
  std::vector<unsigned char> payload;
  while (reader.next_object(id, payload)) {
    ++a.objects;
    a.events += payload.size();
  }
  return a;
}

/// Feeds the embedded wire bytes through a FrameAssembler in a fixed
/// cycle of chunk sizes (splitting inside headers, frames, and payloads)
/// — the recv-boundary torture the socket front-end sees.
FixtureAggregates replay_wire(const Fixture& fixture) {
  FrameAssembler assembler("wire fixture");
  std::vector<LogEvent> events;
  static constexpr std::size_t kChunks[] = {1, 3, 16, 7, 4096, 2};
  std::size_t at = 0;
  std::size_t turn = 0;
  while (at < fixture.blob.size()) {
    const std::size_t take =
        std::min(kChunks[turn++ % std::size(kChunks)],
                 fixture.blob.size() - at);
    assembler.feed(fixture.blob.data() + at, take, events);
    at += take;
  }
  if (!assembler.at_boundary()) {
    throw std::runtime_error(
        "wire stream ends mid-frame (truncated stream — a live peer "
        "closing here would be a mid-frame disconnect) after " +
        std::to_string(assembler.frames_completed()) + " frames, byte " +
        std::to_string(assembler.bytes_consumed()));
  }
  FixtureAggregates a;
  a.objects = assembler.frames_completed();
  a.events = assembler.events_decoded();
  return a;
}

/// Feeds the embedded control-stream bytes through a
/// ClusterControlAssembler under the same chunk-boundary torture as the
/// wire replay. Unlike the event wire, a clean close is only legal
/// after the terminal summary, so an incomplete stream is a failure
/// even at a frame boundary.
FixtureAggregates replay_cluster(const Fixture& fixture) {
  ClusterControlAssembler assembler("cluster fixture");
  std::vector<ControlMessage> messages;
  static constexpr std::size_t kChunks[] = {1, 3, 16, 7, 4096, 2};
  std::size_t at = 0;
  std::size_t turn = 0;
  while (at < fixture.blob.size()) {
    const std::size_t take =
        std::min(kChunks[turn++ % std::size(kChunks)],
                 fixture.blob.size() - at);
    assembler.feed(fixture.blob.data() + at, take, messages);
    at += take;
  }
  if (!assembler.at_boundary()) {
    throw std::runtime_error(
        "control stream ends mid-frame after " +
        std::to_string(assembler.frames_completed()) + " frames, byte " +
        std::to_string(assembler.bytes_consumed()));
  }
  if (!assembler.complete()) {
    throw std::runtime_error(
        "control stream closed before its terminal summary (" +
        std::to_string(assembler.frames_completed()) +
        " frames — the coordinator would fail this worker)");
  }
  FixtureAggregates a;
  a.objects = assembler.messages_decoded();
  a.events = assembler.finals_records();
  return a;
}

}  // namespace

FixtureRunResult fixture_run(const Fixture& fixture,
                             const FixtureRunOptions& options) {
  FixtureRunResult result;
  ScratchDir scratch(options.scratch_dir);
  bool failed = false;
  std::string diagnostic;
  FixtureAggregates got;
  try {
    switch (fixture.target) {
      case FixtureTarget::kServe:
        got = replay_serve(fixture, options, scratch);
        break;
      case FixtureTarget::kSnapshot:
        got = replay_snapshot(fixture, scratch);
        break;
      case FixtureTarget::kWire:
        got = replay_wire(fixture);
        break;
      case FixtureTarget::kCluster:
        got = replay_cluster(fixture);
        break;
    }
  } catch (const std::exception& e) {
    failed = true;
    diagnostic = e.what();
    result.signature = failure_signature(diagnostic);
  }

  if (fixture.expect == FixtureExpect::kParity) {
    if (failed) {
      result.detail = "replay failed, parity expected: " + diagnostic;
      return result;
    }
    result.aggregates = got;
    const std::string diff = diff_aggregates(fixture.aggregates, got);
    if (!diff.empty()) {
      result.detail = "aggregates differ from the recorded ones: " + diff;
      return result;
    }
    result.pass = true;
    return result;
  }

  // Failure fixture: the replay must fail, the same way.
  if (!failed) {
    result.detail =
        "replay succeeded, failure expected (signature: " +
        fixture.signature + ")";
    return result;
  }
  if (result.signature != fixture.signature) {
    result.detail = "failure signature changed:\n  recorded: " +
                    fixture.signature + "\n  observed: " + result.signature +
                    "\n  (diagnostic: " + diagnostic + ")";
    return result;
  }
  result.pass = true;
  return result;
}

FixtureRunResult fixture_run(const std::string& path,
                             const FixtureRunOptions& options) {
  return fixture_run(read_fixture(path), options);
}

}  // namespace repl
