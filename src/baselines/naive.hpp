// Naive reference policies. None of them is competitive; they anchor the
// benchmark comparisons at the two extremes of the storage/transfer
// trade-off:
//
//  * FullReplicationPolicy — replicate on first touch, never drop:
//    minimal transfers, unbounded storage;
//  * StaticPolicy — keep only the initial copy, serve everything remote:
//    minimal storage, λ per non-local request;
//  * SingleCopyChasePolicy — exactly one copy that migrates to every
//    requester: storage-minimal with a transfer whenever the request
//    location changes.
#pragma once

#include <limits>
#include <vector>

#include "core/policy.hpp"

namespace repl {

/// Common scaffolding: none of the naive policies has spontaneous
/// transitions, so advance_to is a no-op and next_transition_time is +inf.
class NaivePolicyBase : public ReplicationPolicy {
 public:
  void reset(const SystemConfig& config, const Prediction& pred0,
             EventSink& sink) override;
  void advance_to(double time, EventSink&) override;
  double next_transition_time() const override {
    return std::numeric_limits<double>::infinity();
  }
  bool holds(int server) const override;
  int copy_count() const override { return copy_count_; }

 protected:
  SystemConfig config_;
  std::vector<bool> holding_;
  int copy_count_ = 0;
  double now_ = 0.0;
};

class FullReplicationPolicy final : public NaivePolicyBase {
 public:
  ServeAction on_request(int server, double time, const Prediction&,
                         EventSink& sink) override;
  std::string name() const override { return "full-replication"; }
  std::unique_ptr<ReplicationPolicy> clone() const override {
    return std::make_unique<FullReplicationPolicy>(*this);
  }
};

class StaticPolicy final : public NaivePolicyBase {
 public:
  ServeAction on_request(int server, double time, const Prediction&,
                         EventSink& sink) override;
  std::string name() const override { return "static-single-copy"; }
  std::unique_ptr<ReplicationPolicy> clone() const override {
    return std::make_unique<StaticPolicy>(*this);
  }
};

class SingleCopyChasePolicy final : public NaivePolicyBase {
 public:
  void reset(const SystemConfig& config, const Prediction& pred0,
             EventSink& sink) override;
  ServeAction on_request(int server, double time, const Prediction&,
                         EventSink& sink) override;
  std::string name() const override { return "single-copy-chase"; }
  std::unique_ptr<ReplicationPolicy> clone() const override {
    return std::make_unique<SingleCopyChasePolicy>(*this);
  }

 private:
  int holder_ = 0;
};

}  // namespace repl
