#include "extensions/weighted_drwp.hpp"

#include <sstream>

namespace repl {

double WeightedDrwpPolicy::choose_duration(const Prediction& pred,
                                           const ServeContext& ctx) {
  const double base = DrwpPolicy::choose_duration(pred, ctx);
  return base / config().storage_rate(ctx.server);
}

std::string WeightedDrwpPolicy::name() const {
  std::ostringstream os;
  os << "weighted-drwp(alpha=" << alpha() << ")";
  return os.str();
}

std::unique_ptr<ReplicationPolicy> WeightedDrwpPolicy::clone() const {
  return std::make_unique<WeightedDrwpPolicy>(*this);
}

}  // namespace repl
