// Scaling benchmark for the parallel multi-object engine: sweeps the
// object count over 10^2..10^5 (geometric), runs each workload once on
// the serial reference path (1 thread) and once on the work-stealing pool,
// verifies the aggregates are bit-identical, and reports the speedup.
//
//   ./build/bench/bench_scale [--threads=8] [--min-objects=100]
//       [--max-objects=100000] [--opt] [--requests-per-object=20]
#include <cstdlib>
#include <iostream>

#include "core/drwp.hpp"
#include "extensions/multi_object.hpp"
#include "predictor/noisy.hpp"
#include "run/parallel_runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace repl;

MultiObjectWorkload make_workload(int num_objects, double requests_per_object,
                                  std::uint64_t seed) {
  MultiObjectConfig config;
  config.num_objects = num_objects;
  config.num_servers = 10;
  config.horizon = 86400.0;
  config.request_rate =
      requests_per_object * static_cast<double>(num_objects) / config.horizon;
  return generate_multi_object_workload(config, seed);
}

MultiObjectResult run_once(const MultiObjectWorkload& workload,
                           const SystemConfig& system, int threads,
                           bool compute_opt, RunnerStats& stats_out) {
  RunnerOptions options;
  options.num_threads = threads;
  options.compute_opt = compute_opt;
  options.simulation.record_events = false;
  const ParallelRunner runner(options);
  const MultiObjectResult result = runner.run(
      workload, system,
      [](const ObjectContext&) -> PolicyPtr {
        return std::make_unique<DrwpPolicy>(0.3);
      },
      [](const ObjectContext& context) -> PredictorPtr {
        // Deterministic per-object prediction stream: exercises the
        // object_seed() contract under stealing.
        return std::make_unique<AccuracyPredictor>(*context.trace, 0.9,
                                                   context.seed);
      });
  stats_out = runner.last_stats();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_scale",
                "serial vs. parallel multi-object simulation sweep");
  cli.add_flag("threads", "8", "worker threads for the parallel run");
  cli.add_flag("min-objects", "100", "smallest object count");
  cli.add_flag("max-objects", "100000", "largest object count");
  cli.add_flag("requests-per-object", "20", "mean requests per object");
  cli.add_flag("seed", "42", "workload seed");
  cli.add_bool_flag("opt", "also solve the per-object offline optimum DP");
  if (!cli.parse(argc, argv)) return 0;

  const int threads = static_cast<int>(cli.get_int("threads"));
  const long long min_objects = cli.get_int("min-objects");
  const long long max_objects = cli.get_int("max-objects");
  if (min_objects < 1 || max_objects < min_objects ||
      max_objects > 100000000) {
    std::cerr << "error: need 1 <= --min-objects <= --max-objects <= 1e8\n";
    return EXIT_FAILURE;
  }
  const double requests_per_object =
      cli.get_double("requests-per-object");
  const bool compute_opt = cli.get_bool("opt");
  const auto seed = cli.get_uint64("seed");

  SystemConfig system;
  system.num_servers = 10;
  system.transfer_cost = 100.0;

  Table table({"objects", "requests", "serial_s", "parallel_s", "speedup",
               "steals", "cost", "identical"});
  bool all_identical = true;

  for (long long objects = min_objects; objects <= max_objects;
       objects *= 10) {
    const MultiObjectWorkload workload = make_workload(
        static_cast<int>(objects), requests_per_object, seed);

    RunnerStats serial_stats;
    const MultiObjectResult serial =
        run_once(workload, system, 1, compute_opt, serial_stats);
    RunnerStats parallel_stats;
    const MultiObjectResult parallel =
        run_once(workload, system, threads, compute_opt, parallel_stats);

    const bool identical =
        serial.online_cost == parallel.online_cost &&
        serial.opt_cost == parallel.opt_cost &&
        serial.per_object_online == parallel.per_object_online &&
        serial.per_object_opt == parallel.per_object_opt;
    all_identical = all_identical && identical;

    const double speedup =
        parallel_stats.wall_seconds > 0.0
            ? serial_stats.wall_seconds / parallel_stats.wall_seconds
            : 0.0;
    table.add_row({Table::cell(objects),
                   Table::cell(serial_stats.requests_simulated),
                   Table::cell(serial_stats.wall_seconds, 3),
                   Table::cell(parallel_stats.wall_seconds, 3),
                   Table::cell(speedup, 2),
                   Table::cell(parallel_stats.steals),
                   Table::cell(serial.online_cost, 1),
                   identical ? "yes" : "NO"});
  }

  std::cout << table.str() << "\n";
  if (!all_identical) {
    std::cerr << "FAIL: parallel aggregate diverged from the serial path\n";
    return EXIT_FAILURE;
  }
  std::cout << "parallel aggregates bit-identical to serial across the sweep\n";
  return EXIT_SUCCESS;
}
