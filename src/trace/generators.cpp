#include "trace/generators.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "util/check.hpp"

namespace repl {

namespace {

/// Draws a server index per the assignment rule. Zipf values are 1-based
/// in the distribution, mapped to 0-based server ids, matching the paper's
/// "server indexed by i with probability i^(-1)/H_n" with i = 1..n.
class ServerSampler {
 public:
  ServerSampler(int num_servers, const ServerAssignment& assignment)
      : num_servers_(num_servers) {
    if (assignment.kind == ServerAssignment::Kind::kZipf) {
      zipf_.emplace(num_servers, assignment.zipf_s);
    }
  }

  int sample(Rng& rng) const {
    if (zipf_) return zipf_->sample(rng) - 1;
    return static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(num_servers_)));
  }

 private:
  int num_servers_;
  std::optional<ZipfDistribution> zipf_;
};

}  // namespace

Trace generate_poisson_trace(int num_servers, double rate, double horizon,
                             const ServerAssignment& assignment,
                             std::uint64_t seed) {
  REPL_REQUIRE(rate > 0.0);
  REPL_REQUIRE(horizon > 0.0);
  Rng rng(seed);
  ServerSampler sampler(num_servers, assignment);
  std::vector<Request> requests;
  double t = 0.0;
  for (;;) {
    t += rng.exponential(rate);
    if (t > horizon) break;
    requests.push_back(Request{t, sampler.sample(rng)});
  }
  return Trace::from_unsorted(num_servers, std::move(requests));
}

Trace generate_periodic_trace(int num_servers,
                              const std::vector<double>& periods,
                              const std::vector<double>& offsets,
                              double horizon) {
  REPL_REQUIRE(periods.size() == static_cast<std::size_t>(num_servers));
  REPL_REQUIRE(offsets.size() == static_cast<std::size_t>(num_servers));
  REPL_REQUIRE(horizon > 0.0);
  std::vector<Request> requests;
  for (int s = 0; s < num_servers; ++s) {
    const double period = periods[static_cast<std::size_t>(s)];
    const double offset = offsets[static_cast<std::size_t>(s)];
    if (period <= 0.0) continue;  // server inactive
    REPL_REQUIRE(offset > 0.0);
    for (double t = offset; t <= horizon; t += period) {
      requests.push_back(Request{t, s});
    }
  }
  return Trace::from_unsorted(num_servers, std::move(requests));
}

Trace generate_mmpp_trace(int num_servers, const MmppConfig& config,
                          const ServerAssignment& assignment,
                          std::uint64_t seed) {
  REPL_REQUIRE(config.rate_low > 0.0 && config.rate_high > 0.0);
  REPL_REQUIRE(config.mean_low_duration > 0.0 &&
               config.mean_high_duration > 0.0);
  REPL_REQUIRE(config.horizon > 0.0);
  Rng rng(seed);
  ServerSampler sampler(num_servers, assignment);
  std::vector<Request> requests;
  double t = 0.0;
  bool high = false;
  double state_end = rng.exponential(1.0 / config.mean_low_duration);
  while (t < config.horizon) {
    const double rate = high ? config.rate_high : config.rate_low;
    const double next = t + rng.exponential(rate);
    if (next > state_end) {
      // Jump to the state switch instant; no arrival in between (the
      // exponential's memorylessness makes this restart exact).
      t = state_end;
      high = !high;
      state_end = t + rng.exponential(1.0 / (high ? config.mean_high_duration
                                                  : config.mean_low_duration));
      continue;
    }
    t = next;
    if (t > config.horizon) break;
    requests.push_back(Request{t, sampler.sample(rng)});
  }
  return Trace::from_unsorted(num_servers, std::move(requests));
}

Trace generate_diurnal_trace(int num_servers, const DiurnalConfig& config,
                             const ServerAssignment& assignment,
                             std::uint64_t seed) {
  REPL_REQUIRE(config.base_rate > 0.0);
  REPL_REQUIRE(config.amplitude >= 0.0 && config.amplitude < 1.0);
  REPL_REQUIRE(config.period > 0.0);
  REPL_REQUIRE(config.horizon > 0.0);
  Rng rng(seed);
  ServerSampler sampler(num_servers, assignment);
  // Thinning: candidate arrivals at the max rate, accepted with
  // probability rate(t) / rate_max.
  const double rate_max = config.base_rate * (1.0 + config.amplitude);
  std::vector<Request> requests;
  double t = 0.0;
  for (;;) {
    t += rng.exponential(rate_max);
    if (t > config.horizon) break;
    const double rate =
        config.base_rate *
        (1.0 + config.amplitude *
                   std::sin(2.0 * M_PI * t / config.period + config.phase));
    if (rng.bernoulli(rate / rate_max)) {
      requests.push_back(Request{t, sampler.sample(rng)});
    }
  }
  return Trace::from_unsorted(num_servers, std::move(requests));
}

}  // namespace repl
