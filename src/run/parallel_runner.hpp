// Parallel multi-object simulation engine.
//
// The paper studies one object and notes (footnote 1) that objects do not
// interact, so a multi-object workload is embarrassingly parallel: the
// runner shards the objects of a MultiObjectWorkload across a
// work-stealing thread pool, runs each object's Simulator (and optionally
// the offline-optimum DP) independently, and reduces the per-object
// results into a MultiObjectResult.
//
// Determinism contract: the aggregate is *bit-identical* to the serial
// path regardless of thread count or scheduling. Three mechanisms ensure
// this:
//   * every task writes only to its own pre-assigned per-object slot;
//   * the floating-point reduction runs on the calling thread in object
//     order after all tasks finish;
//   * randomized components (policies, predictors) draw from per-object
//     seeds that are a pure function of (base_seed, object index), never
//     from shared or thread-local streams.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "core/policy.hpp"
#include "core/simulator.hpp"
#include "extensions/multi_object.hpp"
#include "predictor/predictor.hpp"
#include "trace/trace.hpp"

namespace repl {

class ThreadPool;

/// Everything a factory needs to build per-object components: the object's
/// index and trace, plus a deterministic seed for randomized policies or
/// predictors (a pure function of RunnerOptions::base_seed and `index`).
struct ObjectContext {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  const Trace* trace = nullptr;
};

/// Factories are invoked concurrently from pool worker threads — they
/// must be thread-safe (stateless, or mutating only per-call state; draw
/// randomness from the context's seed, never from shared captures).
using ObjectPolicyFactory = std::function<PolicyPtr(const ObjectContext&)>;
using ObjectPredictorFactory =
    std::function<PredictorPtr(const ObjectContext&)>;

struct RunnerOptions {
  /// 0 => all hardware threads; 1 => run inline on the calling thread
  /// (the serial reference path — no pool is created).
  int num_threads = 0;
  /// Also solve the per-object offline optimum (the DP dominates runtime;
  /// disable for policy-only throughput runs, leaving opt_cost = 0).
  bool compute_opt = true;
  /// Passed through to each object's Simulator.
  SimulationOptions simulation;
  /// Root of the per-object seed streams.
  std::uint64_t base_seed = 0x5eed5eed5eed5eedULL;
};

/// Diagnostics from the last run() call.
struct RunnerStats {
  int threads_used = 0;
  std::size_t objects_simulated = 0;
  std::size_t requests_simulated = 0;
  std::uint64_t steals = 0;
  double wall_seconds = 0.0;
};

class ParallelRunner {
 public:
  explicit ParallelRunner(RunnerOptions options = {});
  ~ParallelRunner();
  ParallelRunner(ParallelRunner&&) noexcept;
  ParallelRunner& operator=(ParallelRunner&&) noexcept;

  /// Simulates every object of `workload` under a fresh policy/predictor
  /// pair from the factories and returns the aggregate result. Exceptions
  /// thrown by per-object work are re-thrown on the calling thread; when
  /// several objects fail, the lowest object index wins (deterministic).
  MultiObjectResult run(const MultiObjectWorkload& workload,
                        const SystemConfig& base_config,
                        const ObjectPolicyFactory& make_policy,
                        const ObjectPredictorFactory& make_predictor) const;

  const RunnerOptions& options() const { return options_; }

  /// Stats of the most recent run() (overwritten by each call). run()
  /// parallelizes internally but is not itself safe to call concurrently
  /// on one instance — the stats cache is unsynchronized; give each
  /// driving thread its own ParallelRunner (construction is trivial).
  const RunnerStats& last_stats() const { return stats_; }

  /// The per-object seed stream: a pure function of (base_seed, index),
  /// independent of thread count and execution order.
  static std::uint64_t object_seed(std::uint64_t base_seed,
                                   std::size_t index);

 private:
  RunnerOptions options_;
  mutable RunnerStats stats_;
  /// Lazily created on the first multi-threaded run() and reused after,
  /// so repeated runs do not pay thread spawn/join churn. Shares the
  /// single-driving-thread caveat documented on last_stats().
  mutable std::unique_ptr<ThreadPool> pool_;
};

/// Adapts the legacy trace-only factories of run_multi_object() to the
/// context-aware signatures (the context's seed and index are dropped).
ObjectPolicyFactory adapt_policy_factory(PolicyFactory factory);
ObjectPredictorFactory adapt_predictor_factory(PredictorFactory factory);

}  // namespace repl
