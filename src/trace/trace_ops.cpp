#include "trace/trace_ops.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace repl {

Trace slice_trace(const Trace& trace, double t_begin, double t_end) {
  REPL_REQUIRE(t_begin >= 0.0 && t_end > t_begin);
  std::vector<Request> requests;
  for (const Request& r : trace.requests()) {
    if (r.time > t_begin && r.time <= t_end) {
      requests.push_back(Request{r.time - t_begin, r.server});
    }
  }
  return Trace(trace.num_servers(), std::move(requests));
}

Trace merge_traces(const Trace& a, const Trace& b) {
  REPL_REQUIRE_MSG(a.num_servers() == b.num_servers(),
                   "merging traces over different server universes");
  std::vector<Request> requests;
  requests.reserve(a.size() + b.size());
  requests.insert(requests.end(), a.requests().begin(), a.requests().end());
  requests.insert(requests.end(), b.requests().begin(), b.requests().end());
  return Trace::from_unsorted(a.num_servers(), std::move(requests));
}

Trace remap_servers(const Trace& trace, const std::vector<int>& mapping,
                    int new_num_servers) {
  REPL_REQUIRE(mapping.size() ==
               static_cast<std::size_t>(trace.num_servers()));
  std::vector<Request> requests;
  requests.reserve(trace.size());
  for (const Request& r : trace.requests()) {
    const int target = mapping[static_cast<std::size_t>(r.server)];
    REPL_REQUIRE_MSG(target >= 0 && target < new_num_servers,
                     "mapping sends server " << r.server
                                             << " out of range");
    requests.push_back(Request{r.time, target});
  }
  return Trace(new_num_servers, std::move(requests));
}

Trace scale_time(const Trace& trace, double factor) {
  REPL_REQUIRE(factor > 0.0);
  std::vector<Request> requests;
  requests.reserve(trace.size());
  for (const Request& r : trace.requests()) {
    requests.push_back(Request{r.time * factor, r.server});
  }
  return Trace(trace.num_servers(), std::move(requests));
}

Trace thin_trace(const Trace& trace, std::size_t keep_every) {
  REPL_REQUIRE(keep_every >= 1);
  std::vector<Request> requests;
  for (std::size_t i = 0; i < trace.size(); i += keep_every) {
    requests.push_back(trace[i]);
  }
  return Trace(trace.num_servers(), std::move(requests));
}

}  // namespace repl
