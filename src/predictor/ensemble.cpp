#include "predictor/ensemble.hpp"

#include <sstream>

#include "util/check.hpp"

namespace repl {

EnsemblePredictor::EnsemblePredictor(
    std::vector<std::shared_ptr<Predictor>> experts, Config config)
    : experts_(std::move(experts)), config_(config) {
  REPL_REQUIRE_MSG(!experts_.empty(), "ensemble needs at least one expert");
  for (const auto& expert : experts_) REPL_REQUIRE(expert != nullptr);
  REPL_REQUIRE(config.penalty > 0.0 && config.penalty <= 1.0);
  weights_.assign(experts_.size(), 1.0);
}

void EnsemblePredictor::reset() {
  for (auto& expert : experts_) expert->reset();
  weights_.assign(experts_.size(), 1.0);
  pending_.clear();
}

Prediction EnsemblePredictor::predict(const PredictionQuery& query) {
  if (pending_.empty()) {
    // Sized lazily: server ids are discovered from queries.
    pending_.resize(16);
  }
  if (static_cast<std::size_t>(query.server) >= pending_.size()) {
    pending_.resize(static_cast<std::size_t>(query.server) + 1);
  }

  // Score the pending votes for this server: the gap since the previous
  // prediction is now known.
  PendingVote& pending = pending_[static_cast<std::size_t>(query.server)];
  if (config_.penalty < 1.0 && pending.time >= 0.0) {
    const bool truth_within = (query.time - pending.time) <= query.lambda;
    for (std::size_t e = 0; e < experts_.size(); ++e) {
      if (pending.votes[e] != truth_within) {
        weights_[e] *= config_.penalty;
      }
    }
    // Keep weights away from total collapse (renormalize to max 1).
    double max_weight = 0.0;
    for (double w : weights_) max_weight = std::max(max_weight, w);
    REPL_CHECK(max_weight > 0.0);
    for (double& w : weights_) w /= max_weight;
  }

  // Collect fresh votes and take the weighted majority.
  std::vector<bool> votes(experts_.size());
  double within_weight = 0.0, beyond_weight = 0.0;
  for (std::size_t e = 0; e < experts_.size(); ++e) {
    const bool vote = experts_[e]->predict(query).within_lambda;
    votes[e] = vote;
    (vote ? within_weight : beyond_weight) += weights_[e];
  }
  pending.time = query.time;
  pending.votes = std::move(votes);
  return Prediction{within_weight > beyond_weight};
}

void EnsemblePredictor::save_state(StateWriter& out) const {
  out.u64(static_cast<std::uint64_t>(experts_.size()));
  for (const double w : weights_) out.f64(w);
  out.u64(static_cast<std::uint64_t>(pending_.size()));
  for (const PendingVote& pending : pending_) {
    out.f64(pending.time);
    out.u64(static_cast<std::uint64_t>(pending.votes.size()));
    for (const bool vote : pending.votes) out.boolean(vote);
  }
  for (const auto& expert : experts_) expert->save_state(out);
}

void EnsemblePredictor::load_state(StateReader& in) {
  if (in.u64() != experts_.size()) {
    in.fail("ensemble expert count mismatch");
  }
  for (double& w : weights_) w = in.f64();
  pending_.assign(static_cast<std::size_t>(in.u64()), PendingVote{});
  for (PendingVote& pending : pending_) {
    pending.time = in.f64();
    // A scored entry always carries one vote per expert; anything else is
    // corruption, and predict() would index votes out of bounds.
    const std::uint64_t num_votes = in.u64();
    if (num_votes != 0 && num_votes != experts_.size()) {
      in.fail("ensemble pending vote count " + std::to_string(num_votes) +
              " != expert count " + std::to_string(experts_.size()));
    }
    if (pending.time >= 0.0 && num_votes != experts_.size()) {
      in.fail("ensemble pending entry has a timestamp but no votes");
    }
    pending.votes.resize(static_cast<std::size_t>(num_votes));
    for (std::size_t v = 0; v < pending.votes.size(); ++v) {
      pending.votes[v] = in.boolean();
    }
  }
  for (const auto& expert : experts_) expert->load_state(in);
}

std::string EnsemblePredictor::name() const {
  std::ostringstream os;
  os << "ensemble(" << experts_.size() << " experts";
  if (config_.penalty < 1.0) os << ", penalty=" << config_.penalty;
  os << ")";
  return os.str();
}

}  // namespace repl
