// Replays every checked-in regression fixture from fixtures/MANIFEST.
//
// Each fixture is a minimized artifact that once exposed a decoder
// defect (or pins a rejection the decoders must keep making): the
// replay must fail with the recorded digit-stripped signature — never
// crash, hang, or quietly accept. The corpus is regenerated with
// `fixture_tool gen-corpus --dir fixtures` after intentional diagnostic
// changes.
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "replay/fixture.hpp"
#include "replay/fixture_run.hpp"

#ifndef REPL_FIXTURES_DIR
#error "REPL_FIXTURES_DIR must point at the checked-in fixtures directory"
#endif

namespace repl {
namespace {

TEST(FixtureRegressionTest, ManifestFixturesKeepTheirSignatures) {
  const std::string dir = REPL_FIXTURES_DIR;
  std::ifstream manifest(dir + "/MANIFEST");
  ASSERT_TRUE(manifest.is_open()) << "missing " << dir << "/MANIFEST";

  std::size_t replayed = 0;
  std::string line;
  while (std::getline(manifest, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::string path = dir + "/" + line;
    const Fixture fixture = read_fixture(path);
    EXPECT_EQ(fixture.expect, FixtureExpect::kFailure) << line;
    EXPECT_FALSE(fixture.signature.empty()) << line;

    const FixtureRunResult result = fixture_run(fixture);
    EXPECT_TRUE(result.pass)
        << line << ": " << result.detail
        << (result.signature.empty()
                ? ""
                : "\n  observed signature: " + result.signature);
    ++replayed;
  }
  // The corpus covers (at least) the trailing-data, truncation, CRC,
  // wire mid-frame, and snapshot trailing-garbage classes.
  EXPECT_GE(replayed, 8u);
}

}  // namespace
}  // namespace repl
