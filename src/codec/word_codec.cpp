#include "codec/word_codec.hpp"

#include <stdexcept>

#include "codec/endian.hpp"

namespace repl {

namespace {

/// Number of bytes needed for the XOR once its leading (most
/// significant) zero bytes are dropped: 0 for a repeated word, 8 for an
/// unrelated one.
unsigned significant_bytes(std::uint64_t x) {
  unsigned n = 0;
  while (x != 0) {
    ++n;
    x >>= 8;
  }
  return n;
}

}  // namespace

std::vector<unsigned char> word_pack(const unsigned char* data,
                                     std::size_t size) {
  const std::size_t words = size / 8;
  std::vector<unsigned char> out;
  out.reserve(size / 2 + 16);  // guess; grows to at most ~size * 17/16

  std::uint64_t prev = 0;
  std::size_t w = 0;
  while (w < words) {
    const std::size_t control_pos = out.size();
    out.push_back(0);
    unsigned char control = 0;
    for (int half = 0; half < 2 && w < words; ++half, ++w) {
      const std::uint64_t word = load_le64(data + w * 8);
      std::uint64_t x = word ^ prev;
      prev = word;
      const unsigned n = significant_bytes(x);
      control |= static_cast<unsigned char>(n << (4 * half));
      for (unsigned i = 0; i < n; ++i) {
        out.push_back(static_cast<unsigned char>(x));
        x >>= 8;
      }
    }
    out[control_pos] = control;
  }
  out.insert(out.end(), data + words * 8, data + size);
  return out;
}

std::vector<unsigned char> word_unpack(const unsigned char* data,
                                       std::size_t size, std::size_t raw_size,
                                       const std::string& context) {
  const auto fail = [&context](const std::string& what) -> void {
    throw std::runtime_error(context + ": " + what);
  };
  const std::size_t words = raw_size / 8;
  const std::size_t tail = raw_size % 8;
  std::vector<unsigned char> out;
  out.reserve(raw_size);

  const unsigned char* p = data;
  const unsigned char* const end = data + size;
  std::uint64_t prev = 0;
  std::size_t w = 0;
  while (w < words) {
    if (p == end) fail("word codec input ends before a control byte");
    const unsigned char control = *p++;
    for (int half = 0; half < 2 && w < words; ++half, ++w) {
      const unsigned n = (control >> (4 * half)) & 0x0Fu;
      if (n > 8) fail("word codec control nibble " + std::to_string(n));
      if (static_cast<std::size_t>(end - p) < n) {
        fail("word codec input ends inside a word");
      }
      std::uint64_t x = 0;
      for (unsigned i = 0; i < n; ++i) {
        x |= std::uint64_t{*p++} << (8 * i);
      }
      prev ^= x;
      for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<unsigned char>(prev >> (8 * i)));
      }
    }
    // An odd word count leaves the final control byte's high nibble
    // unused; the encoder writes it as 0 and the loop above simply
    // stopped at `words`, so nothing to check here.
  }
  if (static_cast<std::size_t>(end - p) != tail) {
    fail("word codec tail holds " + std::to_string(end - p) +
         " bytes, expected " + std::to_string(tail));
  }
  out.insert(out.end(), p, end);
  if (out.size() != raw_size) fail("word codec size mismatch");
  return out;
}

}  // namespace repl
