// The replication policy interface.
//
// A policy is an event-driven automaton over the copy configuration. The
// driver (Simulator, or the Section-9 adversary) interacts with it via:
//
//   reset(cfg, pred0, sink)       — place the initial copy at
//                                   cfg.initial_server at time 0; `pred0`
//                                   is the prediction for the dummy
//                                   request r0;
//   advance_to(t, sink)           — process all spontaneous transitions
//                                   (copy expiries) with time strictly
//                                   less than t, in time order (ties by
//                                   server index);
//   on_request(server, t, pred)   — serve a request; `pred` forecasts the
//                                   *next* inter-request time at `server`;
//   next_transition_time()        — earliest pending spontaneous
//                                   transition (+inf if none);
//   holds(server) / copy_count()  — introspection of the copy set.
//
// Time-tie conventions (see DESIGN.md §2): an intended expiry at exactly
// time t does not fire before a request at time t — copies are valid
// through their expiry instant inclusive — so drivers always call
// advance_to(t) (strict) before on_request(t).
//
// Policies must be clone()-able: the lower-bound adversary forks the
// policy to peek at its future copy-holding behaviour, and the adapted
// algorithm's tests compare forked trajectories.
#pragma once

#include <memory>
#include <string>

#include "checkpoint/state_io.hpp"
#include "core/types.hpp"
#include "predictor/predictor.hpp"

namespace repl {

class ReplicationPolicy {
 public:
  virtual ~ReplicationPolicy() = default;

  virtual void reset(const SystemConfig& config, const Prediction& pred0,
                     EventSink& sink) = 0;

  virtual void advance_to(double time, EventSink& sink) = 0;

  virtual ServeAction on_request(int server, double time,
                                 const Prediction& pred,
                                 EventSink& sink) = 0;

  /// Earliest time (> the last processed instant) at which the copy set
  /// changes without a request arriving; +inf if the configuration is
  /// stable.
  virtual double next_transition_time() const = 0;

  virtual bool holds(int server) const = 0;
  virtual int copy_count() const = 0;

  virtual std::string name() const = 0;
  virtual std::unique_ptr<ReplicationPolicy> clone() const = 0;

  /// Checkpoint protocol (see checkpoint/snapshot.hpp): serialize every
  /// field that evolves after reset() so that a freshly constructed and
  /// reset() policy, after load_state(), continues bit-identically to
  /// the saved one. Static configuration (alpha, the SystemConfig) is
  /// re-established by construction + reset, not by the snapshot —
  /// implementations write cross-check fields instead of reloading them.
  /// The default refuses: a policy that silently round-tripped nothing
  /// would resume from the wrong state.
  virtual void save_state(StateWriter& out) const;
  virtual void load_state(StateReader& in);
};

inline void ReplicationPolicy::save_state(StateWriter&) const {
  REPL_REQUIRE_MSG(false, "policy '" << name()
                                     << "' does not support checkpointing");
}

inline void ReplicationPolicy::load_state(StateReader&) {
  REPL_REQUIRE_MSG(false, "policy '" << name()
                                     << "' does not support checkpointing");
}

using PolicyPtr = std::unique_ptr<ReplicationPolicy>;

}  // namespace repl
