// Ensemble predictor: weighted-majority vote over several base
// predictors, in the spirit of the multiple-expert setting of Gollapudi
// and Panigrahi (ICML 2019) that the paper cites as related work. The
// weights can optionally adapt multiplicatively: after each observed
// outcome, experts that mispredicted the previous gap at the same server
// are down-weighted (classic weighted-majority updates).
//
// Adaptation is causal: a prediction issued at request r_i is scored only
// when the *next* request at the same server reveals the gap.
#pragma once

#include <memory>
#include <vector>

#include "predictor/predictor.hpp"

namespace repl {

class EnsemblePredictor final : public Predictor {
 public:
  struct Config {
    /// Multiplicative penalty in (0, 1] applied to a wrong expert's
    /// weight; 1 disables adaptation (plain weighted vote).
    double penalty = 0.5;
  };

  /// Takes shared ownership of the experts; initial weights default to 1.
  EnsemblePredictor(std::vector<std::shared_ptr<Predictor>> experts,
                    Config config);
  explicit EnsemblePredictor(
      std::vector<std::shared_ptr<Predictor>> experts)
      : EnsemblePredictor(std::move(experts), Config()) {}

  void reset() override;
  Prediction predict(const PredictionQuery& query) override;
  std::string name() const override;
  /// Weights, per-server pending votes, and each expert's own state (in
  /// expert order) — restore requires the same expert lineup.
  void save_state(StateWriter& out) const override;
  void load_state(StateReader& in) override;

  const std::vector<double>& weights() const { return weights_; }

 private:
  struct PendingVote {
    double time = -1.0;  // when the scored prediction was issued
    std::vector<bool> votes;
  };

  std::vector<std::shared_ptr<Predictor>> experts_;
  Config config_;
  std::vector<double> weights_;
  /// Last issued per-expert votes per server, awaiting ground truth.
  std::vector<PendingVote> pending_;
};

}  // namespace repl
