// Experiment E2 — Figures 29–32 of the paper: the adapted Algorithm 1
// (Section 8) with robustness target 2 + β, for λ ∈ {1000, 10000} and
// β ∈ {0.1, 1}, over the (alpha, accuracy) grid on the IBM-like trace.
// Matches the paper's protocol: the first 100 requests run the plain
// Algorithm 1 as warm-up to seed the OnlineU / OPTL monitor.
//
// Paper shape: the adapted ratio stays at or below the plain algorithm's
// ratio wherever that exceeds 2 + β, clamping the blow-up at small alpha
// and low accuracy; where the plain ratio is already below the target
// the two coincide (the monitor never trips) — and for the λ values not
// shown (10, 100) the results equal the original algorithm's.
#include <algorithm>
#include <iostream>

#include "analysis/ratio.hpp"
#include "bench_util.hpp"
#include "core/adaptive_drwp.hpp"
#include "core/drwp.hpp"
#include "offline/opt_dp.hpp"
#include "predictor/noisy.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace repl;
  CliParser cli("bench_fig29_32",
                "Figures 29-32: adapted Algorithm 1, robustness 2+beta");
  cli.add_flag("seed", "1", "trace seed");
  cli.add_flag("scale", "1.0", "trace scale");
  cli.add_flag("lambdas", "1000,10000", "lambda values");
  cli.add_flag("betas", "0.1,1", "beta values");
  cli.add_flag("warmup", "100", "warm-up requests (paper: 100)");
  if (!cli.parse(argc, argv)) return 0;

  const Trace trace =
      bench::evaluation_trace(cli.get_uint64("seed"), cli.get_double("scale"));
  std::cout << "trace: " << trace.size() << " requests\n\n";

  bench::ShapeChecks checks;
  SystemConfig config;
  config.num_servers = trace.num_servers();
  const auto warmup = static_cast<std::size_t>(cli.get_int("warmup"));

  for (double lambda : cli.get_double_list("lambdas")) {
    config.transfer_cost = lambda;
    const double opt = optimal_offline_cost(config, trace);
    for (double beta : cli.get_double_list("betas")) {
      std::cout << "=== lambda = " << lambda << ", beta = " << beta
                << "  (target robustness " << 2.0 + beta << ") ===\n";
      std::vector<std::string> header = {"alpha \\ accuracy"};
      for (double accuracy : bench::accuracy_grid()) {
        header.push_back(bench::percent_label(accuracy));
      }
      Table table(header);

      double worst_adapted = 0.0;
      double worst_excess_vs_plain = -1e18;
      for (double alpha : bench::alpha_grid()) {
        std::vector<std::string> row = {Table::cell(alpha, 2)};
        for (double accuracy : bench::accuracy_grid()) {
          AccuracyPredictor p_adapted(trace, accuracy, 1234);
          AccuracyPredictor p_plain(trace, accuracy, 1234);
          AdaptiveDrwpPolicy adapted(
              alpha, AdaptiveDrwpPolicy::Options{beta, warmup});
          DrwpPolicy plain(alpha);
          const double ratio_adapted =
              evaluate_policy(config, adapted, trace, p_adapted, opt)
                  .ratio;
          const double ratio_plain =
              evaluate_policy(config, plain, trace, p_plain, opt).ratio;
          row.push_back(Table::cell(ratio_adapted, 4));
          worst_adapted = std::max(worst_adapted, ratio_adapted);
          // Wherever the plain algorithm blows past the target, the
          // adaptation must be a strict improvement.
          if (ratio_plain > 2.0 + beta + 0.25) {
            worst_excess_vs_plain =
                std::max(worst_excess_vs_plain,
                         ratio_adapted - ratio_plain);
          }
        }
        table.add_row(std::move(row));
      }
      std::cout << table.str() << "\n";
      checks.expect(worst_adapted <= 2.0 + beta + 0.35,
                    "lambda=" + std::to_string(lambda) + " beta=" +
                        std::to_string(beta) +
                        ": adapted ratio clamped near 2+beta (worst " +
                        Table::cell(worst_adapted, 4) + ")");
      checks.expect(worst_excess_vs_plain <= 0.0,
                    "adapted never worse than plain where plain exceeds "
                    "the target");
      std::cout << "\n";
    }
  }
  return checks.finish();
}
