// Replaying fixtures: run the embedded artifact, diff the outcome.
//
// fixture_run() is the single verdict function of the capture-to-test
// workflow: the regression suite, the minimizer, and the fixture_tool
// CLI all call it and trust its pass/fail. For parity fixtures the
// embedded slice is re-served through a spec-built StreamingEngine (or
// drained through SnapshotReader / FrameAssembler for the other
// targets) and the aggregates must match the recorded ones *bit for
// bit* — doubles compared as u64 patterns, so a single ULP of drift
// fails. For failure fixtures the replay must throw, and the
// diagnostic's digit-stripped signature must equal the recorded one:
// the input keeps failing the same way, positioned, never a crash or a
// silent wrong answer.
#pragma once

#include <string>

#include "replay/fixture.hpp"

namespace repl {

struct FixtureRunOptions {
  /// Engine geometry for the serve target; 0 keeps the engine defaults.
  /// Aggregates are geometry-independent by the determinism contract,
  /// so sweeps over these must not change the verdict.
  std::size_t num_shards = 0;
  int num_threads = 1;
  std::size_t batch_events = std::size_t{1} << 14;
  /// Also exercise every recorded checkpoint cut: serve to the cut,
  /// snapshot, restore into a fresh engine, finish on the original
  /// slice — aggregates must stay bit-identical (serve target only).
  bool verify_cuts = false;
  /// Where scratch files (the extracted slice, cut snapshots) go; a
  /// fresh directory under the system temp dir when empty. Always
  /// removed afterwards.
  std::string scratch_dir;
};

struct FixtureRunResult {
  bool pass = false;
  /// Human-readable verdict: empty on pass, the mismatch or the
  /// unexpected outcome otherwise.
  std::string detail;
  /// Digit-stripped signature of the replay failure ("" when the replay
  /// succeeded). Valid whether or not the fixture expected a failure —
  /// the minimizer steers by it.
  std::string signature;
  /// Aggregates observed when the replay succeeded.
  FixtureAggregates aggregates;
};

FixtureRunResult fixture_run(const Fixture& fixture,
                             const FixtureRunOptions& options = {});
FixtureRunResult fixture_run(const std::string& path,
                             const FixtureRunOptions& options = {});

}  // namespace repl
