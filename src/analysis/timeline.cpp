#include "analysis/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace repl {

std::string render_timeline(const SimulationResult& result,
                            const Trace& trace, TimelineOptions options) {
  REPL_REQUIRE(options.width >= 8);
  REPL_REQUIRE_MSG(!result.segments.empty() || trace.empty(),
                   "timeline needs the event log "
                   "(SimulationOptions::record_events)");
  const double horizon = result.horizon > 0.0 ? result.horizon : 1.0;
  const int width = options.width;
  const int servers = result.config.num_servers;

  const auto column = [&](double time) {
    const double frac = std::clamp(time / horizon, 0.0, 1.0);
    return std::min(static_cast<int>(frac * width), width - 1);
  };

  std::vector<std::string> rows(
      static_cast<std::size_t>(servers),
      std::string(static_cast<std::size_t>(width), '.'));

  for (const CopySegment& segment : result.segments) {
    const int from = column(segment.begin);
    const int to = segment.end >= horizon ? width - 1 : column(segment.end);
    auto& row = rows[static_cast<std::size_t>(segment.server)];
    for (int c = from; c <= to; ++c) {
      row[static_cast<std::size_t>(c)] = '=';
    }
    if (std::isfinite(segment.special_from) &&
        segment.special_from <= horizon) {
      const int special_from = column(segment.special_from);
      for (int c = special_from; c <= to; ++c) {
        row[static_cast<std::size_t>(c)] = '*';
      }
    }
  }

  for (const ServeRecord& serve : result.serves) {
    if (serve.time > horizon) continue;
    auto& row = rows[static_cast<std::size_t>(serve.server)];
    row[static_cast<std::size_t>(column(serve.time))] =
        serve.local ? 'o' : 'x';
  }

  std::ostringstream os;
  for (int s = 0; s < servers; ++s) {
    os << "s" << s << (s < 10 ? " " : "") << "|"
       << rows[static_cast<std::size_t>(s)] << "|\n";
  }
  if (options.show_axis) {
    os << "    0";
    const std::string mid = "t=" +
                            std::to_string(static_cast<long long>(horizon / 2));
    const std::string end =
        "t=" + std::to_string(static_cast<long long>(horizon));
    const int pad_mid =
        std::max(1, width / 2 - static_cast<int>(mid.size()) / 2 - 1);
    const int pad_end = std::max(
        1, width - pad_mid - static_cast<int>(mid.size()) -
               static_cast<int>(end.size()) - 1);
    os << std::string(static_cast<std::size_t>(pad_mid), ' ') << mid
       << std::string(static_cast<std::size_t>(pad_end), ' ') << end
       << "\n";
  }
  return os.str();
}

}  // namespace repl
