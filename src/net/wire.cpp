#include "net/wire.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "codec/endian.hpp"

namespace repl {

void encode_stream_header(unsigned char* out, std::uint32_t num_servers) {
  store_le64(out, EventLogHeader::kMagic);
  store_le32(out + 8, EventLogHeader::kVersionCompressed);
  store_le32(out + 12, num_servers);
  store_le64(out + 16, 0);  // num_objects: unknown while streaming
  store_le64(out + 24, EventLogHeader::kUnknownCount);
}

void encode_net_ack(unsigned char* out, std::uint64_t resume_events) {
  store_le64(out, kNetAckMagic);
  store_le64(out + 8, resume_events);
}

std::uint64_t decode_net_ack(const unsigned char* raw) {
  if (load_le64(raw) != kNetAckMagic) {
    throw std::runtime_error(
        "bad handshake ACK from server (wrong magic — not a repl ingest "
        "server?)");
  }
  return load_le64(raw + 8);
}

void encode_trace_frame(std::vector<unsigned char>& out,
                        std::uint64_t trace_id, std::uint64_t span_id) {
  if (trace_id == 0) {
    throw std::invalid_argument("trace frames require a nonzero trace id");
  }
  unsigned char body[kTraceFrameBodyBytes];
  store_le64(body + 0, trace_id);
  store_le64(body + 8, span_id);
  store_le64(body + 16, 0);  // reserved
  unsigned char frame[kBlockFrameBytes];
  encode_block_frame(frame, kTraceFrameAuxFlag, body, sizeof(body));
  out.insert(out.end(), frame, frame + kBlockFrameBytes);
  out.insert(out.end(), body, body + sizeof(body));
}

FrameAssembler::FrameAssembler(std::string name, std::size_t max_body_bytes)
    : name_(std::move(name)), max_body_bytes_(max_body_bytes) {
  buffer_.resize(EventLogHeader::kSize);
}

void FrameAssembler::fail(const std::string& what) {
  dead_ = true;
  throw std::runtime_error(name_ + ": " + what + " (frame " +
                           std::to_string(frames_) + ", byte offset " +
                           std::to_string(offset_) + ")");
}

void FrameAssembler::feed(const unsigned char* data, std::size_t size,
                          std::vector<LogEvent>& out) {
  if (dead_) {
    throw std::runtime_error(name_ + ": stream already failed");
  }
  try {
    while (size > 0) {
      const std::size_t take = std::min(target_ - pending_, size);
      std::memcpy(buffer_.data() + pending_, data, take);
      pending_ += take;
      data += take;
      size -= take;
      offset_ += take;
      if (pending_ < target_) return;
      switch (state_) {
        case State::kHeader:
          finish_header();
          break;
        case State::kFrame:
          finish_frame();
          // A zero-length body completes instantly — without this, an
          // empty trailing frame would leave at_boundary() false until
          // bytes that never come.
          if (state_ == State::kBody && target_ == 0) finish_body(out);
          break;
        case State::kBody:
          finish_body(out);
          break;
      }
    }
  } catch (...) {
    dead_ = true;
    throw;
  }
}

void FrameAssembler::finish_header() {
  if (load_le64(buffer_.data()) != EventLogHeader::kMagic) {
    fail("bad stream header magic");
  }
  header_.version = load_le32(buffer_.data() + 8);
  if (header_.version != EventLogHeader::kVersionCompressed) {
    fail("unsupported stream version " + std::to_string(header_.version) +
         " (live ingest speaks the compressed v2 format only)");
  }
  header_.num_servers = load_le32(buffer_.data() + 12);
  if (header_.num_servers == 0) fail("stream header declares 0 servers");
  header_.num_objects = load_le64(buffer_.data() + 16);
  header_.num_events = load_le64(buffer_.data() + 24);
  state_ = State::kFrame;
  pending_ = 0;
  target_ = kBlockFrameBytes;
}

void FrameAssembler::finish_frame() {
  switch (parse_block_frame(buffer_.data(), frame_, max_body_bytes_)) {
    case BlockFrameStatus::kOk:
      break;
    case BlockFrameStatus::kBadFrameCrc:
      fail("frame CRC mismatch (corrupt frame header)");
    case BlockFrameStatus::kImplausibleLength:
      fail("implausible frame length " + std::to_string(frame_.body_len));
  }
  state_ = State::kBody;
  pending_ = 0;
  target_ = frame_.body_len;
  if (buffer_.size() < target_) buffer_.resize(target_);
}

void FrameAssembler::finish_body(std::vector<LogEvent>& out) {
  if (!verify_block_payload(frame_, buffer_.data(), pending_)) {
    fail("block payload CRC mismatch");
  }
  if (frame_.aux & kTraceFrameAuxFlag) {
    if (frame_.aux != kTraceFrameAuxFlag) {
      fail("trace frame aux carries unexpected bits " +
           std::to_string(frame_.aux & ~kTraceFrameAuxFlag));
    }
    if (pending_ != kTraceFrameBodyBytes) {
      fail("trace frame body is " + std::to_string(pending_) +
           " bytes, expected " + std::to_string(kTraceFrameBodyBytes));
    }
    const std::uint64_t trace_id = load_le64(buffer_.data());
    const std::uint64_t span_id = load_le64(buffer_.data() + 8);
    if (load_le64(buffer_.data() + 16) != 0) {
      fail("trace frame reserved field is not zero");
    }
    if (trace_id == 0) fail("trace frame carries a zero trace id");
    latest_trace_ = obs::TraceContext{trace_id, span_id};
    ++trace_frames_;
    ++frames_;
    state_ = State::kFrame;
    pending_ = 0;
    target_ = kBlockFrameBytes;
    return;
  }
  // Decode into scratch and validate the whole frame before publishing:
  // a frame that fails any check must contribute nothing to `out`, so
  // the caller's delivered prefix is exactly the complete valid frames.
  scratch_.clear();
  decode_event_block(frame_.aux, buffer_.data(), pending_, scratch_,
                     name_ + " frame " + std::to_string(frames_));
  for (const LogEvent& event : scratch_) {
    const double t = event.time;
    // The engine rejects non-positive times; catching them here turns an
    // engine-poisoning batch into a single killed connection.
    if (!std::isfinite(t) || t <= 0.0) {
      fail("non-positive or non-finite event time in frame payload");
    }
    if (t < last_time_) {
      fail("event time " + std::to_string(t) +
           " regresses below stream time " + std::to_string(last_time_));
    }
    last_time_ = t;
  }
  out.insert(out.end(), scratch_.begin(), scratch_.end());
  events_ += frame_.aux;
  ++frames_;
  state_ = State::kFrame;
  pending_ = 0;
  target_ = kBlockFrameBytes;
}

}  // namespace repl
