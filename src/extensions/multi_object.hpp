// Multi-object workloads.
//
// The paper manages a single data object and notes that "different
// objects can be handled separately" (its footnote 1). This module makes
// that concrete: a multi-object workload is a set of per-object traces; a
// policy factory supplies one independent policy instance per object; the
// aggregate online and optimal costs are sums over objects. Object
// popularity follows a Zipf law, the standard model for object storage.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "predictor/predictor.hpp"
#include "trace/trace.hpp"

namespace repl {

struct MultiObjectWorkload {
  /// Per-object request traces over a common server set.
  std::vector<Trace> objects;
  int num_servers = 0;
};

struct MultiObjectConfig {
  int num_objects = 20;
  double object_zipf_s = 1.0;  // popularity skew across objects
  int num_servers = 10;
  double request_rate = 0.02;  // aggregate, requests per time unit
  double horizon = 86400.0;
  double server_zipf_s = 1.0;
};

/// Draws one aggregate Poisson stream, assigns each request to an object
/// (Zipf) and a server (Zipf), and splits per object.
MultiObjectWorkload generate_multi_object_workload(
    const MultiObjectConfig& config, std::uint64_t seed);

using PolicyFactory = std::function<PolicyPtr()>;
using PredictorFactory =
    std::function<std::unique_ptr<Predictor>(const Trace&)>;

struct MultiObjectResult {
  double online_cost = 0.0;
  double opt_cost = 0.0;
  std::vector<double> per_object_online;
  std::vector<double> per_object_opt;
  double ratio() const {
    return opt_cost > 0.0 ? online_cost / opt_cost : 1.0;
  }
};

/// Runs one policy instance per object and aggregates costs; the offline
/// optimum decomposes per object since copies of different objects do not
/// interact. Serial reference path (ParallelRunner with one thread).
MultiObjectResult run_multi_object(const MultiObjectWorkload& workload,
                                   const SystemConfig& base_config,
                                   const PolicyFactory& make_policy,
                                   const PredictorFactory& make_predictor);

/// As run_multi_object(), but sharded across a work-stealing pool
/// (`num_threads` = 0 uses every hardware thread). The aggregate is
/// bit-identical to the serial path; see run/parallel_runner.hpp.
/// Unlike the serial contract, the factories are invoked concurrently
/// from worker threads and must be thread-safe (no mutation of shared
/// captured state).
MultiObjectResult run_multi_object_parallel(
    const MultiObjectWorkload& workload, const SystemConfig& base_config,
    const PolicyFactory& make_policy,
    const PredictorFactory& make_predictor, int num_threads = 0);

struct RunnerStats;

/// Spec-driven twin: each object's components are built by the
/// ComponentRegistry (api/registry.hpp) from the given spec strings,
/// seeded deterministically per object and supplied the object's trace
/// (so clairvoyant predictors like `oracle` or `noisy(accuracy=0.8)`
/// work here, unlike in the online engine). Throws SpecError on a bad
/// spec before any simulation starts. `base_seed` roots the per-object
/// seed streams of randomized components; `stats`, when non-null,
/// receives the runner's diagnostics (threads used, steals, wall time).
MultiObjectResult run_multi_object_spec(
    const MultiObjectWorkload& workload, const SystemConfig& base_config,
    const std::string& policy_spec, const std::string& predictor_spec,
    int num_threads = 0,
    std::uint64_t base_seed = 0x5eed5eed5eed5eedULL,
    RunnerStats* stats = nullptr);

}  // namespace repl
