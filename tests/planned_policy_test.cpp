// PlannedPolicy tests: simulating the DP's optimal plan must reproduce
// the DP's cost exactly — the strongest cross-validation between the
// simulator's cost integration and the offline solver's accounting.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "offline/opt_dp.hpp"
#include "offline/planned_policy.hpp"
#include "predictor/fixed.hpp"
#include "test_util.hpp"
#include "trace/paper_instances.hpp"

namespace repl {
namespace {

using testing::make_config;

double simulate_plan(const SystemConfig& config, const Trace& trace) {
  const OfflinePlan plan = OptimalDpSolver(config).solve_with_plan(trace);
  PlannedPolicy policy(trace, plan);
  FixedPredictor ignored = always_beyond_predictor();
  const SimulationResult result =
      Simulator(config).run(policy, trace, ignored);
  EXPECT_NEAR(result.total_cost(), plan.cost,
              1e-9 * std::max(1.0, plan.cost));
  return result.total_cost();
}

TEST(PlannedPolicy, ReproducesDpCostOnUniformTraces) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Trace trace = testing::random_trace(4, 0.06, 800.0, seed + 40);
    if (trace.empty()) continue;
    for (double lambda : {3.0, 15.0, 90.0}) {
      const SystemConfig config = make_config(4, lambda);
      simulate_plan(config, trace);
    }
  }
}

TEST(PlannedPolicy, ReproducesDpCostOnWeightedTraces) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Trace trace = testing::random_trace(3, 0.05, 600.0, seed + 60);
    if (trace.empty()) continue;
    SystemConfig config = make_config(3, 10.0);
    config.storage_rates = {1.0, 0.2, 5.0};
    simulate_plan(config, trace);
  }
}

TEST(PlannedPolicy, ReproducesClosedFormsOnPaperInstances) {
  const double lambda = 10.0;
  {
    const SystemConfig config = make_config(2, lambda);
    const Trace trace = make_figure5_trace(0.5, lambda, 8, 0.25);
    EXPECT_NEAR(simulate_plan(config, trace),
                figure5_optimal_cost(0.5, lambda, 8, 0.25), 1e-9);
  }
  {
    const SystemConfig config = make_config(2, lambda);
    const Trace trace = make_figure6_trace(lambda, 0.5, 1);
    EXPECT_NEAR(simulate_plan(config, trace),
                figure6_single_cycle_optimal_cost(lambda, 0.5), 1e-9);
  }
  {
    const SystemConfig config = make_config(2, lambda);
    const Trace trace = make_figure9_trace(lambda, 0.125, 7);
    EXPECT_NEAR(simulate_plan(config, trace),
                figure9_optimal_cost(lambda, 0.125, 7), 1e-9);
  }
}

TEST(PlannedPolicy, ExercisesParkingTransfersUnderWeightedRates) {
  // The weighted "parking" instance (see offline_test): the plan buys a
  // copy at the cheap idle server; replaying it must emit those extra
  // transfers and still match the DP cost.
  SystemConfig config = make_config(3, 1.0);
  config.storage_rates = {10.0, 10.0, 0.01};
  const Trace trace(3, {{100.0, 1}, {200.0, 0}, {300.0, 1}});
  const OfflinePlan plan = OptimalDpSolver(config).solve_with_plan(trace);
  PlannedPolicy policy(trace, plan);
  FixedPredictor ignored = always_beyond_predictor();
  const SimulationResult result =
      Simulator(config).run(policy, trace, ignored);
  EXPECT_NEAR(result.total_cost(), plan.cost, 1e-9);
  // The parking copy at server 2 exists even though it never requests.
  bool parked = false;
  for (const CopySegment& seg : result.segments) {
    parked = parked || seg.server == 2;
  }
  EXPECT_TRUE(parked);
}

TEST(PlannedPolicy, RejectsDivergingRequestStream) {
  const SystemConfig config = make_config(2, 5.0);
  const Trace trace(2, {{1.0, 1}, {2.0, 0}});
  const Trace other(2, {{1.0, 0}, {2.0, 1}});
  const OfflinePlan plan = OptimalDpSolver(config).solve_with_plan(trace);
  PlannedPolicy policy(trace, plan);
  FixedPredictor ignored = always_beyond_predictor();
  EXPECT_THROW(Simulator(config).run(policy, other, ignored),
               CheckFailure);
}

TEST(PlannedPolicy, RejectsMismatchedPlanSize) {
  const SystemConfig config = make_config(2, 5.0);
  const Trace trace(2, {{1.0, 1}, {2.0, 0}});
  OfflinePlan plan = OptimalDpSolver(config).solve_with_plan(trace);
  plan.states.pop_back();
  EXPECT_THROW(PlannedPolicy(trace, plan), std::invalid_argument);
}

}  // namespace
}  // namespace repl
