// The adapted Algorithm 1 of Section 8: bounded robustness 2 + β.
//
// Plain Algorithm 1 trades consistency (5+α)/3 against robustness 1+1/α —
// unbounded as α → 0. The adaptation monitors an upper bound of the
// online-to-optimal ratio (OnlineU / OPTL, see OnlineCostEstimator) and,
// whenever it exceeds the target 2 + β, sets the intended duration of the
// next regular copy to λ regardless of the prediction (the conventional
// 2-competitive rule); otherwise it follows Algorithm 1. A configurable
// warm-up runs plain Algorithm 1 for the first `warmup_requests` requests
// (the paper's experiments use 100).
#pragma once

#include <optional>

#include "core/drwp.hpp"
#include "core/online_estimator.hpp"

namespace repl {

class AdaptiveDrwpPolicy final : public DrwpPolicy {
 public:
  struct Options {
    double beta = 0.1;              // target robustness is 2 + beta
    std::size_t warmup_requests = 100;
  };

  AdaptiveDrwpPolicy(double alpha, Options options);

  void reset(const SystemConfig& config, const Prediction& pred0,
             EventSink& sink) override;
  std::string name() const override;
  std::unique_ptr<ReplicationPolicy> clone() const override;

  /// Base DRWP state plus the ratio monitor (estimator accumulators,
  /// warm-up and fallback counters).
  void save_state(StateWriter& out) const override;
  void load_state(StateReader& in) override;

  double beta() const { return options_.beta; }

  /// Current monitor value OnlineU / OPTL (+inf before any request).
  double monitored_ratio() const;
  /// How many requests chose the conventional duration because the
  /// monitor exceeded 2 + β.
  std::size_t fallback_count() const { return fallback_count_; }

 protected:
  double choose_duration(const Prediction& pred,
                         const ServeContext& ctx) override;

 private:
  Options options_;
  std::optional<OnlineCostEstimator> estimator_;
  std::size_t served_ = 0;
  std::size_t fallback_count_ = 0;
};

}  // namespace repl
