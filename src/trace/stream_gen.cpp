#include "trace/stream_gen.hpp"

#include <cmath>
#include <limits>
#include <optional>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace repl {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Draws the next inter-arrival gap of the aggregate process. For the
/// diurnal process the gap is a candidate at the peak rate; acceptance is
/// decided separately (thinning), so rejected candidates still advance
/// the clock.
class ArrivalSampler {
 public:
  explicit ArrivalSampler(const StreamWorkloadConfig& config)
      : config_(config) {
    if (config.arrivals == StreamWorkloadConfig::Arrivals::kPareto) {
      // Choose the scale so the mean gap is 1/rate when the mean exists
      // (shape > 1); otherwise fall back to scale = 1/rate.
      pareto_scale_ =
          config.pareto_shape > 1.0
              ? (config.pareto_shape - 1.0) / (config.pareto_shape *
                                               config.rate)
              : 1.0 / config.rate;
    }
  }

  /// Advances `t` to the next accepted arrival; returns false when the
  /// process cannot produce one (never happens for these processes).
  bool advance(Rng& rng, double& t) const {
    switch (config_.arrivals) {
      case StreamWorkloadConfig::Arrivals::kPoisson:
        t += rng.exponential(config_.rate);
        return true;
      case StreamWorkloadConfig::Arrivals::kPareto:
        t += rng.pareto(pareto_scale_, config_.pareto_shape);
        return true;
      case StreamWorkloadConfig::Arrivals::kDiurnal: {
        // Thinning at the peak rate, as in generate_diurnal_trace().
        const double rate_max =
            config_.rate * (1.0 + config_.diurnal_amplitude);
        for (;;) {
          t += rng.exponential(rate_max);
          const double rate =
              config_.rate *
              (1.0 + config_.diurnal_amplitude *
                         std::sin(2.0 * M_PI * t / config_.diurnal_period));
          if (rng.bernoulli(rate / rate_max)) return true;
          if (config_.horizon > 0.0 && t > config_.horizon) return true;
        }
      }
    }
    return false;
  }

 private:
  const StreamWorkloadConfig& config_;
  double pareto_scale_ = 0.0;
};

}  // namespace

std::uint64_t generate_event_stream(const StreamWorkloadConfig& config,
                                    std::uint64_t seed, EventLogWriter& out) {
  REPL_REQUIRE(config.num_objects >= 1);
  REPL_REQUIRE(config.num_servers >= 1);
  REPL_REQUIRE(config.rate > 0.0);
  REPL_REQUIRE(config.pareto_shape > 0.0);
  REPL_REQUIRE(config.diurnal_amplitude >= 0.0 &&
               config.diurnal_amplitude < 1.0);
  REPL_REQUIRE(config.diurnal_period > 0.0);
  REPL_REQUIRE_MSG(config.horizon > 0.0 || config.max_events > 0,
                   "set a horizon or a max_events stop condition");
  REPL_REQUIRE_MSG(config.num_objects <=
                       std::uint64_t{std::numeric_limits<int>::max()},
                   "object Zipf table caps num_objects at 2^31-1");

  Rng rng(seed);
  const ZipfDistribution object_zipf(static_cast<int>(config.num_objects),
                                     config.object_zipf_s);
  std::optional<ZipfDistribution> server_zipf;
  if (config.server_zipf_s > 0.0) {
    server_zipf.emplace(config.num_servers, config.server_zipf_s);
  }
  const ArrivalSampler arrivals(config);

  std::uint64_t emitted = 0;
  double t = 0.0;
  while (config.max_events == 0 || emitted < config.max_events) {
    double next = t;
    if (!arrivals.advance(rng, next)) break;
    // Keep the global clock strictly increasing even when a gap
    // underflows the time's current ulp (possible far into a long
    // stream), so every per-object subsequence is a valid Trace.
    if (next <= t) next = std::nextafter(t, kInf);
    t = next;
    if (config.horizon > 0.0 && t > config.horizon) break;
    const auto object =
        static_cast<std::uint64_t>(object_zipf.sample(rng) - 1);
    const int server =
        server_zipf ? server_zipf->sample(rng) - 1
                    : static_cast<int>(rng.uniform_index(
                          static_cast<std::uint64_t>(config.num_servers)));
    out.write(t, object, static_cast<std::uint32_t>(server));
    ++emitted;
  }
  return emitted;
}

std::uint64_t generate_event_log(const StreamWorkloadConfig& config,
                                 std::uint64_t seed, const std::string& path,
                                 EventLogFormat format) {
  EventLogWriter writer(path, config.num_servers, config.num_objects, format);
  const std::uint64_t emitted = generate_event_stream(config, seed, writer);
  writer.close();
  return emitted;
}

}  // namespace repl
