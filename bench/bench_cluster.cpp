// Distributed serving throughput: what does partitioning a serve across
// worker processes cost (or buy) relative to one process?
//
// Synthesizes one event log, serves it once in-process (the baseline),
// then through a ClusterCoordinator at 1, 2, and 4 partitions — real
// worker processes over unix sockets — and finally once more at 4
// partitions with one worker SIGKILLed mid-serve and respawned from its
// per-partition checkpoint. Every cluster row's aggregates are required
// to be bit-identical to the single-process serve: the partition merge
// and reduce are deterministic by construction, so any divergence is a
// bug, not noise.
//
//   ./build/bench/bench_cluster              # 10^6 events, 1/2/4 partitions
//   ./build/bench/bench_cluster --smoke      # CI-sized, same parity checks
//
// Writes BENCH_cluster.json next to the table.
#include <signal.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/experiment.hpp"
#include "cluster/coordinator.hpp"
#include "cluster/partition.hpp"
#include "engine/engine.hpp"
#include "obs/trace.hpp"
#include "trace/event_log.hpp"
#include "trace/stream_gen.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

#include "bench_util.hpp"

#ifndef REPL_GIT_DESCRIBE
#define REPL_GIT_DESCRIBE "unknown"
#endif

namespace {

using namespace repl;

struct ClusterRow {
  std::uint32_t partitions = 0;
  bool killed = false;
  bool traced = false;
  std::uint64_t events = 0;
  double seconds = 0.0;
  double events_per_sec = 0.0;
  std::size_t respawns = 0;
  bool identical = false;
};

SystemConfig bench_config(int servers) {
  SystemConfig config;
  config.num_servers = servers;
  config.transfer_cost = 10.0;
  return config;
}

bool same_aggregates(const EngineMetrics& a, const EngineMetrics& b) {
  return a.objects == b.objects && a.events == b.events &&
         a.num_local == b.num_local && a.num_transfers == b.num_transfers &&
         a.online_cost == b.online_cost && a.lower_bound == b.lower_bound;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_cluster",
                "multi-process partitioned serving vs one process");
  cli.add_flag("events", "1000000", "events in the synthesized log");
  cli.add_flag("objects", "100000", "objects in the synthesized log");
  cli.add_flag("servers", "10", "servers in the system");
  cli.add_flag("seed", "1", "workload seed");
  cli.add_bool_flag("smoke", "CI-sized run (100k events)");
  if (!cli.parse(argc, argv)) return 0;

#ifndef REPL_CLUSTER_BIN
  std::cout << "bench_cluster: repl_cluster launcher not built "
               "(REPL_BUILD_EXAMPLES=OFF) — nothing to measure\n";
  return 0;
#else
  const bool smoke = cli.get_bool("smoke");
  const std::uint64_t events = smoke ? 100000 : cli.get_uint64("events");
  const std::size_t objects = smoke ? 10000 : cli.get_size_t("objects", 1);
  const int servers = static_cast<int>(cli.get_size_t("servers", 1, 4096));

  const std::filesystem::path work =
      std::filesystem::temp_directory_path() / "bench_cluster";
  std::filesystem::remove_all(work);
  std::filesystem::create_directories(work);
  const std::string log_path = (work / "stream.evlog").string();

  StreamWorkloadConfig workload;
  workload.num_objects = objects;
  workload.num_servers = servers;
  workload.max_events = events;
  workload.rate = static_cast<double>(objects) / 64.0;
  std::cout << "synthesizing " << events << " events over " << objects
            << " objects -> " << log_path << "\n";
  generate_event_log(workload, cli.get_uint64("seed"), log_path,
                     EventLogFormat::kCompressed);

  // Baseline: one process, same engine stack the workers run.
  EngineMetrics single_metrics;
  double single_seconds = 0.0;
  {
    EngineBuilder builder;
    builder.config(bench_config(servers));
    builder.policy("drwp(alpha=0.3)").predictor("last_gap");
    auto engine = builder.build();
    EventLogReader reader(log_path);
    const auto start = std::chrono::steady_clock::now();
    single_metrics = engine->serve(reader, ServeOptions{});
    single_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  }
  const double single_rate =
      single_seconds > 0.0
          ? static_cast<double>(single_metrics.events) / single_seconds
          : 0.0;

  // Partition-local event counts, for placing the kill cut.
  std::vector<std::uint64_t> counts4(4, 0);
  {
    EventLogReader reader(log_path);
    std::vector<LogEvent> batch;
    while (reader.read_batch(batch, std::size_t{1} << 16) > 0) {
      for (const LogEvent& event : batch) {
        ++counts4[partition_of(event.object, 4)];
      }
    }
  }

  bench::ShapeChecks checks;
  std::vector<ClusterRow> rows;
  const auto run = [&](std::uint32_t partitions, bool kill_one,
                       bool traced = false) {
    std::string name("p");
    name += std::to_string(partitions);
    if (kill_one) name += "k";
    if (traced) name += "t";
    const std::string dir = (work / name).string();
    std::filesystem::create_directories(dir);

    ClusterCoordinatorOptions options;
    options.num_partitions = partitions;
    options.worker_binary = REPL_CLUSTER_BIN;
    options.socket_dir = dir;
    options.config = bench_config(servers);
    options.checkpoint_every = kill_one ? events / 16 : 0;
    const std::string coord_part = dir + "/trace.coord.jsonl";
    if (traced) {
      options.trace_dir = dir;
      obs::Tracer::global().start(coord_part, "bench-coordinator");
    }
    ClusterCoordinator* live = nullptr;
    bool fired = false;
    if (kill_one) {
      options.on_progress = [&](std::uint32_t partition,
                                std::uint64_t routed) {
        if (fired || partition != 0 || routed < counts4[0] / 2) return;
        fired = true;
        const int pid = live->worker_pid(partition);
        if (pid > 0) ::kill(pid, SIGKILL);
      };
    }
    ClusterCoordinator coordinator(options);
    live = &coordinator;

    const auto start = std::chrono::steady_clock::now();
    const ClusterServeResult result = coordinator.serve_log(log_path);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    std::size_t trace_events = 0;
    if (traced) {
      obs::Tracer::global().stop();
      std::vector<std::string> parts = coordinator.trace_parts();
      parts.push_back(coord_part);
      trace_events =
          obs::merge_trace_parts(parts, (work / (name + ".trace.json")).string());
    }

    ClusterRow row;
    row.partitions = partitions;
    row.killed = kill_one;
    row.traced = traced;
    row.events = result.metrics.events;
    row.seconds = seconds;
    row.events_per_sec =
        seconds > 0.0 ? static_cast<double>(result.metrics.events) / seconds
                      : 0.0;
    row.respawns = result.respawns;
    row.identical = same_aggregates(result.metrics, single_metrics);
    rows.push_back(row);

    std::string label = std::to_string(partitions) + "-partition serve";
    if (kill_one) label += " with kill/respawn";
    if (traced) label += " with tracing";
    checks.expect(row.identical,
                  label + " is bit-identical to single-process");
    if (kill_one) {
      checks.expect(fired && result.respawns >= 1,
                    label + " actually killed and respawned a worker");
    }
    if (traced) {
      checks.expect(trace_events > 0,
                    label + " produced a non-empty merged trace");
    }
  };

  for (const std::uint32_t partitions : {1u, 2u, 4u}) {
    run(partitions, /*kill_one=*/false);
  }
  run(4, /*kill_one=*/true);
  // Tracing is observability, not control flow: a traced serve must stay
  // bit-identical to the untraced (and single-process) serve.
  run(2, /*kill_one=*/false, /*traced=*/true);

  Table table({"partitions", "killed", "traced", "events", "seconds", "ev/s",
               "vs single", "respawns", "identical"});
  for (const ClusterRow& row : rows) {
    table.add_row(
        {std::to_string(row.partitions), row.killed ? "yes" : "no",
         row.traced ? "yes" : "no",
         Table::cell(row.events), Table::cell(row.seconds, 3),
         Table::cell(row.events_per_sec, 0),
         Table::cell(single_rate > 0.0 ? row.events_per_sec / single_rate
                                       : 0.0,
                     3),
         std::to_string(row.respawns), row.identical ? "yes" : "NO"});
  }
  std::cout << "single-process: " << single_seconds << " s, " << single_rate
            << " ev/s\n"
            << table.str();

  JsonWriter json;
  json.begin_object();
  json.key("bench").value("cluster");
  json.key("git").value(REPL_GIT_DESCRIBE);
  json.key("events").value(events);
  json.key("objects").value(static_cast<std::uint64_t>(objects));
  json.key("single_seconds").value(single_seconds);
  json.key("single_events_per_sec").value(single_rate);
  json.key("rows").begin_array();
  for (const ClusterRow& row : rows) {
    json.begin_object();
    json.key("partitions").value(static_cast<std::uint64_t>(row.partitions));
    json.key("killed").value(row.killed);
    json.key("traced").value(row.traced);
    json.key("events").value(row.events);
    json.key("seconds").value(row.seconds);
    json.key("events_per_sec").value(row.events_per_sec);
    json.key("respawns").value(static_cast<std::uint64_t>(row.respawns));
    json.key("identical").value(row.identical);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  std::ofstream("BENCH_cluster.json") << json.str() << "\n";
  std::cout << "wrote BENCH_cluster.json\n";

  std::error_code ec;
  std::filesystem::remove_all(work, ec);
  return checks.finish();
#endif
}
