// Binary event-log format for interleaved multi-object request streams.
//
// A log is one globally time-ordered sequence of (time, object, server)
// events — the online interface the streaming engine serves. The format
// is designed for multi-GB logs: records behind a small header, written
// and read through buffered streams so a log never needs to reside in
// memory. Two wire versions share the header layout:
//
//   offset  size  field
//   0       8     magic      "REPLELOG"
//   8       4     version    1 (raw) or 2 (compressed)
//   12      4     num_servers
//   16      8     num_objects   (max object id + 1; 0 while streaming)
//   24      8     num_events    (patched on close; kUnknownCount while
//                                streaming, e.g. after a crash)
//
// Version 1 (raw): fixed-width 20-byte little-endian records —
//   0   8   time    IEEE-754 binary64
//   8   8   object  u64
//   16  4   server  u32
//
// Version 2 (compressed): codec/block.hpp frames, each holding up to
// kEventLogBlockEvents delta-encoded events —
//   frame: u32 body_len, u32 event_count, u32 body CRC-32C, u32 frame
//          CRC-32C (over the other three fields — verifiable without
//          the body, so skip paths that steer by length/count are
//          corruption-safe too)
//   body, per event: time as a zigzag varint of the IEEE-754 bit-pattern
//          delta from the previous event in the block (codec/delta.hpp;
//          the first event deltas against 0), object id and server as
//          plain varints.
// Blocks decode independently (the delta state resets per block), so
// skip_events stays O(blocks): frames are read, payloads of wholly
// skipped blocks are seeked over, only the block containing the target
// is decoded. Dense id spaces land well under half the raw 20 bytes per
// event; the format is lossless for every double including NaN/inf
// payloads.
//
// Readers handle both versions transparently and reject bad magic /
// unsupported versions; they detect truncation against the header count
// and against partial trailing records (v1) or frames (v2), and a
// flipped bit anywhere in a v2 block fails the CRC with a positioned
// diagnostic. A text twin ("time,object,server" CSV) is provided for
// interchange and debugging; conversions stream row by row.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "codec/block.hpp"
#include "codec/delta.hpp"

namespace repl {

/// One interleaved request: object `object` is accessed at `server` at
/// `time`.
struct LogEvent {
  double time = 0.0;
  std::uint64_t object = 0;
  std::uint32_t server = 0;

  friend bool operator==(const LogEvent&, const LogEvent&) = default;
};

/// On-disk encoding of a log, named by the header version it produces.
/// kRaw is the fixed-width interchange layout; kCompressed trades decode
/// CPU for roughly 2-3x smaller files on dense id spaces.
enum class EventLogFormat : std::uint32_t { kRaw = 1, kCompressed = 2 };

/// "raw" / "compressed" (CLI names). Throws std::invalid_argument on an
/// unknown name.
const char* event_log_format_name(EventLogFormat format);
EventLogFormat parse_event_log_format(const std::string& name);

/// Events per compressed block. Small enough that a skip lands within
/// one block's decode of its target; large enough to amortize the
/// 12-byte frame.
inline constexpr std::size_t kEventLogBlockEvents = 4096;

/// Rolling, order-sensitive hash over an event stream: chain every event
/// through `event_stream_hash` starting from kEventStreamHashSeed. The
/// engine maintains this hash over ingested events and records it in
/// checkpoints; resuming cross-checks the log prefix against it, so a
/// snapshot restored against the wrong log fails with a diagnostic
/// instead of silently producing garbage aggregates. The hash is over
/// decoded events, so it is identical across wire formats.
inline constexpr std::uint64_t kEventStreamHashSeed =
    0x5245504c48415348ULL;  // "REPLHASH"

std::uint64_t event_stream_hash(std::uint64_t hash, const LogEvent& event);

/// Encodes `count` events into the v2 block-body layout (appended to
/// `body`): per event a zigzag varint of the IEEE-754 time delta, then
/// object and server varints. The shared producer half of the wire body —
/// EventLogWriter and the network client emit identical bytes.
void encode_event_block(const LogEvent* events, std::size_t count,
                        std::vector<unsigned char>& body);

/// Decodes a v2 block body holding `count` events, appending them to
/// `out`. The shared consumer half of the wire body: the file reader and
/// the socket front-end apply identical validation. Throws
/// std::runtime_error prefixed with `context` when the count cannot fit
/// the payload, a varint is malformed, or trailing bytes remain.
void decode_event_block(std::uint32_t count, const unsigned char* body,
                        std::size_t size, std::vector<LogEvent>& out,
                        const std::string& context);

struct EventLogHeader {
  static constexpr std::uint64_t kMagic = 0x474f4c454c504552ULL;  // "REPLELOG"
  static constexpr std::uint32_t kVersionRaw = 1;
  static constexpr std::uint32_t kVersionCompressed = 2;
  static constexpr std::uint64_t kUnknownCount = ~std::uint64_t{0};
  static constexpr std::size_t kSize = 32;      // bytes on disk
  static constexpr std::size_t kRecordSize = 20;  // version-1 record

  std::uint32_t version = kVersionRaw;
  std::uint32_t num_servers = 0;
  std::uint64_t num_objects = 0;
  std::uint64_t num_events = kUnknownCount;

  EventLogFormat format() const {
    return static_cast<EventLogFormat>(version);
  }
};

/// Streaming writer. Events must arrive in non-decreasing time order
/// (ties across objects are fine; per-object ordering is the consumer's
/// concern). The event count is patched into the header on close().
class EventLogWriter {
 public:
  /// Opens `path` for writing and emits the header with an unknown event
  /// count. `num_objects` may be 0 ("unknown"); close() raises it to
  /// max(object id)+1 observed if so. `block_events` (compressed format
  /// only) caps events per block — the default suits production logs,
  /// tests shrink it to exercise block boundaries. Throws
  /// std::runtime_error when the file cannot be opened.
  EventLogWriter(const std::string& path, int num_servers,
                 std::uint64_t num_objects = 0,
                 EventLogFormat format = EventLogFormat::kRaw,
                 std::size_t block_events = kEventLogBlockEvents);
  ~EventLogWriter();

  EventLogWriter(const EventLogWriter&) = delete;
  EventLogWriter& operator=(const EventLogWriter&) = delete;

  void write(const LogEvent& event);
  void write(double time, std::uint64_t object, std::uint32_t server) {
    write(LogEvent{time, object, server});
  }

  std::uint64_t events_written() const { return count_; }
  EventLogFormat format() const { return format_; }

  /// Flushes the buffer, patches the header counts, and closes the file.
  /// Throws std::runtime_error on I/O failure. The destructor calls this
  /// too but swallows errors; call explicitly when failure matters.
  void close();

 private:
  void flush_buffer();
  void flush_block();

  std::ofstream out_;
  std::string path_;
  EventLogFormat format_ = EventLogFormat::kRaw;
  /// v1: raw little-endian records pending write.
  std::vector<unsigned char> buffer_;
  /// v2: events pending block encode, and the reusable encode scratch.
  std::vector<LogEvent> pending_;
  std::vector<unsigned char> body_;
  std::size_t block_events_ = kEventLogBlockEvents;
  std::unique_ptr<BlockWriter> blocks_;
  std::uint32_t num_servers_ = 0;
  std::uint64_t num_objects_ = 0;
  std::uint64_t max_object_ = 0;
  std::uint64_t count_ = 0;
  double last_time_ = -std::numeric_limits<double>::infinity();
  bool open_ = false;
};

/// Streaming reader. Validates the header on open; next()/read_batch()
/// deliver events in file order — transparently across wire formats —
/// and throw std::runtime_error on truncation (fewer events than the
/// header promises, or a partial trailing record/frame when the count is
/// unknown), on trailing data past a known header count (records,
/// frames, or surplus events in the final block — a corrupt count or a
/// spliced log must not silently drop events), and, for compressed logs,
/// on any block whose CRC does not match (the diagnostic names the block
/// and byte offset).
class EventLogReader {
 public:
  explicit EventLogReader(const std::string& path);

  const EventLogHeader& header() const { return header_; }
  int num_servers() const { return static_cast<int>(header_.num_servers); }

  /// Events delivered so far.
  std::uint64_t events_read() const { return delivered_; }

  /// Bytes of the log file consumed so far, header included: the file
  /// position of the next unread record (raw) or unread frame
  /// (compressed — a partially delivered block counts in full once its
  /// frame and payload were read). Feeds decode-rate metrics.
  std::uint64_t bytes_read() const {
    if (header_.version == EventLogHeader::kVersionCompressed) {
      return blocks_ ? blocks_->bytes_consumed() : EventLogHeader::kSize;
    }
    return EventLogHeader::kSize + delivered_ * EventLogHeader::kRecordSize;
  }

  /// Reads the next event into `event`; returns false at a clean
  /// end-of-log.
  bool next(LogEvent& event);

  /// Reads up to `max_events` into `out` (appended; `out` is cleared
  /// first). Returns the number read; 0 at a clean end-of-log.
  std::size_t read_batch(std::vector<LogEvent>& out, std::size_t max_events);

  /// Skips forward over `count` events without decoding them — one
  /// absolute seek for raw logs, O(blocks) frame reads + seeks for
  /// compressed ones (only the block containing the target is decoded).
  /// Used to resume a serve from a checkpoint's event offset. Rejects
  /// skips past the header's event count when it is known; for streaming
  /// logs (unknown count) an over-skip surfaces as a truncation error or
  /// early EOF.
  void skip_events(std::uint64_t count);

  /// The verified twin of skip_events: reads the next `count` events and
  /// chains them through event_stream_hash starting from `hash`. Used by
  /// the engine's resume path to cross-check a snapshot's log binding.
  /// Throws if the log ends before `count` events (wrong or truncated
  /// log).
  std::uint64_t hash_events(std::uint64_t count, std::uint64_t hash);

 private:
  void refill();
  /// Verifies the stream actually ends once the header's event count has
  /// been delivered. Without it, a log whose count field reads smaller
  /// than its contents (spliced frames, a duplicated block, a corrupt
  /// count) would be accepted with the surplus silently ignored — the
  /// aggregates would be wrong with no diagnostic. Runs once; throws a
  /// positioned std::runtime_error on trailing data.
  void check_clean_end();
  /// Loads and decodes the next compressed block into block_; returns
  /// false at a clean end-of-blocks.
  bool load_block();
  void decode_block(std::uint32_t count,
                    const std::vector<unsigned char>& body);

  std::ifstream in_;
  std::string path_;
  EventLogHeader header_;
  /// v1 byte buffer.
  std::vector<unsigned char> buffer_;
  std::size_t buffer_pos_ = 0;   // bytes consumed from buffer_
  std::size_t buffer_len_ = 0;   // valid bytes in buffer_
  /// v2 decoded block.
  std::unique_ptr<BlockReader> blocks_;
  std::vector<unsigned char> body_;
  std::vector<LogEvent> block_;
  std::size_t block_pos_ = 0;
  std::uint64_t delivered_ = 0;
  bool eof_ = false;
  bool tail_checked_ = false;
};

/// Streams the log at `src` into `dst` re-encoded as `format` (either
/// direction; the header identity is preserved). Returns the number of
/// events converted. On failure the partial `dst` is removed.
std::uint64_t event_log_transcode(const std::string& src,
                                  const std::string& dst,
                                  EventLogFormat format);

/// Streams a binary log into its CSV twin ("time,object,server" with
/// header row). Returns the number of events converted.
std::uint64_t event_log_to_csv(const std::string& log_path,
                               const std::string& csv_path);

/// Streams a "time,object,server" CSV into a binary log. `num_servers` of
/// 0 means "infer as max(server)+1" — which requires a second pass, so
/// the CSV is read twice; pass the true count to stream single-pass.
/// Returns the number of events converted.
std::uint64_t event_log_from_csv(const std::string& csv_path,
                                 const std::string& log_path,
                                 int num_servers = 0,
                                 EventLogFormat format = EventLogFormat::kRaw);

}  // namespace repl
