#include "cluster/partition.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace repl {

std::uint32_t partition_of(std::uint64_t object_id,
                           std::uint32_t num_partitions) {
  REPL_REQUIRE_MSG(num_partitions >= 1,
                   "partition_of requires at least one partition");
  // Version 1 mapping: SplitMix64 over the salted id. The salt keeps
  // this stream independent of the engine's unsalted shard mix.
  return static_cast<std::uint32_t>(
      SplitMix64(object_id ^ kPartitionSalt).next() %
      static_cast<std::uint64_t>(num_partitions));
}

void require_partition_function_version(std::uint32_t version) {
  REPL_REQUIRE_MSG(version == kPartitionFunctionVersion,
                   "partition function version mismatch: this build "
                   "implements version "
                       << kPartitionFunctionVersion << ", got version "
                       << version
                       << " (a snapshot or peer cut under a different "
                          "object->partition mapping cannot be resumed "
                          "here)");
}

}  // namespace repl
