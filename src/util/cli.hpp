// Tiny flag parser for bench/example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name`.
// Unknown flags raise; `--help` prints registered flags.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace repl {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Registers a flag with a default value (all values are strings;
  /// typed getters convert on access).
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Registers a boolean flag defaulting to false.
  void add_bool_flag(const std::string& name, const std::string& help);

  /// Parses argv. Returns false if --help was requested (help text is
  /// written to stdout). Throws std::invalid_argument on unknown flags or
  /// malformed values.
  bool parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  double get_double(const std::string& name) const;
  long long get_int(const std::string& name) const;
  /// For seed-like flags passed to std::uint64_t parameters; rejects
  /// negative values.
  std::uint64_t get_uint64(const std::string& name) const;
  /// Bounds-checked count flags (--shards, --objects, ...): rejects
  /// negative values and anything outside [min_value, max_value], so
  /// call sites need no narrowing casts from get_int.
  std::size_t get_size_t(const std::string& name, std::size_t min_value = 0,
                         std::size_t max_value = SIZE_MAX) const;
  bool get_bool(const std::string& name) const;

  /// Comma-separated list of doubles, e.g. "--lambdas=10,100,1000".
  std::vector<double> get_double_list(const std::string& name) const;

  std::string help() const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    bool boolean = false;
  };

  const Flag& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::map<std::string, std::string> values_;
};

}  // namespace repl
