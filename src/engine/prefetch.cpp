#include "engine/prefetch.hpp"

#include "util/check.hpp"

namespace repl {

BatchPrefetcher::BatchPrefetcher(EventLogReader& reader,
                                 std::size_t batch_events, std::size_t depth)
    : reader_(reader), batch_events_(batch_events), depth_(depth) {
  REPL_REQUIRE(batch_events_ >= 1);
  REPL_REQUIRE(depth_ >= 1);
  thread_ = std::thread([this] { run(); });
}

BatchPrefetcher::~BatchPrefetcher() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  space_cv_.notify_all();
  thread_.join();
}

void BatchPrefetcher::run() {
  for (;;) {
    // Grab a recycled buffer if one is waiting; otherwise allocate.
    std::vector<LogEvent> batch;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        batch = std::move(free_.back());
        free_.pop_back();
      }
    }
    bool end = false;
    std::exception_ptr error;
    try {
      end = reader_.read_batch(batch, batch_events_) == 0;
    } catch (...) {
      error = std::current_exception();
    }
    // Safe off-lock: this thread owns the reader's position.
    const std::uint64_t bytes = reader_.bytes_read();
    std::unique_lock<std::mutex> lock(mutex_);
    if (error != nullptr || end) {
      // A reader that throws mid-batch has already decoded a prefix of
      // events into `batch` (read_batch appends as it goes). Those
      // events precede the failure position, so they must reach the
      // consumer — dropping them would make the async aggregate prefix
      // diverge from a synchronous read of the same log.
      if (error != nullptr && !batch.empty()) {
        ready_.push_back(std::move(batch));
        ready_bytes_.push_back(bytes);
      }
      error_ = error;
      done_ = true;
      ready_cv_.notify_all();
      return;
    }
    ready_.push_back(std::move(batch));
    ready_bytes_.push_back(bytes);
    ready_cv_.notify_all();
    space_cv_.wait(lock, [this] { return ready_.size() < depth_ || stop_; });
    if (stop_) return;
  }
}

bool BatchPrefetcher::next(std::vector<LogEvent>& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_cv_.wait(lock, [this] { return !ready_.empty() || done_; });
  if (ready_.empty()) {
    // Drained: surface the reader's fate — clean EOF or its exception.
    // The error is sticky: a caller that retries next() after the throw
    // gets the same failure again, never a fake clean EOF that would let
    // a retry loop mistake a corrupt log for a complete one.
    if (error_ != nullptr) std::rethrow_exception(error_);
    return false;
  }
  out.clear();
  free_.push_back(std::move(out));
  out = std::move(ready_.front());
  ready_.pop_front();
  bytes_delivered_ = ready_bytes_.front();
  ready_bytes_.pop_front();
  lock.unlock();
  space_cv_.notify_all();
  return true;
}

std::uint64_t BatchPrefetcher::bytes_delivered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_delivered_;
}

}  // namespace repl
