// Unit tests for the prediction substrate.
#include <gtest/gtest.h>

#include "predictor/fixed.hpp"
#include "predictor/history.hpp"
#include "predictor/noisy.hpp"
#include "predictor/oracle.hpp"
#include "test_util.hpp"
#include "trace/trace.hpp"

namespace repl {
namespace {

PredictionQuery query_for(const Trace& trace, long index, double lambda,
                          int initial_server = 0) {
  PredictionQuery q;
  q.request_index = index;
  q.lambda = lambda;
  if (index < 0) {
    q.server = initial_server;
    q.time = 0.0;
  } else {
    q.server = trace[static_cast<std::size_t>(index)].server;
    q.time = trace[static_cast<std::size_t>(index)].time;
  }
  return q;
}

TEST(GroundTruth, NextGapAndDummy) {
  const Trace trace(2, {{1.0, 0}, {1.5, 0}, {9.0, 1}});
  EXPECT_TRUE(ground_truth_within_lambda(trace, query_for(trace, 0, 1.0)));
  EXPECT_FALSE(ground_truth_within_lambda(trace, query_for(trace, 1, 1.0)));
  // Dummy query: first request at server 0 arrives at 1.0.
  EXPECT_TRUE(ground_truth_within_lambda(trace, query_for(trace, -1, 2.0)));
  EXPECT_FALSE(
      ground_truth_within_lambda(trace, query_for(trace, -1, 0.5)));
  // Last request at a server: no next, truth is "beyond".
  EXPECT_FALSE(
      ground_truth_within_lambda(trace, query_for(trace, 2, 1000.0)));
}

TEST(Oracle, AlwaysCorrect) {
  const Trace trace = testing::random_trace(4, 0.02, 20000.0, 5);
  OraclePredictor oracle(trace);
  const double lambda = 50.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto q = query_for(trace, static_cast<long>(i), lambda);
    EXPECT_EQ(oracle.predict(q).within_lambda,
              next_gap_within_lambda(trace, i, lambda));
  }
}

TEST(Adversarial, AlwaysWrong) {
  const Trace trace = testing::random_trace(4, 0.02, 20000.0, 6);
  OraclePredictor oracle(trace);
  AdversarialPredictor adversarial(trace);
  const double lambda = 50.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto q = query_for(trace, static_cast<long>(i), lambda);
    EXPECT_NE(oracle.predict(q).within_lambda,
              adversarial.predict(q).within_lambda);
  }
}

TEST(Fixed, ConstantForecasts) {
  FixedPredictor within = always_within_predictor();
  FixedPredictor beyond = always_beyond_predictor();
  PredictionQuery q;
  q.lambda = 1.0;
  EXPECT_TRUE(within.predict(q).within_lambda);
  EXPECT_FALSE(beyond.predict(q).within_lambda);
  EXPECT_EQ(within.name(), "always-within");
  EXPECT_EQ(beyond.name(), "always-beyond");
}

TEST(Accuracy, FullAccuracyMatchesOracle) {
  const Trace trace = testing::random_trace(4, 0.02, 20000.0, 7);
  OraclePredictor oracle(trace);
  AccuracyPredictor full(trace, 1.0, 99);
  const double lambda = 80.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto q = query_for(trace, static_cast<long>(i), lambda);
    EXPECT_EQ(full.predict(q).within_lambda,
              oracle.predict(q).within_lambda);
  }
}

TEST(Accuracy, ZeroAccuracyIsAlwaysWrong) {
  const Trace trace = testing::random_trace(4, 0.02, 20000.0, 8);
  OraclePredictor oracle(trace);
  AccuracyPredictor zero(trace, 0.0, 99);
  const double lambda = 80.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto q = query_for(trace, static_cast<long>(i), lambda);
    EXPECT_NE(zero.predict(q).within_lambda,
              oracle.predict(q).within_lambda);
  }
}

TEST(Accuracy, EmpiricalRateMatchesParameter) {
  const Trace trace = testing::random_trace(6, 0.05, 100000.0, 9);
  ASSERT_GT(trace.size(), 2000u);
  OraclePredictor oracle(trace);
  const double accuracy = 0.7;
  AccuracyPredictor noisy(trace, accuracy, 1234);
  const double lambda = 30.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto q = query_for(trace, static_cast<long>(i), lambda);
    correct += noisy.predict(q).within_lambda ==
               oracle.predict(q).within_lambda;
  }
  EXPECT_NEAR(static_cast<double>(correct) /
                  static_cast<double>(trace.size()),
              accuracy, 0.03);
}

TEST(Accuracy, DeterministicAndOrderIndependent) {
  const Trace trace = testing::random_trace(4, 0.02, 20000.0, 10);
  AccuracyPredictor a(trace, 0.5, 77);
  AccuracyPredictor b(trace, 0.5, 77);
  const double lambda = 40.0;
  // Query b in reverse order; per-request flips must not depend on call
  // order (counter-based randomness).
  std::vector<bool> fwd, rev(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    fwd.push_back(
        a.predict(query_for(trace, static_cast<long>(i), lambda))
            .within_lambda);
  }
  for (std::size_t i = trace.size(); i-- > 0;) {
    rev[i] = b.predict(query_for(trace, static_cast<long>(i), lambda))
                 .within_lambda;
  }
  EXPECT_EQ(fwd, std::vector<bool>(rev.begin(), rev.end()));
}

TEST(Accuracy, DifferentSeedsDiffer) {
  const Trace trace = testing::random_trace(4, 0.05, 50000.0, 11);
  AccuracyPredictor a(trace, 0.5, 1);
  AccuracyPredictor b(trace, 0.5, 2);
  const double lambda = 40.0;
  std::size_t differ = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto q = query_for(trace, static_cast<long>(i), lambda);
    differ += a.predict(q).within_lambda != b.predict(q).within_lambda;
  }
  EXPECT_GT(differ, trace.size() / 5);
}

TEST(Accuracy, RejectsBadAccuracy) {
  const Trace trace(1, {{1.0, 0}});
  EXPECT_THROW(AccuracyPredictor(trace, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(AccuracyPredictor(trace, 1.1, 1), std::invalid_argument);
}

TEST(History, LearnsShortGaps) {
  HistoryPredictor predictor(1);
  const double lambda = 10.0;
  // Feed a server with 5-unit gaps; after the first gap the EWMA is 5 and
  // the forecast flips to "within".
  PredictionQuery q;
  q.server = 0;
  q.lambda = lambda;
  q.time = 0.0;
  q.request_index = 0;
  EXPECT_FALSE(predictor.predict(q).within_lambda);  // no history yet
  q.time = 5.0;
  EXPECT_TRUE(predictor.predict(q).within_lambda);
  EXPECT_NEAR(predictor.ewma(0), 5.0, 1e-12);
}

TEST(History, EwmaTracksRegimeChange) {
  HistoryPredictor::Config config;
  config.ewma_decay = 0.5;
  HistoryPredictor predictor(1, config);
  const double lambda = 10.0;
  PredictionQuery q;
  q.server = 0;
  q.lambda = lambda;
  double t = 0.0;
  q.time = t;
  predictor.predict(q);
  // Three short gaps -> within.
  for (int i = 0; i < 3; ++i) {
    t += 2.0;
    q.time = t;
    EXPECT_TRUE(predictor.predict(q).within_lambda);
  }
  // Long gaps shift the EWMA beyond lambda after a couple of samples.
  t += 100.0;
  q.time = t;
  predictor.predict(q);  // ewma = 0.5*100 + 0.5*small > 10 already
  t += 100.0;
  q.time = t;
  EXPECT_FALSE(predictor.predict(q).within_lambda);
}

TEST(History, PerServerIsolation) {
  HistoryPredictor predictor(2);
  const double lambda = 10.0;
  PredictionQuery q0{0, 0, 0.0, lambda};
  PredictionQuery q1{1, 1, 1.0, lambda};
  predictor.predict(q0);
  predictor.predict(q1);
  q0.time = 2.0;  // gap 2 at server 0
  predictor.predict(q0);
  EXPECT_NEAR(predictor.ewma(0), 2.0, 1e-12);
  EXPECT_LT(predictor.ewma(1), 0.0);  // server 1 has no gap yet
}

TEST(History, ResetClearsState) {
  HistoryPredictor predictor(1);
  PredictionQuery q{0, 0, 1.0, 10.0};
  predictor.predict(q);
  q.time = 3.0;
  predictor.predict(q);
  EXPECT_GE(predictor.ewma(0), 0.0);
  predictor.reset();
  EXPECT_LT(predictor.ewma(0), 0.0);
}

TEST(History, DefaultWithinOption) {
  HistoryPredictor::Config config;
  config.default_within = true;
  HistoryPredictor predictor(1, config);
  PredictionQuery q{0, 0, 1.0, 10.0};
  EXPECT_TRUE(predictor.predict(q).within_lambda);
}

TEST(History, RejectsBadConfig) {
  HistoryPredictor::Config bad;
  bad.ewma_decay = 0.0;
  EXPECT_THROW(HistoryPredictor(1, bad), std::invalid_argument);
  bad.ewma_decay = 0.5;
  bad.margin = 0.0;
  EXPECT_THROW(HistoryPredictor(1, bad), std::invalid_argument);
}

}  // namespace
}  // namespace repl
