#include "trace/event_log.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "codec/endian.hpp"
#include "codec/varint.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"

namespace repl {

namespace {

constexpr std::size_t kBufferBytes = std::size_t{1} << 20;

void encode_record(unsigned char* p, const LogEvent& e) {
  store_le64(p, std::bit_cast<std::uint64_t>(e.time));
  store_le64(p + 8, e.object);
  store_le32(p + 16, e.server);
}

LogEvent decode_record(const unsigned char* p) {
  LogEvent e;
  e.time = std::bit_cast<double>(load_le64(p));
  e.object = load_le64(p + 8);
  e.server = load_le32(p + 16);
  return e;
}

[[noreturn]] void io_fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("event log " + path + ": " + what);
}

}  // namespace

const char* event_log_format_name(EventLogFormat format) {
  switch (format) {
    case EventLogFormat::kRaw:
      return "raw";
    case EventLogFormat::kCompressed:
      return "compressed";
  }
  return "?";
}

EventLogFormat parse_event_log_format(const std::string& name) {
  if (name == "raw") return EventLogFormat::kRaw;
  if (name == "compressed") return EventLogFormat::kCompressed;
  throw std::invalid_argument("unknown event-log format '" + name +
                              "' (expected raw or compressed)");
}

void encode_event_block(const LogEvent* events, std::size_t count,
                        std::vector<unsigned char>& body) {
  TimeDeltaEncoder times;
  for (std::size_t i = 0; i < count; ++i) {
    times.encode(events[i].time, body);
    put_uvarint(body, events[i].object);
    put_uvarint(body, events[i].server);
  }
}

void decode_event_block(std::uint32_t count, const unsigned char* body,
                        std::size_t size, std::vector<LogEvent>& out,
                        const std::string& context) {
  // Every event takes at least 3 body bytes (three 1-byte varints), so
  // an implausible count is rejected before the reserve, not after a
  // giant allocation. Any frame CRC passed already; this guards writer
  // bugs and hand-crafted frames whose CRCs are self-consistent.
  if (count > size / 3) {
    throw std::runtime_error(context + ": block event count " +
                             std::to_string(count) + " exceeds its payload");
  }
  out.reserve(out.size() + count);
  TimeDeltaDecoder times;
  const unsigned char* p = body;
  const unsigned char* const end = p + size;
  for (std::uint32_t i = 0; i < count; ++i) {
    LogEvent event;
    std::size_t used = 0;
    std::uint64_t server = 0;
    if (!times.decode(&p, end, event.time) ||
        (used = get_uvarint(p, end, event.object)) == 0) {
      throw std::runtime_error(context + ": malformed event encoding");
    }
    p += used;
    if ((used = get_uvarint(p, end, server)) == 0 ||
        server > std::numeric_limits<std::uint32_t>::max()) {
      throw std::runtime_error(context + ": malformed event encoding");
    }
    p += used;
    event.server = static_cast<std::uint32_t>(server);
    out.push_back(event);
  }
  if (p != end) {
    throw std::runtime_error(context + ": trailing bytes in block");
  }
}

std::uint64_t event_stream_hash(std::uint64_t hash, const LogEvent& event) {
  // SplitMix64-style finalizer chained over the record's three fields:
  // order-sensitive (h enters each round) and sensitive to every bit of
  // (time, object, server), including the sign/payload bits of odd
  // doubles.
  const auto mix = [](std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  hash = mix(hash + 0x9e3779b97f4a7c15ULL +
             std::bit_cast<std::uint64_t>(event.time));
  hash = mix(hash + 0x9e3779b97f4a7c15ULL + event.object);
  hash = mix(hash + 0x9e3779b97f4a7c15ULL + std::uint64_t{event.server});
  return hash;
}

EventLogWriter::EventLogWriter(const std::string& path, int num_servers,
                               std::uint64_t num_objects,
                               EventLogFormat format,
                               std::size_t block_events)
    : out_(path, std::ios::binary | std::ios::trunc),
      path_(path),
      format_(format),
      block_events_(block_events) {
  REPL_REQUIRE(num_servers >= 1);
  REPL_REQUIRE(block_events >= 1);
  if (!out_) io_fail(path_, "cannot open for writing");
  num_servers_ = static_cast<std::uint32_t>(num_servers);
  num_objects_ = num_objects;
  if (format_ == EventLogFormat::kRaw) {
    buffer_.reserve(kBufferBytes);
  } else {
    pending_.reserve(block_events_);
    blocks_ = std::make_unique<BlockWriter>(out_, "event log " + path_);
  }

  unsigned char header[EventLogHeader::kSize];
  store_le64(header, EventLogHeader::kMagic);
  store_le32(header + 8, static_cast<std::uint32_t>(format_));
  store_le32(header + 12, num_servers_);
  store_le64(header + 16, num_objects_);
  store_le64(header + 24, EventLogHeader::kUnknownCount);
  out_.write(reinterpret_cast<const char*>(header), EventLogHeader::kSize);
  if (!out_) io_fail(path_, "header write failed");
  open_ = true;
}

EventLogWriter::~EventLogWriter() {
  try {
    if (open_) close();
  } catch (...) {
    // Destructors must not throw; call close() explicitly to observe
    // failures.
  }
}

void EventLogWriter::write(const LogEvent& event) {
  REPL_CHECK_MSG(open_, "write after close");
  REPL_REQUIRE_MSG(event.server < num_servers_,
                   "event server " << event.server << " out of range [0, "
                                   << num_servers_ << ")");
  REPL_REQUIRE_MSG(num_objects_ == 0 || event.object < num_objects_,
                   "event object " << event.object << " out of range [0, "
                                   << num_objects_ << ")");
  REPL_REQUIRE_MSG(event.time >= last_time_,
                   "event times must be non-decreasing: "
                       << event.time << " after " << last_time_);
  last_time_ = event.time;
  if (event.object > max_object_) max_object_ = event.object;
  ++count_;

  if (format_ == EventLogFormat::kRaw) {
    const std::size_t pos = buffer_.size();
    buffer_.resize(pos + EventLogHeader::kRecordSize);
    encode_record(buffer_.data() + pos, event);
    if (buffer_.size() >= kBufferBytes) flush_buffer();
  } else {
    pending_.push_back(event);
    if (pending_.size() >= block_events_) flush_block();
  }
}

void EventLogWriter::flush_buffer() {
  if (buffer_.empty()) return;
  out_.write(reinterpret_cast<const char*>(buffer_.data()),
             static_cast<std::streamsize>(buffer_.size()));
  if (!out_) io_fail(path_, "record write failed");
  buffer_.clear();
}

void EventLogWriter::flush_block() {
  if (pending_.empty()) return;
  body_.clear();
  encode_event_block(pending_.data(), pending_.size(), body_);
  blocks_->write_block(static_cast<std::uint32_t>(pending_.size()), body_);
  pending_.clear();
}

void EventLogWriter::close() {
  REPL_CHECK_MSG(open_, "close() called twice");
  open_ = false;
  if (format_ == EventLogFormat::kRaw) {
    flush_buffer();
  } else {
    flush_block();
  }
  if (num_objects_ == 0 && count_ > 0) num_objects_ = max_object_ + 1;
  unsigned char patch[16];
  store_le64(patch, num_objects_);
  store_le64(patch + 8, count_);
  out_.seekp(16);
  out_.write(reinterpret_cast<const char*>(patch), sizeof(patch));
  out_.flush();
  if (!out_) io_fail(path_, "header patch failed");
  out_.close();
  if (out_.fail()) io_fail(path_, "close failed");
}

EventLogReader::EventLogReader(const std::string& path)
    : in_(path, std::ios::binary), path_(path) {
  if (!in_) io_fail(path_, "cannot open for reading");
  unsigned char header[EventLogHeader::kSize];
  in_.read(reinterpret_cast<char*>(header), EventLogHeader::kSize);
  if (in_.gcount() != static_cast<std::streamsize>(EventLogHeader::kSize)) {
    io_fail(path_, "truncated header");
  }
  if (load_le64(header) != EventLogHeader::kMagic) {
    io_fail(path_, "bad magic (not an event log)");
  }
  header_.version = load_le32(header + 8);
  if (header_.version != EventLogHeader::kVersionRaw &&
      header_.version != EventLogHeader::kVersionCompressed) {
    io_fail(path_, "unsupported version " + std::to_string(header_.version));
  }
  header_.num_servers = load_le32(header + 12);
  if (header_.num_servers == 0) io_fail(path_, "zero num_servers");
  header_.num_objects = load_le64(header + 16);
  header_.num_events = load_le64(header + 24);
  if (header_.version == EventLogHeader::kVersionRaw) {
    buffer_.resize(kBufferBytes);
  } else {
    blocks_ = std::make_unique<BlockReader>(in_, "event log " + path_,
                                            EventLogHeader::kSize);
  }
}

void EventLogReader::refill() {
  // Preserve a partial trailing record for the next chunk.
  const std::size_t leftover = buffer_len_ - buffer_pos_;
  if (leftover > 0) {
    std::memmove(buffer_.data(), buffer_.data() + buffer_pos_, leftover);
  }
  buffer_pos_ = 0;
  buffer_len_ = leftover;
  in_.read(reinterpret_cast<char*>(buffer_.data() + leftover),
           static_cast<std::streamsize>(buffer_.size() - leftover));
  buffer_len_ += static_cast<std::size_t>(in_.gcount());
  if (in_.bad()) io_fail(path_, "read failed");
  if (buffer_len_ == leftover) {
    eof_ = true;
    if (leftover > 0) io_fail(path_, "truncated record at end of log");
  }
}

void EventLogReader::decode_block(std::uint32_t count,
                                  const std::vector<unsigned char>& body) {
  block_.clear();
  block_pos_ = 0;
  decode_event_block(count, body.data(), body.size(), block_,
                     "event log " + path_ + " (block " +
                         std::to_string(blocks_->blocks_read() - 1) + ")");
}

bool EventLogReader::load_block() {
  std::uint32_t count = 0;
  if (!blocks_->read_block(count, body_)) return false;
  decode_block(count, body_);
  return true;
}

void EventLogReader::check_clean_end() {
  if (tail_checked_) return;
  tail_checked_ = true;
  const std::string promised = std::to_string(header_.num_events);
  if (header_.version == EventLogHeader::kVersionCompressed) {
    if (block_pos_ < block_.size()) {
      io_fail(path_, "trailing data: final block holds " +
                         std::to_string(block_.size() - block_pos_) +
                         " events past the header's count of " + promised +
                         " (byte offset " +
                         std::to_string(blocks_->bytes_consumed()) + ")");
    }
    // Zero-event frames are legal padding mid-stream (load_block walks
    // over them transparently), so they are equally tolerated here; any
    // frame carrying events past the promised count is trailing data.
    // load_block itself throws positioned errors for truncated or
    // corrupt trailing frames, which is equally a rejection.
    while (load_block()) {
      if (!block_.empty()) {
        io_fail(path_, "trailing data: block of " +
                           std::to_string(block_.size()) +
                           " events found past the header's count of " +
                           promised + " (byte offset " +
                           std::to_string(blocks_->bytes_consumed()) + ")");
      }
    }
    return;
  }
  const std::size_t leftover = buffer_len_ - buffer_pos_;
  const bool file_continues =
      !eof_ && in_.peek() != std::ifstream::traits_type::eof();
  if (leftover > 0 || file_continues) {
    io_fail(path_, "trailing data past the header's count of " + promised +
                       " events (byte offset " +
                       std::to_string(EventLogHeader::kSize +
                                      delivered_ *
                                          EventLogHeader::kRecordSize) +
                       ")");
  }
}

bool EventLogReader::next(LogEvent& event) {
  if (header_.num_events != EventLogHeader::kUnknownCount &&
      delivered_ == header_.num_events) {
    check_clean_end();
    return false;
  }
  if (header_.version == EventLogHeader::kVersionCompressed) {
    while (block_pos_ == block_.size()) {
      if (!load_block()) {
        if (header_.num_events != EventLogHeader::kUnknownCount) {
          io_fail(path_, "truncated: " + std::to_string(delivered_) +
                             " events read, header promises " +
                             std::to_string(header_.num_events));
        }
        return false;  // unknown count: clean EOF at a block boundary
      }
    }
    event = block_[block_pos_++];
    ++delivered_;
    return true;
  }
  if (buffer_len_ - buffer_pos_ < EventLogHeader::kRecordSize) {
    if (!eof_) refill();
    if (buffer_len_ - buffer_pos_ < EventLogHeader::kRecordSize) {
      if (header_.num_events != EventLogHeader::kUnknownCount) {
        io_fail(path_, "truncated: " + std::to_string(delivered_) +
                           " events read, header promises " +
                           std::to_string(header_.num_events));
      }
      // A partial trailing record must fail even when the count is
      // unknown. refill() catches it only when the partial bytes carry
      // over into a read that returns nothing — when a single refill
      // swallowed both the last whole records and the stray tail, EOF
      // would otherwise read as clean here.
      if (buffer_len_ - buffer_pos_ > 0) {
        io_fail(path_, "truncated record at end of log (" +
                           std::to_string(buffer_len_ - buffer_pos_) +
                           " stray bytes after " +
                           std::to_string(delivered_) + " events)");
      }
      return false;  // unknown count: clean EOF ends the log
    }
  }
  event = decode_record(buffer_.data() + buffer_pos_);
  buffer_pos_ += EventLogHeader::kRecordSize;
  ++delivered_;
  return true;
}

void EventLogReader::skip_events(std::uint64_t count) {
  if (count == 0) return;
  const std::uint64_t requested = count;
  if (header_.num_events != EventLogHeader::kUnknownCount) {
    REPL_REQUIRE_MSG(count <= header_.num_events - delivered_,
                     "cannot skip " << count << " events: only "
                                    << header_.num_events - delivered_
                                    << " remain");
  }
  if (header_.version == EventLogHeader::kVersionCompressed) {
    // Drain the already-decoded block, then walk frames: wholly skipped
    // blocks are seeked over (their event count rides in the frame),
    // only the block containing the target is decoded — O(blocks).
    const std::uint64_t buffered =
        static_cast<std::uint64_t>(block_.size() - block_pos_);
    if (count <= buffered) {
      block_pos_ += static_cast<std::size_t>(count);
      delivered_ += count;
      return;
    }
    delivered_ += buffered;
    count -= buffered;
    block_.clear();
    block_pos_ = 0;
    while (count > 0) {
      std::uint32_t events = 0;
      if (!blocks_->next_frame(events)) {
        // Over-skip against a truncated or streaming (unknown-count) log:
        // a resume offset past the data must fail loudly — the caller is
        // about to trust the position — naming what was asked for and
        // what the log actually holds.
        io_fail(path_, "cannot skip " + std::to_string(requested) +
                           " events: only " +
                           std::to_string(requested - count) +
                           " available before end of log (truncated log, "
                           "or a resume offset past its end?)");
      }
      if (events <= count) {
        blocks_->skip_payload();
        delivered_ += events;
        count -= events;
      } else {
        blocks_->read_payload(body_);
        decode_block(events, body_);
        block_pos_ = static_cast<std::size_t>(count);
        delivered_ += count;
        count = 0;
      }
    }
    return;
  }
  const std::uint64_t buffered =
      static_cast<std::uint64_t>(buffer_len_ - buffer_pos_) /
      EventLogHeader::kRecordSize;
  if (count <= buffered) {
    buffer_pos_ += static_cast<std::size_t>(count) *
                   EventLogHeader::kRecordSize;
    delivered_ += count;
    return;
  }
  // Beyond the buffer: one absolute seek to the target record. seekg
  // past EOF "succeeds" on most implementations, and for a streaming
  // (unknown-count) header the subsequent reads would then surface as a
  // clean empty log — silently resuming at the wrong place. Measure the
  // file instead and reject a skip the records on disk cannot cover.
  const std::uint64_t target = delivered_ + count;
  in_.clear();
  in_.seekg(0, std::ios::end);
  if (!in_) io_fail(path_, "seek failed while skipping events");
  const auto end_pos = static_cast<std::uint64_t>(in_.tellg());
  const std::uint64_t available_records =
      end_pos <= EventLogHeader::kSize
          ? 0
          : (end_pos - EventLogHeader::kSize) / EventLogHeader::kRecordSize;
  if (target > available_records) {
    io_fail(path_, "cannot skip " + std::to_string(requested) +
                       " events: only " +
                       std::to_string(available_records > delivered_
                                          ? available_records - delivered_
                                          : 0) +
                       " available before end of log (truncated log, or a "
                       "resume offset past its end?)");
  }
  delivered_ = target;
  in_.seekg(static_cast<std::streamoff>(
      EventLogHeader::kSize + delivered_ * EventLogHeader::kRecordSize));
  if (!in_) io_fail(path_, "seek failed while skipping events");
  buffer_pos_ = 0;
  buffer_len_ = 0;
  eof_ = false;
}

std::uint64_t EventLogReader::hash_events(std::uint64_t count,
                                          std::uint64_t hash) {
  LogEvent event;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!next(event)) {
      io_fail(path_, "ends after " + std::to_string(delivered_) +
                         " events while verifying a resume prefix of " +
                         std::to_string(delivered_ + (count - i)) +
                         " events (wrong or truncated log?)");
    }
    hash = event_stream_hash(hash, event);
  }
  return hash;
}

std::size_t EventLogReader::read_batch(std::vector<LogEvent>& out,
                                       std::size_t max_events) {
  out.clear();
  out.reserve(max_events);
  LogEvent event;
  while (out.size() < max_events && next(event)) out.push_back(event);
  return out.size();
}

std::uint64_t event_log_transcode(const std::string& src,
                                  const std::string& dst,
                                  EventLogFormat format) {
  {
    // The writer truncates dst on open; transcoding a log onto itself
    // would destroy the source before a single event is copied.
    std::error_code ec;
    if (std::filesystem::exists(dst, ec) &&
        std::filesystem::equivalent(src, dst, ec)) {
      io_fail(src, "transcode source and destination are the same file");
    }
  }
  EventLogReader reader(src);
  try {
    EventLogWriter writer(dst, reader.num_servers(),
                          reader.header().num_objects, format);
    LogEvent event;
    while (reader.next(event)) writer.write(event);
    writer.close();
    return writer.events_written();
  } catch (...) {
    // Never leave a partial log that a later close() would have patched
    // into a self-consistent-looking file.
    std::error_code ec;
    std::filesystem::remove(dst, ec);
    throw;
  }
}

std::uint64_t event_log_to_csv(const std::string& log_path,
                               const std::string& csv_path) {
  EventLogReader reader(log_path);
  std::ofstream csv(csv_path, std::ios::trunc);
  if (!csv) throw std::runtime_error("cannot open for writing: " + csv_path);
  csv << "time,object,server\n";
  LogEvent event;
  while (reader.next(event)) {
    csv << format_double(event.time) << ',' << event.object << ','
        << event.server << '\n';
    if (!csv) throw std::runtime_error("write failed: " + csv_path);
  }
  csv.flush();
  if (!csv) throw std::runtime_error("write failed: " + csv_path);
  return reader.events_read();
}

namespace {

/// Parses one "time,object,server" row via the shared numeric-CSV
/// helpers; returns false for the header (honored until the first data
/// row — `allow_header` is cleared here) or a blank line.
bool parse_event_row(const std::string& line, std::size_t row_index,
                     bool& allow_header, LogEvent& event) {
  std::vector<std::string> fields;
  const NumericRow kind =
      split_numeric_row(line, row_index, "event CSV", "time",
                        "time,object,server", 3, allow_header, fields);
  if (kind == NumericRow::kBlank) return false;
  allow_header = false;
  if (kind == NumericRow::kHeader) return false;
  try {
    event.time = parse_double_field(fields[0]);
    event.object = parse_uint64_field(fields[1]);
    const unsigned long long server = parse_uint64_field(fields[2]);
    if (server > std::numeric_limits<std::uint32_t>::max()) {
      throw std::invalid_argument(fields[2]);
    }
    event.server = static_cast<std::uint32_t>(server);
  } catch (const std::exception&) {
    throw std::invalid_argument("event CSV row " + std::to_string(row_index) +
                                ": malformed value");
  }
  return true;
}

}  // namespace

std::uint64_t event_log_from_csv(const std::string& csv_path,
                                 const std::string& log_path,
                                 int num_servers, EventLogFormat format) {
  if (num_servers == 0) {
    // Inference pass: scan for max server id without writing anything.
    std::ifstream csv(csv_path);
    if (!csv) throw std::runtime_error("cannot open: " + csv_path);
    std::string line;
    std::uint32_t max_server = 0;
    bool allow_header = true;
    bool any = false;
    for (std::size_t row = 0; std::getline(csv, line); ++row) {
      LogEvent event;
      if (!parse_event_row(line, row, allow_header, event)) continue;
      max_server = std::max(max_server, event.server);
      any = true;
    }
    if (csv.bad()) throw std::runtime_error("read failed: " + csv_path);
    REPL_REQUIRE_MSG(any, "event CSV has no data rows: " << csv_path);
    num_servers = static_cast<int>(max_server) + 1;
  }

  std::ifstream csv(csv_path);
  if (!csv) throw std::runtime_error("cannot open: " + csv_path);
  try {
    EventLogWriter writer(log_path, num_servers, /*num_objects=*/0, format);
    std::string line;
    bool allow_header = true;
    for (std::size_t row = 0; std::getline(csv, line); ++row) {
      LogEvent event;
      if (!parse_event_row(line, row, allow_header, event)) continue;
      writer.write(event);
    }
    if (csv.bad()) throw std::runtime_error("read failed: " + csv_path);
    writer.close();
    return writer.events_written();
  } catch (...) {
    // Without this, the writer's destructor would close() and patch a
    // self-consistent header over the partial output — leaving a log
    // that passes every reader validation but holds only a prefix of
    // the CSV. Never leave such a file behind.
    std::error_code ec;
    std::filesystem::remove(log_path, ec);
    throw;
  }
}

}  // namespace repl
