#include "checkpoint/partition_manifest.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "checkpoint/snapshot.hpp"
#include "cluster/partition.hpp"
#include "codec/crc32.hpp"
#include "codec/endian.hpp"
#include "util/check.hpp"

namespace repl {

std::string partition_manifest_path(const std::string& snapshot_path) {
  return snapshot_path + ".pman";
}

void write_partition_manifest(const std::string& path,
                              const PartitionManifest& manifest) {
  unsigned char raw[PartitionManifest::kSize];
  store_le64(raw + 0, PartitionManifest::kMagic);
  store_le32(raw + 8, PartitionManifest::kVersion);
  store_le32(raw + 12, manifest.partition_id);
  store_le32(raw + 16, manifest.num_partitions);
  store_le32(raw + 20, manifest.pf_version);
  store_le32(raw + 24, manifest.num_servers);
  store_le32(raw + 28, 0);
  store_le64(raw + 32, manifest.base_seed);
  store_le64(raw + 40, manifest.events_ingested);
  store_le32(raw + 48, crc32c(raw, 48));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot open partition manifest for write: " +
                               tmp);
    }
    out.write(reinterpret_cast<const char*>(raw), sizeof raw);
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::runtime_error("failed writing partition manifest: " + tmp);
    }
  }
  sync_path_best_effort(tmp);
  std::filesystem::rename(tmp, path);
  sync_path_best_effort(
      std::filesystem::path(path).parent_path().string());
}

PartitionManifest read_partition_manifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open partition manifest: " + path);
  }
  unsigned char raw[PartitionManifest::kSize];
  in.read(reinterpret_cast<char*>(raw), sizeof raw);
  if (in.gcount() != static_cast<std::streamsize>(sizeof raw)) {
    throw std::runtime_error("partition manifest truncated: " + path);
  }
  if (load_le64(raw + 0) != PartitionManifest::kMagic) {
    throw std::runtime_error("bad partition manifest magic: " + path);
  }
  const std::uint32_t version = load_le32(raw + 8);
  if (version != PartitionManifest::kVersion) {
    throw std::runtime_error("unsupported partition manifest version " +
                             std::to_string(version) + ": " + path);
  }
  if (load_le32(raw + 48) != crc32c(raw, 48)) {
    throw std::runtime_error("partition manifest CRC mismatch: " + path);
  }
  PartitionManifest manifest;
  manifest.partition_id = load_le32(raw + 12);
  manifest.num_partitions = load_le32(raw + 16);
  manifest.pf_version = load_le32(raw + 20);
  manifest.num_servers = load_le32(raw + 24);
  manifest.base_seed = load_le64(raw + 32);
  manifest.events_ingested = load_le64(raw + 40);
  return manifest;
}

void require_manifest_matches(const PartitionManifest& manifest,
                              std::uint32_t partition_id,
                              std::uint32_t num_partitions,
                              std::uint32_t num_servers) {
  require_partition_function_version(manifest.pf_version);
  REPL_REQUIRE_MSG(manifest.partition_id == partition_id,
                   "snapshot belongs to partition "
                       << manifest.partition_id << ", worker was assigned "
                       << partition_id << " (wrong slice)");
  REPL_REQUIRE_MSG(manifest.num_partitions == num_partitions,
                   "snapshot was cut under " << manifest.num_partitions
                                             << " partitions, cluster runs "
                                             << num_partitions
                                             << " (wrong geometry)");
  REPL_REQUIRE_MSG(manifest.num_servers == num_servers,
                   "snapshot was cut for " << manifest.num_servers
                                           << " servers, cluster serves "
                                           << num_servers);
}

}  // namespace repl
