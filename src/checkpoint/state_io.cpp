#include "checkpoint/state_io.hpp"

#include <bit>
#include <stdexcept>

namespace repl {

void StateWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

void StateWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

void StateWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void StateWriter::str(const std::string& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  buffer_.insert(buffer_.end(), v.begin(), v.end());
}

void StateReader::fail(const std::string& what) const {
  throw std::runtime_error("checkpoint: " + context_ + ": " + what);
}

const unsigned char* StateReader::take(std::size_t n) {
  if (size_ - pos_ < n) {
    fail("payload underflow (need " + std::to_string(n) + " bytes at offset " +
         std::to_string(pos_) + " of " + std::to_string(size_) + ")");
  }
  const unsigned char* p = data_ + pos_;
  pos_ += n;
  return p;
}

std::uint8_t StateReader::u8() { return *take(1); }

std::uint32_t StateReader::u32() {
  const unsigned char* p = take(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t StateReader::u64() {
  const unsigned char* p = take(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

double StateReader::f64() { return std::bit_cast<double>(u64()); }

bool StateReader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) fail("boolean field holds " + std::to_string(v));
  return v == 1;
}

std::string StateReader::str() {
  const std::uint32_t n = u32();
  const unsigned char* p = take(n);
  return std::string(reinterpret_cast<const char*>(p), n);
}

void StateReader::expect_end() const {
  if (pos_ != size_) {
    throw std::runtime_error("checkpoint: " + context_ + ": " +
                             std::to_string(size_ - pos_) +
                             " trailing bytes after payload");
  }
}

}  // namespace repl
