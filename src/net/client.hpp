// Client half of the live-ingest wire protocol.
//
// EventStreamClient turns a connected socket into an event sink: it
// performs the handshake (stream header out, ACK with the server's
// resume offset back), batches events into v2 block frames — the same
// bytes EventLogWriter puts on disk — and half-closes at a frame
// boundary when finished. The options exist mostly for tests and load
// generation: tiny blocks to multiply frame boundaries, chunked+paced
// writes to simulate a slow or trickling peer, and a byte budget after
// which the connection is dropped mid-frame to exercise the server's
// disconnect handling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/socket.hpp"
#include "trace/event_log.hpp"

namespace repl {

struct EventStreamClientOptions {
  /// Events per block frame. Smaller blocks mean lower latency per event
  /// and more framing overhead.
  std::size_t block_events = kEventLogBlockEvents;
  /// When non-zero, each frame is written in chunks of at most this many
  /// bytes (with `pace_seconds` of sleep between chunks) — a controllable
  /// slow client.
  std::size_t chunk_bytes = 0;
  double pace_seconds = 0.0;
  /// When non-zero, the connection is dropped abruptly once this many
  /// payload bytes (header excluded) have been written — lands mid-frame
  /// unless aligned to a boundary on purpose. Test hook.
  std::uint64_t abort_after_bytes = 0;
};

class EventStreamClient {
 public:
  EventStreamClient(Socket sock, EventStreamClientOptions options = {});
  ~EventStreamClient();

  EventStreamClient(const EventStreamClient&) = delete;
  EventStreamClient& operator=(const EventStreamClient&) = delete;

  /// Sends the stream header and reads the server's ACK. Returns the
  /// number of events the server has already ingested (from a restored
  /// checkpoint); the caller should skip that many before streaming.
  /// Throws std::runtime_error on a refused or malformed handshake.
  std::uint64_t handshake(std::uint32_t num_servers);

  /// Queues one event; flushes a full frame when the block fills. Returns
  /// false once the abort budget has been hit (the connection is gone and
  /// further sends are no-ops — the test got the disconnect it asked for).
  bool send(const LogEvent& event);

  /// Flushes any partial block as a short frame.
  bool flush();

  /// Flushes and half-closes the write side at a frame boundary — the
  /// clean end-of-stream the server expects. No-op after an abort.
  void finish();

  std::uint64_t events_sent() const { return events_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  bool aborted() const { return aborted_; }

 private:
  bool write_paced(const unsigned char* data, std::size_t size);

  Socket sock_;
  EventStreamClientOptions options_;
  std::vector<LogEvent> pending_;
  std::vector<unsigned char> body_;
  std::vector<unsigned char> frame_;
  std::uint64_t events_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  bool handshaken_ = false;
  bool finished_ = false;
  bool aborted_ = false;
};

}  // namespace repl
