// Checkpoint/restore subsystem tests.
//
// The load-bearing properties:
//  * round trip — for randomized traces, every policy×predictor
//    combination snapshotted at a random request index and restored into
//    fresh objects replays the remaining requests with bit-identical
//    ServeRecords and a bit-identical final SimulationResult;
//  * crash recovery — a snapshot truncated at any record boundary or
//    random byte offset, or with tampered magic/version bytes, fails
//    restore() cleanly with a diagnostic (no UB under ASan/UBSan),
//    mirroring event_log_test's corruption coverage;
//  * empty-state snapshots — zero-event and single-event logs serve and
//    checkpoint correctly.
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "checkpoint/snapshot.hpp"
#include "checkpoint/state_io.hpp"
#include "core/adaptive_drwp.hpp"
#include "core/drwp.hpp"
#include "core/simulator.hpp"
#include "engine/engine.hpp"
#include "extensions/randomized_drwp.hpp"
#include "predictor/ensemble.hpp"
#include "predictor/fixed.hpp"
#include "predictor/history.hpp"
#include "predictor/last_gap.hpp"
#include "predictor/noisy.hpp"
#include "predictor/oracle.hpp"
#include "trace/event_log.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace repl {
namespace {

constexpr int kServers = 5;
constexpr double kLambda = 10.0;

SystemConfig test_config() {
  SystemConfig config;
  config.num_servers = kServers;
  config.transfer_cost = kLambda;
  return config;
}

/// A random trace mixing short bursts and long gaps so policies exercise
/// every branch (local serves, transfers, special copies, expiries).
Trace random_trace(std::uint64_t seed, std::size_t num_requests) {
  Rng rng(seed);
  std::vector<Request> requests;
  double t = 0.0;
  for (std::size_t i = 0; i < num_requests; ++i) {
    t += rng.bernoulli(0.6) ? rng.uniform(0.05, 0.5 * kLambda)
                            : rng.uniform(kLambda, 5.0 * kLambda);
    requests.push_back(
        Request{t, static_cast<int>(rng.uniform_index(kServers))});
  }
  return Trace(kServers, std::move(requests));
}

using PolicyFactory = std::function<PolicyPtr()>;
using PredictorFactory = std::function<PredictorPtr(const Trace&)>;

std::vector<std::pair<std::string, PolicyFactory>> policy_factories() {
  return {
      {"drwp", [] { return std::make_unique<DrwpPolicy>(0.3); }},
      {"conventional", [] { return std::make_unique<ConventionalPolicy>(); }},
      {"adaptive",
       [] {
         AdaptiveDrwpPolicy::Options options;
         options.beta = 0.25;
         options.warmup_requests = 10;
         return std::make_unique<AdaptiveDrwpPolicy>(0.3, options);
       }},
      {"randomized",
       [] { return std::make_unique<RandomizedDrwpPolicy>(0.3, 99); }},
  };
}

std::vector<std::pair<std::string, PredictorFactory>> predictor_factories() {
  return {
      {"last-gap",
       [](const Trace&) { return std::make_unique<LastGapPredictor>(kServers); }},
      {"history",
       [](const Trace&) {
         return std::make_unique<HistoryPredictor>(kServers);
       }},
      {"ensemble",
       [](const Trace&) {
         std::vector<std::shared_ptr<Predictor>> experts;
         experts.push_back(std::make_shared<HistoryPredictor>(kServers));
         experts.push_back(std::make_shared<LastGapPredictor>(kServers));
         experts.push_back(std::make_shared<FixedPredictor>(true));
         return std::make_unique<EnsemblePredictor>(std::move(experts));
       }},
      {"fixed",
       [](const Trace&) { return std::make_unique<FixedPredictor>(false); }},
      {"oracle",
       [](const Trace& trace) {
         return std::make_unique<OraclePredictor>(trace);
       }},
      {"noisy",
       [](const Trace& trace) {
         return std::make_unique<AccuracyPredictor>(trace, 0.8, 7);
       }},
  };
}

void expect_serves_equal(const ServeRecord& a, const ServeRecord& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.server, b.server);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.local, b.local);
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.source_special, b.source_special);
  EXPECT_EQ(a.special_since, b.special_since);
  EXPECT_EQ(a.intended_duration, b.intended_duration);
  EXPECT_EQ(a.prediction, b.prediction);
}

/// Snapshots a run at `cut`, restores into fresh components, and checks
/// the resumed run against the uninterrupted one: remaining ServeRecords
/// and every scalar of the final result bit-identical.
void check_round_trip(const PolicyFactory& make_policy,
                      const PredictorFactory& make_predictor,
                      const Trace& trace, std::size_t cut) {
  const SystemConfig config = test_config();
  const SimulationOptions options;  // record_events on: serves compared

  // Uninterrupted reference.
  PolicyPtr ref_policy = make_policy();
  PredictorPtr ref_predictor = make_predictor(trace);
  OnlineSimulation reference(config, options, *ref_policy, *ref_predictor);
  for (const Request& r : trace.requests()) reference.step(r.server, r.time);
  const SimulationResult full = reference.finish();

  // Prefix, snapshot.
  PolicyPtr cut_policy = make_policy();
  PredictorPtr cut_predictor = make_predictor(trace);
  OnlineSimulation prefix(config, options, *cut_policy, *cut_predictor);
  for (std::size_t i = 0; i < cut; ++i) {
    prefix.step(trace[i].server, trace[i].time);
  }
  StateWriter snapshot;
  prefix.save_state(snapshot);

  // Restore into fresh objects, replay the remainder.
  PolicyPtr resumed_policy = make_policy();
  PredictorPtr resumed_predictor = make_predictor(trace);
  OnlineSimulation resumed(config, options, *resumed_policy,
                           *resumed_predictor);
  StateReader in(snapshot.buffer().data(), snapshot.size(), "round trip");
  resumed.load_state(in);
  in.expect_end();
  EXPECT_EQ(resumed.steps(), cut);
  for (std::size_t i = cut; i < trace.size(); ++i) {
    resumed.step(trace[i].server, trace[i].time);
  }
  const SimulationResult result = resumed.finish();

  // Final aggregates: bit-identical to the uninterrupted run.
  EXPECT_EQ(result.storage_cost, full.storage_cost);
  EXPECT_EQ(result.transfer_cost, full.transfer_cost);
  EXPECT_EQ(result.total_cost(), full.total_cost());
  EXPECT_EQ(result.num_local, full.num_local);
  EXPECT_EQ(result.num_transfers, full.num_transfers);
  EXPECT_EQ(result.horizon, full.horizon);
  EXPECT_EQ(result.initial_intended_duration, full.initial_intended_duration);
  EXPECT_EQ(result.initial_prediction, full.initial_prediction);
  EXPECT_EQ(result.policy_name, full.policy_name);
  EXPECT_EQ(result.predictor_name, full.predictor_name);

  // The restored run records exactly the remaining serves.
  ASSERT_EQ(result.serves.size(), full.serves.size() - cut);
  for (std::size_t i = 0; i < result.serves.size(); ++i) {
    expect_serves_equal(result.serves[i], full.serves[cut + i]);
  }
}

TEST(CheckpointStateIoTest, PrimitivesRoundTrip) {
  StateWriter out;
  out.u8(0xab);
  out.u32(0xdeadbeefu);
  out.u64(0x0123456789abcdefULL);
  out.i32(-42);
  out.f64(-0.0);
  out.f64(std::numeric_limits<double>::infinity());
  out.f64(std::numeric_limits<double>::quiet_NaN());
  out.boolean(true);
  out.str("checkpoint");

  StateReader in(out.buffer().data(), out.size(), "primitives");
  EXPECT_EQ(in.u8(), 0xab);
  EXPECT_EQ(in.u32(), 0xdeadbeefu);
  EXPECT_EQ(in.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(in.i32(), -42);
  const double negzero = in.f64();
  EXPECT_EQ(negzero, 0.0);
  EXPECT_TRUE(std::signbit(negzero));  // -0.0 preserved bit-exactly
  EXPECT_EQ(in.f64(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(in.f64()));
  EXPECT_TRUE(in.boolean());
  EXPECT_EQ(in.str(), "checkpoint");
  EXPECT_EQ(in.remaining(), 0u);
  in.expect_end();
}

TEST(CheckpointStateIoTest, UnderflowAndTrailingBytesAreDiagnosed) {
  StateWriter out;
  out.u32(7);
  StateReader in(out.buffer().data(), out.size(), "short payload");
  EXPECT_THROW(in.u64(), std::runtime_error);

  StateReader trailing(out.buffer().data(), out.size(), "trailing");
  EXPECT_THROW(trailing.expect_end(), std::runtime_error);

  StateWriter bad_bool;
  bad_bool.u8(2);
  StateReader bools(bad_bool.buffer().data(), bad_bool.size(), "bool");
  EXPECT_THROW(bools.boolean(), std::runtime_error);

  try {
    StateReader named(out.buffer().data(), out.size(), "object 42");
    named.u64();
    FAIL() << "expected underflow";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("object 42"), std::string::npos);
  }
}

/// The satellite property test: every policy×predictor combination,
/// randomized traces, random cut points.
TEST(CheckpointRoundTripTest, AllPolicyPredictorCombinations) {
  Rng cuts(0xc0ffee);
  for (const auto& [policy_name, make_policy] : policy_factories()) {
    for (const auto& [predictor_name, make_predictor] :
         predictor_factories()) {
      const Trace trace = random_trace(
          0x5eed0000 + std::hash<std::string>{}(policy_name + predictor_name),
          120);
      for (int rep = 0; rep < 3; ++rep) {
        const std::size_t cut =
            static_cast<std::size_t>(cuts.uniform_index(trace.size() - 1)) + 1;
        SCOPED_TRACE(policy_name + " × " + predictor_name + " cut=" +
                     std::to_string(cut));
        check_round_trip(make_policy, make_predictor, trace, cut);
      }
    }
  }
}

TEST(CheckpointRoundTripTest, BoundaryCutsIncludingZeroAndAll) {
  const Trace trace = random_trace(0xfeed, 60);
  const auto make_policy = [] { return std::make_unique<DrwpPolicy>(0.3); };
  const auto make_predictor = [](const Trace&) {
    return std::make_unique<HistoryPredictor>(kServers);
  };
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{1}, trace.size() - 1, trace.size()}) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    check_round_trip(make_policy, make_predictor, trace, cut);
  }
}

TEST(CheckpointRoundTripTest, LoadRejectsComponentMismatch) {
  const Trace trace = random_trace(0xd00d, 40);
  const SystemConfig config = test_config();
  DrwpPolicy policy(0.3);
  LastGapPredictor predictor(kServers);
  OnlineSimulation sim(config, SimulationOptions{}, policy, predictor);
  for (std::size_t i = 0; i < 10; ++i) sim.step(trace[i].server, trace[i].time);
  StateWriter snapshot;
  sim.save_state(snapshot);

  // Wrong policy type.
  {
    ConventionalPolicy other;
    LastGapPredictor pred(kServers);
    OnlineSimulation fresh(config, SimulationOptions{}, other, pred);
    StateReader in(snapshot.buffer().data(), snapshot.size(), "mismatch");
    EXPECT_THROW(fresh.load_state(in), std::runtime_error);
  }
  // Wrong predictor type.
  {
    DrwpPolicy same(0.3);
    HistoryPredictor pred(kServers);
    OnlineSimulation fresh(config, SimulationOptions{}, same, pred);
    StateReader in(snapshot.buffer().data(), snapshot.size(), "mismatch");
    EXPECT_THROW(fresh.load_state(in), std::runtime_error);
  }
  // Wrong alpha (same type): the policy's own cross-check fires.
  {
    DrwpPolicy other_alpha(0.7);
    LastGapPredictor pred(kServers);
    OnlineSimulation fresh(config, SimulationOptions{}, other_alpha, pred);
    StateReader in(snapshot.buffer().data(), snapshot.size(), "mismatch");
    EXPECT_THROW(fresh.load_state(in), std::runtime_error);
  }
  // Wrong transfer cost: the config cross-check fires even though every
  // component type matches.
  {
    SystemConfig other_lambda = config;
    other_lambda.transfer_cost = kLambda / 2.0;
    DrwpPolicy same(0.3);
    LastGapPredictor pred(kServers);
    OnlineSimulation fresh(other_lambda, SimulationOptions{}, same, pred);
    StateReader in(snapshot.buffer().data(), snapshot.size(), "mismatch");
    EXPECT_THROW(fresh.load_state(in), std::runtime_error);
  }
}

// ---------------------------------------------------------------------
// Engine-level checkpoint files: format validation and corruption paths.
// ---------------------------------------------------------------------

class CheckpointFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("repl_checkpoint_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string temp_path(const std::string& name) {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

EnginePolicyFactory engine_policy_factory() {
  return [](const EngineObjectContext&) -> PolicyPtr {
    return std::make_unique<DrwpPolicy>(0.3);
  };
}

EnginePredictorFactory engine_predictor_factory() {
  return [](const EngineObjectContext&) -> PredictorPtr {
    return std::make_unique<LastGapPredictor>(kServers);
  };
}

/// A deterministic interleaved multi-object batch.
std::vector<LogEvent> interleaved_events(std::size_t count,
                                         std::size_t num_objects,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<LogEvent> events;
  double t = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    t += rng.uniform(0.01, 2.0);
    events.push_back(LogEvent{t, rng.uniform_index(num_objects),
                              static_cast<std::uint32_t>(
                                  rng.uniform_index(kServers))});
  }
  return events;
}

std::unique_ptr<StreamingEngine> fresh_engine(std::size_t shards,
                                              int threads) {
  EngineOptions options;
  options.num_shards = shards;
  options.num_threads = threads;
  return std::make_unique<StreamingEngine>(test_config(), options,
                                           engine_policy_factory(),
                                           engine_predictor_factory());
}

TEST_F(CheckpointFileTest, EngineRoundTripAcrossShardGeometries) {
  const std::vector<LogEvent> events = interleaved_events(4000, 50, 17);
  const std::size_t cut = events.size() / 2;
  const std::string path = temp_path("engine.ckpt");

  // Uninterrupted reference.
  auto reference = fresh_engine(8, 1);
  reference->ingest(events);
  const EngineMetrics full = reference->finish();

  // First half, checkpoint with one geometry...
  auto first = fresh_engine(8, 4);
  first->ingest(events.data(), cut);
  first->checkpoint(path);

  // ...restore with a different geometry, serve the rest.
  EngineOptions options;
  options.num_shards = 3;
  options.num_threads = 2;
  auto resumed = StreamingEngine::restore(path, test_config(), options,
                                          engine_policy_factory(),
                                          engine_predictor_factory());
  EXPECT_EQ(resumed->resume_position(), cut);
  EXPECT_EQ(resumed->object_count(), 50u);
  resumed->ingest(events.data() + cut, events.size() - cut);
  const EngineMetrics metrics = resumed->finish();

  EXPECT_EQ(metrics.objects, full.objects);
  EXPECT_EQ(metrics.events, full.events);
  EXPECT_EQ(metrics.num_local, full.num_local);
  EXPECT_EQ(metrics.num_transfers, full.num_transfers);
  EXPECT_EQ(metrics.online_cost, full.online_cost);  // bit-identical
  EXPECT_EQ(metrics.lower_bound, full.lower_bound);  // bit-identical

  // The checkpointed engine is still serveable afterwards.
  first->ingest(events.data() + cut, events.size() - cut);
  const EngineMetrics continued = first->finish();
  EXPECT_EQ(continued.online_cost, full.online_cost);
}

TEST_F(CheckpointFileTest, RestoreRejectsMismatchedConfiguration) {
  const std::vector<LogEvent> events = interleaved_events(500, 10, 3);
  const std::string path = temp_path("mismatch.ckpt");
  auto engine = fresh_engine(4, 1);
  engine->ingest(events);
  engine->checkpoint(path);

  // Wrong server count.
  {
    SystemConfig config = test_config();
    config.num_servers = kServers + 1;
    EXPECT_THROW(StreamingEngine::restore(path, config, EngineOptions{},
                                          engine_policy_factory(),
                                          engine_predictor_factory()),
                 std::invalid_argument);
  }
  // Wrong base seed.
  {
    EngineOptions options;
    options.base_seed = 123;
    EXPECT_THROW(StreamingEngine::restore(path, test_config(), options,
                                          engine_policy_factory(),
                                          engine_predictor_factory()),
                 std::invalid_argument);
  }
  // Lower-bound accumulators missing from the restored options.
  {
    EngineOptions options;
    options.compute_lower_bound = false;
    EXPECT_THROW(StreamingEngine::restore(path, test_config(), options,
                                          engine_policy_factory(),
                                          engine_predictor_factory()),
                 std::invalid_argument);
  }
  // Mismatched per-object components (different predictor type).
  {
    EXPECT_THROW(
        StreamingEngine::restore(
            path, test_config(), EngineOptions{}, engine_policy_factory(),
            [](const EngineObjectContext&) -> PredictorPtr {
              return std::make_unique<HistoryPredictor>(kServers);
            }),
        std::runtime_error);
  }
}

/// Parses the record table of a snapshot file to find every record
/// boundary (offsets where a record begins, plus the footer offset).
/// The v2 header is variable-length (log binding + spec strings), so
/// the walk starts at header.encoded_size().
std::vector<std::uintmax_t> record_boundaries(const std::string& path) {
  const SnapshotHeader header = read_snapshot_header(path);
  std::ifstream in(path, std::ios::binary);
  auto le32 = [](const unsigned char* p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
    return v;
  };
  const std::uint64_t num_objects = header.num_objects;
  const std::size_t prefix_size = header.record_prefix_size();
  std::vector<std::uintmax_t> boundaries;
  std::uintmax_t offset = header.encoded_size();
  for (std::uint64_t i = 0; i < num_objects; ++i) {
    boundaries.push_back(offset);
    unsigned char prefix[20];
    in.seekg(static_cast<std::streamoff>(offset));
    in.read(reinterpret_cast<char*>(prefix), static_cast<std::streamsize>(
                                                 prefix_size));
    offset += prefix_size + le32(prefix + 8);  // +8: encoded length
  }
  boundaries.push_back(offset);  // footer position
  return boundaries;
}

void expect_restore_fails(const std::string& path) {
  try {
    StreamingEngine::restore(path, test_config(), EngineOptions{},
                             engine_policy_factory(),
                             engine_predictor_factory());
    FAIL() << "restore accepted a corrupt snapshot: " << path;
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("checkpoint"), std::string::npos)
        << e.what();
  }
}

/// The crash-recovery satellite: every record boundary, random byte
/// offsets, and tampered header bytes must all fail cleanly.
TEST_F(CheckpointFileTest, TruncationAndTamperingAreRejected) {
  const std::vector<LogEvent> events = interleaved_events(800, 12, 29);
  const std::string path = temp_path("corrupt.ckpt");
  auto engine = fresh_engine(4, 1);
  engine->ingest(events);
  engine->checkpoint(path);

  // Sanity: the intact snapshot restores.
  ASSERT_NE(StreamingEngine::restore(path, test_config(), EngineOptions{},
                                     engine_policy_factory(),
                                     engine_predictor_factory()),
            nullptr);

  const auto full_size = std::filesystem::file_size(path);
  const std::vector<std::uintmax_t> boundaries = record_boundaries(path);
  ASSERT_EQ(boundaries.size(), 13u);  // 12 objects + footer
  ASSERT_EQ(boundaries.back() + 8, full_size);

  const auto copy_to = [&](const std::string& name) {
    const std::string dst = temp_path(name);
    std::filesystem::copy_file(path, dst,
                               std::filesystem::copy_options::overwrite_existing);
    return dst;
  };

  // Truncation at every record boundary — including boundaries.back(),
  // a snapshot cut exactly before the footer, which only the footer
  // check can catch.
  for (std::size_t i = 0; i < boundaries.size(); ++i) {
    const std::string trunc = copy_to("trunc_" + std::to_string(i) + ".ckpt");
    std::filesystem::resize_file(trunc, boundaries[i]);
    SCOPED_TRACE("record boundary " + std::to_string(i));
    expect_restore_fails(trunc);
  }

  // Truncation at random byte offsets (mid-header, mid-record, mid-footer).
  Rng rng(0xbad);
  for (int i = 0; i < 20; ++i) {
    const auto offset = rng.uniform_index(full_size - 1);
    const std::string trunc = copy_to("rand_" + std::to_string(i) + ".ckpt");
    std::filesystem::resize_file(trunc, offset);
    SCOPED_TRACE("random offset " + std::to_string(offset));
    expect_restore_fails(trunc);
  }

  const auto flip_byte = [&](const std::string& name, std::uintmax_t offset,
                             unsigned char value) {
    const std::string dst = copy_to(name);
    std::fstream f(dst, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(reinterpret_cast<const char*>(&value), 1);
    f.close();
    return dst;
  };

  // Header magic, version, and footer magic tampering.
  expect_restore_fails(flip_byte("bad_magic.ckpt", 0, 'X'));
  expect_restore_fails(flip_byte("bad_version.ckpt", 8, 99));
  expect_restore_fails(flip_byte("bad_footer.ckpt", boundaries.back(), 'X'));
  // Zeroed server count.
  {
    const std::string dst = copy_to("zero_servers.ckpt");
    std::fstream f(dst, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(12);
    const char zeros[4] = {0, 0, 0, 0};
    f.write(zeros, 4);
    f.close();
    expect_restore_fails(dst);
  }
  // Trailing garbage after the footer.
  {
    const std::string dst = copy_to("trailing.ckpt");
    std::ofstream f(dst, std::ios::binary | std::ios::app);
    f << "junk";
    f.close();
    expect_restore_fails(dst);
  }
}

/// Regression for the serve-loop fix: zero-event and single-event logs
/// serve and checkpoint correctly (empty-state snapshots restore).
TEST_F(CheckpointFileTest, EmptyAndSingleEventLogsServeAndCheckpoint) {
  // Zero events.
  {
    const std::string log = temp_path("empty.evlog");
    EventLogWriter writer(log, kServers);
    writer.close();

    EventLogReader reader(log);
    auto engine = fresh_engine(4, 1);
    const std::string ckpt = temp_path("empty.ckpt");
    engine->checkpoint(ckpt);  // empty-state snapshot
    auto restored = StreamingEngine::restore(ckpt, test_config(),
                                             EngineOptions{},
                                             engine_policy_factory(),
                                             engine_predictor_factory());
    EXPECT_EQ(restored->object_count(), 0u);
    EXPECT_EQ(restored->resume_position(), 0u);
    const EngineMetrics metrics = restored->serve(reader);
    EXPECT_EQ(metrics.objects, 0u);
    EXPECT_EQ(metrics.events, 0u);
    EXPECT_EQ(metrics.online_cost, 0.0);
  }
  // One event.
  {
    const std::string log = temp_path("single.evlog");
    {
      EventLogWriter writer(log, kServers);
      writer.write(1.5, 7, 2);
      writer.close();
    }
    auto engine = fresh_engine(4, 1);
    {
      EventLogReader reader(log);
      std::vector<LogEvent> batch;
      ASSERT_EQ(reader.read_batch(batch, 16), 1u);
      engine->ingest(batch);
    }
    const std::string ckpt = temp_path("single.ckpt");
    engine->checkpoint(ckpt);
    auto restored = StreamingEngine::restore(ckpt, test_config(),
                                             EngineOptions{},
                                             engine_policy_factory(),
                                             engine_predictor_factory());
    EXPECT_EQ(restored->object_count(), 1u);
    EXPECT_EQ(restored->resume_position(), 1u);
    EventLogReader reader(log);
    const EngineMetrics metrics = restored->serve(reader);
    EXPECT_EQ(metrics.objects, 1u);
    EXPECT_EQ(metrics.events, 1u);

    auto uninterrupted = fresh_engine(4, 1);
    EventLogReader again(log);
    const EngineMetrics reference = uninterrupted->serve(again);
    EXPECT_EQ(metrics.online_cost, reference.online_cost);
    EXPECT_EQ(metrics.lower_bound, reference.lower_bound);
  }
}

/// serve() with periodic checkpoints: the last snapshot resumes to the
/// same aggregates, and the .tmp staging file never survives.
TEST_F(CheckpointFileTest, PeriodicCheckpointsDuringServeResume) {
  const std::vector<LogEvent> events = interleaved_events(5000, 40, 41);
  const std::string log = temp_path("serve.evlog");
  {
    EventLogWriter writer(log, kServers);
    for (const LogEvent& e : events) writer.write(e);
    writer.close();
  }
  const std::string ckpt = temp_path("serve.ckpt");

  // Reference: plain serve.
  EngineMetrics full;
  {
    EventLogReader reader(log);
    auto engine = fresh_engine(8, 2);
    full = engine->serve(reader);
  }

  // Serve with periodic checkpoints; capture the penultimate snapshot by
  // stopping the drain manually at 3/4 of the log.
  const std::uint64_t stop_at = 3 * events.size() / 4;
  {
    EventLogReader reader(log);
    auto engine = fresh_engine(8, 2);
    ServeOptions options;
    options.batch_events = 512;
    options.checkpoint_every = 1000;
    options.checkpoint_path = ckpt;
    std::vector<LogEvent> batch;
    std::uint64_t next_mark = options.checkpoint_every;
    while (engine->stats().events_ingested < stop_at &&
           reader.read_batch(batch, options.batch_events) > 0) {
      engine->ingest(batch);
      if (engine->stats().events_ingested >= next_mark) {
        engine->checkpoint(ckpt);
        while (next_mark <= engine->stats().events_ingested) {
          next_mark += options.checkpoint_every;
        }
      }
    }
    // Crash here: the engine is dropped without finish().
  }

  // Resume from the last on-disk snapshot and drain to the end.
  auto resumed = StreamingEngine::restore(
      ckpt, test_config(),
      [] {
        EngineOptions options;
        options.num_shards = 16;  // different geometry across the restart
        options.num_threads = 1;
        return options;
      }(),
      engine_policy_factory(), engine_predictor_factory());
  EXPECT_GT(resumed->resume_position(), 0u);
  EXPECT_LE(resumed->resume_position(), stop_at + 512);
  EventLogReader reader(log);
  const EngineMetrics metrics = resumed->serve(reader);

  EXPECT_EQ(metrics.objects, full.objects);
  EXPECT_EQ(metrics.events, full.events);
  EXPECT_EQ(metrics.online_cost, full.online_cost);
  EXPECT_EQ(metrics.lower_bound, full.lower_bound);
  EXPECT_EQ(metrics.num_transfers, full.num_transfers);

  // The ServeOptions path writes through the .tmp staging name and
  // renames; the staging file must not remain.
  {
    EventLogReader again(log);
    auto engine = fresh_engine(4, 1);
    ServeOptions options;
    options.batch_events = 512;
    options.checkpoint_every = 1500;
    options.checkpoint_path = temp_path("staged.ckpt");
    const EngineMetrics staged = engine->serve(again, options);
    EXPECT_EQ(staged.online_cost, full.online_cost);
    EXPECT_GE(engine->stats().checkpoints_written, 1u);
    EXPECT_TRUE(std::filesystem::exists(options.checkpoint_path));
    EXPECT_FALSE(std::filesystem::exists(options.checkpoint_path + ".tmp"));
  }
}

TEST_F(CheckpointFileTest, ServeRequiresPathWithCheckpointEvery) {
  const std::string log = temp_path("nopath.evlog");
  {
    EventLogWriter writer(log, kServers);
    writer.write(1.0, 0, 0);
    writer.close();
  }
  EventLogReader reader(log);
  auto engine = fresh_engine(2, 1);
  ServeOptions options;
  options.checkpoint_every = 10;
  EXPECT_THROW(engine->serve(reader, options), std::invalid_argument);
}

}  // namespace
}  // namespace repl
