#include "analysis/request_types.hpp"

namespace repl {

std::string to_string(RequestType type) {
  switch (type) {
    case RequestType::kType1: return "Type-1";
    case RequestType::kType2: return "Type-2";
    case RequestType::kType3: return "Type-3";
    case RequestType::kType4: return "Type-4";
  }
  return "?";
}

RequestType classify_request(const ServeRecord& record) {
  if (record.local) {
    return record.source_special ? RequestType::kType4
                                 : RequestType::kType3;
  }
  return record.source_special ? RequestType::kType2 : RequestType::kType1;
}

std::vector<RequestType> classify_requests(const SimulationResult& result) {
  std::vector<RequestType> types;
  types.reserve(result.serves.size());
  for (const ServeRecord& record : result.serves) {
    types.push_back(classify_request(record));
  }
  return types;
}

TypeCounts count_request_types(const SimulationResult& result) {
  TypeCounts counts;
  for (const ServeRecord& record : result.serves) {
    ++counts.counts[static_cast<int>(classify_request(record))];
  }
  return counts;
}

}  // namespace repl
