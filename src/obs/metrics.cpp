#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "util/check.hpp"
#include "util/histogram.hpp"

namespace repl::obs {
namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool valid_label_name(const std::string& name) {
  // Same as metric names minus ':', and no reserved "__" prefix.
  if (!valid_metric_name(name) || name.find(':') != std::string::npos)
    return false;
  return name.rfind("__", 0) != 0;
}

/// Canonical series key: name plus sorted label pairs. Label values are
/// length-prefixed so {a="b,c"} and {a="b", c=""} cannot collide.
std::string series_key(const std::string& name, const Labels& labels) {
  std::ostringstream key;
  key << name;
  for (const auto& [k, v] : labels)
    key << '\x1f' << k.size() << ':' << k << '=' << v.size() << ':' << v;
  return key.str();
}

const char* type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

std::size_t metric_cell_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricCells;
  return slot;
}

void Gauge::set(double v) noexcept {
  bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
}

void Gauge::add(double delta) noexcept {
  std::uint64_t expected = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(
      expected, std::bit_cast<std::uint64_t>(std::bit_cast<double>(expected) + delta),
      std::memory_order_relaxed)) {
  }
}

double Gauge::value() const noexcept {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  REPL_REQUIRE_MSG(!bounds_.empty(), "histogram needs at least one bound");
  REPL_REQUIRE_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                       std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                           bounds_.end(),
                   "histogram bounds must be strictly increasing");
  const std::size_t slots = bounds_.size() + 1;  // finite buckets + +Inf
  for (auto& cell : cells_) {
    cell.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(slots);
    for (std::size_t i = 0; i < slots; ++i)
      cell.buckets[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double x) noexcept {
  const std::size_t bucket =
      static_cast<std::size_t>(std::lower_bound(bounds_.begin(), bounds_.end(), x) -
                               bounds_.begin());
  Cell& cell = cells_[metric_cell_slot()];
  cell.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t expected = cell.sum_bits.load(std::memory_order_relaxed);
  while (!cell.sum_bits.compare_exchange_weak(
      expected, std::bit_cast<std::uint64_t>(std::bit_cast<double>(expected) + x),
      std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  const std::size_t slots = bounds_.size() + 1;
  Snapshot snap;
  snap.cumulative.assign(slots, 0);
  for (const auto& cell : cells_) {
    for (std::size_t i = 0; i < slots; ++i)
      snap.cumulative[i] += cell.buckets[i].load(std::memory_order_relaxed);
    snap.sum += std::bit_cast<double>(cell.sum_bits.load(std::memory_order_relaxed));
  }
  // Per-bound counts -> cumulative; the total is derived from the same
  // bucket reads, so it can never disagree with them.
  for (std::size_t i = 1; i < slots; ++i)
    snap.cumulative[i] += snap.cumulative[i - 1];
  snap.count = snap.cumulative.back();
  return snap;
}

double Histogram::quantile(double q) const {
  const Snapshot snap = snapshot();
  return histogram_quantile(bounds_, snap.cumulative, q);
}

std::vector<double> Histogram::default_latency_bounds() {
  std::vector<double> bounds;
  for (double b = 100e-6; b < 200.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help, Labels labels) {
  return *find_or_create(name, help, MetricType::kCounter, std::move(labels))
              .counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              Labels labels) {
  return *find_or_create(name, help, MetricType::kGauge, std::move(labels))
              .gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> bounds,
                                      Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  REPL_REQUIRE_MSG(valid_metric_name(name), "invalid metric name: " + name);
  for (const auto& [k, v] : labels)
    REPL_REQUIRE_MSG(valid_label_name(k), "invalid label name: " + k);
  std::sort(labels.begin(), labels.end());
  const std::string key = series_key(name, labels);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    REPL_REQUIRE_MSG(it->second->type == MetricType::kHistogram,
                     "metric '" + name + "' already registered as " +
                         type_name(it->second->type));
    REPL_REQUIRE_MSG(it->second->histogram->bounds() == bounds,
                     "metric '" + name +
                         "' already registered with different buckets");
    return *it->second->histogram;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->type = MetricType::kHistogram;
  entry->labels = std::move(labels);
  entry->histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram& result = *entry->histogram;
  entries_.emplace(key, std::move(entry));
  return result;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    const std::string& name, const std::string& help, MetricType type,
    Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  REPL_REQUIRE_MSG(valid_metric_name(name), "invalid metric name: " + name);
  for (const auto& [k, v] : labels)
    REPL_REQUIRE_MSG(valid_label_name(k), "invalid label name: " + k);
  std::sort(labels.begin(), labels.end());
  const std::string key = series_key(name, labels);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    REPL_REQUIRE_MSG(it->second->type == type,
                     "metric '" + name + "' already registered as " +
                         type_name(it->second->type));
    return *it->second;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->type = type;
  entry->labels = std::move(labels);
  if (type == MetricType::kCounter) entry->counter = std::make_unique<Counter>();
  if (type == MetricType::kGauge) entry->gauge = std::make_unique<Gauge>();
  Entry& result = *entry;
  entries_.emplace(key, std::move(entry));
  return result;
}

std::size_t MetricsRegistry::add_collect_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t id = next_hook_id_++;
  hooks_.emplace_back(id, std::move(hook));
  return id;
}

void MetricsRegistry::remove_collect_hook(std::size_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = hooks_.begin(); it != hooks_.end(); ++it) {
    if (it->first == id) {
      hooks_.erase(it);
      return;
    }
  }
}

std::vector<Sample> MetricsRegistry::collect() {
  // Copied (not referenced) so a concurrent remove_collect_hook can't
  // invalidate what we run; hooks run outside mu_ so a hook may itself
  // register lazily-created series without deadlocking.
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hooks.reserve(hooks_.size());
    for (const auto& [id, hook] : hooks_) hooks.push_back(hook);
  }
  for (const auto& hook : hooks) hook();

  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> samples;
  samples.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    Sample s;
    s.name = entry->name;
    s.help = entry->help;
    s.type = entry->type;
    s.labels = entry->labels;
    switch (entry->type) {
      case MetricType::kCounter:
        s.counter_value = entry->counter->value();
        s.value = static_cast<double>(s.counter_value);
        break;
      case MetricType::kGauge:
        s.value = entry->gauge->value();
        break;
      case MetricType::kHistogram: {
        auto snap = entry->histogram->snapshot();
        s.bounds = entry->histogram->bounds();
        s.cumulative = std::move(snap.cumulative);
        s.count = snap.count;
        s.sum = snap.sum;
        break;
      }
    }
    samples.push_back(std::move(s));
  }
  std::stable_sort(samples.begin(), samples.end(),
                   [](const Sample& a, const Sample& b) {
                     if (a.name != b.name) return a.name < b.name;
                     return a.labels < b.labels;
                   });
  return samples;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace repl::obs
