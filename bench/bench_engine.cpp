// Streaming-engine throughput sweep: synthesizes interleaved
// multi-object event logs to disk (objects swept geometrically up to
// --objects, a fixed --events per row), then serves each log through the
// sharded StreamingEngine at every thread count in --threads, reporting
// events/sec. Per-object traces are never materialized — the stream goes
// binary log → batcher → shards.
//
// Components are spec-driven (api/registry.hpp): --policy/--predictor
// select any registered causal combination, and a comparison grid
// additionally benches adaptive DRWP and ensemble predictors against
// the default wiring on the same log. An object_zipf_s skew sweep
// (--zipf) reports per-shard event-count spread under hot objects.
//
//   ./build/bench/bench_engine                  # 10^4..10^6 objects, 10^7 events
//   ./build/bench/bench_engine --smoke          # CI-sized run + parity check
//   ./build/bench/bench_engine --policy "adaptive(alpha=0.3)"
//       --predictor "ensemble(last_gap,history(ewma=0.3))"
//
// At smoke scale (or with --verify) the engine aggregates are checked
// bit-for-bit against a serial per-object Simulator sweep over the same
// log, with components built from the same specs. A machine-readable
// BENCH_engine.json accompanies the table.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "core/simulator.hpp"
#include "engine/engine.hpp"
#include "offline/opt_lower_bound.hpp"
#include "run/parallel_runner.hpp"
#include "trace/event_log.hpp"
#include "trace/stream_gen.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

#ifndef REPL_GIT_DESCRIBE
#define REPL_GIT_DESCRIBE "unknown"
#endif

namespace {

using namespace repl;

struct RowResult {
  std::uint64_t objects = 0;
  std::uint64_t events = 0;
  int threads_requested = 0;
  int threads_used = 1;
  double events_per_sec = 0.0;
  double ingest_seconds = 0.0;
  double finish_seconds = 0.0;
  std::uint64_t steals = 0;
  double online_cost = 0.0;
  double ratio = 1.0;
  bool verified = false;
  bool identical = true;
};

/// One policy×predictor grid point served over the reference log.
struct ComparisonResult {
  std::string policy;
  std::string predictor;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double online_cost = 0.0;
  double ratio = 1.0;
  bool verified = false;
  bool identical = true;
};

/// Mid-stream snapshot cost at one object count: write the checkpoint at
/// half the log, restore it, finish the serve, and require the resumed
/// aggregates to be bit-identical to an uninterrupted run. Both restore
/// paths are measured: the explicit-spec restore (the builder names its
/// components, the snapshot cross-checks) and the spec-less one (the
/// components self-construct from the snapshot's recorded specs — the
/// `engine_serve --resume-from` path with no component flags).
struct CheckpointResult {
  std::string policy;
  std::uint64_t objects = 0;
  std::uint64_t at_events = 0;
  std::uint64_t bytes = 0;
  double write_seconds = 0.0;
  double restore_seconds = 0.0;
  double specless_restore_seconds = 0.0;
  bool identical = true;
};

/// One wire format's cost/benefit on the same workload: bytes on disk,
/// transcode (encode) and scan (decode) throughput, and the end-to-end
/// serve rate — with the aggregates cross-checked bit-for-bit between
/// formats.
struct CompressionResult {
  std::uint64_t events = 0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t compressed_bytes = 0;
  double encode_seconds = 0.0;   // raw -> compressed transcode
  double decode_seconds = 0.0;   // full scan of the compressed log
  double raw_events_per_sec = 0.0;
  double compressed_events_per_sec = 0.0;
  bool identical = true;

  double raw_bytes_per_event() const {
    return events > 0 ? static_cast<double>(raw_bytes) /
                            static_cast<double>(events)
                      : 0.0;
  }
  double compressed_bytes_per_event() const {
    return events > 0 ? static_cast<double>(compressed_bytes) /
                            static_cast<double>(events)
                      : 0.0;
  }
  double ratio() const {
    return compressed_bytes > 0
               ? static_cast<double>(raw_bytes) /
                     static_cast<double>(compressed_bytes)
               : 0.0;
  }
  /// Encode rate over the raw bytes consumed; decode over the
  /// compressed bytes scanned.
  double encode_mb_per_sec() const {
    return encode_seconds > 0.0
               ? static_cast<double>(raw_bytes) / (1024.0 * 1024.0) /
                     encode_seconds
               : 0.0;
  }
  double decode_mb_per_sec() const {
    return decode_seconds > 0.0
               ? static_cast<double>(compressed_bytes) / (1024.0 * 1024.0) /
                     decode_seconds
               : 0.0;
  }
};

/// Per-shard event spread under one object-popularity skew.
struct ZipfResult {
  double zipf_s = 0.0;
  std::uint64_t objects = 0;
  std::uint64_t events = 0;
  std::size_t shards = 0;
  std::uint64_t shard_events_min = 0;
  std::uint64_t shard_events_max = 0;
  double shard_events_mean = 0.0;
  double shard_events_stddev = 0.0;
  /// max/mean — 1.0 is perfect balance.
  double spread = 0.0;
};

EngineBuilder make_builder(const SystemConfig& config,
                           const EngineOptions& options,
                           const std::string& policy_spec,
                           const std::string& predictor_spec) {
  EngineBuilder builder;
  builder.config(config).options(options);
  builder.policy(policy_spec).predictor(predictor_spec);
  return builder;
}

/// Serial reference for the parity check: per-object Simulator + OPTL
/// sweep in object-id order, components built from the same specs with
/// the same per-object seeds the engine uses (materializes the traces,
/// so only run at verification scale).
bool matches_serial(const std::string& log_path, const SystemConfig& config,
                    const std::string& policy_spec,
                    const std::string& predictor_spec,
                    std::uint64_t base_seed, const EngineMetrics& metrics) {
  std::map<std::uint64_t, std::vector<Request>> per_object;
  {
    EventLogReader reader(log_path);
    LogEvent event;
    while (reader.next(event)) {
      per_object[event.object].push_back(
          Request{event.time, static_cast<int>(event.server)});
    }
  }
  SimulationOptions options;
  options.record_events = false;
  const Simulator simulator(config, options);
  ComponentRegistry& registry = ComponentRegistry::instance();
  const ComponentSpec policy_ast = registry.canonicalize(
      ComponentKind::kPolicy, parse_component_spec(policy_spec));
  const ComponentSpec predictor_ast = registry.canonicalize(
      ComponentKind::kPredictor, parse_component_spec(predictor_spec));
  double online_cost = 0.0;
  double lower_bound = 0.0;
  std::size_t transfers = 0;
  for (auto& [id, requests] : per_object) {
    Trace trace(config.num_servers, std::move(requests));
    BuildContext build;
    build.config = config;
    build.seed = ParallelRunner::object_seed(
        base_seed, static_cast<std::size_t>(id));
    build.trace = &trace;
    const PolicyPtr policy = registry.build_policy(policy_ast, build);
    const PredictorPtr predictor =
        registry.build_predictor(predictor_ast, build);
    const SimulationResult result =
        simulator.run(*policy, trace, *predictor);
    online_cost += result.total_cost();
    transfers += result.num_transfers;
    lower_bound += opt_lower_bound(config, trace);
  }
  return online_cost == metrics.online_cost &&
         lower_bound == metrics.lower_bound &&
         transfers == metrics.num_transfers &&
         per_object.size() == metrics.objects;
}

/// Measures checkpoint write + restore throughput on `log_path` under
/// the given specs, and verifies the resumed serve reproduces
/// `reference` bit for bit (restore goes through EngineBuilder, so the
/// snapshot's recorded specs are also cross-checked).
CheckpointResult measure_checkpoint(const std::string& log_path,
                                    const SystemConfig& config,
                                    const EngineOptions& options,
                                    const std::string& policy_spec,
                                    const std::string& predictor_spec,
                                    const EngineMetrics& reference) {
  const std::string ckpt_path = log_path + ".ckpt";
  const EngineBuilder builder =
      make_builder(config, options, policy_spec, predictor_spec);
  CheckpointResult result;
  result.policy = builder.policy_spec();
  {
    EventLogReader reader(log_path);
    auto engine = builder.build();
    engine->bind_log(reader.header());
    // Drain half the log, snapshot, abandon (the simulated crash).
    const std::uint64_t half =
        reader.header().num_events == EventLogHeader::kUnknownCount
            ? 0
            : reader.header().num_events / 2;
    std::vector<LogEvent> batch;
    while (engine->stats().events_ingested < half &&
           reader.read_batch(batch, std::size_t{1} << 16) > 0) {
      engine->ingest(batch);
    }
    result.at_events = engine->stats().events_ingested;
    const auto write_start = std::chrono::steady_clock::now();
    engine->checkpoint(ckpt_path);
    result.write_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      write_start)
            .count();
  }
  result.bytes = std::filesystem::file_size(ckpt_path);

  const auto identical_to_reference = [&reference](const EngineMetrics& m) {
    return m.online_cost == reference.online_cost &&
           m.lower_bound == reference.lower_bound &&
           m.num_transfers == reference.num_transfers &&
           m.num_local == reference.num_local &&
           m.events == reference.events && m.objects == reference.objects;
  };

  const auto restore_start = std::chrono::steady_clock::now();
  auto resumed = builder.restore(ckpt_path);
  result.restore_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    restore_start)
          .count();
  result.objects = resumed->object_count();
  {
    EventLogReader reader(log_path);
    const EngineMetrics metrics = resumed->serve(reader);
    result.identical = identical_to_reference(metrics);
  }

  // The spec-less path: a builder with no component specs reconstructs
  // the factories from the snapshot's recorded canonical specs alone.
  {
    EngineBuilder specless;
    specless.config(config).options(options);
    const auto specless_start = std::chrono::steady_clock::now();
    auto self_constructed = specless.restore(ckpt_path);
    result.specless_restore_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      specless_start)
            .count();
    EventLogReader reader(log_path);
    const EngineMetrics metrics = self_constructed->serve(reader);
    result.identical =
        result.identical && identical_to_reference(metrics) &&
        self_constructed->options().policy_spec == builder.policy_spec();
  }
  std::error_code ec;
  std::filesystem::remove(ckpt_path, ec);
  return result;
}

/// Measures the wire-format trade on `log_path` (a raw log): transcode
/// to the compressed format, scan it, and serve both formats end-to-end
/// under the same specs, requiring bit-identical aggregates.
CompressionResult measure_compression(const std::string& log_path,
                                      const SystemConfig& config,
                                      const EngineOptions& options,
                                      const std::string& policy_spec,
                                      const std::string& predictor_spec,
                                      std::size_t batch, bool keep) {
  const std::string compressed_path = log_path + ".z";
  CompressionResult result;
  {
    const auto start = std::chrono::steady_clock::now();
    result.events = event_log_transcode(log_path, compressed_path,
                                        EventLogFormat::kCompressed);
    result.encode_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  result.raw_bytes = std::filesystem::file_size(log_path);
  result.compressed_bytes = std::filesystem::file_size(compressed_path);
  {
    // Pure decode scan, no engine: the format's read throughput.
    const auto start = std::chrono::steady_clock::now();
    EventLogReader reader(compressed_path);
    LogEvent event;
    while (reader.next(event)) {
    }
    result.decode_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }

  // Wall-clock around the whole serve: with double-buffered ingestion
  // the decode happens on the prefetcher thread, and time the serve loop
  // spends *blocked on it* shows up in neither ingest_seconds nor
  // finish_seconds — only wall time can expose a decode bottleneck,
  // which is exactly what this raw-vs-compressed comparison is for.
  const auto serve_once = [&](const std::string& path,
                              EngineMetrics& metrics) {
    EventLogReader reader(path);
    auto engine =
        make_builder(config, options, policy_spec, predictor_spec).build();
    const auto start = std::chrono::steady_clock::now();
    metrics = engine->serve(reader, batch);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return wall > 0.0 ? static_cast<double>(metrics.events) / wall : 0.0;
  };
  EngineMetrics raw_metrics;
  EngineMetrics compressed_metrics;
  result.raw_events_per_sec = serve_once(log_path, raw_metrics);
  result.compressed_events_per_sec =
      serve_once(compressed_path, compressed_metrics);
  result.identical =
      raw_metrics.online_cost == compressed_metrics.online_cost &&
      raw_metrics.lower_bound == compressed_metrics.lower_bound &&
      raw_metrics.num_transfers == compressed_metrics.num_transfers &&
      raw_metrics.num_local == compressed_metrics.num_local &&
      raw_metrics.events == compressed_metrics.events &&
      raw_metrics.objects == compressed_metrics.objects;
  if (!keep) {
    std::error_code ec;
    std::filesystem::remove(compressed_path, ec);
  }
  return result;
}

ZipfResult shard_spread(double zipf_s, const EngineMetrics& metrics) {
  ZipfResult result;
  result.zipf_s = zipf_s;
  result.objects = metrics.objects;
  result.events = metrics.events;
  result.shards = metrics.shards.size();
  if (metrics.shards.empty()) return result;
  std::uint64_t min = ~std::uint64_t{0};
  std::uint64_t max = 0;
  double sum = 0.0;
  for (const EngineShardMetrics& shard : metrics.shards) {
    const std::uint64_t events = shard.events;
    min = std::min(min, events);
    max = std::max(max, events);
    sum += static_cast<double>(events);
  }
  const double mean = sum / static_cast<double>(metrics.shards.size());
  double var = 0.0;
  for (const EngineShardMetrics& shard : metrics.shards) {
    const double d = static_cast<double>(shard.events) - mean;
    var += d * d;
  }
  var /= static_cast<double>(metrics.shards.size());
  result.shard_events_min = min;
  result.shard_events_max = max;
  result.shard_events_mean = mean;
  result.shard_events_stddev = std::sqrt(var);
  result.spread = mean > 0.0 ? static_cast<double>(max) / mean : 1.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_engine",
                "streaming engine throughput sweep over binary event logs");
  cli.add_flag("min-objects", "10000", "smallest object count in the sweep");
  cli.add_flag("objects", "1000000", "largest object count in the sweep");
  cli.add_flag("events", "10000000", "events per generated log");
  cli.add_flag("servers", "10", "servers in the system");
  cli.add_flag("shards", "256", "object-table shards");
  cli.add_flag("batch", "65536", "events per ingest batch");
  cli.add_flag("threads", "1,2,4,8", "comma-separated thread counts "
               "(0 = all hardware threads)");
  cli.add_flag("lambda", "10", "transfer cost λ");
  cli.add_flag("alpha", "0.3", "DRWP α (used when --policy is not given)");
  cli.add_flag("policy", "",
               "policy component spec for the main sweep "
               "(default: drwp(alpha=<alpha>))");
  cli.add_flag("predictor", "",
               "predictor component spec for the main sweep "
               "(default: last_gap)");
  cli.add_flag("zipf", "0,0.8,1.2",
               "object_zipf_s skew sweep at the smallest object count "
               "(per-shard event spread; empty disables)");
  cli.add_flag("seed", "42", "workload seed");
  cli.add_flag("json", "BENCH_engine.json", "machine-readable output path");
  cli.add_flag("log-format", "raw",
               "wire format of the generated sweep logs: raw|compressed");
  cli.add_bool_flag("compress", "write snapshots with compressed object "
                    "records, and bench the compressed wire format "
                    "(bytes/event, encode/decode MB/s, end-to-end "
                    "events/sec vs raw) on the smallest log");
  cli.add_bool_flag("verify", "also run the serial per-object Simulator "
                    "sweep and require bit-identical aggregates");
  cli.add_bool_flag("checkpoint", "also measure checkpoint write/restore "
                    "throughput at half of each log (resume parity checked, "
                    "explicit-spec and spec-less restore paths)");
  cli.add_bool_flag("compare", "also bench a spec grid (adaptive DRWP, "
                    "ensemble predictors, ...) on the smallest log");
  cli.add_bool_flag("keep-logs", "keep the generated event logs on disk");
  cli.add_bool_flag("smoke", "CI-sized run: 2·10^3 objects, 2·10^5 events, "
                    "threads 1 and 4, verification + comparison grid on");
  if (!cli.parse(argc, argv)) return 0;

  // Bounds-checked count flags (no narrowing casts from get_int).
  std::size_t min_objects = cli.get_size_t("min-objects", 1, 100000000);
  std::size_t max_objects = cli.get_size_t("objects", 1, 100000000);
  std::uint64_t events = cli.get_size_t("events", 1);
  const std::size_t shards = cli.get_size_t("shards", 1, 1 << 20);
  const std::size_t batch = cli.get_size_t("batch", 1);
  const int servers = static_cast<int>(cli.get_size_t("servers", 1, 4096));
  const double lambda = cli.get_double("lambda");
  const std::uint64_t seed = cli.get_uint64("seed");
  const bool smoke = cli.get_bool("smoke");
  bool verify = cli.get_bool("verify") || smoke;
  const bool checkpointing = cli.get_bool("checkpoint") || smoke;
  const bool comparing = cli.get_bool("compare") || smoke;
  const bool compressing = cli.get_bool("compress") || smoke;
  EventLogFormat log_format = EventLogFormat::kRaw;
  try {
    log_format = parse_event_log_format(cli.get_string("log-format"));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
  std::vector<int> thread_counts;
  for (const double t : cli.get_double_list("threads")) {
    thread_counts.push_back(static_cast<int>(t));
  }
  std::vector<double> zipf_values;
  if (!cli.get_string("zipf").empty()) {
    zipf_values = cli.get_double_list("zipf");
  }
  if (smoke) {
    min_objects = 2000;
    max_objects = 2000;
    events = 200000;
    thread_counts = {1, 4};
  }
  if (min_objects > max_objects || thread_counts.empty()) {
    std::cerr << "error: need --min-objects <= --objects and a non-empty "
                 "--threads list\n";
    return EXIT_FAILURE;
  }

  std::string policy_spec = cli.get_string("policy");
  if (policy_spec.empty()) {
    policy_spec = "drwp(alpha=" + cli.get_string("alpha") + ")";
  }
  std::string predictor_spec = cli.get_string("predictor");
  if (predictor_spec.empty()) predictor_spec = "last_gap";

  SystemConfig config;
  config.num_servers = servers;
  config.transfer_cost = lambda;

  // Fail on a bad spec before generating gigabytes of workload; also
  // canonicalizes the strings used in reports and JSON.
  try {
    ComponentRegistry& registry = ComponentRegistry::instance();
    policy_spec = registry.canonical_string(ComponentKind::kPolicy,
                                            policy_spec);
    predictor_spec = registry.canonical_string(ComponentKind::kPredictor,
                                               predictor_spec);
    EngineBuilder probe;
    probe.config(config);
    probe.policy(policy_spec).predictor(predictor_spec);
  } catch (const SpecError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "components: " << policy_spec << " x " << predictor_spec
            << "\n";

  // The grid the ROADMAP asks for: adaptive DRWP and ensemble
  // predictors wired through the registry, against the sweep's own
  // combination and the prediction-free baseline.
  std::vector<ExperimentSpec> grid;
  if (comparing) {
    const std::string alpha_arg = "(alpha=" + cli.get_string("alpha") + ")";
    grid.push_back(ExperimentSpec{policy_spec, predictor_spec});
    grid.push_back(ExperimentSpec{"adaptive" + alpha_arg, "last_gap"});
    grid.push_back(ExperimentSpec{
        "adaptive" + alpha_arg, "ensemble(last_gap,history(ewma=0.3))"});
    grid.push_back(ExperimentSpec{
        "drwp" + alpha_arg, "ensemble(last_gap,history(ewma=0.3))"});
    grid.push_back(ExperimentSpec{"drwp" + alpha_arg, "history(ewma=0.3)"});
    grid.push_back(ExperimentSpec{"conventional", "fixed(within=true)"});
  }

  Table table({"objects", "events", "threads", "used", "events/s",
               "ingest_s", "finish_s", "steals", "cost", "ratio",
               "identical"});
  std::vector<RowResult> rows;
  std::vector<ComparisonResult> comparison_rows;
  std::vector<CheckpointResult> checkpoint_rows;
  std::vector<ZipfResult> zipf_rows;
  std::optional<CompressionResult> compression;
  bool all_identical = true;
  // Pipeline stage breakdown of the last sweep serve (largest log,
  // last thread count) — where the serve's wall time actually went.
  EngineStats stage_stats;
  bool have_stage_stats = false;

  for (std::size_t objects = min_objects;;) {
    // One log per object count; every thread count serves the same file.
    StreamWorkloadConfig workload;
    workload.num_objects = objects;
    workload.num_servers = servers;
    workload.rate = static_cast<double>(objects) / 64.0;
    workload.max_events = events;
    const std::string log_path =
        (std::filesystem::temp_directory_path() /
         ("bench_engine_" + std::to_string(objects) + ".evlog"))
            .string();
    std::cerr << "generating " << events << " events over " << objects
              << " objects -> " << log_path << " ("
              << event_log_format_name(log_format) << ")\n";
    generate_event_log(workload, seed, log_path, log_format);

    EngineMetrics last_metrics;
    EngineOptions last_options;
    for (const int threads : thread_counts) {
      EngineOptions options;
      options.num_shards = shards;
      options.num_threads = threads;
      options.base_seed = seed;
      options.compress_checkpoints = cli.get_bool("compress");

      EventLogReader reader(log_path);
      auto engine = make_builder(config, options, policy_spec,
                                 predictor_spec)
                        .build();
      const EngineMetrics metrics = engine->serve(reader, batch);
      const EngineStats& stats = engine->stats();
      last_metrics = metrics;
      last_options = options;
      stage_stats = stats;
      have_stage_stats = true;

      RowResult row;
      row.objects = objects;
      row.events = stats.events_ingested;
      row.threads_requested = threads;
      row.threads_used = stats.threads_used;
      row.ingest_seconds = stats.ingest_seconds;
      row.finish_seconds = stats.finish_seconds;
      const double wall = stats.ingest_seconds + stats.finish_seconds;
      row.events_per_sec =
          wall > 0.0 ? static_cast<double>(row.events) / wall : 0.0;
      row.steals = stats.steals;
      row.online_cost = metrics.online_cost;
      row.ratio = metrics.ratio();
      if (verify) {
        row.verified = true;
        row.identical = matches_serial(log_path, config, policy_spec,
                                       predictor_spec, seed, metrics);
        all_identical = all_identical && row.identical;
      }
      rows.push_back(row);

      table.add_row({Table::cell(row.objects), Table::cell(row.events),
                     Table::cell(row.threads_requested),
                     Table::cell(row.threads_used),
                     Table::cell(row.events_per_sec, 0),
                     Table::cell(row.ingest_seconds, 3),
                     Table::cell(row.finish_seconds, 3),
                     Table::cell(row.steals),
                     Table::cell(row.online_cost, 1),
                     Table::cell(row.ratio, 4),
                     row.verified ? (row.identical ? "yes" : "NO") : "-"});
    }

    // Comparison grid runs once, on the smallest log (cost scales with
    // the grid, not the sweep). Its first point is the main sweep's own
    // combination, so its checkpoint measurement doubles as that log's
    // checkpoint row — no duplicate half-log serve.
    const bool grid_here = objects == min_objects && !grid.empty();
    if (grid_here) {
      for (const ExperimentSpec& point : grid) {
        const EngineBuilder builder = make_builder(
            config, last_options, point.policy, point.predictor);
        const bool is_default = builder.policy_spec() == policy_spec &&
                                builder.predictor_spec() == predictor_spec;
        EventLogReader reader(log_path);
        auto engine = builder.build();
        const EngineMetrics metrics = engine->serve(reader, batch);
        const EngineStats& stats = engine->stats();
        ComparisonResult comparison;
        comparison.policy = builder.policy_spec();
        comparison.predictor = builder.predictor_spec();
        comparison.events = stats.events_ingested;
        const double wall = stats.ingest_seconds + stats.finish_seconds;
        comparison.events_per_sec =
            wall > 0.0 ? static_cast<double>(comparison.events) / wall
                       : 0.0;
        comparison.online_cost = metrics.online_cost;
        comparison.ratio = metrics.ratio();
        if (verify) {
          comparison.verified = true;
          // The main sweep already ran the serial reference for its own
          // combination on this log — reuse that verdict.
          comparison.identical =
              is_default ? rows.back().identical
                         : matches_serial(log_path, config, point.policy,
                                          point.predictor, seed, metrics);
          all_identical = all_identical && comparison.identical;
        }
        if (checkpointing) {
          // Engine-level snapshot coverage for the non-default wirings:
          // every grid point must resume bit-identically.
          const CheckpointResult ck = measure_checkpoint(
              log_path, config, last_options, point.policy,
              point.predictor, metrics);
          all_identical = all_identical && ck.identical;
          comparison.identical = comparison.identical && ck.identical;
          checkpoint_rows.push_back(ck);
        }
        comparison_rows.push_back(comparison);
      }
    } else if (checkpointing) {
      const CheckpointResult ck = measure_checkpoint(
          log_path, config, last_options, policy_spec, predictor_spec,
          last_metrics);
      all_identical = all_identical && ck.identical;
      checkpoint_rows.push_back(ck);
    }

    // Wire-format trade on the smallest log: the compression section's
    // transcode needs a raw source, so a compressed sweep first decodes
    // back to a raw twin.
    if (objects == min_objects && compressing) {
      std::string raw_path = log_path;
      if (log_format != EventLogFormat::kRaw) {
        raw_path = log_path + ".raw";
        event_log_transcode(log_path, raw_path, EventLogFormat::kRaw);
      }
      std::cerr << "measuring wire-format trade on " << raw_path << "\n";
      compression = measure_compression(raw_path, config, last_options,
                                        policy_spec, predictor_spec, batch,
                                        cli.get_bool("keep-logs"));
      all_identical = all_identical && compression->identical;
      if (raw_path != log_path && !cli.get_bool("keep-logs")) {
        std::error_code ec;
        std::filesystem::remove(raw_path, ec);
      }
    }

    if (!cli.get_bool("keep-logs")) {
      std::error_code ec;
      std::filesystem::remove(log_path, ec);
    }
    if (objects >= max_objects) break;
    objects = std::min(objects * 10, max_objects);
  }

  // Skew sweep: same event budget, increasingly hot objects; reports
  // how unevenly events land across shards (the load-balance risk of
  // popularity skew).
  for (const double zipf_s : zipf_values) {
    StreamWorkloadConfig workload;
    workload.num_objects = min_objects;
    workload.num_servers = servers;
    workload.rate = static_cast<double>(min_objects) / 64.0;
    workload.max_events = events;
    workload.object_zipf_s = zipf_s;
    std::ostringstream name;
    name << "bench_engine_zipf_" << zipf_s << ".evlog";
    const std::string log_path =
        (std::filesystem::temp_directory_path() / name.str()).string();
    std::cerr << "generating zipf s=" << zipf_s << " log -> " << log_path
              << "\n";
    generate_event_log(workload, seed + 1, log_path);
    EngineOptions options;
    options.num_shards = shards;
    options.num_threads = thread_counts.back();
    options.base_seed = seed;
    EventLogReader reader(log_path);
    auto engine =
        make_builder(config, options, policy_spec, predictor_spec).build();
    const EngineMetrics metrics = engine->serve(reader, batch);
    zipf_rows.push_back(shard_spread(zipf_s, metrics));
    if (!cli.get_bool("keep-logs")) {
      std::error_code ec;
      std::filesystem::remove(log_path, ec);
    }
  }

  std::cout << table.str() << "\n";

  if (!comparison_rows.empty()) {
    Table cmp_table({"policy", "predictor", "events/s", "cost", "ratio",
                     "identical"});
    for (const ComparisonResult& row : comparison_rows) {
      cmp_table.add_row(
          {row.policy, row.predictor, Table::cell(row.events_per_sec, 0),
           Table::cell(row.online_cost, 1), Table::cell(row.ratio, 4),
           row.verified ? (row.identical ? "yes" : "NO") : "-"});
    }
    std::cout << cmp_table.str() << "\n";
  }

  if (!checkpoint_rows.empty()) {
    Table ck_table({"policy", "objects", "ckpt@events", "bytes", "write_s",
                    "write_MB/s", "restore_s", "restore_MB/s", "specless_s",
                    "identical"});
    for (const CheckpointResult& ck : checkpoint_rows) {
      const double mb = static_cast<double>(ck.bytes) / (1024.0 * 1024.0);
      ck_table.add_row(
          {ck.policy, Table::cell(ck.objects), Table::cell(ck.at_events),
           Table::cell(ck.bytes),
           Table::cell(ck.write_seconds, 3),
           Table::cell(ck.write_seconds > 0.0 ? mb / ck.write_seconds : 0.0,
                       1),
           Table::cell(ck.restore_seconds, 3),
           Table::cell(
               ck.restore_seconds > 0.0 ? mb / ck.restore_seconds : 0.0, 1),
           Table::cell(ck.specless_restore_seconds, 3),
           ck.identical ? "yes" : "NO"});
    }
    std::cout << ck_table.str() << "\n";
  }

  if (compression) {
    Table z_table({"format", "bytes", "bytes/event", "encode_MB/s",
                   "decode_MB/s", "serve_events/s", "identical"});
    z_table.add_row({"raw", Table::cell(compression->raw_bytes),
                     Table::cell(compression->raw_bytes_per_event(), 2), "-",
                     "-", Table::cell(compression->raw_events_per_sec, 0),
                     "-"});
    z_table.add_row(
        {"compressed", Table::cell(compression->compressed_bytes),
         Table::cell(compression->compressed_bytes_per_event(), 2),
         Table::cell(compression->encode_mb_per_sec(), 1),
         Table::cell(compression->decode_mb_per_sec(), 1),
         Table::cell(compression->compressed_events_per_sec, 0),
         compression->identical ? "yes" : "NO"});
    std::cout << z_table.str();
    std::cout << "compression: " << compression->ratio()
              << "x smaller than raw\n\n";
  }

  if (have_stage_stats) {
    const double wall = stage_stats.source_wait_seconds +
                        stage_stats.ingest_seconds +
                        stage_stats.finish_seconds;
    Table st_table({"stage", "seconds", "share"});
    const auto stage_row = [&](const char* name, double s) {
      st_table.add_row({name, Table::cell(s, 3),
                        Table::cell(wall > 0.0 ? s / wall : 0.0, 3)});
    };
    stage_row("source_wait", stage_stats.source_wait_seconds);
    stage_row("route", stage_stats.route_seconds);
    stage_row("execute", stage_stats.execute_seconds);
    stage_row("reduce", stage_stats.finish_seconds);
    stage_row("checkpoint_write", stage_stats.checkpoint_seconds);
    std::cout << st_table.str() << "\n";
  }

  if (!zipf_rows.empty()) {
    Table z_table({"zipf_s", "objects", "events", "shards", "min", "max",
                   "mean", "stddev", "max/mean"});
    for (const ZipfResult& z : zipf_rows) {
      z_table.add_row({Table::cell(z.zipf_s, 2), Table::cell(z.objects),
                       Table::cell(z.events),
                       Table::cell(static_cast<std::uint64_t>(z.shards)),
                       Table::cell(z.shard_events_min),
                       Table::cell(z.shard_events_max),
                       Table::cell(z.shard_events_mean, 1),
                       Table::cell(z.shard_events_stddev, 1),
                       Table::cell(z.spread, 3)});
    }
    std::cout << z_table.str() << "\n";
  }

  JsonWriter json;
  json.begin_object();
  json.key("bench").value("bench_engine");
  json.key("git_describe").value(REPL_GIT_DESCRIBE);
  json.key("smoke").value(smoke);
  json.key("servers").value(servers);
  json.key("shards").value(static_cast<std::uint64_t>(shards));
  json.key("lambda").value(lambda);
  json.key("policy").value(policy_spec);
  json.key("predictor").value(predictor_spec);
  json.key("rows").begin_array();
  for (const RowResult& row : rows) {
    json.begin_object();
    json.key("objects").value(row.objects);
    json.key("events").value(row.events);
    json.key("threads").value(row.threads_requested);
    json.key("threads_used").value(row.threads_used);
    json.key("events_per_second").value(row.events_per_sec);
    json.key("ingest_seconds").value(row.ingest_seconds);
    json.key("finish_seconds").value(row.finish_seconds);
    json.key("steals").value(row.steals);
    json.key("online_cost").value(row.online_cost);
    json.key("ratio").value(row.ratio);
    json.key("verified").value(row.verified);
    json.key("identical").value(row.identical);
    json.end_object();
  }
  json.end_array();
  json.key("comparison").begin_array();
  for (const ComparisonResult& row : comparison_rows) {
    json.begin_object();
    json.key("policy").value(row.policy);
    json.key("predictor").value(row.predictor);
    json.key("events").value(row.events);
    json.key("events_per_second").value(row.events_per_sec);
    json.key("online_cost").value(row.online_cost);
    json.key("ratio").value(row.ratio);
    json.key("verified").value(row.verified);
    json.key("identical").value(row.identical);
    json.end_object();
  }
  json.end_array();
  json.key("checkpoints").begin_array();
  for (const CheckpointResult& ck : checkpoint_rows) {
    json.begin_object();
    json.key("policy").value(ck.policy);
    json.key("objects").value(ck.objects);
    json.key("at_events").value(ck.at_events);
    json.key("bytes").value(ck.bytes);
    json.key("write_seconds").value(ck.write_seconds);
    json.key("restore_seconds").value(ck.restore_seconds);
    json.key("specless_restore_seconds").value(ck.specless_restore_seconds);
    json.key("identical").value(ck.identical);
    json.end_object();
  }
  json.end_array();
  if (compression) {
    json.key("compression").begin_object();
    json.key("events").value(compression->events);
    json.key("raw_bytes").value(compression->raw_bytes);
    json.key("compressed_bytes").value(compression->compressed_bytes);
    json.key("raw_bytes_per_event").value(compression->raw_bytes_per_event());
    json.key("compressed_bytes_per_event")
        .value(compression->compressed_bytes_per_event());
    json.key("ratio").value(compression->ratio());
    json.key("encode_seconds").value(compression->encode_seconds);
    json.key("decode_seconds").value(compression->decode_seconds);
    json.key("encode_mb_per_second").value(compression->encode_mb_per_sec());
    json.key("decode_mb_per_second").value(compression->decode_mb_per_sec());
    json.key("raw_serve_events_per_second")
        .value(compression->raw_events_per_sec);
    json.key("compressed_serve_events_per_second")
        .value(compression->compressed_events_per_sec);
    json.key("identical").value(compression->identical);
    json.end_object();
  }
  if (have_stage_stats) {
    // Where the last sweep serve's wall time went, per pipeline stage.
    // route + execute == ingest_seconds; checkpoint_write overlaps the
    // serve loop, so its share is informational, not additive.
    const double wall = stage_stats.source_wait_seconds +
                        stage_stats.ingest_seconds +
                        stage_stats.finish_seconds;
    json.key("stage_timings").begin_object();
    json.key("wall_seconds").value(wall);
    const auto stage = [&json, wall](const char* name, double s) {
      json.key(name).begin_object();
      json.key("seconds").value(s);
      json.key("share").value(wall > 0.0 ? s / wall : 0.0);
      json.end_object();
    };
    stage("source_wait", stage_stats.source_wait_seconds);
    stage("route", stage_stats.route_seconds);
    stage("execute", stage_stats.execute_seconds);
    stage("reduce", stage_stats.finish_seconds);
    stage("checkpoint_write", stage_stats.checkpoint_seconds);
    json.end_object();
  }
  json.key("zipf_sweep").begin_array();
  for (const ZipfResult& z : zipf_rows) {
    json.begin_object();
    json.key("zipf_s").value(z.zipf_s);
    json.key("objects").value(z.objects);
    json.key("events").value(z.events);
    json.key("shards").value(static_cast<std::uint64_t>(z.shards));
    json.key("shard_events_min").value(z.shard_events_min);
    json.key("shard_events_max").value(z.shard_events_max);
    json.key("shard_events_mean").value(z.shard_events_mean);
    json.key("shard_events_stddev").value(z.shard_events_stddev);
    json.key("spread").value(z.spread);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  const std::string json_path = cli.get_string("json");
  std::ofstream out(json_path);
  out << json.str() << "\n";
  out.flush();
  if (!out) {
    std::cerr << "error: failed to write " << json_path << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "wrote " << json_path << "\n";

  if (!all_identical) {
    std::cerr << "FAIL: engine aggregates diverged (serial-sweep parity, "
                 "checkpoint resume parity, or wire-format parity)\n";
    return EXIT_FAILURE;
  }
  // Size-regression gate: the dense-id smoke workload must stay well
  // under the raw 20 bytes/event — a coding change that bloats the
  // compressed format fails CI here.
  if (smoke && compression &&
      compression->compressed_bytes_per_event() > 12.0) {
    std::cerr << "FAIL: compressed format spent "
              << compression->compressed_bytes_per_event()
              << " bytes/event on the dense-id smoke workload (cap: 12)\n";
    return EXIT_FAILURE;
  }
  if (verify) {
    std::cout << "engine aggregates bit-identical to the serial "
                 "per-object sweep (every spec combination)\n";
  }
  if (checkpointing) {
    std::cout << "checkpoint resume aggregates bit-identical to the "
                 "uninterrupted serve\n";
  }
  return EXIT_SUCCESS;
}
