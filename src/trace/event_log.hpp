// Binary event-log format for interleaved multi-object request streams.
//
// A log is one globally time-ordered sequence of (time, object, server)
// events — the online interface the streaming engine serves. The format
// is designed for multi-GB logs: fixed-width little-endian records behind
// a small header, written and read through buffered streams so a log
// never needs to reside in memory.
//
// Layout (all integers little-endian):
//
//   offset  size  field
//   0       8     magic      "REPLELOG"
//   8       4     version    currently 1
//   12      4     num_servers
//   16      8     num_objects   (max object id + 1; 0 while streaming)
//   24      8     num_events    (patched on close; kUnknownCount while
//                                streaming, e.g. after a crash)
//   32      --    records, 20 bytes each:
//                   0   8   time    IEEE-754 binary64
//                   8   8   object  u64
//                   16  4   server  u32
//
// Readers reject bad magic / unsupported versions, and detect truncation
// both against the header count and against partial trailing records.
// A text twin ("time,object,server" CSV) is provided for interchange and
// debugging; conversions stream row by row.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

namespace repl {

/// One interleaved request: object `object` is accessed at `server` at
/// `time`.
struct LogEvent {
  double time = 0.0;
  std::uint64_t object = 0;
  std::uint32_t server = 0;

  friend bool operator==(const LogEvent&, const LogEvent&) = default;
};

/// Rolling, order-sensitive hash over an event stream: chain every event
/// through `event_stream_hash` starting from kEventStreamHashSeed. The
/// engine maintains this hash over ingested events and records it in
/// checkpoints; resuming cross-checks the log prefix against it, so a
/// snapshot restored against the wrong log fails with a diagnostic
/// instead of silently producing garbage aggregates.
inline constexpr std::uint64_t kEventStreamHashSeed =
    0x5245504c48415348ULL;  // "REPLHASH"

std::uint64_t event_stream_hash(std::uint64_t hash, const LogEvent& event);

struct EventLogHeader {
  static constexpr std::uint64_t kMagic = 0x474f4c454c504552ULL;  // "REPLELOG"
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::uint64_t kUnknownCount = ~std::uint64_t{0};
  static constexpr std::size_t kSize = 32;      // bytes on disk
  static constexpr std::size_t kRecordSize = 20;

  std::uint32_t version = kVersion;
  std::uint32_t num_servers = 0;
  std::uint64_t num_objects = 0;
  std::uint64_t num_events = kUnknownCount;
};

/// Streaming writer. Events must arrive in non-decreasing time order
/// (ties across objects are fine; per-object ordering is the consumer's
/// concern). The event count is patched into the header on close().
class EventLogWriter {
 public:
  /// Opens `path` for writing and emits the header with an unknown event
  /// count. `num_objects` may be 0 ("unknown"); close() raises it to
  /// max(object id)+1 observed if so. Throws std::runtime_error when the
  /// file cannot be opened.
  EventLogWriter(const std::string& path, int num_servers,
                 std::uint64_t num_objects = 0);
  ~EventLogWriter();

  EventLogWriter(const EventLogWriter&) = delete;
  EventLogWriter& operator=(const EventLogWriter&) = delete;

  void write(const LogEvent& event);
  void write(double time, std::uint64_t object, std::uint32_t server) {
    write(LogEvent{time, object, server});
  }

  std::uint64_t events_written() const { return count_; }

  /// Flushes the buffer, patches the header counts, and closes the file.
  /// Throws std::runtime_error on I/O failure. The destructor calls this
  /// too but swallows errors; call explicitly when failure matters.
  void close();

 private:
  void flush_buffer();

  std::ofstream out_;
  std::string path_;
  std::vector<unsigned char> buffer_;
  std::uint32_t num_servers_ = 0;
  std::uint64_t num_objects_ = 0;
  std::uint64_t max_object_ = 0;
  std::uint64_t count_ = 0;
  double last_time_ = -std::numeric_limits<double>::infinity();
  bool open_ = false;
};

/// Streaming reader. Validates the header on open; next()/read_batch()
/// deliver events in file order and throw std::runtime_error on
/// truncation (fewer events than the header promises, or a partial
/// trailing record when the count is unknown).
class EventLogReader {
 public:
  explicit EventLogReader(const std::string& path);

  const EventLogHeader& header() const { return header_; }
  int num_servers() const { return static_cast<int>(header_.num_servers); }

  /// Events delivered so far.
  std::uint64_t events_read() const { return delivered_; }

  /// Reads the next event into `event`; returns false at a clean
  /// end-of-log.
  bool next(LogEvent& event);

  /// Reads up to `max_events` into `out` (appended; `out` is cleared
  /// first). Returns the number read; 0 at a clean end-of-log.
  std::size_t read_batch(std::vector<LogEvent>& out, std::size_t max_events);

  /// Skips forward over `count` events without decoding them — records
  /// are fixed-width, so this is a seek, not a scan. Used to resume a
  /// serve from a checkpoint's event offset. Rejects skips past the
  /// header's event count when it is known; for streaming logs (unknown
  /// count) an over-skip surfaces as a truncation error or early EOF on
  /// the next read.
  void skip_events(std::uint64_t count);

  /// The verified twin of skip_events: reads the next `count` events and
  /// chains them through event_stream_hash starting from `hash`. Used by
  /// the engine's resume path to cross-check a snapshot's log binding.
  /// Throws if the log ends before `count` events (wrong or truncated
  /// log).
  std::uint64_t hash_events(std::uint64_t count, std::uint64_t hash);

 private:
  void refill();

  std::ifstream in_;
  std::string path_;
  EventLogHeader header_;
  std::vector<unsigned char> buffer_;
  std::size_t buffer_pos_ = 0;   // bytes consumed from buffer_
  std::size_t buffer_len_ = 0;   // valid bytes in buffer_
  std::uint64_t delivered_ = 0;
  bool eof_ = false;
};

/// Streams a binary log into its CSV twin ("time,object,server" with
/// header row). Returns the number of events converted.
std::uint64_t event_log_to_csv(const std::string& log_path,
                               const std::string& csv_path);

/// Streams a "time,object,server" CSV into a binary log. `num_servers` of
/// 0 means "infer as max(server)+1" — which requires a second pass, so
/// the CSV is read twice; pass the true count to stream single-pass.
/// Returns the number of events converted.
std::uint64_t event_log_from_csv(const std::string& csv_path,
                                 const std::string& log_path,
                                 int num_servers = 0);

}  // namespace repl
