#include "analysis/partition.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace repl {

PartitionReport partition_sequence(const Trace& trace,
                                   const SimulationResult& result,
                                   const OfflinePlan& plan) {
  REPL_REQUIRE(!trace.empty());
  REPL_REQUIRE(plan.states.size() == trace.size());
  const SystemConfig& config = result.config;
  const double lambda = config.transfer_cost;

  std::vector<int> server_to_bit(
      static_cast<std::size_t>(config.num_servers), -1);
  for (std::size_t b = 0; b < plan.active_servers.size(); ++b) {
    server_to_bit[static_cast<std::size_t>(plan.active_servers[b])] =
        static_cast<int>(b);
  }
  const auto weight = [&](std::uint32_t s) {
    double w = 0.0;
    for (std::size_t b = 0; b < plan.active_servers.size(); ++b) {
      if (s & (std::uint32_t{1} << b)) {
        w += config.storage_rate(plan.active_servers[b]);
      }
    }
    return w;
  };

  // A request r_i is a partition boundary when no server other than
  // s[r_i] holds a copy across t_i, i.e. appears in both the holder set
  // of the gap ending at t_i and the one starting there. The final
  // request is a boundary by the paper's convention.
  const AllocationReport allocation = allocate_costs(result, trace);
  PartitionReport report;
  Partition current;
  current.first_request = 0;
  double prev_time = 0.0;

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::uint32_t state = plan.states[i];
    const std::uint32_t next_state =
        (i + 1 < trace.size()) ? plan.states[i + 1] : plan.final_state;
    const int abit = server_to_bit[
        static_cast<std::size_t>(trace[i].server)];
    REPL_CHECK(abit >= 0);
    const std::uint32_t amask = std::uint32_t{1} << abit;

    // Offline cost attributed to request i: the gap storage before it,
    // its serve cost and any copies bought at it (evaluate_plan's
    // accounting, attributed per request).
    double opt_here = (trace[i].time - prev_time) * weight(state);
    if (!(state & amask)) opt_here += lambda;
    opt_here += lambda * static_cast<double>(
                             std::popcount(next_state & ~(state | amask)));
    if (i == 0) {
      // Copies bought at time 0 alongside the dummy request.
      const int init_bit = server_to_bit[
          static_cast<std::size_t>(config.initial_server)];
      REPL_CHECK(init_bit >= 0);
      opt_here += lambda * static_cast<double>(std::popcount(
                               state & ~(std::uint32_t{1} << init_bit)));
    }
    prev_time = trace[i].time;

    current.online_cost += allocation.allocated[i];
    current.opt_cost += opt_here;
    current.last_request = i;

    const bool crossing_elsewhere =
        (state & next_state & ~amask) != 0 && i + 1 < trace.size();
    if (!crossing_elsewhere) {
      report.partitions.push_back(current);
      current = Partition{};
      current.first_request = i + 1;
    }
  }

  for (const Partition& partition : report.partitions) {
    report.total_online += partition.online_cost;
    report.total_opt += partition.opt_cost;
    report.max_ratio = std::max(report.max_ratio, partition.ratio());
  }
  return report;
}

}  // namespace repl
