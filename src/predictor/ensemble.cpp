#include "predictor/ensemble.hpp"

#include <sstream>

#include "util/check.hpp"

namespace repl {

EnsemblePredictor::EnsemblePredictor(
    std::vector<std::shared_ptr<Predictor>> experts, Config config)
    : experts_(std::move(experts)), config_(config) {
  REPL_REQUIRE_MSG(!experts_.empty(), "ensemble needs at least one expert");
  for (const auto& expert : experts_) REPL_REQUIRE(expert != nullptr);
  REPL_REQUIRE(config.penalty > 0.0 && config.penalty <= 1.0);
  weights_.assign(experts_.size(), 1.0);
}

void EnsemblePredictor::reset() {
  for (auto& expert : experts_) expert->reset();
  weights_.assign(experts_.size(), 1.0);
  pending_.clear();
}

Prediction EnsemblePredictor::predict(const PredictionQuery& query) {
  if (pending_.empty()) {
    // Sized lazily: server ids are discovered from queries.
    pending_.resize(16);
  }
  if (static_cast<std::size_t>(query.server) >= pending_.size()) {
    pending_.resize(static_cast<std::size_t>(query.server) + 1);
  }

  // Score the pending votes for this server: the gap since the previous
  // prediction is now known.
  PendingVote& pending = pending_[static_cast<std::size_t>(query.server)];
  if (config_.penalty < 1.0 && pending.time >= 0.0) {
    const bool truth_within = (query.time - pending.time) <= query.lambda;
    for (std::size_t e = 0; e < experts_.size(); ++e) {
      if (pending.votes[e] != truth_within) {
        weights_[e] *= config_.penalty;
      }
    }
    // Keep weights away from total collapse (renormalize to max 1).
    double max_weight = 0.0;
    for (double w : weights_) max_weight = std::max(max_weight, w);
    REPL_CHECK(max_weight > 0.0);
    for (double& w : weights_) w /= max_weight;
  }

  // Collect fresh votes and take the weighted majority.
  std::vector<bool> votes(experts_.size());
  double within_weight = 0.0, beyond_weight = 0.0;
  for (std::size_t e = 0; e < experts_.size(); ++e) {
    const bool vote = experts_[e]->predict(query).within_lambda;
    votes[e] = vote;
    (vote ? within_weight : beyond_weight) += weights_[e];
  }
  pending.time = query.time;
  pending.votes = std::move(votes);
  return Prediction{within_weight > beyond_weight};
}

std::string EnsemblePredictor::name() const {
  std::ostringstream os;
  os << "ensemble(" << experts_.size() << " experts";
  if (config_.penalty < 1.0) os << ", penalty=" << config_.penalty;
  os << ")";
  return os.str();
}

}  // namespace repl
