#include "codec/block.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "codec/crc32.hpp"
#include "codec/endian.hpp"

namespace repl {

void encode_block_frame(unsigned char* out, std::uint32_t aux,
                        const unsigned char* payload, std::size_t size) {
  store_le32(out, static_cast<std::uint32_t>(size));
  store_le32(out + 4, aux);
  store_le32(out + 8, crc32c(payload, size));
  store_le32(out + 12, crc32c(out, 12));  // covers len, aux, body_crc
}

BlockFrameStatus parse_block_frame(const unsigned char* raw,
                                   BlockFrameHeader& frame,
                                   std::size_t max_body_bytes) {
  if (crc32c(raw, 12) != load_le32(raw + 12)) {
    return BlockFrameStatus::kBadFrameCrc;
  }
  frame.body_len = load_le32(raw);
  frame.aux = load_le32(raw + 4);
  frame.body_crc = load_le32(raw + 8);
  if (frame.body_len > max_body_bytes) {
    return BlockFrameStatus::kImplausibleLength;
  }
  return BlockFrameStatus::kOk;
}

bool verify_block_payload(const BlockFrameHeader& frame,
                          const unsigned char* payload, std::size_t size) {
  return size == frame.body_len && crc32c(payload, size) == frame.body_crc;
}

BlockWriter::BlockWriter(std::ostream& out, std::string name)
    : out_(out), name_(std::move(name)) {}

void BlockWriter::write_block(std::uint32_t aux, const unsigned char* payload,
                              std::size_t size) {
  if (size > kMaxBlockBytes) {
    throw std::runtime_error(name_ + ": block payload of " +
                             std::to_string(size) + " bytes exceeds the " +
                             std::to_string(kMaxBlockBytes) + "-byte cap");
  }
  unsigned char frame[kBlockFrameBytes];
  encode_block_frame(frame, aux, payload, size);
  out_.write(reinterpret_cast<const char*>(frame), kBlockFrameBytes);
  out_.write(reinterpret_cast<const char*>(payload),
             static_cast<std::streamsize>(size));
  if (!out_) {
    throw std::runtime_error(name_ + ": block write failed at block " +
                             std::to_string(blocks_));
  }
  ++blocks_;
}

BlockReader::BlockReader(std::istream& in, std::string name,
                         std::uint64_t base_offset)
    : in_(in), name_(std::move(name)), offset_(base_offset) {}

void BlockReader::fail(const std::string& what) const {
  throw std::runtime_error(name_ + ": " + what + " (block " +
                           std::to_string(blocks_) + ", byte offset " +
                           std::to_string(offset_) + ")");
}

bool BlockReader::next_frame(std::uint32_t& aux) {
  if (have_frame_) {
    aux = frame_[1];
    return true;
  }
  unsigned char raw[kBlockFrameBytes];
  in_.read(reinterpret_cast<char*>(raw), kBlockFrameBytes);
  const auto got = static_cast<std::size_t>(in_.gcount());
  if (in_.bad()) fail("read failed");
  if (got == 0) return false;  // clean EOF between blocks
  if (got != kBlockFrameBytes) fail("truncated block frame");
  // Verify the frame before anything steers by it: skip paths seek by
  // body_len and count items by aux without ever touching the payload.
  BlockFrameHeader frame;
  switch (parse_block_frame(raw, frame)) {
    case BlockFrameStatus::kBadFrameCrc:
      fail("frame CRC mismatch (corrupt block header)");
    case BlockFrameStatus::kImplausibleLength:
      fail("implausible block length " + std::to_string(load_le32(raw)));
    case BlockFrameStatus::kOk:
      break;
  }
  frame_[0] = frame.body_len;
  frame_[1] = frame.aux;
  frame_[2] = frame.body_crc;
  have_frame_ = true;
  aux = frame_[1];
  return true;
}

void BlockReader::read_payload(std::vector<unsigned char>& payload) {
  if (!have_frame_) fail("read_payload without a pending frame");
  payload.resize(frame_[0]);
  if (frame_[0] > 0) {
    in_.read(reinterpret_cast<char*>(payload.data()), frame_[0]);
    if (in_.gcount() != static_cast<std::streamsize>(frame_[0])) {
      fail("truncated block payload (" + std::to_string(in_.gcount()) +
           " of " + std::to_string(frame_[0]) + " bytes)");
    }
  }
  if (crc32c(payload.data(), payload.size()) != frame_[2]) {
    fail("CRC mismatch (corrupt block)");
  }
  offset_ += kBlockFrameBytes + frame_[0];
  ++blocks_;
  have_frame_ = false;
}

void BlockReader::skip_payload() {
  if (!have_frame_) fail("skip_payload without a pending frame");
  const std::uint64_t target = offset_ + kBlockFrameBytes + frame_[0];
  // A relative seek past EOF "succeeds" on common istream
  // implementations — nothing fails until the next read, which then
  // looks like a clean EOF between blocks. On a truncated final payload
  // that would silently shorten the log (and misposition a resume that
  // skipped over it). Measure the stream end and reject a skip the
  // bytes cannot cover; re-measure when the cached end looks too short,
  // so a log still being appended to is not falsely rejected.
  if (end_offset_ == kUnknownEnd || target > end_offset_) {
    const std::streampos here = in_.tellg();
    in_.seekg(0, std::ios::end);
    if (!in_) fail("seek failed while measuring stream end");
    end_offset_ = static_cast<std::uint64_t>(in_.tellg());
    in_.seekg(here);
    if (!in_) fail("seek failed while measuring stream end");
  }
  if (target > end_offset_) {
    fail("truncated block payload (" +
         std::to_string(end_offset_ - offset_ - kBlockFrameBytes) + " of " +
         std::to_string(frame_[0]) + " bytes before end of stream)");
  }
  in_.seekg(static_cast<std::streamoff>(frame_[0]), std::ios::cur);
  if (!in_) fail("seek past block payload failed");
  offset_ = target;
  ++blocks_;
  have_frame_ = false;
}

bool BlockReader::read_block(std::uint32_t& aux,
                             std::vector<unsigned char>& payload) {
  if (!next_frame(aux)) return false;
  read_payload(payload);
  return true;
}

bool BlockReader::skip_block(std::uint32_t& aux) {
  if (!next_frame(aux)) return false;
  skip_payload();
  return true;
}

}  // namespace repl
