// Tests for the naive reference policies.
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/naive.hpp"
#include "core/simulator.hpp"
#include "predictor/fixed.hpp"
#include "test_util.hpp"

namespace repl {
namespace {

using testing::make_config;

TEST(FullReplication, TransfersOncePerServerThenLocal) {
  const SystemConfig config = make_config(3, 5.0);
  const Trace trace(3,
                    {{1.0, 1}, {2.0, 2}, {3.0, 1}, {4.0, 2}, {5.0, 0}});
  FullReplicationPolicy policy;
  FixedPredictor ignored = always_beyond_predictor();
  const SimulationResult result =
      Simulator(config).run(policy, trace, ignored);
  EXPECT_EQ(result.num_transfers, 2u);  // first touch of s1 and s2
  EXPECT_EQ(result.num_local, 3u);
  // Storage: s0 [0,5] + s1 [1,5] + s2 [2,5] = 5 + 4 + 3.
  EXPECT_DOUBLE_EQ(result.storage_cost, 12.0);
}

TEST(StaticPolicy, AlwaysServesRemoteFromInitial) {
  const SystemConfig config = make_config(3, 5.0);
  const Trace trace(3, {{1.0, 1}, {2.0, 2}, {3.0, 1}, {4.0, 0}});
  StaticPolicy policy;
  FixedPredictor ignored = always_beyond_predictor();
  const SimulationResult result =
      Simulator(config).run(policy, trace, ignored);
  EXPECT_EQ(result.num_transfers, 3u);
  EXPECT_EQ(result.num_local, 1u);  // the request at the initial server
  EXPECT_DOUBLE_EQ(result.storage_cost, 4.0);  // one copy, [0, 4]
  EXPECT_EQ(policy.copy_count(), 1);
}

TEST(SingleCopyChase, MigratesToEveryRequester) {
  const SystemConfig config = make_config(3, 5.0);
  const Trace trace(3, {{1.0, 1}, {2.0, 2}, {3.0, 2}, {4.0, 0}});
  SingleCopyChasePolicy policy;
  FixedPredictor ignored = always_beyond_predictor();
  const SimulationResult result =
      Simulator(config).run(policy, trace, ignored);
  EXPECT_EQ(result.num_transfers, 3u);  // s1, s2, back to s0 (not for r3)
  EXPECT_EQ(result.num_local, 1u);      // the repeat at s2
  EXPECT_DOUBLE_EQ(result.storage_cost, 4.0);  // exactly one copy always
  EXPECT_EQ(policy.copy_count(), 1);
  EXPECT_TRUE(policy.holds(0));  // chased back to server 0 at t=4
}

TEST(NaivePolicies, CloneAndIntrospection) {
  const SystemConfig config = make_config(2, 5.0);
  FullReplicationPolicy policy;
  NullEventSink sink;
  policy.reset(config, Prediction{}, sink);
  EXPECT_TRUE(policy.holds(0));
  EXPECT_FALSE(policy.holds(1));
  EXPECT_TRUE(std::isinf(policy.next_transition_time()));
  auto clone = policy.clone();
  clone->on_request(1, 1.0, Prediction{}, sink);
  EXPECT_TRUE(clone->holds(1));
  EXPECT_FALSE(policy.holds(1));
}

}  // namespace
}  // namespace repl
