// Out-of-tree component registration: this file plays the role of the
// "single new .cpp" a plugin author writes — a policy and a predictor
// defined here, registered with the REPL_REGISTER_POLICY /
// REPL_REGISTER_PREDICTOR self-registration macros, and then exercised
// through the full spec pipeline (validation, canonicalization, engine
// construction, checkpoint spec recording) exactly like a built-in.
//
// This suite is its own test binary on purpose: the registrations mutate
// the process-wide registry, and spec_test pins the exact built-in
// component lists.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "core/drwp.hpp"
#include "core/policy.hpp"
#include "engine/engine.hpp"
#include "predictor/predictor.hpp"
#include "util/rng.hpp"

namespace repl {
namespace {

/// A minimal out-of-tree policy: DRWP behaviour under a plugin name,
/// with one tunable parameter to exercise the schema path.
class PluginPolicy : public DrwpPolicy {
 public:
  explicit PluginPolicy(double knob) : DrwpPolicy(1.0), knob_(knob) {}
  std::string name() const override { return "plugin_demo"; }
  double knob() const { return knob_; }

 private:
  double knob_;
};

class PluginPredictor : public Predictor {
 public:
  Prediction predict(const PredictionQuery&) override {
    return Prediction{true};
  }
  std::string name() const override { return "plugin_fixed"; }
};

}  // namespace

// Namespace scope: exactly how an external .cpp would self-register.
REPL_REGISTER_POLICY(
    plugin_demo,
    [] {
      ComponentInfo info;
      info.name = "plugin_demo";
      info.kind = ComponentKind::kPolicy;
      info.summary = "out-of-tree demo policy (plugin_test.cpp)";
      ParamInfo knob;
      knob.key = "knob";
      knob.type = ParamType::kDouble;
      knob.default_value = "1.5";
      knob.help = "demo parameter";
      knob.min_value = 0.0;
      info.params = {knob};
      info.example = "plugin_demo(knob=2)";
      return info;
    }(),
    [](const ComponentSpec& spec, const BuildContext&) -> PolicyPtr {
      const SpecParams params(spec,
                              ComponentRegistry::instance().info(
                                  ComponentKind::kPolicy, "plugin_demo"));
      return std::make_unique<PluginPolicy>(params.get_double("knob"));
    });

REPL_REGISTER_PREDICTOR(
    plugin_fixed,
    [] {
      ComponentInfo info;
      info.name = "plugin_fixed";
      info.kind = ComponentKind::kPredictor;
      info.summary = "out-of-tree demo predictor (plugin_test.cpp)";
      return info;
    }(),
    [](const ComponentSpec&, const BuildContext&) -> PredictorPtr {
      return std::make_unique<PluginPredictor>();
    });

namespace {

TEST(PluginRegistrationTest, MacroRegisteredComponentsAreDiscoverable) {
  ComponentRegistry& registry = ComponentRegistry::instance();
  const ComponentInfo* policy =
      registry.find(ComponentKind::kPolicy, "plugin_demo");
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->summary, "out-of-tree demo policy (plugin_test.cpp)");
  ASSERT_NE(registry.find(ComponentKind::kPredictor, "plugin_fixed"),
            nullptr);
  // Builtins are present too — plugin registration does not preempt the
  // registry's lazy builtin population.
  EXPECT_NE(registry.find(ComponentKind::kPolicy, "drwp"), nullptr);
}

TEST(PluginRegistrationTest, SpecPipelineTreatsPluginsAsFirstClass) {
  ComponentRegistry& registry = ComponentRegistry::instance();
  // Canonicalization fills the declared default in.
  EXPECT_EQ(registry.canonical_string(ComponentKind::kPolicy, "plugin_demo"),
            "plugin_demo(knob=1.5)");
  // Unknown parameters fail with the usual spec diagnostic.
  EXPECT_THROW(registry.canonical_string(ComponentKind::kPolicy,
                                         "plugin_demo(frob=1)"),
               SpecError);
  // Typed range validation applies (knob >= 0).
  EXPECT_THROW(registry.canonical_string(ComponentKind::kPolicy,
                                         "plugin_demo(knob=-1)"),
               SpecError);

  BuildContext ctx;
  ctx.config.num_servers = 4;
  const PolicyPtr built =
      registry.build_policy("plugin_demo(knob=2.5)", ctx);
  const auto* plugin = dynamic_cast<PluginPolicy*>(built.get());
  ASSERT_NE(plugin, nullptr);
  EXPECT_EQ(plugin->knob(), 2.5);
}

TEST(PluginRegistrationTest, EngineServesAndCheckpointsPluginSpecs) {
  SystemConfig config;
  config.num_servers = 4;
  config.transfer_cost = 6.0;
  EngineOptions options;
  options.num_shards = 4;
  options.num_threads = 1;
  EngineBuilder builder;
  builder.config(config).options(options);
  builder.policy("plugin_demo").predictor("plugin_fixed");
  EXPECT_EQ(builder.policy_spec(), "plugin_demo(knob=1.5)");

  auto engine = builder.build();
  Rng rng(3);
  std::vector<LogEvent> events;
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += rng.uniform(0.01, 1.0);
    events.push_back(LogEvent{t, rng.uniform_index(20),
                              static_cast<std::uint32_t>(
                                  rng.uniform_index(4))});
  }
  engine->ingest(events);
  EXPECT_EQ(engine->options().policy_spec, "plugin_demo(knob=1.5)");
  const EngineMetrics metrics = engine->finish();
  EXPECT_EQ(metrics.events, events.size());
  EXPECT_GT(metrics.online_cost, 0.0);
}

}  // namespace
}  // namespace repl
