// Cluster metrics federation: workers snapshot their MetricsRegistry,
// ship the samples to the coordinator over the control socket (the
// `metrics` control message, cluster/control.hpp), and the coordinator
// exposes one merged /metrics where every worker series carries a
// `partition` label next to the coordinator's own series.
//
// Two pieces live here:
//
//  * a compact binary codec for a vector<Sample> — the metrics message
//    body. The decoder treats its input as untrusted (it is a fuzzer
//    target via the cluster control stream): every length is bounded,
//    histogram ladders must be cumulative, and the byte count must come
//    out exact, with positioned diagnostics on anything else.
//
//  * FederatedMetrics — the coordinator-side cache of the latest
//    snapshot per partition. Merging is respawn-aware: counters are
//    clamped to the maximum ever seen per (partition, series), so a
//    worker that restarts from a checkpoint (its counters re-seeded at
//    the resume offset, possibly below the pre-kill value until it
//    catches up) can never make a federated counter go backwards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace repl::obs {

/// Decoder caps. A snapshot is a few dozen series in practice; these
/// bound a hostile peer, not a real one.
inline constexpr std::size_t kMaxSampleStringBytes = 1024;
inline constexpr std::size_t kMaxSampleLabels = 64;
inline constexpr std::size_t kMaxSampleBounds = 512;
inline constexpr std::size_t kMaxEncodedSamples = 65535;

/// Appends the binary encoding of `samples` to `out`. Throws
/// std::invalid_argument when a sample exceeds the decoder caps.
void encode_samples(const std::vector<Sample>& samples,
                    std::vector<unsigned char>& out);

/// Strict inverse of encode_samples: exactly `expected_count` samples
/// spanning exactly `size` bytes, every field validated. `what` names
/// the input in diagnostics. Throws std::runtime_error on violation.
std::vector<Sample> decode_samples(const unsigned char* data,
                                   std::size_t size,
                                   std::size_t expected_count,
                                   const std::string& what);

/// Sorts by (name, labels) — the order Prometheus exposition requires
/// and MetricsRegistry::collect() produces natively.
void sort_samples(std::vector<Sample>& samples);

class FederatedMetrics {
 public:
  /// Folds a worker snapshot in. New series are added, existing ones
  /// updated; counters take max(old, new) so respawns stay monotone.
  /// Series absent from `samples` are retained at their last value (a
  /// freshly respawned worker re-registers series lazily).
  void update(std::uint32_t partition, const std::vector<Sample>& samples);

  /// Every cached sample with a `partition` label spliced into its
  /// label set, sorted ready for exposition.
  std::vector<Sample> collect() const;

  /// Latest counter value of `name` (unlabeled series) for `partition`;
  /// 0 when unseen. Feeds derived cluster gauges.
  std::uint64_t counter_value(std::uint32_t partition,
                              const std::string& name) const;

  /// Partitions that have reported at least once.
  std::vector<std::uint32_t> partitions() const;

 private:
  mutable std::mutex mu_;
  /// partition -> series key (name + rendered labels) -> latest sample.
  std::map<std::uint32_t, std::map<std::string, Sample>> partitions_;
};

}  // namespace repl::obs
