// Streaming engine demo: synthesize an interleaved multi-object workload
// straight to a binary event log on disk, then serve it online through
// the sharded engine and print the aggregate cost/ratio metrics — the
// end-to-end "production" path (no per-object traces anywhere).
//
//   ./build/examples/engine_serve
//   ./build/examples/engine_serve --objects=100000 --arrivals=diurnal
//   ./build/examples/engine_serve --log=my.evlog   # serve an existing log
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>

#include "core/drwp.hpp"
#include "engine/engine.hpp"
#include "predictor/last_gap.hpp"
#include "trace/event_log.hpp"
#include "trace/stream_gen.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace repl;

int main(int argc, char** argv) {
  CliParser cli("engine_serve",
                "serve an interleaved multi-object event log online");
  cli.add_flag("log", "", "existing event log to serve (empty: generate)");
  cli.add_flag("objects", "50000", "objects to synthesize");
  cli.add_flag("events", "1000000", "events to synthesize");
  cli.add_flag("servers", "10", "servers in the system");
  cli.add_flag("arrivals", "poisson", "arrival process: poisson|pareto|diurnal");
  cli.add_flag("shards", "64", "object-table shards");
  cli.add_flag("threads", "0", "worker threads (0 = all hardware threads)");
  cli.add_flag("lambda", "10", "transfer cost λ");
  cli.add_flag("alpha", "0.3", "DRWP α");
  cli.add_flag("seed", "1", "workload seed");
  cli.add_bool_flag("keep-log", "keep the generated log on disk");
  if (!cli.parse(argc, argv)) return 0;

  const std::size_t objects = cli.get_size_t("objects", 1, 100000000);
  const std::size_t shards = cli.get_size_t("shards", 1, 1 << 20);
  const std::size_t events = cli.get_size_t("events", 1);
  int servers = static_cast<int>(cli.get_size_t("servers", 1, 4096));
  const double alpha = cli.get_double("alpha");

  std::string log_path = cli.get_string("log");
  bool generated = false;
  if (log_path.empty()) {
    StreamWorkloadConfig workload;
    workload.num_objects = objects;
    workload.num_servers = servers;
    workload.max_events = events;
    workload.rate = static_cast<double>(objects) / 64.0;
    const std::string arrivals = cli.get_string("arrivals");
    if (arrivals == "pareto") {
      workload.arrivals = StreamWorkloadConfig::Arrivals::kPareto;
    } else if (arrivals == "diurnal") {
      workload.arrivals = StreamWorkloadConfig::Arrivals::kDiurnal;
    } else if (arrivals != "poisson") {
      std::cerr << "error: unknown --arrivals " << arrivals << "\n";
      return EXIT_FAILURE;
    }
    log_path = (std::filesystem::temp_directory_path() /
                "engine_serve_demo.evlog")
                   .string();
    std::cout << "synthesizing " << events << " " << arrivals
              << " events over " << objects << " objects -> " << log_path
              << "\n";
    generate_event_log(workload, cli.get_uint64("seed"), log_path);
    generated = true;
  }

  EventLogReader reader(log_path);
  // An existing log knows its own server count; --servers only shapes
  // generated workloads.
  if (!generated) servers = reader.num_servers();

  SystemConfig config;
  config.num_servers = servers;
  config.transfer_cost = cli.get_double("lambda");

  EngineOptions options;
  options.num_shards = shards;
  options.num_threads = static_cast<int>(cli.get_size_t("threads", 0, 4096));

  std::cout << "serving " << log_path << " ("
            << (reader.header().num_events == EventLogHeader::kUnknownCount
                    ? std::string("?")
                    : std::to_string(reader.header().num_events))
            << " events, " << reader.header().num_objects << " objects, "
            << reader.num_servers() << " servers)\n";

  StreamingEngine engine(
      config, options,
      [alpha](const EngineObjectContext&) -> PolicyPtr {
        return std::make_unique<DrwpPolicy>(alpha);
      },
      [servers](const EngineObjectContext&) -> PredictorPtr {
        return std::make_unique<LastGapPredictor>(servers);
      });
  const EngineMetrics metrics = engine.serve(reader);
  const EngineStats& stats = engine.stats();
  const double wall = stats.ingest_seconds + stats.finish_seconds;

  Table table({"metric", "value"});
  table.add_row({"objects served", Table::cell(metrics.objects)});
  table.add_row({"events served", Table::cell(metrics.events)});
  table.add_row({"local serves", Table::cell(metrics.num_local)});
  table.add_row({"transfers", Table::cell(metrics.num_transfers)});
  table.add_row({"online cost", Table::cell(metrics.online_cost, 1)});
  table.add_row({"OPTL lower bound", Table::cell(metrics.lower_bound, 1)});
  table.add_row({"cost / OPTL", Table::cell(metrics.ratio(), 4)});
  table.add_row({"threads used", Table::cell(stats.threads_used)});
  table.add_row({"batches", Table::cell(stats.batches)});
  table.add_row({"steals", Table::cell(stats.steals)});
  table.add_row({"wall seconds", Table::cell(wall, 3)});
  table.add_row(
      {"events/sec",
       Table::cell(wall > 0.0 ? static_cast<double>(metrics.events) / wall
                              : 0.0,
                   0)});
  std::cout << table.str();

  // Shard balance summary: the busiest and emptiest shards.
  const EngineShardMetrics* busiest = nullptr;
  const EngineShardMetrics* lightest = nullptr;
  for (const EngineShardMetrics& shard : metrics.shards) {
    if (busiest == nullptr || shard.events > busiest->events) {
      busiest = &shard;
    }
    if (lightest == nullptr || shard.events < lightest->events) {
      lightest = &shard;
    }
  }
  if (busiest != nullptr && lightest != nullptr) {
    std::cout << "\nshard balance: busiest " << busiest->events
              << " events / " << busiest->objects << " objects, lightest "
              << lightest->events << " events / " << lightest->objects
              << " objects across " << metrics.shards.size() << " shards\n";
  }

  if (generated && !cli.get_bool("keep-log")) {
    std::error_code ec;
    std::filesystem::remove(log_path, ec);
  }
  return EXIT_SUCCESS;
}
