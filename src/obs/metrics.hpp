// Low-overhead metrics primitives + a process-wide registry.
//
// Hot-path contract: Counter::inc / Gauge::set / Histogram::observe are
// lock-free and never contend across threads — every instrument is built
// from cache-line-padded atomic cells indexed by a sticky per-thread slot,
// so two threads incrementing the same counter touch different lines.
// Reads (scrapes) sum the cells; because each cell is monotone for
// counters/histogram buckets, a later scrape can never observe a smaller
// value than an earlier one, and a histogram's total count is *derived*
// from its bucket cells, so count == sum(buckets) holds in every scrape
// no matter how hard writers race the reader ("no torn totals").
//
// The registry is get-or-create: asking twice for the same (name, labels)
// returns the same instrument; asking for the same series under a
// different type throws. Exposition (Prometheus text / JSON) renders from
// Registry::collect() snapshots — see obs/exposition.hpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace repl::obs {

/// Label set for one series. Kept sorted by key inside the registry so
/// {a=1,b=2} and {b=2,a=1} name the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

/// Number of padded cells per instrument. Threads hash onto cells with a
/// sticky thread-local slot; 16 cells keeps the common pools (engine
/// workers + net reader threads + scraper) collision-free in practice
/// while a scrape still only reads 16 lines.
inline constexpr std::size_t kMetricCells = 16;

/// The sticky cell slot for the calling thread.
std::size_t metric_cell_slot() noexcept;

/// Monotone counter. inc() is a relaxed fetch_add on this thread's cell.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t n = 1) noexcept {
    cells_[metric_cell_slot()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& cell : cells_) total += cell.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  Cell cells_[kMetricCells];
};

/// Point-in-time double value. set() wins over concurrent add()s only in
/// the sense of last-writer; gauges are for low-rate state, not hot paths.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept;
  void add(double delta) noexcept;
  double value() const noexcept;

 private:
  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket histogram with Prometheus semantics: `bounds` are the
/// inclusive upper edges of the finite buckets; everything above the last
/// bound lands in the implicit +Inf bucket. Cells are sharded like
/// Counter; the per-cell `sum` is a CAS-loop double add, acceptable
/// because observe() is called per batch/stage, not per event.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double x) noexcept;

  struct Snapshot {
    /// Cumulative counts per finite bound, then +Inf last; size = bounds+1.
    std::vector<std::uint64_t> cumulative;
    std::uint64_t count = 0;  ///< == cumulative.back(), by construction.
    double sum = 0.0;
  };
  Snapshot snapshot() const;

  /// Estimated q-quantile (q in [0,1]) via linear interpolation inside the
  /// selected bucket; returns the last finite bound for +Inf hits, 0 when
  /// empty. Good enough for stats lines, not for billing.
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }

  /// Default latency bounds, in seconds: 100us .. ~100s, x2 per bucket.
  static std::vector<double> default_latency_bounds();

 private:
  struct alignas(64) Cell {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;  // bounds+1 slots
    std::atomic<std::uint64_t> sum_bits{0};
  };

  std::vector<double> bounds_;
  Cell cells_[kMetricCells];
};

/// One collected series, ready for exposition.
struct Sample {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  Labels labels;
  double value = 0.0;                     ///< gauge (and counter, as double)
  std::uint64_t counter_value = 0;        ///< counter, lossless
  std::vector<double> bounds;             ///< histogram finite bounds
  std::vector<std::uint64_t> cumulative;  ///< histogram, size bounds+1
  std::uint64_t count = 0;                ///< histogram
  double sum = 0.0;                       ///< histogram
};

/// Named instrument store. Registration takes a mutex (cold); returned
/// references stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const std::string& help,
                   Labels labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               Labels labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds, Labels labels = {});

  /// Runs before every collect(); use to refresh gauges that mirror state
  /// behind a lock (queue depths, open connections). Hooks run on the
  /// scraping thread and must be safe to call concurrently with writers.
  /// Returns an id for remove_collect_hook — a component whose lifetime is
  /// shorter than the registry's must remove its hook before dying.
  std::size_t add_collect_hook(std::function<void()> hook);
  void remove_collect_hook(std::size_t id);

  /// Snapshot every series, sorted by (name, labels). Runs collect hooks.
  std::vector<Sample> collect();

  /// Process-wide default registry.
  static MetricsRegistry& global();

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricType type;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(const std::string& name, const std::string& help,
                        MetricType type, Labels labels);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Entry>> entries_;  // key: name+labels
  std::vector<std::pair<std::size_t, std::function<void()>>> hooks_;
  std::size_t next_hook_id_ = 1;
};

}  // namespace repl::obs
