// Work-stealing thread pool for embarrassingly parallel simulation.
//
// Each worker owns a deque: tasks submitted from outside are distributed
// round-robin across the worker deques (sharding), a worker pops from the
// front of its own deque, and an idle worker steals from the *back* of a
// victim's deque so the two ends never contend on the hot path. Deques are
// mutex-protected — tasks here are whole-object simulations (micro- to
// milliseconds each), so queue overhead is noise and the simple locking
// scheme keeps the pool easy to reason about.
//
// The pool itself is oblivious to task order and must never influence
// results: callers that need determinism (ParallelRunner) write each
// task's output to a pre-assigned slot and reduce in slot order afterwards.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace repl {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// `num_threads` = 0 picks std::thread::hardware_concurrency() (at
  /// least 1). Tasks must not throw — wrap user code and capture
  /// exceptions in the task body (see ParallelRunner).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task onto the next worker's deque (round-robin).
  /// Safe to call from multiple threads, including from inside a task.
  void submit(Task task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  std::size_t num_threads() const { return workers_.size(); }

  /// Number of successful steals since construction (diagnostics; the
  /// count is exact but read without ordering guarantees).
  std::uint64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t id);
  bool try_pop_local(std::size_t id, Task& task);
  bool try_steal(std::size_t thief, Task& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex idle_mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  /// Tasks submitted but not yet finished (drives wait_idle()).
  std::atomic<std::size_t> pending_{0};
  /// Tasks sitting in some deque (drives worker wakeup).
  std::atomic<std::size_t> queued_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> next_queue_{0};  // round-robin cursor
};

}  // namespace repl
