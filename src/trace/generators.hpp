// Synthetic workload generators.
//
// All generators are deterministic given a seed and produce valid traces
// (strictly increasing, strictly positive times).
#pragma once

#include <vector>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace repl {

/// How request arrival instants are assigned to servers.
struct ServerAssignment {
  enum class Kind {
    kUniform,  // each server equally likely
    kZipf,     // P(server i) ∝ (i+1)^(-s), the paper's Appendix-J rule
  };
  Kind kind = Kind::kZipf;
  double zipf_s = 1.0;
};

/// Homogeneous Poisson arrivals over [0, horizon] at `rate` requests per
/// time unit, assigned to servers per `assignment`.
Trace generate_poisson_trace(int num_servers, double rate, double horizon,
                             const ServerAssignment& assignment,
                             std::uint64_t seed);

/// Periodic per-server arrivals: server s emits requests every
/// `periods[s]` time units starting at `offsets[s]`, until `horizon`.
/// Useful for crafted regimes (gap <= alpha*lambda, (alpha*lambda, lambda],
/// > lambda).
Trace generate_periodic_trace(int num_servers,
                              const std::vector<double>& periods,
                              const std::vector<double>& offsets,
                              double horizon);

/// Two-state Markov-modulated Poisson process (bursty workload): the
/// process alternates between a quiet state (rate_low) and a bursty state
/// (rate_high); state holding times are exponential.
struct MmppConfig {
  double rate_low = 0.01;
  double rate_high = 1.0;
  double mean_low_duration = 3600.0;
  double mean_high_duration = 300.0;
  double horizon = 86400.0;
};
Trace generate_mmpp_trace(int num_servers, const MmppConfig& config,
                          const ServerAssignment& assignment,
                          std::uint64_t seed);

/// Non-homogeneous Poisson with diurnal (sinusoidal) rate modulation:
/// rate(t) = base_rate * (1 + amplitude * sin(2*pi*t/period + phase)),
/// sampled by thinning.
struct DiurnalConfig {
  double base_rate = 0.02;
  double amplitude = 0.8;  // in [0, 1)
  double period = 86400.0;
  double phase = 0.0;
  double horizon = 7 * 86400.0;
};
Trace generate_diurnal_trace(int num_servers, const DiurnalConfig& config,
                             const ServerAssignment& assignment,
                             std::uint64_t seed);

}  // namespace repl
