// Per-partition checkpoint manifest ("REPLPMAN"): the binding between a
// partition worker's snapshot and the slice of the object space it
// froze.
//
// A cluster worker's snapshot is an ordinary REPLCKPT file — the PR 3/5
// format verbatim, restorable by any engine. What the snapshot cannot
// say is *which slice* of the distributed stream it belongs to: a
// partition-2-of-4 snapshot restored as partition 1, or under a
// different partition count or partition-function version, would resume
// against the wrong sub-stream and silently diverge. The manifest is a
// tiny sibling file (snapshot path + ".pman") written atomically right
// after each checkpoint rename; restore validates it against the
// worker's assigned slice and fails loudly on any mismatch.
//
// Layout (52 bytes, little-endian):
//   offset  size  field
//   0       8     magic "REPLPMAN"
//   8       4     version (1)
//   12      4     partition_id
//   16      4     num_partitions
//   20      4     pf_version       (cluster/partition.hpp mapping version)
//   24      4     num_servers
//   28      4     reserved (0)
//   32      8     base_seed
//   40      8     events_ingested  (partition-local snapshot position)
//   48      4     CRC-32C over bytes [0, 48)
#pragma once

#include <cstdint>
#include <string>

namespace repl {

struct PartitionManifest {
  static constexpr std::uint64_t kMagic = 0x4e414d504c504552ULL;  // "REPLPMAN"
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::size_t kSize = 52;

  std::uint32_t partition_id = 0;
  std::uint32_t num_partitions = 1;
  std::uint32_t pf_version = 0;
  std::uint32_t num_servers = 0;
  std::uint64_t base_seed = 0;
  std::uint64_t events_ingested = 0;
};

/// The manifest's conventional location next to its snapshot.
std::string partition_manifest_path(const std::string& snapshot_path);

/// Writes the manifest atomically (tmp + rename + dir sync), mirroring
/// the snapshot's own crash-safety discipline. Throws std::runtime_error
/// on I/O failure.
void write_partition_manifest(const std::string& path,
                              const PartitionManifest& manifest);

/// Reads and CRC-verifies a manifest. Throws std::runtime_error naming
/// the defect (missing file, truncation, bad magic/version, CRC
/// mismatch).
PartitionManifest read_partition_manifest(const std::string& path);

/// The wrong-slice defense: validates that `manifest` describes exactly
/// the slice a resuming worker was assigned. Throws std::invalid_argument
/// naming both sides on any mismatch (partition id, partition count,
/// partition-function version, or server count).
void require_manifest_matches(const PartitionManifest& manifest,
                              std::uint32_t partition_id,
                              std::uint32_t num_partitions,
                              std::uint32_t num_servers);

}  // namespace repl
