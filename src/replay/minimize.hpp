// Format-aware fixture minimization: shrink a failing input while
// preserving its failure signature.
//
// A fuzz-found failure is rarely small — the mutated artifact carries
// every block and record of the generated base. The minimizer performs
// delta debugging (ddmin) over the input's *structure* rather than its
// bytes: whole frames/records are removed first, then events inside
// still-well-formed compressed blocks are re-encoded in shrinking
// subsets (with correct CRCs — re-framing is only applied to segments
// whose CRCs were valid to begin with, so the corruption under test is
// never accidentally "repaired"). The header's event/object count is
// patched along only when it was consistent in the original (if the
// count mismatch IS the bug, patching would erase it). After every
// candidate shrink the fixture is replayed; the candidate is kept only
// when the digit-stripped failure signature is unchanged. The result is
// a minimal fixture ready to check in as a permanent regression test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "replay/fixture.hpp"
#include "replay/fixture_run.hpp"

namespace repl {

struct MinimizeOptions {
  /// Outer fixed-point rounds: each round runs a full segment-level and
  /// event-level pass; minimization stops early once a round changes
  /// nothing.
  std::size_t max_rounds = 8;
  /// Replay geometry for the probe runs.
  FixtureRunOptions run;
};

struct MinimizeResult {
  /// The minimized fixture: expect=kFailure, the preserved signature
  /// recorded, blob shrunken. Ready for write_fixture().
  Fixture fixture;
  /// The failure signature every kept candidate reproduced.
  std::string signature;
  std::size_t original_bytes = 0;
  std::size_t minimized_bytes = 0;
  /// Replays performed while probing candidates.
  std::size_t probes = 0;
};

/// Minimizes `input`, which must currently fail its replay (any
/// signature; the fixture's recorded one is ignored — the observed
/// failure is re-derived first, so stale fixtures minimize fine).
/// Throws std::invalid_argument when the input does not fail at all
/// (nothing to preserve).
MinimizeResult minimize_fixture(const Fixture& input,
                                const MinimizeOptions& options = {});

}  // namespace repl
