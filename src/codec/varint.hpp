// Variable-width integer primitives for the codec subsystem.
//
// LEB128 unsigned varints (7 payload bits per byte, little-endian groups,
// high bit = continuation; a u64 takes at most 10 bytes) plus the zigzag
// mapping that folds signed deltas into small unsigned values
// (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...). Encoders append to a byte
// vector; decoders consume from a bounded span and report malformed
// input (underflow, overlong encodings past the 10th byte) by returning
// 0 consumed bytes, so framing layers can turn it into a positioned
// diagnostic instead of reading out of bounds.
//
// These are the building blocks of the compressed event-log format
// (delta-encoded times, varint object/server ids); see codec/delta.hpp
// and trace/event_log.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace repl {

inline constexpr std::size_t kMaxUvarintBytes = 10;

/// Appends `v` to `out` as a LEB128 varint (1..10 bytes).
inline void put_uvarint(std::vector<unsigned char>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<unsigned char>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<unsigned char>(v));
}

/// Decodes one varint from [p, end). Returns the number of bytes
/// consumed, or 0 when the input is truncated, overlong (more than 10
/// bytes), or overflows 64 bits. `v` is untouched on failure.
inline std::size_t get_uvarint(const unsigned char* p,
                               const unsigned char* end, std::uint64_t& v) {
  std::uint64_t value = 0;
  std::size_t i = 0;
  for (; p + i != end && i < kMaxUvarintBytes; ++i) {
    const unsigned char byte = p[i];
    // The 10th byte holds bits 63.. only: anything above bit 0 would
    // shift past the u64 and silently alias another value — reject.
    if (i == kMaxUvarintBytes - 1 && byte > 1) return 0;
    value |= std::uint64_t{byte & 0x7Fu} << (7 * i);
    if ((byte & 0x80u) == 0) {
      v = value;
      return i + 1;
    }
  }
  return 0;  // ran off the span, or 10 bytes all with continuation bits
}

/// Zigzag: interleaves the sign so small-magnitude signed values map to
/// small unsigned ones.
inline std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace repl
