// The online algorithm of Wang et al. (INFOCOM 2021), as described in
// Section 11 of the reproduced paper. It supports distinct per-server
// storage cost rates µ(s) and was claimed 2-competitive by its authors;
// the reproduced paper refutes the claim with the Figure-9 instance, on
// which this implementation's cost ratio approaches 5/2 (see
// bench_fig9_wang_counterexample and the corresponding tests).
//
// Rules (λ = transfer cost, µ(s) = storage rate of s, "home" = the server
// with the lowest storage rate, the papers' s1):
//  * after serving a local request (by copy or transfer receipt), s keeps
//    its copy for λ/µ(s) time units, renewing on every local request;
//  * when the copy at s expires and it is not the only copy, drop it;
//  * when the copy at home expires and it is the only copy, renew it for
//    another λ/µ(home), indefinitely;
//  * when the copy at s ≠ home expires, it is the only copy, and s has
//    held it for exactly λ/µ(s) since its last local request, renew once;
//  * when it expires again (2λ/µ(s) without a local request), transfer
//    the object to home and drop the copy at s.
//
// Both papers assume the object starts at home; this implementation
// requires config.initial_server to be the minimum-rate server.
#pragma once

#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "core/policy.hpp"

namespace repl {

class Wang2021Policy final : public ReplicationPolicy {
 public:
  Wang2021Policy() = default;

  void reset(const SystemConfig& config, const Prediction& pred0,
             EventSink& sink) override;
  void advance_to(double time, EventSink& sink) override;
  ServeAction on_request(int server, double time, const Prediction& pred,
                         EventSink& sink) override;
  double next_transition_time() const override;
  bool holds(int server) const override;
  int copy_count() const override { return copy_count_; }
  std::string name() const override { return "wang2021"; }
  std::unique_ptr<ReplicationPolicy> clone() const override;

  int home_server() const { return home_; }

 private:
  struct HeapEntry {
    double time;
    int server;
    std::uint64_t generation;
    friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.server > b.server;
    }
  };

  struct ServerState {
    bool has_copy = false;
    bool renewed_once = false;  // only-copy grace renewal already used
    double expiry = -std::numeric_limits<double>::infinity();
    std::uint64_t generation = 0;
  };

  double ttl(int server) const {
    return config_.transfer_cost / config_.storage_rate(server);
  }
  void arm_expiry(int server, double time, EventSink& sink);
  void process_expiry(int server, double time, EventSink& sink);
  void purge_stale_heap() const;

  SystemConfig config_;
  int home_ = 0;
  std::vector<ServerState> servers_;
  int copy_count_ = 0;
  double now_ = 0.0;
  mutable std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                              std::greater<HeapEntry>>
      expiries_;
};

}  // namespace repl
