// Experiment E5 — Figure 9 / Section 11 of the paper: the counterexample
// refuting the claimed 2-competitiveness of Wang et al. (INFOCOM 2021).
// On the two-server instance with 2λ+ε same-server gaps the Wang policy's
// ratio approaches 5/2; Algorithm 1 with α = 1 (the paper's conventional
// rule) stays at ≤ 2 on the same instance.
#include <iostream>

#include "analysis/ratio.hpp"
#include "baselines/wang2021.hpp"
#include "bench_util.hpp"
#include "core/drwp.hpp"
#include "offline/opt_dp.hpp"
#include "predictor/fixed.hpp"
#include "predictor/oracle.hpp"
#include "trace/paper_instances.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace repl;
  CliParser cli("bench_fig9_wang_counterexample",
                "Figure 9: Wang et al. 2021 is not 2-competitive");
  cli.add_flag("lambda", "100", "transfer cost");
  if (!cli.parse(argc, argv)) return 0;
  const double lambda = cli.get_double("lambda");

  bench::ShapeChecks checks;
  SystemConfig config;
  config.num_servers = 2;
  config.transfer_cost = lambda;

  Table table({"m", "eps/lambda", "wang2021 ratio", "conventional ratio",
               "drwp(0.5)+oracle ratio"});
  double wang_final = 0.0;
  for (int m : {10, 50, 200, 800}) {
    for (double eps_frac : {1e-2, 1e-4}) {
      const double eps = lambda * eps_frac;
      const Trace trace = make_figure9_trace(lambda, eps, m);
      const double opt = optimal_offline_cost(config, trace);
      FixedPredictor ignored = always_beyond_predictor();

      Wang2021Policy wang;
      const double wang_ratio =
          evaluate_policy(config, wang, trace, ignored, opt).ratio;
      ConventionalPolicy conventional;
      const double conventional_ratio =
          evaluate_policy(config, conventional, trace, ignored, opt).ratio;
      OraclePredictor oracle(trace);
      DrwpPolicy drwp(0.5);
      const double drwp_ratio =
          evaluate_policy(config, drwp, trace, oracle, opt).ratio;

      table.add_row({Table::cell(m), Table::cell(eps_frac, 5),
                     Table::cell(wang_ratio, 5),
                     Table::cell(conventional_ratio, 5),
                     Table::cell(drwp_ratio, 5)});
      if (m == 800 && eps_frac == 1e-4) wang_final = wang_ratio;
      checks.expect(conventional_ratio <= 2.0 + 1e-9,
                    "conventional (alpha=1) stays 2-competitive at m=" +
                        Table::cell(m));
    }
  }
  std::cout << table.str() << "\n";
  checks.expect(wang_final > 2.45,
                "Wang et al. ratio approaches 5/2 (reached " +
                    Table::cell(wang_final, 4) + ") — the 2-competitive "
                    "claim is refuted");
  checks.expect(wang_final < 2.5 + 1e-6,
                "Wang et al. ratio does not exceed 5/2 on this instance");
  return checks.finish();
}
