#include "core/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace repl {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The canonical event sink: validates the event stream and accumulates
/// costs, copy segments, and transfers.
///
/// `billing_horizon` bounds which costs are billed: transfers at
/// time <= horizon, and the portion of each copy segment within
/// [0, horizon]. When the cost horizon is "the final request time" it is
/// unknown while the run is still streaming, so it starts at +inf (every
/// in-run transfer happens no later than the final request and is billed
/// either way, and every in-run segment closes no later than the final
/// request) and is pinned to the resolved horizon just before the
/// post-trace flush.
///
/// Storage cost accumulates incrementally as segments close — one
/// addition per segment, in close order, the exact sequence a post-hoc
/// sweep over the segment list would perform — so a streaming consumer
/// (the engine, checkpoints) needs only this scalar, and the segment
/// list itself is retained only when per-event recording is on.
class Recorder final : public EventSink {
 public:
  Recorder(const SystemConfig& config, bool record_events,
           double billing_horizon)
      : config_(config),
        record_events_(record_events),
        billing_horizon_(billing_horizon),
        holding_(static_cast<std::size_t>(config.num_servers), false),
        open_begin_(static_cast<std::size_t>(config.num_servers), 0.0),
        open_special_(static_cast<std::size_t>(config.num_servers), kInf) {}

  void set_billing_horizon(double horizon) { billing_horizon_ = horizon; }

  void on_create(int server, double time) override {
    check_time(time);
    REPL_CHECK_MSG(!holding_at(server),
                   "create at server already holding a copy");
    holding_at(server) = true;
    ++count_;
    open_begin_[static_cast<std::size_t>(server)] = time;
    open_special_[static_cast<std::size_t>(server)] = kInf;
  }

  void on_drop(int server, double time) override {
    check_time(time);
    REPL_CHECK_MSG(holding_at(server), "drop at server without a copy");
    holding_at(server) = false;
    --count_;
    REPL_CHECK_MSG(count_ >= 1,
                   "at-least-one-copy requirement violated at t=" << time);
    close_segment(server, time);
  }

  void on_mark_special(int server, double time) override {
    check_time(time);
    REPL_CHECK_MSG(holding_at(server), "mark_special without a copy");
    REPL_CHECK_MSG(count_ == 1,
                   "special copy must be the only copy (Proposition 1)");
    auto& sf = open_special_[static_cast<std::size_t>(server)];
    REPL_CHECK_MSG(sf == kInf, "copy marked special twice");
    sf = time;
  }

  void on_transfer(int src, int dst, double time) override {
    check_time(time);
    REPL_CHECK_MSG(src != dst, "self-transfer");
    REPL_CHECK_MSG(holding_at(src), "transfer from a server without a copy");
    ++transfer_count_;
    // Transfers after the cost horizon (e.g. post-trace home migrations
    // during the flush) are recorded but not billed.
    if (time <= billing_horizon_) ++billed_transfer_count_;
    if (record_events_) transfers_.push_back(TransferRecord{src, dst, time});
  }

  void on_set_duration(int server, double time, double duration) override {
    check_time(time);
    REPL_CHECK(holding_at(server));
    REPL_CHECK(duration > 0.0);
    if (std::isnan(initial_intended_)) initial_intended_ = duration;
    // A renewed intended duration un-marks a special copy.
    open_special_[static_cast<std::size_t>(server)] = kInf;
  }

  /// Closes all still-open segments with end = +inf. No further events
  /// may follow.
  void finish() {
    for (int s = 0; s < config_.num_servers; ++s) {
      if (holding_at(s)) {
        close_segment(s, kInf);
        holding_at(s) = false;
      }
    }
  }

  int count() const { return count_; }
  std::size_t transfer_count() const { return transfer_count_; }
  std::size_t billed_transfer_count() const { return billed_transfer_count_; }
  double last_time() const { return last_time_; }
  double initial_intended() const { return initial_intended_; }
  std::vector<CopySegment>& segments() { return segments_; }
  std::vector<TransferRecord>& transfers() { return transfers_; }

  /// Storage cost within [0, horizon], weighted by per-server rates.
  /// Must be called after finish() (all segments closed and billed).
  double storage_cost() const { return storage_cost_; }

  /// Checkpoint protocol: the cost accumulators and per-server open-copy
  /// state. The event logs (segments/transfers) are observability, not
  /// cost state, and restart empty after a restore.
  void save_state(StateWriter& out) const {
    out.i32(count_);
    out.u64(static_cast<std::uint64_t>(transfer_count_));
    out.u64(static_cast<std::uint64_t>(billed_transfer_count_));
    out.f64(last_time_);
    out.f64(initial_intended_);
    out.f64(storage_cost_);
    out.u64(static_cast<std::uint64_t>(holding_.size()));
    for (std::size_t s = 0; s < holding_.size(); ++s) {
      out.boolean(holding_[s]);
      out.f64(open_begin_[s]);
      out.f64(open_special_[s]);
    }
  }

  void load_state(StateReader& in) {
    count_ = in.i32();
    transfer_count_ = static_cast<std::size_t>(in.u64());
    billed_transfer_count_ = static_cast<std::size_t>(in.u64());
    last_time_ = in.f64();
    initial_intended_ = in.f64();
    storage_cost_ = in.f64();
    if (in.u64() != holding_.size()) in.fail("recorder server count mismatch");
    for (std::size_t s = 0; s < holding_.size(); ++s) {
      holding_[s] = in.boolean();
      open_begin_[s] = in.f64();
      open_special_[s] = in.f64();
    }
    if (count_ < 1 || count_ > static_cast<int>(holding_.size())) {
      in.fail("recorder copy count " + std::to_string(count_) +
              " out of range");
    }
    segments_.clear();
    transfers_.clear();
  }

 private:
  std::vector<bool>::reference holding_at(int server) {
    REPL_CHECK(server >= 0 && server < config_.num_servers);
    return holding_[static_cast<std::size_t>(server)];
  }

  void check_time(double time) {
    REPL_CHECK_MSG(time >= last_time_,
                   "event times must be non-decreasing: " << time << " after "
                                                          << last_time_);
    last_time_ = time;
  }

  void close_segment(int server, double end) {
    const auto s = static_cast<std::size_t>(server);
    // Bill the segment's storage as it closes. `billing_horizon_` is +inf
    // until finish() pins it, and every in-run close happens at or before
    // the final request time, so capping here computes the same value the
    // final horizon would — in the same operation order as a post-hoc
    // sweep, keeping costs bit-identical to the pre-streaming code path.
    const double capped = std::min(end, billing_horizon_);
    if (capped > open_begin_[s]) {
      storage_cost_ += config_.storage_rate(server) * (capped - open_begin_[s]);
    }
    if (record_events_) {
      segments_.push_back(CopySegment{server, open_begin_[s],
                                      open_special_[s], end});
    }
    open_special_[s] = kInf;
  }

  const SystemConfig& config_;
  bool record_events_;
  double billing_horizon_;
  std::vector<bool> holding_;
  std::vector<double> open_begin_;
  std::vector<double> open_special_;
  std::vector<CopySegment> segments_;
  std::vector<TransferRecord> transfers_;
  int count_ = 0;
  std::size_t transfer_count_ = 0;
  std::size_t billed_transfer_count_ = 0;
  double storage_cost_ = 0.0;
  double last_time_ = 0.0;
  double initial_intended_ = std::numeric_limits<double>::quiet_NaN();
};

/// Validates before any member sizes containers from config fields.
const SystemConfig& validated(const SystemConfig& config) {
  config.validate();
  return config;
}

}  // namespace

struct OnlineSimulation::Impl {
  Impl(const SystemConfig& cfg, const SimulationOptions& opts,
       ReplicationPolicy& pol, Predictor& pred)
      : config(validated(cfg)),
        options(opts),
        policy(pol),
        predictor(pred),
        recorder(config, options.record_events,
                 options.horizon < 0.0 ? kInf : options.horizon) {
    predictor.reset();
    const Prediction pred0 = predictor.predict(
        PredictionQuery{-1, config.initial_server, 0.0,
                        config.transfer_cost});
    policy.reset(config, pred0, recorder);
    result.config = config;
    result.policy_name = policy.name();
    result.predictor_name = predictor.name();
    result.initial_prediction = pred0;
  }

  const SystemConfig& config;
  SimulationOptions options;
  ReplicationPolicy& policy;
  Predictor& predictor;
  Recorder recorder;
  SimulationResult result;
  std::size_t index = 0;
  double last_request_time = 0.0;
  bool finished = false;
};

OnlineSimulation::OnlineSimulation(const SystemConfig& config,
                                   const SimulationOptions& options,
                                   ReplicationPolicy& policy,
                                   Predictor& predictor)
    : impl_(std::make_unique<Impl>(config, options, policy, predictor)) {}

OnlineSimulation::~OnlineSimulation() = default;
OnlineSimulation::OnlineSimulation(OnlineSimulation&&) noexcept = default;
OnlineSimulation& OnlineSimulation::operator=(OnlineSimulation&&) noexcept =
    default;

void OnlineSimulation::step(int server, double time) {
  Impl& im = *impl_;
  REPL_CHECK(!im.finished);
  REPL_REQUIRE_MSG(server >= 0 && server < im.config.num_servers,
                   "request server " << server << " out of range");
  REPL_REQUIRE_MSG(time > 0.0 && time > im.last_request_time,
                   "request times must be strictly increasing and positive: "
                       << time << " after " << im.last_request_time);
  im.last_request_time = time;

  im.policy.advance_to(time, im.recorder);
  const Prediction pred = im.predictor.predict(PredictionQuery{
      static_cast<long>(im.index), server, time, im.config.transfer_cost});
  const std::size_t transfers_before = im.recorder.transfer_count();
  const ServeAction action =
      im.policy.on_request(server, time, pred, im.recorder);
  // Cross-check the action against the event stream.
  const std::size_t new_transfers =
      im.recorder.transfer_count() - transfers_before;
  REPL_CHECK(action.extra_transfers >= 0);
  REPL_CHECK_MSG(
      new_transfers ==
          (action.local ? 0u : 1u) +
              static_cast<std::size_t>(action.extra_transfers),
      "serve action inconsistent with emitted transfers");
  if (action.local) ++im.result.num_local;

  if (im.options.record_events) {
    ServeRecord record;
    record.index = im.index;
    record.server = server;
    record.time = time;
    record.local = action.local;
    record.source = action.source;
    record.source_special = action.source_special;
    record.special_since = action.special_since;
    record.intended_duration = action.intended_duration;
    record.prediction = pred;
    im.result.serves.push_back(record);
  }
  ++im.index;
}

void OnlineSimulation::reserve(std::size_t num_requests) {
  if (impl_->options.record_events) impl_->result.serves.reserve(num_requests);
}

std::size_t OnlineSimulation::steps() const { return impl_->index; }

double OnlineSimulation::last_time() const {
  return impl_->last_request_time;
}

void OnlineSimulation::save_state(StateWriter& out) const {
  const Impl& im = *impl_;
  REPL_CHECK_MSG(!im.finished, "save_state after finish()");
  out.str(im.policy.name());
  out.str(im.predictor.name());
  // Config cross-checks: every component below prices against the same
  // SystemConfig, so a snapshot restored under a different λ, initial
  // server, or storage-rate vector must be rejected, not silently
  // continued with diverging durations/costs.
  out.f64(im.config.transfer_cost);
  out.i32(im.config.initial_server);
  for (int s = 0; s < im.config.num_servers; ++s) {
    out.f64(im.config.storage_rate(s));
  }
  out.u64(static_cast<std::uint64_t>(im.index));
  out.f64(im.last_request_time);
  out.u64(static_cast<std::uint64_t>(im.result.num_local));
  out.boolean(im.result.initial_prediction.within_lambda);
  im.recorder.save_state(out);
  im.policy.save_state(out);
  im.predictor.save_state(out);
}

void OnlineSimulation::load_state(StateReader& in) {
  Impl& im = *impl_;
  REPL_CHECK_MSG(!im.finished, "load_state after finish()");
  REPL_CHECK_MSG(im.index == 0,
                 "load_state requires a freshly constructed simulation");
  const std::string policy_name = in.str();
  if (policy_name != im.policy.name()) {
    in.fail("policy mismatch: snapshot has '" + policy_name + "', have '" +
            im.policy.name() + "'");
  }
  const std::string predictor_name = in.str();
  if (predictor_name != im.predictor.name()) {
    in.fail("predictor mismatch: snapshot has '" + predictor_name +
            "', have '" + im.predictor.name() + "'");
  }
  if (in.f64() != im.config.transfer_cost) {
    in.fail("transfer cost (lambda) mismatch");
  }
  if (in.i32() != im.config.initial_server) {
    in.fail("initial server mismatch");
  }
  for (int s = 0; s < im.config.num_servers; ++s) {
    if (in.f64() != im.config.storage_rate(s)) {
      in.fail("storage rate mismatch at server " + std::to_string(s));
    }
  }
  im.index = static_cast<std::size_t>(in.u64());
  im.last_request_time = in.f64();
  im.result.num_local = static_cast<std::size_t>(in.u64());
  im.result.initial_prediction.within_lambda = in.boolean();
  im.recorder.load_state(in);
  im.policy.load_state(in);
  im.predictor.load_state(in);
}

SimulationResult OnlineSimulation::finish() {
  Impl& im = *impl_;
  REPL_CHECK_MSG(!im.finished, "OnlineSimulation::finish() called twice");
  im.finished = true;

  const double lambda = im.config.transfer_cost;
  const double horizon =
      im.options.horizon < 0.0 ? im.last_request_time : im.options.horizon;
  im.recorder.set_billing_horizon(horizon);

  // Flush pending expiries past the horizon so the post-trace segments
  // (needed by the Proposition-2 allocation analysis) are materialized.
  // The flush window is bounded because some policies (e.g. Wang et al.'s
  // home renewal) re-arm expiries forever; two maximum TTLs past the end
  // is enough to expose every copy's fate under all implemented policies.
  double min_rate = 1.0;
  for (int s = 0; s < im.config.num_servers; ++s) {
    min_rate = std::min(min_rate, im.config.storage_rate(s));
  }
  const double flush_time = std::max(horizon, im.last_request_time) +
                            4.0 * lambda / min_rate + 1.0;
  im.policy.advance_to(flush_time, im.recorder);
  REPL_CHECK_MSG(im.policy.copy_count() == im.recorder.count(),
                 "policy copy count disagrees with event stream");
  REPL_CHECK(im.recorder.count() >= 1);

  im.recorder.finish();
  im.result.horizon = horizon;
  im.result.storage_cost = im.recorder.storage_cost();
  im.result.num_transfers = im.recorder.billed_transfer_count();
  im.result.transfer_cost =
      lambda * static_cast<double>(im.result.num_transfers);
  im.result.initial_intended_duration = im.recorder.initial_intended();

  if (im.options.record_events) {
    im.result.segments = std::move(im.recorder.segments());
    std::sort(im.result.segments.begin(), im.result.segments.end(),
              [](const CopySegment& a, const CopySegment& b) {
                if (a.begin != b.begin) return a.begin < b.begin;
                return a.server < b.server;
              });
    im.result.transfers = std::move(im.recorder.transfers());
  }
  return std::move(im.result);
}

Simulator::Simulator(SystemConfig config, SimulationOptions options)
    : config_(std::move(config)), options_(options) {
  config_.validate();
}

SimulationResult Simulator::run(ReplicationPolicy& policy, const Trace& trace,
                                Predictor& predictor) const {
  REPL_REQUIRE_MSG(trace.num_servers() == config_.num_servers,
                   "trace has " << trace.num_servers()
                                << " servers, config expects "
                                << config_.num_servers);
  OnlineSimulation sim(config_, options_, policy, predictor);
  sim.reserve(trace.size());
  for (const Request& r : trace.requests()) sim.step(r.server, r.time);
  return sim.finish();
}

SimulationResult simulate(const SystemConfig& config,
                          ReplicationPolicy& policy, const Trace& trace,
                          Predictor& predictor, SimulationOptions options) {
  return Simulator(config, options).run(policy, trace, predictor);
}

}  // namespace repl
