// Codec subsystem tests: varint/zigzag and CRC-32C primitives, the
// word codec for state payloads, the block-framed container, the
// compressed event-log format (round trips, O(blocks) skip, corruption:
// truncation at every byte offset and bit flips → CRC rejection with a
// positioned diagnostic), cross-version reads (v1 logs and v1/v2
// snapshots through the current readers), and end-to-end engine parity:
// compressed-log serves — including a checkpoint/resume cut on the
// compressed path — are bit-identical to raw-log serves.
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/experiment.hpp"
#include "checkpoint/snapshot.hpp"
#include "codec/block.hpp"
#include "codec/crc32.hpp"
#include "codec/delta.hpp"
#include "codec/varint.hpp"
#include "codec/word_codec.hpp"
#include "engine/engine.hpp"
#include "trace/event_log.hpp"
#include "trace/stream_gen.hpp"
#include "util/rng.hpp"

namespace repl {
namespace {

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

TEST(VarintTest, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  std::uint64_t{1} << 32,
                                  (std::uint64_t{1} << 63) - 1,
                                  std::uint64_t{1} << 63,
                                  ~std::uint64_t{0}};
  for (const std::uint64_t v : values) {
    std::vector<unsigned char> buf;
    put_uvarint(buf, v);
    EXPECT_LE(buf.size(), kMaxUvarintBytes);
    std::uint64_t back = 0;
    EXPECT_EQ(get_uvarint(buf.data(), buf.data() + buf.size(), back),
              buf.size())
        << v;
    EXPECT_EQ(back, v);
  }
}

TEST(VarintTest, RejectsTruncatedAndOverlongInput) {
  std::vector<unsigned char> buf;
  put_uvarint(buf, ~std::uint64_t{0});  // 10 bytes
  std::uint64_t v = 0;
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    EXPECT_EQ(get_uvarint(buf.data(), buf.data() + cut, v), 0u) << cut;
  }
  // 10 continuation bytes with no terminator: overlong.
  const std::vector<unsigned char> overlong(kMaxUvarintBytes, 0x80);
  EXPECT_EQ(get_uvarint(overlong.data(),
                        overlong.data() + overlong.size(), v),
            0u);
  // A 10th byte with bits above bit 0 would overflow 64 bits; accepting
  // it would alias two byte strings to one value.
  std::vector<unsigned char> overflow(kMaxUvarintBytes - 1, 0x80);
  overflow.push_back(0x7F);
  EXPECT_EQ(get_uvarint(overflow.data(),
                        overflow.data() + overflow.size(), v),
            0u);
}

TEST(VarintTest, ZigzagFoldsSign) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  const std::int64_t values[] = {0, -1, 1, 4242, -4242,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (const std::int64_t v : values) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
}

TEST(Crc32Test, MatchesTheStandardCheckValue) {
  // The CRC-32C check value for "123456789" (iSCSI/RFC 3720 test vector).
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(crc32c("", 0), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  Rng rng(7);
  std::vector<unsigned char> data(1000);
  for (auto& b : data) {
    b = static_cast<unsigned char>(rng.uniform_index(256));
  }
  for (const std::size_t split : {std::size_t{0}, std::size_t{1},
                                  std::size_t{499}, std::size_t{1000}}) {
    std::uint32_t state = crc32c_init();
    state = crc32c_update(state, data.data(), split);
    state = crc32c_update(state, data.data() + split, data.size() - split);
    EXPECT_EQ(crc32c_final(state), crc32c(data.data(), data.size()));
  }
}

TEST(TimeDeltaTest, RoundTripsMonotoneAndOddDoubles) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> times = {1e-300, 0.5,  1.0, 1.0, 1.0000000001,
                                     3.25,   1e6,  1e6, 2e6, 9e9,
                                     inf,    inf};
  std::vector<unsigned char> buf;
  TimeDeltaEncoder enc;
  for (const double t : times) enc.encode(t, buf);
  // Dense monotone streams cost a fraction of the raw 8 bytes each.
  EXPECT_LT(buf.size(), times.size() * 8);

  TimeDeltaDecoder dec;
  const unsigned char* p = buf.data();
  const unsigned char* const end = p + buf.size();
  for (const double t : times) {
    double back = 0.0;
    ASSERT_TRUE(dec.decode(&p, end, back));
    EXPECT_EQ(back, t);
  }
  EXPECT_EQ(p, end);
  double dummy = 0.0;
  EXPECT_FALSE(dec.decode(&p, end, dummy));  // exhausted input
}

// ---------------------------------------------------------------------
// Word codec
// ---------------------------------------------------------------------

std::vector<unsigned char> random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<unsigned char> data(n);
  for (auto& b : data) {
    b = static_cast<unsigned char>(rng.uniform_index(256));
  }
  return data;
}

void expect_word_round_trip(const std::vector<unsigned char>& data) {
  const std::vector<unsigned char> packed = word_pack(data);
  EXPECT_EQ(word_unpack(packed.data(), packed.size(), data.size(), "test"),
            data);
}

TEST(WordCodecTest, RoundTripsEverySizeClass) {
  expect_word_round_trip({});
  for (const std::size_t n : {1u, 7u, 8u, 9u, 15u, 16u, 17u, 24u, 1000u, 1003u}) {
    expect_word_round_trip(random_bytes(n, n));
  }
}

TEST(WordCodecTest, SentinelRunsCompress) {
  // A payload dominated by repeated NaN/inf sentinel doubles — the
  // checkpoint shape the codec targets.
  std::vector<unsigned char> data;
  const auto push_double = [&data](double v) {
    const auto bits = std::bit_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) {
      data.push_back(static_cast<unsigned char>(bits >> (8 * i)));
    }
  };
  for (int i = 0; i < 100; ++i) {
    push_double(std::numeric_limits<double>::infinity());
  }
  for (int i = 0; i < 100; ++i) {
    push_double(std::numeric_limits<double>::quiet_NaN());
  }
  for (int i = 0; i < 100; ++i) push_double(1234.5 + i * 1e-9);
  const std::vector<unsigned char> packed = word_pack(data);
  EXPECT_LT(packed.size(), data.size() / 3);  // sentinels nearly vanish
  EXPECT_EQ(word_unpack(packed.data(), packed.size(), data.size(), "test"),
            data);
}

TEST(WordCodecTest, WorstCaseExpansionIsBounded) {
  const std::vector<unsigned char> data = random_bytes(8000, 99);
  const std::vector<unsigned char> packed = word_pack(data);
  // One control byte per two words: at most +1/16 plus a constant.
  EXPECT_LE(packed.size(), data.size() + data.size() / 16 + 2);
}

TEST(WordCodecTest, RejectsMalformedInput) {
  const std::vector<unsigned char> data = random_bytes(64, 5);
  const std::vector<unsigned char> packed = word_pack(data);
  // Truncation anywhere fails (decoded size can no longer be reached).
  for (std::size_t cut = 0; cut < packed.size(); ++cut) {
    EXPECT_THROW(word_unpack(packed.data(), cut, data.size(), "test"),
                 std::runtime_error)
        << cut;
  }
  // Wrong raw size.
  EXPECT_THROW(
      word_unpack(packed.data(), packed.size(), data.size() - 1, "test"),
      std::runtime_error);
  EXPECT_THROW(
      word_unpack(packed.data(), packed.size(), data.size() + 1, "test"),
      std::runtime_error);
  // Invalid control nibble (9..15).
  std::vector<unsigned char> bad = {0x0F};
  EXPECT_THROW(word_unpack(bad.data(), bad.size(), 8, "test"),
               std::runtime_error);
}

// ---------------------------------------------------------------------
// Block container
// ---------------------------------------------------------------------

TEST(BlockContainerTest, RoundTripsAndDetectsEveryFlippedByte) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  BlockWriter writer(stream, "mem");
  const std::vector<unsigned char> a = random_bytes(100, 1);
  const std::vector<unsigned char> b = random_bytes(3, 2);
  writer.write_block(7, a);
  writer.write_block(9, b);
  writer.write_block(0, std::vector<unsigned char>{});  // empty payload
  EXPECT_EQ(writer.blocks_written(), 3u);
  const std::string bytes = stream.str();

  {
    std::stringstream in(bytes, std::ios::in | std::ios::binary);
    BlockReader reader(in, "mem");
    std::uint32_t aux = 0;
    std::vector<unsigned char> payload;
    ASSERT_TRUE(reader.read_block(aux, payload));
    EXPECT_EQ(aux, 7u);
    EXPECT_EQ(payload, a);
    ASSERT_TRUE(reader.skip_block(aux));  // skipping is positional only
    EXPECT_EQ(aux, 9u);
    ASSERT_TRUE(reader.read_block(aux, payload));
    EXPECT_EQ(aux, 0u);
    EXPECT_TRUE(payload.empty());
    EXPECT_FALSE(reader.read_block(aux, payload));  // clean EOF
  }

  // Any single flipped byte anywhere in the framed stream is rejected,
  // and the diagnostic is positioned (names a block).
  for (std::size_t offset = 0; offset < bytes.size(); ++offset) {
    std::string corrupt = bytes;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x40);
    std::stringstream in(corrupt, std::ios::in | std::ios::binary);
    BlockReader reader(in, "mem");
    std::uint32_t aux = 0;
    std::vector<unsigned char> payload;
    try {
      while (reader.read_block(aux, payload)) {
      }
      FAIL() << "flipped byte " << offset << " went undetected";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("block"), std::string::npos)
          << e.what();
    }
  }
}

TEST(BlockContainerTest, SkipPathDetectsFrameCorruption) {
  // Skip paths steer by the frame's length and aux fields without ever
  // reading the payload — a flipped bit there would silently misposition
  // everything after (e.g. an event-log resume). The frame carries its
  // own CRC so skip_block must reject it.
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  BlockWriter writer(stream, "mem");
  for (int b = 0; b < 3; ++b) {
    writer.write_block(static_cast<std::uint32_t>(100 + b),
                       random_bytes(50 + static_cast<std::size_t>(b), 7));
  }
  const std::string bytes = stream.str();

  // Frame offsets, walked via the length fields.
  std::vector<std::size_t> frame_offsets;
  std::size_t offset = 0;
  for (int b = 0; b < 3; ++b) {
    frame_offsets.push_back(offset);
    const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= std::uint32_t{p[offset + static_cast<std::size_t>(i)]}
             << (8 * i);
    }
    offset += 16 + len;
  }

  for (const std::size_t frame : frame_offsets) {
    for (std::size_t i = 0; i < 16; ++i) {
      std::string corrupt = bytes;
      corrupt[frame + i] = static_cast<char>(corrupt[frame + i] ^ 0x20);
      std::stringstream in(corrupt, std::ios::in | std::ios::binary);
      BlockReader reader(in, "mem");
      std::uint32_t aux = 0;
      try {
        while (reader.skip_block(aux)) {
        }
        FAIL() << "flipped frame byte " << frame + i << " went undetected";
      } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("block"), std::string::npos)
            << e.what();
      }
    }
  }
}

TEST(BlockContainerTest, SkipRejectsTruncatedFinalPayload) {
  // seekg past EOF "succeeds" on common istream implementations, so an
  // unchecked relative seek over a truncated final payload would read as
  // a clean EOF at the next frame — a silently shortened stream and a
  // mispositioned resume. skip_payload must throw, positioned, at every
  // truncation point inside the final payload.
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  BlockWriter writer(stream, "mem");
  writer.write_block(1, random_bytes(40, 3));
  writer.write_block(2, random_bytes(30, 4));
  const std::string bytes = stream.str();
  const std::size_t last_payload = bytes.size() - 30;

  for (std::size_t keep = 0; keep < 30; ++keep) {
    std::stringstream in(bytes.substr(0, last_payload + keep),
                         std::ios::in | std::ios::binary);
    BlockReader reader(in, "mem");
    std::uint32_t aux = 0;
    ASSERT_TRUE(reader.skip_block(aux));
    EXPECT_EQ(aux, 1u);
    try {
      reader.skip_block(aux);
      FAIL() << "skip over payload truncated to " << keep
             << " bytes went undetected";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("truncated block payload"),
                std::string::npos)
          << e.what();
    }
  }

  // The untruncated stream skips both blocks and ends cleanly.
  std::stringstream in(bytes, std::ios::in | std::ios::binary);
  BlockReader reader(in, "mem");
  std::uint32_t aux = 0;
  ASSERT_TRUE(reader.skip_block(aux));
  ASSERT_TRUE(reader.skip_block(aux));
  EXPECT_EQ(aux, 2u);
  EXPECT_FALSE(reader.skip_block(aux));
}

TEST(BlockContainerTest, FrameSplitAtHeaderBoundaryIsPositioned) {
  // A stream that ends exactly after a frame whose payload never
  // follows: both the read and the skip path must report a positioned
  // truncation (0 of N bytes), not loop or mis-seek. A stream ending
  // mid-frame is equally positioned.
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  BlockWriter writer(stream, "mem");
  writer.write_block(5, random_bytes(25, 9));
  const std::string bytes = stream.str();
  const std::string frame_only = bytes.substr(0, kBlockFrameBytes);

  for (const bool skip : {false, true}) {
    std::stringstream in(frame_only, std::ios::in | std::ios::binary);
    BlockReader reader(in, "mem");
    std::uint32_t aux = 0;
    std::vector<unsigned char> payload;
    try {
      if (skip) {
        reader.skip_block(aux);
      } else {
        reader.read_block(aux, payload);
      }
      FAIL() << "frame with absent payload went undetected (skip=" << skip
             << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("truncated block payload"),
                std::string::npos)
          << e.what();
    }
  }

  for (std::size_t cut = 1; cut < kBlockFrameBytes; ++cut) {
    std::stringstream in(bytes.substr(0, cut),
                         std::ios::in | std::ios::binary);
    BlockReader reader(in, "mem");
    std::uint32_t aux = 0;
    EXPECT_THROW(reader.next_frame(aux), std::runtime_error) << cut;
  }
}

TEST(BlockContainerTest, ZeroLengthPayloadReadsSkipsAndEndsCleanly) {
  // Zero-payload blocks in every position: read and skip both consume
  // them without a stall, and a stream ending exactly after one is a
  // clean EOF.
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  BlockWriter writer(stream, "mem");
  writer.write_block(0, std::vector<unsigned char>{});
  writer.write_block(3, random_bytes(10, 5));
  writer.write_block(0, std::vector<unsigned char>{});
  const std::string bytes = stream.str();

  std::stringstream read_in(bytes, std::ios::in | std::ios::binary);
  BlockReader read_reader(read_in, "mem");
  std::uint32_t aux = 9;
  std::vector<unsigned char> payload;
  ASSERT_TRUE(read_reader.read_block(aux, payload));
  EXPECT_EQ(aux, 0u);
  EXPECT_TRUE(payload.empty());
  ASSERT_TRUE(read_reader.read_block(aux, payload));
  EXPECT_EQ(payload.size(), 10u);
  ASSERT_TRUE(read_reader.read_block(aux, payload));
  EXPECT_TRUE(payload.empty());
  EXPECT_FALSE(read_reader.read_block(aux, payload));

  std::stringstream skip_in(bytes, std::ios::in | std::ios::binary);
  BlockReader skip_reader(skip_in, "mem");
  ASSERT_TRUE(skip_reader.skip_block(aux));
  ASSERT_TRUE(skip_reader.skip_block(aux));
  ASSERT_TRUE(skip_reader.skip_block(aux));
  EXPECT_EQ(aux, 0u);
  EXPECT_FALSE(skip_reader.skip_block(aux));
  EXPECT_EQ(skip_reader.blocks_read(), 3u);
}

// ---------------------------------------------------------------------
// Compressed event logs
// ---------------------------------------------------------------------

class CodecLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("repl_codec_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string temp_path(const std::string& name) {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

std::vector<LogEvent> read_all(const std::string& path) {
  EventLogReader reader(path);
  std::vector<LogEvent> events;
  LogEvent event;
  while (reader.next(event)) events.push_back(event);
  return events;
}

StreamWorkloadConfig small_workload() {
  StreamWorkloadConfig config;
  config.num_objects = 200;
  config.num_servers = 5;
  config.rate = 4.0;
  config.max_events = 3000;
  return config;
}

TEST_F(CodecLogTest, CompressedRoundTripMatchesRawAcrossBlockSizes) {
  const std::string raw = temp_path("raw.evlog");
  generate_event_log(small_workload(), 11, raw);
  const std::vector<LogEvent> events = read_all(raw);

  for (const std::size_t block_events : {1u, 7u, 100u, 4096u}) {
    std::string name = "c";
    name += std::to_string(block_events);
    name += ".evlog";
    const std::string compressed = temp_path(name);
    {
      EventLogWriter writer(compressed, 5, /*num_objects=*/0,
                            EventLogFormat::kCompressed, block_events);
      for (const LogEvent& e : events) writer.write(e);
      writer.close();
    }
    EventLogReader reader(compressed);
    EXPECT_EQ(reader.header().version, EventLogHeader::kVersionCompressed);
    EXPECT_EQ(reader.header().num_events, events.size());
    EXPECT_EQ(reader.header().num_objects,
              EventLogReader(raw).header().num_objects);
    EXPECT_EQ(read_all(compressed), events);
  }
}

TEST_F(CodecLogTest, CompressionBeatsTheRawFormat) {
  // The dense-id regime the format targets: the acceptance threshold is
  // >= 1.8x smaller than 20 bytes/event.
  StreamWorkloadConfig workload;
  workload.num_objects = 2000;
  workload.num_servers = 10;
  workload.rate = 2000.0 / 64.0;
  workload.max_events = 20000;
  const std::string raw = temp_path("dense_raw.evlog");
  const std::string compressed = temp_path("dense_c.evlog");
  ASSERT_EQ(generate_event_log(workload, 42, raw),
            generate_event_log(workload, 42, compressed,
                               EventLogFormat::kCompressed));
  const auto raw_size = std::filesystem::file_size(raw);
  const auto compressed_size = std::filesystem::file_size(compressed);
  EXPECT_GE(static_cast<double>(raw_size),
            1.8 * static_cast<double>(compressed_size));
  EXPECT_LE(static_cast<double>(compressed_size) / 20000.0, 12.0);
  EXPECT_EQ(read_all(compressed), read_all(raw));
}

TEST_F(CodecLogTest, TranscodeConvertsBothDirections) {
  const std::string raw = temp_path("t_raw.evlog");
  const std::uint64_t n = generate_event_log(small_workload(), 3, raw);
  const std::string compressed = temp_path("t_c.evlog");
  const std::string back = temp_path("t_back.evlog");
  EXPECT_EQ(event_log_transcode(raw, compressed,
                                EventLogFormat::kCompressed),
            n);
  EXPECT_EQ(event_log_transcode(compressed, back, EventLogFormat::kRaw), n);
  EXPECT_EQ(read_all(back), read_all(raw));
  EXPECT_EQ(EventLogReader(back).header().num_objects,
            EventLogReader(raw).header().num_objects);
  // Transcoding a log onto itself must be rejected up front — the
  // writer's truncating open would destroy the source.
  EXPECT_THROW(event_log_transcode(raw, raw, EventLogFormat::kCompressed),
               std::runtime_error);
  EXPECT_EQ(read_all(raw).size(), n);  // source intact
}

TEST_F(CodecLogTest, SkipEventsMatchesRawAtEveryPosition) {
  const std::string raw = temp_path("skip_raw.evlog");
  generate_event_log(small_workload(), 17, raw);
  const std::vector<LogEvent> events = read_all(raw);
  const std::string compressed = temp_path("skip_c.evlog");
  {
    // Small blocks so skips cross many block boundaries.
    EventLogWriter writer(compressed, 5, 0, EventLogFormat::kCompressed, 64);
    for (const LogEvent& e : events) writer.write(e);
    writer.close();
  }
  for (const std::size_t skip :
       {std::size_t{0}, std::size_t{1}, std::size_t{63}, std::size_t{64},
        std::size_t{65}, std::size_t{1000}, events.size() - 1,
        events.size()}) {
    EventLogReader reader(compressed);
    reader.skip_events(skip);
    EXPECT_EQ(reader.events_read(), skip);
    LogEvent event;
    if (skip == events.size()) {
      EXPECT_FALSE(reader.next(event));
      continue;
    }
    ASSERT_TRUE(reader.next(event)) << skip;
    EXPECT_EQ(event, events[skip]) << skip;
  }
  // Mixed consume-then-skip within a decoded block.
  EventLogReader reader(compressed);
  LogEvent event;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(reader.next(event));
  reader.skip_events(200);
  ASSERT_TRUE(reader.next(event));
  EXPECT_EQ(event, events[210]);
  // Over-skip past the header count is rejected.
  EXPECT_THROW(EventLogReader(compressed).skip_events(events.size() + 1),
               std::invalid_argument);
}

TEST_F(CodecLogTest, HashEventsIsFormatIndependent) {
  const std::string raw = temp_path("hash_raw.evlog");
  generate_event_log(small_workload(), 23, raw);
  const std::string compressed = temp_path("hash_c.evlog");
  event_log_transcode(raw, compressed, EventLogFormat::kCompressed);
  EventLogReader a(raw);
  EventLogReader b(compressed);
  EXPECT_EQ(a.hash_events(1500, kEventStreamHashSeed),
            b.hash_events(1500, kEventStreamHashSeed));
}

/// The corruption satellite: truncating a compressed log at EVERY byte
/// offset past the header must fail the read (the header's event count
/// is known), and flipping any byte in the block region must fail the
/// CRC with a diagnostic naming the block.
TEST_F(CodecLogTest, TruncationAtEveryOffsetAndBitFlipsAreRejected) {
  const std::string path = temp_path("corrupt.evlog");
  {
    StreamWorkloadConfig workload = small_workload();
    workload.max_events = 600;  // small enough to sweep every byte
    EventLogWriter writer(path, 5, 0, EventLogFormat::kCompressed, 100);
    Rng rng(1);
    double t = 0.0;
    for (std::uint64_t i = 0; i < workload.max_events; ++i) {
      t += rng.uniform(0.001, 1.0);
      writer.write(t, rng.uniform_index(workload.num_objects),
                   static_cast<std::uint32_t>(rng.uniform_index(5)));
    }
    writer.close();
  }
  const std::vector<LogEvent> events = read_all(path);
  ASSERT_EQ(events.size(), 600u);
  const auto full_size = std::filesystem::file_size(path);

  const auto expect_read_fails = [&](const std::string& corrupt,
                                     const char* needle,
                                     const std::string& trace) {
    SCOPED_TRACE(trace);
    try {
      read_all(corrupt);
      FAIL() << "corruption went undetected";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    } catch (const std::invalid_argument&) {
      // Header-field corruption can also surface as a validation error.
    }
  };

  // Truncation at every byte offset of the block region, plus inside
  // the header.
  std::ifstream in(path, std::ios::binary);
  std::string bytes(full_size, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(full_size));
  ASSERT_EQ(static_cast<std::uintmax_t>(in.gcount()), full_size);
  for (std::uintmax_t cut = 0; cut < full_size; ++cut) {
    const std::string trunc = temp_path("trunc.evlog");
    std::ofstream(trunc, std::ios::binary | std::ios::trunc)
        .write(bytes.data(), static_cast<std::streamsize>(cut));
    expect_read_fails(trunc, "", "truncated at " + std::to_string(cut));
  }

  // A flipped bit anywhere in the block region fails the CRC with a
  // positioned diagnostic.
  for (std::uintmax_t offset = EventLogHeader::kSize; offset < full_size;
       ++offset) {
    const std::string flipped = temp_path("flip.evlog");
    std::string corrupt = bytes;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x10);
    std::ofstream(flipped, std::ios::binary | std::ios::trunc)
        .write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    expect_read_fails(flipped, "block", "flip at " + std::to_string(offset));
  }
}

// ---------------------------------------------------------------------
// Cross-version reads
// ---------------------------------------------------------------------

void push_le32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

void push_le64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

/// Hand-crafts a version-1 or version-2 snapshot file — the layouts
/// written by earlier releases — holding the given raw records.
std::string write_old_snapshot(
    const std::string& path, std::uint32_t version,
    const std::vector<std::pair<std::uint64_t, std::vector<unsigned char>>>&
        records) {
  std::vector<unsigned char> bytes;
  push_le64(bytes, SnapshotHeader::kMagic);
  push_le32(bytes, version);
  push_le32(bytes, 4);                       // num_servers
  push_le64(bytes, records.size());          // num_objects
  push_le64(bytes, 1000);                    // events_ingested
  push_le64(bytes, 10);                      // batches
  push_le64(bytes, 0x5eed5eed5eed5eedULL);   // base_seed
  push_le64(bytes, std::bit_cast<std::uint64_t>(42.5));
  push_le32(bytes, SnapshotHeader::kFlagAnyEvent);
  push_le32(bytes, 0);  // reserved
  if (version >= 2) {
    push_le64(bytes, 0xabcdef);  // log_hash
    push_le64(bytes, 77);        // log_num_objects
    push_le64(bytes, 1234);      // log_num_events
    const std::string policy = "drwp(alpha=0.3)";
    push_le32(bytes, static_cast<std::uint32_t>(policy.size()));
    bytes.insert(bytes.end(), policy.begin(), policy.end());
    push_le32(bytes, 0);  // empty predictor spec
  }
  for (const auto& [id, payload] : records) {
    push_le64(bytes, id);
    push_le32(bytes, static_cast<std::uint32_t>(payload.size()));
    bytes.insert(bytes.end(), payload.begin(), payload.end());
  }
  push_le64(bytes, SnapshotHeader::kFooterMagic);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return path;
}

TEST_F(CodecLogTest, OldSnapshotVersionsStillRead) {
  const std::vector<std::pair<std::uint64_t, std::vector<unsigned char>>>
      records = {{3, random_bytes(40, 1)}, {9, random_bytes(0, 2)},
                 {1000, random_bytes(7, 3)}};
  for (const std::uint32_t version : {1u, 2u}) {
    const std::string path = write_old_snapshot(
        temp_path("v" + std::to_string(version) + ".ckpt"), version,
        records);
    SnapshotReader reader(path);
    EXPECT_EQ(reader.header().version, version);
    EXPECT_EQ(reader.header().codec, SnapshotHeader::kCodecRaw);
    EXPECT_EQ(reader.header().events_ingested, 1000u);
    if (version >= 2) {
      EXPECT_EQ(reader.header().policy_spec, "drwp(alpha=0.3)");
      EXPECT_EQ(reader.header().log_num_objects, 77u);
    } else {
      EXPECT_TRUE(reader.header().policy_spec.empty());
    }
    std::uint64_t id = 0;
    std::vector<unsigned char> payload;
    for (const auto& [expected_id, expected_payload] : records) {
      ASSERT_TRUE(reader.next_object(id, payload));
      EXPECT_EQ(id, expected_id);
      EXPECT_EQ(payload, expected_payload);
    }
    EXPECT_FALSE(reader.next_object(id, payload));  // footer verified

    // Truncating the old-version file is still detected.
    const std::string trunc =
        temp_path("v" + std::to_string(version) + "_trunc.ckpt");
    std::filesystem::copy_file(
        path, trunc, std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(trunc,
                                 std::filesystem::file_size(trunc) - 9);
    SnapshotReader bad(trunc);
    EXPECT_THROW(
        {
          std::uint64_t i = 0;
          std::vector<unsigned char> p;
          while (bad.next_object(i, p)) {
          }
        },
        std::runtime_error);
  }
}

TEST_F(CodecLogTest, RawEventLogsAreVersion1AndStillRead) {
  // The raw writer still produces the version-1 wire format, so logs
  // from earlier releases and fresh raw logs are the same bytes.
  const std::string path = temp_path("v1.evlog");
  generate_event_log(small_workload(), 5, path);
  EventLogReader reader(path);
  EXPECT_EQ(reader.header().version, EventLogHeader::kVersionRaw);
  EXPECT_EQ(reader.header().format(), EventLogFormat::kRaw);
  std::size_t n = 0;
  LogEvent event;
  while (reader.next(event)) ++n;
  EXPECT_EQ(n, 3000u);
}

// ---------------------------------------------------------------------
// End-to-end engine parity on the compressed path
// ---------------------------------------------------------------------

TEST_F(CodecLogTest, CompressedServeMatchesRawBitForBitAcrossResumeCut) {
  StreamWorkloadConfig workload;
  workload.num_objects = 300;
  workload.num_servers = 6;
  workload.rate = 300.0 / 64.0;
  workload.max_events = 6000;
  const std::string raw = temp_path("serve_raw.evlog");
  const std::string compressed = temp_path("serve_c.evlog");
  generate_event_log(workload, 77, raw);
  generate_event_log(workload, 77, compressed, EventLogFormat::kCompressed);

  SystemConfig config;
  config.num_servers = 6;
  config.transfer_cost = 10.0;
  EngineOptions options;
  options.num_shards = 16;
  options.num_threads = 2;

  EngineBuilder builder;
  builder.config(config).options(options);
  builder.policy("drwp(alpha=0.3)").predictor("last_gap");

  // Uninterrupted raw serve (double-buffered by default).
  EngineMetrics reference;
  {
    EventLogReader reader(raw);
    auto engine = builder.build();
    reference = engine->serve(reader, std::size_t{512});
  }
  // Synchronous ingestion delivers the same batches: bit-identical.
  {
    EventLogReader reader(raw);
    auto engine = builder.build();
    ServeOptions serve_options;
    serve_options.batch_events = 512;
    serve_options.async_ingest = false;
    const EngineMetrics metrics = engine->serve(reader, serve_options);
    EXPECT_EQ(metrics.online_cost, reference.online_cost);
    EXPECT_EQ(metrics.lower_bound, reference.lower_bound);
  }
  // Compressed serve: same events, same aggregates, bit for bit.
  {
    EventLogReader reader(compressed);
    auto engine = builder.build();
    const EngineMetrics metrics = engine->serve(reader, std::size_t{512});
    EXPECT_EQ(metrics.objects, reference.objects);
    EXPECT_EQ(metrics.events, reference.events);
    EXPECT_EQ(metrics.num_local, reference.num_local);
    EXPECT_EQ(metrics.num_transfers, reference.num_transfers);
    EXPECT_EQ(metrics.online_cost, reference.online_cost);
    EXPECT_EQ(metrics.lower_bound, reference.lower_bound);
  }
  // Checkpoint/resume cut entirely on the compressed path, with
  // compressed snapshot records: serve half, snapshot, restore, finish.
  const std::string ckpt = temp_path("serve.ckpt");
  {
    EventLogReader reader(compressed);
    EngineOptions compress_options = options;
    compress_options.compress_checkpoints = true;
    EngineBuilder half = builder;
    half.options(compress_options);
    auto engine = half.build();
    engine->bind_log(reader.header());
    std::vector<LogEvent> batch;
    while (engine->stats().events_ingested < 3000 &&
           reader.read_batch(batch, 512) > 0) {
      engine->ingest(batch);
    }
    engine->checkpoint(ckpt);
    EXPECT_EQ(read_snapshot_header(ckpt).codec, SnapshotHeader::kCodecWord);
  }
  {
    auto resumed = builder.restore(ckpt);
    EventLogReader reader(compressed);
    const EngineMetrics metrics = resumed->serve(reader, std::size_t{512});
    EXPECT_EQ(metrics.online_cost, reference.online_cost);
    EXPECT_EQ(metrics.lower_bound, reference.lower_bound);
    EXPECT_EQ(metrics.num_transfers, reference.num_transfers);
    EXPECT_EQ(metrics.events, reference.events);
  }
  // A compressed snapshot is smaller than the raw one taken at the same
  // point.
  {
    EventLogReader reader(compressed);
    auto engine = builder.build();
    engine->bind_log(reader.header());
    std::vector<LogEvent> batch;
    while (engine->stats().events_ingested < 3000 &&
           reader.read_batch(batch, 512) > 0) {
      engine->ingest(batch);
    }
    const std::string raw_ckpt = temp_path("serve_raw.ckpt");
    engine->checkpoint(raw_ckpt);
    EXPECT_LT(std::filesystem::file_size(ckpt),
              std::filesystem::file_size(raw_ckpt));
  }
}

/// Resuming against the wrong log still fails on the compressed path
/// (the binding hash is computed over decoded events).
TEST_F(CodecLogTest, WrongCompressedLogIsRejectedOnResume) {
  StreamWorkloadConfig workload;
  workload.num_objects = 100;
  workload.num_servers = 4;
  workload.rate = 2.0;
  workload.max_events = 2000;
  const std::string log = temp_path("right.evlog");
  const std::string wrong = temp_path("wrong.evlog");
  generate_event_log(workload, 1, log, EventLogFormat::kCompressed);
  generate_event_log(workload, 2, wrong, EventLogFormat::kCompressed);

  SystemConfig config;
  config.num_servers = 4;
  config.transfer_cost = 8.0;
  EngineOptions options;
  options.num_shards = 4;
  options.num_threads = 1;
  EngineBuilder builder;
  builder.config(config).options(options);
  builder.policy("drwp(alpha=0.3)").predictor("last_gap");

  const std::string ckpt = temp_path("bind.ckpt");
  {
    EventLogReader reader(log);
    auto engine = builder.build();
    engine->bind_log(reader.header());
    std::vector<LogEvent> batch;
    reader.read_batch(batch, 1000);
    engine->ingest(batch);
    engine->checkpoint(ckpt);
  }
  auto resumed = builder.restore(ckpt);
  EventLogReader reader(wrong);
  EXPECT_THROW(resumed->serve(reader, std::size_t{256}),
               std::invalid_argument);
}

}  // namespace
}  // namespace repl
