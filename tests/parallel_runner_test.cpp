// ThreadPool and ParallelRunner unit tests: pool task execution and
// stealing, the per-object seed stream, stats, error propagation, and
// agreement with a hand-rolled serial loop.
#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/drwp.hpp"
#include "core/simulator.hpp"
#include "extensions/multi_object.hpp"
#include "offline/opt_dp.hpp"
#include "predictor/oracle.hpp"
#include "run/parallel_runner.hpp"
#include "run/thread_pool.hpp"
#include "test_util.hpp"

namespace repl {
namespace {

using testing::make_config;

MultiObjectWorkload small_workload(int num_objects, std::uint64_t seed) {
  MultiObjectConfig config;
  config.num_objects = num_objects;
  config.num_servers = 4;
  config.horizon = 10000.0;
  config.request_rate = 0.05 * num_objects;
  return generate_multi_object_workload(config, seed);
}

ObjectPolicyFactory drwp_factory(double alpha) {
  return [alpha](const ObjectContext&) -> PolicyPtr {
    return std::make_unique<DrwpPolicy>(alpha);
  };
}

ObjectPredictorFactory oracle_factory() {
  return [](const ObjectContext& context) -> PredictorPtr {
    return std::make_unique<OraclePredictor>(*context.trace);
  };
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SupportsMultipleSubmitWaitRounds) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (round + 1) * 50);
  }
}

TEST(ThreadPool, ZeroThreadsPicksHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPool, IdleWorkersStealFromLoadedQueues) {
  // Round-robin distribution with tasks of wildly different lengths
  // forces the fast workers to steal; on a single-core host stealing can
  // legitimately be zero, so only assert the pool drains everything.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter, i] {
      volatile double sink = 0.0;
      const int spin = (i % 4 == 0) ? 20000 : 10;
      for (int k = 0; k < spin; ++k) sink = sink + static_cast<double>(k);
      counter.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ParallelRunnerSeeds, PureFunctionOfBaseSeedAndIndex) {
  EXPECT_EQ(ParallelRunner::object_seed(1, 0),
            ParallelRunner::object_seed(1, 0));
  EXPECT_NE(ParallelRunner::object_seed(1, 0),
            ParallelRunner::object_seed(1, 1));
  EXPECT_NE(ParallelRunner::object_seed(1, 0),
            ParallelRunner::object_seed(2, 0));
  // Consecutive indices must not produce correlated low bits.
  const std::uint64_t a = ParallelRunner::object_seed(7, 100);
  const std::uint64_t b = ParallelRunner::object_seed(7, 101);
  EXPECT_NE(a & 0xffffULL, b & 0xffffULL);
}

TEST(ParallelRunner, EmptyWorkloadYieldsEmptyResult) {
  MultiObjectWorkload workload;
  workload.num_servers = 4;
  const ParallelRunner runner;
  const MultiObjectResult result = runner.run(
      workload, make_config(4, 10.0), drwp_factory(0.5), oracle_factory());
  EXPECT_EQ(result.online_cost, 0.0);
  EXPECT_EQ(result.opt_cost, 0.0);
  EXPECT_TRUE(result.per_object_online.empty());
  EXPECT_DOUBLE_EQ(result.ratio(), 1.0);
}

TEST(ParallelRunner, EmptyTracesContributeZeroCost) {
  MultiObjectWorkload workload;
  workload.num_servers = 2;
  workload.objects.push_back(Trace(2, {{1.0, 1}}));
  workload.objects.push_back(Trace(2, {}));
  workload.objects.push_back(Trace(2, {{5.0, 0}}));
  const ParallelRunner runner;
  const MultiObjectResult result = runner.run(
      workload, make_config(2, 10.0), drwp_factory(0.5), oracle_factory());
  ASSERT_EQ(result.per_object_online.size(), 3u);
  EXPECT_GT(result.per_object_online[0], 0.0);
  EXPECT_EQ(result.per_object_online[1], 0.0);
  EXPECT_GT(result.per_object_online[2], 0.0);
}

TEST(ParallelRunner, MatchesHandRolledSerialLoop) {
  const MultiObjectWorkload workload = small_workload(30, 11);
  const SystemConfig config = make_config(4, 50.0);

  RunnerOptions options;
  options.num_threads = 4;
  options.simulation.record_events = false;
  const ParallelRunner runner(options);
  const MultiObjectResult result =
      runner.run(workload, config, drwp_factory(0.3), oracle_factory());

  SimulationOptions lean;
  lean.record_events = false;
  const Simulator simulator(config, lean);
  const OptimalDpSolver solver(config);
  double online = 0.0, opt = 0.0;
  for (const Trace& trace : workload.objects) {
    if (trace.empty()) continue;
    DrwpPolicy policy(0.3);
    OraclePredictor predictor(trace);
    online += simulator.run(policy, trace, predictor).total_cost();
    opt += solver.solve(trace);
  }
  EXPECT_EQ(result.online_cost, online);
  EXPECT_EQ(result.opt_cost, opt);
}

TEST(ParallelRunner, StatsReflectTheRun) {
  const MultiObjectWorkload workload = small_workload(25, 3);
  std::size_t total_requests = 0;
  for (const Trace& trace : workload.objects) total_requests += trace.size();

  RunnerOptions options;
  options.num_threads = 2;
  options.compute_opt = false;
  const ParallelRunner runner(options);
  (void)runner.run(workload, make_config(4, 10.0), drwp_factory(0.5),
                   oracle_factory());
  const RunnerStats& stats = runner.last_stats();
  EXPECT_EQ(stats.threads_used, 2);
  EXPECT_EQ(stats.objects_simulated, 25u);
  EXPECT_EQ(stats.requests_simulated, total_requests);
  EXPECT_GE(stats.wall_seconds, 0.0);
}

TEST(ParallelRunner, ComputeOptOffLeavesOptZero) {
  const MultiObjectWorkload workload = small_workload(10, 5);
  RunnerOptions options;
  options.compute_opt = false;
  const ParallelRunner runner(options);
  const MultiObjectResult result = runner.run(
      workload, make_config(4, 10.0), drwp_factory(0.5), oracle_factory());
  EXPECT_EQ(result.opt_cost, 0.0);
  EXPECT_GT(result.online_cost, 0.0);
}

TEST(ParallelRunner, PropagatesLowestIndexException) {
  const MultiObjectWorkload workload = small_workload(20, 7);
  RunnerOptions options;
  options.num_threads = 4;
  const ParallelRunner runner(options);
  const ObjectPolicyFactory throwing_factory =
      [](const ObjectContext& context) -> PolicyPtr {
    if (context.index >= 5) {
      throw std::runtime_error("object " + std::to_string(context.index));
    }
    return std::make_unique<DrwpPolicy>(0.5);
  };
  try {
    (void)runner.run(workload, make_config(4, 10.0), throwing_factory,
                     oracle_factory());
    FAIL() << "expected the factory exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "object 5");
  }
}

TEST(ParallelRunner, RejectsMismatchedServerCounts) {
  const MultiObjectWorkload workload = small_workload(3, 1);
  const ParallelRunner runner;
  EXPECT_THROW((void)runner.run(workload, make_config(8, 10.0),
                                drwp_factory(0.5), oracle_factory()),
               std::invalid_argument);
}

TEST(ParallelRunner, RejectsNullFactories) {
  const MultiObjectWorkload workload = small_workload(3, 1);
  const ParallelRunner runner;
  EXPECT_THROW((void)runner.run(workload, make_config(4, 10.0),
                                ObjectPolicyFactory{}, oracle_factory()),
               std::invalid_argument);
  EXPECT_THROW((void)runner.run(workload, make_config(4, 10.0),
                                drwp_factory(0.5), ObjectPredictorFactory{}),
               std::invalid_argument);
}

TEST(LegacyAdapters, ForwardToTheWrappedFactories) {
  const MultiObjectWorkload workload = small_workload(8, 9);
  const SystemConfig config = make_config(4, 25.0);
  const MultiObjectResult legacy = run_multi_object(
      workload, config, [] { return std::make_unique<DrwpPolicy>(0.4); },
      [](const Trace& trace) -> PredictorPtr {
        return std::make_unique<OraclePredictor>(trace);
      });
  const ParallelRunner runner;  // default: all threads
  const MultiObjectResult parallel = runner.run(
      workload, config,
      adapt_policy_factory([] { return std::make_unique<DrwpPolicy>(0.4); }),
      adapt_predictor_factory([](const Trace& trace) -> PredictorPtr {
        return std::make_unique<OraclePredictor>(trace);
      }));
  EXPECT_EQ(legacy.online_cost, parallel.online_cost);
  EXPECT_EQ(legacy.opt_cost, parallel.opt_cost);
  EXPECT_EQ(legacy.per_object_online, parallel.per_object_online);
  EXPECT_EQ(legacy.per_object_opt, parallel.per_object_opt);
}

}  // namespace
}  // namespace repl
