#include "core/drwp.hpp"

#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace repl {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

DrwpPolicy::DrwpPolicy(double alpha) : alpha_(alpha) {
  // The paper's guarantees hold for alpha in (0, 1] (alpha = 1 is the
  // conventional policy). Larger values are still well-defined automata
  // — the "beyond" branch just holds copies longer than λ — and the
  // experiment grid sweeps them to map the regime beyond the analysis,
  // so only positivity (and finiteness) is required here.
  REPL_REQUIRE_MSG(alpha > 0.0 && std::isfinite(alpha),
                   "alpha must be positive and finite, got " << alpha);
}

void DrwpPolicy::reset(const SystemConfig& config, const Prediction& pred0,
                       EventSink& sink) {
  config.validate();
  config_ = config;
  servers_.assign(static_cast<std::size_t>(config.num_servers),
                  ServerState{});
  copy_count_ = 0;
  now_ = 0.0;
  expiries_ = {};

  // Line 2: the initial copy at s1, with an intended duration chosen by
  // the prediction for the dummy request r0.
  ServerState& s0 = servers_[static_cast<std::size_t>(config.initial_server)];
  s0.has_copy = true;
  s0.last_request_time = 0.0;
  copy_count_ = 1;
  sink.on_create(config.initial_server, 0.0);
  ServeContext ctx;
  ctx.server = config.initial_server;
  ctx.time = 0.0;
  ctx.local = true;
  const double duration = choose_duration(pred0, ctx);
  set_intended(config.initial_server, 0.0, duration, sink);
}

double DrwpPolicy::choose_duration(const Prediction& pred,
                                   const ServeContext&) {
  return pred.within_lambda ? lambda() : alpha_ * lambda();
}

void DrwpPolicy::set_intended(int server, double time, double duration,
                              EventSink& sink) {
  REPL_REQUIRE(duration > 0.0);
  ServerState& st = servers_[static_cast<std::size_t>(server)];
  REPL_CHECK(st.has_copy);
  st.special = false;
  st.special_since = kInf;
  st.expiry = time + duration;
  st.last_intended = duration;
  ++st.generation;
  expiries_.push(HeapEntry{st.expiry, server, st.generation});
  sink.on_set_duration(server, time, duration);
}

void DrwpPolicy::purge_stale_heap() const {
  while (!expiries_.empty()) {
    const HeapEntry& top = expiries_.top();
    const ServerState& st = servers_[static_cast<std::size_t>(top.server)];
    const bool valid =
        st.has_copy && !st.special && st.generation == top.generation;
    if (valid) return;
    expiries_.pop();
  }
}

double DrwpPolicy::next_transition_time() const {
  purge_stale_heap();
  return expiries_.empty() ? kInf : expiries_.top().time;
}

void DrwpPolicy::process_expiry(int server, double time, EventSink& sink) {
  // Algorithm 1 lines 20–25.
  ServerState& st = servers_[static_cast<std::size_t>(server)];
  REPL_CHECK(st.has_copy && !st.special);
  if (copy_count_ == 1) {
    st.special = true;
    st.special_since = time;
    sink.on_mark_special(server, time);
  } else {
    st.has_copy = false;
    --copy_count_;
    REPL_CHECK_MSG(copy_count_ >= 1, "at-least-one-copy violated");
    sink.on_drop(server, time);
  }
}

void DrwpPolicy::advance_to(double time, EventSink& sink) {
  REPL_CHECK_MSG(time >= now_, "advance_to moved backwards");
  for (;;) {
    purge_stale_heap();
    if (expiries_.empty()) break;
    const HeapEntry top = expiries_.top();
    if (!(top.time < time)) break;  // expiry at exactly `time` fires later
    expiries_.pop();
    process_expiry(top.server, top.time, sink);
    now_ = top.time;
  }
  if (std::isfinite(time)) now_ = time;
}

int DrwpPolicy::pick_transfer_source(int requester) const {
  // A special copy is necessarily the only copy (checked); otherwise the
  // lowest-indexed holder is chosen — cost is source-independent under
  // the uniform transfer cost λ, so this only pins determinism.
  int first_holder = -1;
  for (int s = 0; s < config_.num_servers; ++s) {
    const ServerState& st = servers_[static_cast<std::size_t>(s)];
    if (!st.has_copy || s == requester) continue;
    if (st.special) {
      REPL_CHECK_MSG(copy_count_ == 1,
                     "special copy must be the only copy (Proposition 1)");
      return s;
    }
    if (first_holder < 0) first_holder = s;
  }
  REPL_CHECK_MSG(first_holder >= 0, "no transfer source available");
  return first_holder;
}

ServeAction DrwpPolicy::on_request(int server, double time,
                                   const Prediction& pred, EventSink& sink) {
  REPL_REQUIRE(server >= 0 && server < config_.num_servers);
  REPL_CHECK_MSG(time >= now_, "requests must arrive in time order");
  REPL_CHECK_MSG(next_transition_time() >= time,
                 "advance_to(t) must run before on_request(t)");

  ServerState& st = servers_[static_cast<std::size_t>(server)];
  ServeAction action;
  ServeContext ctx;
  ctx.server = server;
  ctx.time = time;
  ctx.prev_intended = st.last_intended;
  ctx.prev_request_time = st.last_request_time;

  if (st.has_copy) {
    // Lines 4–5: served by the local copy (t_i <= E_j or K_j = 1).
    REPL_CHECK(st.special || st.expiry >= time);
    action.local = true;
    action.source = server;
    action.source_special = st.special;
    action.special_since = st.special_since;
  } else {
    // Lines 6–9: transfer from another holder, create a copy here.
    const int source = pick_transfer_source(server);
    ServerState& src = servers_[static_cast<std::size_t>(source)];
    action.local = false;
    action.source = source;
    action.source_special = src.special;
    action.special_since = src.special_since;
    sink.on_transfer(source, server, time);
    st.has_copy = true;
    ++copy_count_;
    sink.on_create(server, time);
    if (src.special) {
      // Lines 15–19: the special copy is dropped right after serving an
      // outgoing transfer.
      src.has_copy = false;
      src.special = false;
      src.special_since = kInf;
      --copy_count_;
      REPL_CHECK(copy_count_ >= 1);
      sink.on_drop(source, time);
    }
  }

  ctx.local = action.local;
  ctx.source_special = action.source_special;
  ctx.special_since = action.special_since;

  // Lines 10–14: the new intended duration from the fresh prediction.
  const double duration = choose_duration(pred, ctx);
  action.intended_duration = duration;
  set_intended(server, time, duration, sink);
  st.last_request_time = time;
  now_ = time;
  return action;
}

bool DrwpPolicy::holds(int server) const {
  REPL_REQUIRE(server >= 0 && server < config_.num_servers);
  return servers_[static_cast<std::size_t>(server)].has_copy;
}

double DrwpPolicy::intended_expiry(int server) const {
  REPL_REQUIRE(server >= 0 && server < config_.num_servers);
  const ServerState& st = servers_[static_cast<std::size_t>(server)];
  if (!st.has_copy) return -kInf;
  return st.special ? kInf : st.expiry;
}

bool DrwpPolicy::is_special(int server) const {
  REPL_REQUIRE(server >= 0 && server < config_.num_servers);
  return servers_[static_cast<std::size_t>(server)].special;
}

void DrwpPolicy::save_state(StateWriter& out) const {
  out.f64(alpha_);
  out.i32(config_.num_servers);
  out.i32(copy_count_);
  out.f64(now_);
  for (const ServerState& st : servers_) {
    out.boolean(st.has_copy);
    out.boolean(st.special);
    out.f64(st.expiry);
    out.f64(st.special_since);
    out.f64(st.last_intended);
    out.f64(st.last_request_time);
    out.u64(st.generation);
  }
}

void DrwpPolicy::load_state(StateReader& in) {
  const double alpha = in.f64();
  if (alpha != alpha_) in.fail("drwp alpha mismatch");
  const std::int32_t num_servers = in.i32();
  if (num_servers != config_.num_servers ||
      servers_.size() != static_cast<std::size_t>(num_servers)) {
    in.fail("drwp server count mismatch (load_state before reset?)");
  }
  copy_count_ = in.i32();
  now_ = in.f64();
  expiries_ = {};
  for (ServerState& st : servers_) {
    st.has_copy = in.boolean();
    st.special = in.boolean();
    st.expiry = in.f64();
    st.special_since = in.f64();
    st.last_intended = in.f64();
    st.last_request_time = in.f64();
    st.generation = in.u64();
  }
  if (copy_count_ < 1 || copy_count_ > num_servers) {
    in.fail("drwp copy count " + std::to_string(copy_count_) +
            " out of range");
  }
  // Rebuild the expiry heap from the per-server truth. Pop order is a
  // total order on (time, server), so the rebuilt heap dequeues in the
  // exact sequence the original would have — stale entries simply never
  // existed here.
  int copies = 0;
  for (int s = 0; s < num_servers; ++s) {
    const ServerState& st = servers_[static_cast<std::size_t>(s)];
    if (!st.has_copy) continue;
    ++copies;
    if (!st.special) {
      expiries_.push(HeapEntry{st.expiry, s, st.generation});
    }
  }
  if (copies != copy_count_) in.fail("drwp copy count inconsistent");
}

std::string DrwpPolicy::name() const {
  std::ostringstream os;
  os << "drwp(alpha=" << alpha_ << ")";
  return os.str();
}

std::unique_ptr<ReplicationPolicy> DrwpPolicy::clone() const {
  return std::make_unique<DrwpPolicy>(*this);
}

}  // namespace repl
