// The closed-form lower bound OPTL on the optimal offline cost
// (Section 8 of the paper):
//
//   OPTL = Σ_{i: t_i − t_{p(i)} > λ} λ
//        + Σ_{i: t_i − t_{p(i)} ≤ λ} (t_i − t_{p(i)})
//        + Σ_{i: t_i − t_{i−1} > λ} (t_i − t_{i−1} − λ)
//
// where p(i) is the previous request at the same server (the dummy r0 at
// time 0 counts for the initial server; a first request elsewhere has
// t_i − t_{p(i)} = ∞ and contributes λ) and t_{i−1} is the previous
// request anywhere (t_{-1} = 0, the dummy).
//
// Justification (paper): each request costs at least min(λ, gap-to-prev)
// — Proposition 5 — and the at-least-one-copy requirement forces storage
// of at least the portion of each global gap beyond λ that the first term
// does not already count. Valid for uniform storage rates (rate 1).
#pragma once

#include <vector>

#include "checkpoint/state_io.hpp"
#include "core/types.hpp"
#include "trace/trace.hpp"

namespace repl {

double opt_lower_bound(const SystemConfig& config, const Trace& trace);

/// Incremental OPTL: feed requests in time order and read the bound at
/// any point. The accumulation order mirrors opt_lower_bound() exactly,
/// so after the same request sequence value() is bit-identical to the
/// batch function on the materialized trace — the streaming engine uses
/// this for cost/OPTL ratio aggregates without holding traces.
class StreamingLowerBound {
 public:
  explicit StreamingLowerBound(const SystemConfig& config);

  void step(int server, double time);

  double value() const { return bound_; }

  /// Checkpoint protocol: the accumulator and per-server clocks; λ is
  /// construction state and only cross-checked.
  void save_state(StateWriter& out) const;
  void load_state(StateReader& in);

 private:
  double lambda_;
  /// Last request time per server; the dummy r0 at time 0 seeds the
  /// initial server, -inf elsewhere (so a first request contributes λ
  /// via an infinite same-server gap).
  std::vector<double> last_at_server_;
  double prev_global_ = 0.0;
  double bound_ = 0.0;
};

}  // namespace repl
