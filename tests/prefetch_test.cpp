// BatchPrefetcher and LogReplaySource contracts: shutdown without a
// consumer, zero-event streams at every depth, partial-batch delivery
// when the reader fails mid-batch, sticky errors, and bit-identical
// async/sync parity on a corrupt log.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "codec/endian.hpp"
#include "core/drwp.hpp"
#include "engine/engine.hpp"
#include "engine/event_source.hpp"
#include "engine/prefetch.hpp"
#include "predictor/last_gap.hpp"
#include "trace/event_log.hpp"

namespace repl {
namespace {

constexpr int kServers = 5;
constexpr double kAlpha = 0.3;

class PrefetchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("repl_prefetch_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string temp_path(const std::string& name) {
    return (dir_ / name).string();
  }

  /// Writes `count` events with strictly increasing times as a
  /// compressed log with `block_events` per block.
  std::string make_log(const std::string& name, std::size_t count,
                       std::size_t block_events) {
    const std::string path = temp_path(name);
    EventLogWriter writer(path, kServers, 0, EventLogFormat::kCompressed,
                          block_events);
    for (std::size_t i = 0; i < count; ++i) {
      writer.write(0.5 * static_cast<double>(i + 1), (i * 13) % 97,
                   static_cast<std::uint32_t>(i % kServers));
    }
    writer.close();
    return path;
  }

  std::filesystem::path dir_;
};

/// Flips one payload byte inside block `target` of a compressed log.
void corrupt_block_payload(const std::string& path, std::size_t target) {
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file.is_open());
  std::uint64_t offset = EventLogHeader::kSize;
  for (std::size_t block = 0;; ++block) {
    unsigned char frame[kBlockFrameBytes];
    file.seekg(static_cast<std::streamoff>(offset));
    file.read(reinterpret_cast<char*>(frame), sizeof(frame));
    ASSERT_TRUE(file.good()) << "log has no block " << target;
    const std::uint32_t body_len = load_le32(frame);
    if (block == target) {
      const std::uint64_t victim = offset + kBlockFrameBytes + body_len / 2;
      file.seekg(static_cast<std::streamoff>(victim));
      char byte = 0;
      file.read(&byte, 1);
      byte = static_cast<char>(byte ^ 0x20);
      file.seekp(static_cast<std::streamoff>(victim));
      file.write(&byte, 1);
      return;
    }
    offset += kBlockFrameBytes + body_len;
  }
}

std::unique_ptr<StreamingEngine> make_engine() {
  SystemConfig config;
  config.num_servers = kServers;
  config.transfer_cost = 10.0;
  return std::make_unique<StreamingEngine>(
      config, EngineOptions{},
      [](const EngineObjectContext&) -> PolicyPtr {
        return std::make_unique<DrwpPolicy>(kAlpha);
      },
      [](const EngineObjectContext&) -> PredictorPtr {
        return std::make_unique<LastGapPredictor>(kServers);
      });
}

TEST_F(PrefetchTest, DestructorJoinsWhenConsumerNeverDrains) {
  // Enough batches that the reader thread fills its depth and blocks on
  // space; destroying the prefetcher with everything still queued must
  // wake it and join, not deadlock or leak the thread.
  const std::string path = make_log("undrained.evlog", 10000, 64);
  {
    EventLogReader reader(path);
    BatchPrefetcher prefetch(reader, 64, 2);
    // No next() at all.
  }
  {
    EventLogReader reader(path);
    BatchPrefetcher prefetch(reader, 64, 4);
    std::vector<LogEvent> batch;
    ASSERT_TRUE(prefetch.next(batch));  // consume one, abandon the rest
    EXPECT_EQ(batch.size(), 64u);
  }
}

TEST_F(PrefetchTest, ZeroEventLogAtEveryDepth) {
  const std::string path = make_log("empty.evlog", 0, 64);
  for (std::size_t depth = 1; depth <= 4; ++depth) {
    EventLogReader reader(path);
    BatchPrefetcher prefetch(reader, 128, depth);
    std::vector<LogEvent> batch;
    EXPECT_FALSE(prefetch.next(batch)) << "depth " << depth;
    EXPECT_TRUE(batch.empty());
    // EOF is stable, not a one-shot.
    EXPECT_FALSE(prefetch.next(batch)) << "depth " << depth;
  }
}

TEST_F(PrefetchTest, PartialBatchDeliveredBeforeStickyError) {
  // Blocks of 64, corruption in block 2: a 256-event batch spans four
  // blocks, so the reader throws mid-batch with 128 events already
  // decoded. Those 128 must arrive as a partial batch before the error,
  // and the error must stick.
  const std::string path = make_log("corrupt.evlog", 320, 64);
  corrupt_block_payload(path, 2);

  EventLogReader reader(path);
  BatchPrefetcher prefetch(reader, 256, 2);
  std::vector<LogEvent> batch;
  ASSERT_TRUE(prefetch.next(batch));
  EXPECT_EQ(batch.size(), 128u);  // blocks 0 and 1, then the failure
  EXPECT_EQ(batch.front().time, 0.5);

  try {
    prefetch.next(batch);
    FAIL() << "corrupt block must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
        << e.what();
  }
  // Sticky: a retry is an error, never a clean EOF.
  EXPECT_THROW(prefetch.next(batch), std::runtime_error);
  EXPECT_THROW(prefetch.next(batch), std::runtime_error);
}

TEST_F(PrefetchTest, AsyncAndSyncReplayAgreeOnACorruptLog) {
  // The async prefetch path and the synchronous read_batch path must be
  // indistinguishable to the engine: same delivered prefix, same error,
  // same (bit-identical) aggregates over the surviving events.
  const std::string path = make_log("parity.evlog", 500, 64);
  corrupt_block_payload(path, 4);

  struct Outcome {
    std::uint64_t events = 0;
    std::string error;
    EngineMetrics metrics;
  };
  const auto run = [&](bool async_ingest) {
    Outcome outcome;
    auto engine = make_engine();
    EventLogReader reader(path);
    LogReplaySource source(reader, 256, async_ingest);
    source.attach(*engine);
    std::vector<LogEvent> batch;
    try {
      while (source.next_batch(batch)) {
        engine->ingest(batch);
      }
      ADD_FAILURE() << "corrupt log must throw";
    } catch (const std::runtime_error& e) {
      outcome.error = e.what();
    }
    // Sticky on both paths.
    EXPECT_THROW(source.next_batch(batch), std::runtime_error);
    outcome.events = engine->stats().events_ingested;
    outcome.metrics = engine->finish();
    return outcome;
  };

  const Outcome sync_run = run(false);
  const Outcome async_run = run(true);
  EXPECT_EQ(sync_run.events, 256u);  // blocks 0-3 survive, block 4 fails
  EXPECT_EQ(async_run.events, sync_run.events);
  EXPECT_EQ(async_run.error, sync_run.error);
  EXPECT_NE(sync_run.error.find("CRC"), std::string::npos) << sync_run.error;
  EXPECT_EQ(async_run.metrics.objects, sync_run.metrics.objects);
  EXPECT_EQ(async_run.metrics.events, sync_run.metrics.events);
  EXPECT_EQ(async_run.metrics.num_local, sync_run.metrics.num_local);
  EXPECT_EQ(async_run.metrics.num_transfers, sync_run.metrics.num_transfers);
  EXPECT_EQ(async_run.metrics.online_cost, sync_run.metrics.online_cost);
  EXPECT_EQ(async_run.metrics.lower_bound, sync_run.metrics.lower_bound);
}

TEST_F(PrefetchTest, CleanLogDeliversIdenticalBatchesToSyncRead) {
  // Same-order equivalence on the happy path: the prefetcher yields the
  // exact batch sequence a synchronous read_batch loop produces.
  const std::string path = make_log("clean.evlog", 1000, 64);

  std::vector<std::vector<LogEvent>> sync_batches;
  {
    EventLogReader reader(path);
    std::vector<LogEvent> batch;
    while (reader.read_batch(batch, 192) > 0) {
      sync_batches.push_back(batch);
    }
  }

  EventLogReader reader(path);
  BatchPrefetcher prefetch(reader, 192, 3);
  std::vector<LogEvent> batch;
  std::size_t index = 0;
  while (prefetch.next(batch)) {
    ASSERT_LT(index, sync_batches.size());
    EXPECT_EQ(batch, sync_batches[index]);
    ++index;
  }
  EXPECT_EQ(index, sync_batches.size());
  EXPECT_FALSE(prefetch.next(batch));
}

}  // namespace
}  // namespace repl
