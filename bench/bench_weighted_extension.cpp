// Experiment E8b — the distinct-storage-rate extension (beyond the
// paper; DESIGN.md §6): rate-aware DRWP vs the rate-oblivious original
// vs Wang et al. 2021 (which is rate-aware by construction), normalized
// by the exact weighted offline optimum (DP with the buy pass).
// Also compares the randomized-duration variant on uniform rates.
#include <iostream>

#include "analysis/ratio.hpp"
#include "baselines/wang2021.hpp"
#include "bench_util.hpp"
#include "core/drwp.hpp"
#include "extensions/randomized_drwp.hpp"
#include "extensions/weighted_drwp.hpp"
#include "offline/opt_dp.hpp"
#include "predictor/noisy.hpp"
#include "predictor/oracle.hpp"
#include "trace/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace repl;
  CliParser cli("bench_weighted_extension",
                "distinct storage rates: rate-aware vs oblivious");
  cli.add_flag("seed", "17", "workload seed");
  cli.add_flag("alpha", "0.4", "alpha");
  cli.add_flag("lambda", "100", "transfer cost");
  if (!cli.parse(argc, argv)) return 0;
  const double alpha = cli.get_double("alpha");
  const double lambda = cli.get_double("lambda");

  bench::ShapeChecks checks;

  // Three rate profiles over 6 servers; server 0 stays the cheapest so
  // Wang et al.'s home assumption holds.
  const std::vector<std::pair<std::string, std::vector<double>>> profiles =
      {{"uniform", {1, 1, 1, 1, 1, 1}},
       {"mild-skew", {0.5, 1, 1, 2, 2, 4}},
       {"hot-cold", {0.05, 1, 1, 8, 8, 8}}};

  ServerAssignment assignment;
  assignment.kind = ServerAssignment::Kind::kUniform;
  const Trace trace =
      generate_poisson_trace(6, 0.03, 86400.0, assignment,
                             cli.get_uint64("seed"));
  std::cout << "trace: " << trace.size() << " requests, lambda = "
            << lambda << ", alpha = " << alpha << "\n\n";

  for (const auto& [name, rates] : profiles) {
    SystemConfig config;
    config.num_servers = 6;
    config.transfer_cost = lambda;
    config.storage_rates = rates;
    const double opt = optimal_offline_cost(config, trace);
    std::cout << "=== rate profile " << name << " (weighted OPT = " << opt
              << ") ===\n";

    Table table({"policy", "predictor", "ratio"});
    double weighted_ratio = 0.0, plain_ratio = 0.0;
    auto run = [&](ReplicationPolicy& policy, Predictor& predictor) {
      const RatioReport report =
          evaluate_policy(config, policy, trace, predictor, opt);
      table.add_row({report.policy_name, report.predictor_name,
                     Table::cell(report.ratio, 4)});
      return report.ratio;
    };

    OraclePredictor oracle(trace);
    AccuracyPredictor noisy(trace, 0.8, 3);
    WeightedDrwpPolicy weighted_o(alpha);
    weighted_ratio = run(weighted_o, oracle);
    WeightedDrwpPolicy weighted_n(alpha);
    run(weighted_n, noisy);
    DrwpPolicy plain(alpha);
    plain_ratio = run(plain, oracle);
    Wang2021Policy wang;
    run(wang, oracle);
    RandomizedDrwpPolicy randomized(alpha, 23);
    run(randomized, oracle);

    std::cout << table.str() << "\n";
    if (name == "uniform") {
      checks.expect(weighted_ratio == plain_ratio,
                    "uniform rates: weighted == plain DRWP");
      checks.expect(weighted_ratio <= consistency_bound(alpha) + 1e-9,
                    "uniform rates: consistency bound holds");
    } else {
      checks.expect(weighted_ratio <= plain_ratio + 1e-9,
                    name + ": rate-aware DRWP no worse than oblivious");
    }
  }
  return checks.finish();
}
