#include "predictor/history.hpp"

#include "util/check.hpp"

namespace repl {

HistoryPredictor::HistoryPredictor(int num_servers, Config config)
    : num_servers_(num_servers), config_(config) {
  REPL_REQUIRE(num_servers >= 1);
  REPL_REQUIRE(config.ewma_decay > 0.0 && config.ewma_decay <= 1.0);
  REPL_REQUIRE(config.margin > 0.0);
  reset();
}

void HistoryPredictor::reset() {
  state_.assign(static_cast<std::size_t>(num_servers_), ServerState{});
}

Prediction HistoryPredictor::predict(const PredictionQuery& query) {
  REPL_REQUIRE(query.server >= 0 && query.server < num_servers_);
  ServerState& st = state_[static_cast<std::size_t>(query.server)];
  if (st.last_time >= 0.0) {
    const double gap = query.time - st.last_time;
    REPL_CHECK_MSG(gap >= 0.0, "history predictor fed out-of-order times");
    st.ewma = (st.ewma < 0.0)
                  ? gap
                  : config_.ewma_decay * gap +
                        (1.0 - config_.ewma_decay) * st.ewma;
  }
  st.last_time = query.time;
  if (st.ewma < 0.0) return Prediction{config_.default_within};
  return Prediction{st.ewma <= config_.margin * query.lambda};
}

void HistoryPredictor::save_state(StateWriter& out) const {
  out.u32(static_cast<std::uint32_t>(num_servers_));
  for (const ServerState& st : state_) {
    out.f64(st.last_time);
    out.f64(st.ewma);
  }
}

void HistoryPredictor::load_state(StateReader& in) {
  if (in.u32() != static_cast<std::uint32_t>(num_servers_)) {
    in.fail("history predictor server count mismatch");
  }
  for (ServerState& st : state_) {
    st.last_time = in.f64();
    st.ewma = in.f64();
  }
}

double HistoryPredictor::ewma(int server) const {
  REPL_REQUIRE(server >= 0 && server < num_servers_);
  return state_[static_cast<std::size_t>(server)].ewma;
}

}  // namespace repl
