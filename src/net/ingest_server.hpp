// Live network ingest: the socket front-end for StreamingEngine.
//
// NetIngestServer accepts concurrent client connections — TCP and/or a
// unix-domain socket — each speaking the v2 block-framed wire format
// (net/wire.hpp). One reader thread per connection validates frames at
// the socket boundary and enqueues decoded events into a bounded
// per-connection queue; the serving thread merges those queues into
// globally time-ordered batches via a watermark rule and feeds them to
// StreamingEngine::serve through NetIngestSource (engine/event_source.hpp)
// — the same ingestion path file replay uses.
//
// Admission order (the watermark rule): an event is admitted only once
// its time is ≤ the watermark, the minimum over all open connections of
// what that connection could still produce — its queue front if it has
// events queued, else the newest time it has decoded (0 before its
// first event, which blocks admission: an open connection that has sent
// nothing might still send anything). Admitted output is therefore
// globally non-decreasing in time regardless of how client streams
// interleave on the wire; per-connection order is preserved, so every
// object's subsequence is exactly as its producer sent it — the
// engine's determinism contract needs nothing more. A connection whose
// events arrive below the already-admitted watermark (a late joiner
// replaying old times) is killed with a diagnostic, never reordered.
//
// Backpressure: each connection's queue is bounded, and a global bound
// caps the sum. A reader that cannot enqueue stops reading its socket,
// so the peer's TCP window closes and the slow consumer's pressure
// propagates to the producers — no unbounded buffering anywhere.
//
// Failure containment: a malformed frame (CRC, length, time order), a
// mid-frame disconnect, or a handshake mismatch kills that connection
// with a positioned diagnostic and counts it in metrics; the server and
// every other connection keep running. Events the dead connection
// delivered in complete validated frames stay admitted — the stream
// that survives is exactly the prefix a file replay of those frames
// would produce.
//
// Telemetry: the server publishes its counters and gauges into an
// obs::MetricsRegistry — the one passed in NetServerOptions::metrics
// (shared with the engine, so one scrape covers the whole process) or a
// private one otherwise — and the optional metrics endpoint is an
// obs::MetricsHttpServer over that registry: GET /metrics serves
// Prometheus text (JSON via Accept: application/json or /metrics.json,
// with per-connection detail appended), GET /healthz a small JSON
// health document.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/event_source.hpp"
#include "net/socket.hpp"
#include "obs/trace.hpp"
#include "trace/event_log.hpp"

#include <condition_variable>

namespace repl {

class JsonWriter;

namespace obs {
class MetricsRegistry;
class MetricsHttpServer;
}

struct NetServerOptions {
  /// TCP listen address; port -1 disables TCP, 0 binds an ephemeral port
  /// (read it back via tcp_port()).
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
  /// Unix-domain socket path; empty disables.
  std::string unix_path;
  /// Metrics/health HTTP endpoint port on tcp_host; -1 disables, 0 binds
  /// an ephemeral port (metrics_port()).
  int metrics_port = -1;
  /// Events per admitted batch handed to the engine.
  std::size_t batch_events = std::size_t{1} << 16;
  /// Bounded queue sizes (events): per connection, and summed across all
  /// connections. A reader that cannot enqueue stops reading its socket.
  std::size_t max_connection_events = std::size_t{1} << 16;
  std::size_t max_total_events = std::size_t{1} << 20;
  /// Per-connection ingest rate cap, events/second; 0 disables. A token
  /// bucket with one second of burst: a reader that decodes faster than
  /// the cap sleeps off the debt before enqueueing, so the peer's TCP
  /// window closes exactly as under queue backpressure. Stalls count in
  /// repl_net_backpressure_stalls_total (one per stall episode).
  double max_events_per_sec = 0.0;
  /// The serve ends once at least this many connections have been
  /// accepted in total AND all connections have closed AND every queue
  /// has drained (with stop_when_idle). Lets a test or batch job say
  /// "serve exactly these N clients, then finalize".
  std::size_t min_connections = 1;
  /// When false the server never ends on idle — it runs until stop().
  bool stop_when_idle = true;
  /// Publish net telemetry into this registry — pass the engine's
  /// (EngineOptions::metrics) so one endpoint scrapes the whole process.
  /// Null: the server owns a private registry, so the metrics endpoint
  /// works standalone. Must outlive the server when set.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Accepts client event streams and merges them into time-ordered
/// batches. Use through NetIngestSource for engine serving; the raw
/// next_batch() interface exists for tests.
class NetIngestServer {
 public:
  explicit NetIngestServer(NetServerOptions options);
  ~NetIngestServer();

  NetIngestServer(const NetIngestServer&) = delete;
  NetIngestServer& operator=(const NetIngestServer&) = delete;

  /// Binds listeners and starts accepting. `num_servers` is the serving
  /// system's server count — client streams declaring a different count
  /// are rejected at handshake. `resume_events` is returned to every
  /// client in the handshake ACK (how many events of the logical stream
  /// are already ingested; clients skip that many).
  void start(std::uint32_t num_servers, std::uint64_t resume_events);

  /// Blocks for the next admitted, time-ordered batch (appended to the
  /// cleared `out`). Returns false at end of serve: stop() was called,
  /// or the idle end condition held. Rethrows nothing — connection
  /// failures are contained and reported via metrics.
  bool next_batch(std::vector<LogEvent>& out);

  /// Shuts down listeners and all connections and wakes next_batch.
  /// Idempotent; the destructor calls it too.
  void stop();

  /// Record that a checkpoint just landed (drives checkpoint-age
  /// metrics). Wire into ServeOptions::on_checkpoint.
  void note_checkpoint(std::uint64_t events_ingested);

  /// Kernel-assigned ports (valid after start()); -1 when disabled.
  int tcp_port() const;
  int metrics_port() const;

  /// The JSON metrics document (what GET /metrics.json serves): the
  /// registry's series plus per-connection detail.
  std::string metrics_json() const;

  /// The registry this server publishes into (the one from options, or
  /// the server-owned fallback). For scraping without the HTTP endpoint.
  obs::MetricsRegistry& registry() const { return *registry_; }

  /// Trace context announced by the most recent trace frame on any
  /// connection (invalid before the first). Wire into
  /// ServeOptions::trace_parent so engine spans join the sender's trace.
  obs::TraceContext latest_trace() const;

  std::uint64_t events_admitted() const;
  std::size_t connections_total() const;
  std::size_t connections_failed() const;
  /// Events sitting in connection queues, not yet admitted.
  std::size_t events_queued() const;

 private:
  struct Connection;
  struct Instruments;

  void accept_loop(Listener& listener, const char* kind);
  void connection_main(Connection& conn);
  void enqueue(Connection& conn, const std::vector<LogEvent>& events);
  /// Appends the non-registry members of the JSON document (uptime,
  /// admission state, per-connection detail). Locks mu_.
  void append_extra_json(JsonWriter& json) const;
  /// Refreshes the registry gauges that mirror state under mu_; runs as
  /// a registry collect hook on the scraping thread.
  void refresh_gauges() const;
  /// The watermark under mu_: +inf when no open connection constrains it.
  double watermark_locked() const;
  bool idle_end_locked() const;

  NetServerOptions options_;
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_ = nullptr;  // options' or owned_
  std::unique_ptr<Instruments> inst_;
  std::size_t hook_id_ = 0;
  std::unique_ptr<Listener> tcp_;
  std::unique_ptr<Listener> unix_;
  std::unique_ptr<obs::MetricsHttpServer> http_;
  std::vector<std::thread> accept_threads_;

  mutable std::mutex mu_;
  std::condition_variable consumer_cv_;  // next_batch waits here
  std::condition_variable space_cv_;     // readers wait for queue room
  std::vector<std::unique_ptr<Connection>> connections_;
  bool started_ = false;
  bool stopping_ = false;
  std::uint32_t num_servers_ = 0;
  std::uint64_t resume_events_ = 0;
  std::size_t total_queued_ = 0;
  std::uint64_t admitted_events_ = 0;
  obs::TraceContext latest_trace_{};
  double emitted_time_ = 0.0;
  std::size_t failed_connections_ = 0;
  std::chrono::steady_clock::time_point start_time_;
  std::size_t checkpoints_ = 0;
  std::uint64_t checkpoint_events_ = 0;
  std::chrono::steady_clock::time_point checkpoint_time_;
};

/// EventSource adapter: serve(source, options) over a NetIngestServer.
/// attach() binds the engine to a synthetic streaming-log identity and
/// starts the server with the engine's resume position, so a restart
/// from a checkpoint tells reconnecting clients how much to skip.
/// Idempotent per engine: a front-end may attach early (to learn the
/// bound ports before serve() blocks) and serve() re-attaches harmlessly.
class NetIngestSource final : public EventSource {
 public:
  NetIngestSource(NetIngestServer& server, std::uint32_t num_servers)
      : server_(server), num_servers_(num_servers) {}

  void attach(StreamingEngine& engine) override;
  bool next_batch(std::vector<LogEvent>& out) override;

 private:
  NetIngestServer& server_;
  std::uint32_t num_servers_;
  bool attached_ = false;
};

}  // namespace repl
