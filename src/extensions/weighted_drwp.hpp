// Distinct-storage-rate extension of Algorithm 1.
//
// The paper analyzes uniform storage rates and leaves distinct rates to
// the Wang et al. line of work (Section 11). The natural generalization —
// scale every intended duration by 1/µ(s), so the storage spent between
// renewals matches one transfer cost exactly as in the uniform case — is
// implemented here and evaluated against Wang2021Policy and the exact
// weighted DP in bench_weighted_extension. This is an extension beyond
// the paper, documented as such; no competitive guarantee is claimed.
#pragma once

#include "core/drwp.hpp"

namespace repl {

class WeightedDrwpPolicy final : public DrwpPolicy {
 public:
  explicit WeightedDrwpPolicy(double alpha) : DrwpPolicy(alpha) {}

  std::string name() const override;
  std::unique_ptr<ReplicationPolicy> clone() const override;

 protected:
  /// λ/µ(s) if predicted within, α·λ/µ(s) otherwise.
  double choose_duration(const Prediction& pred,
                         const ServeContext& ctx) override;
};

}  // namespace repl
